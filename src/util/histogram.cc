#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace iamdb {

namespace {
// ~4.6% spacing between bucket limits gives percentile error well under the
// run-to-run noise of any real benchmark while keeping the table small.
std::vector<double> MakeLimits() {
  std::vector<double> limits;
  double v = 1.0;
  while (v < 1e13) {
    limits.push_back(v);
    double next = v * 1.045;
    // Keep limits integral below 100 for exact small-value reporting.
    if (next < 100) next = std::max(next, v + 1.0);
    v = next;
  }
  limits.push_back(1e200);
  return limits;
}
const std::vector<double>& Limits() {
  static const std::vector<double> kLimits = MakeLimits();
  return kLimits;
}
}  // namespace

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  min_ = 1e200;
  max_ = 0;
  num_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  buckets_.assign(Limits().size(), 0);
}

void Histogram::Add(double value) {
  const auto& limits = Limits();
  size_t b =
      std::upper_bound(limits.begin(), limits.end(), value) - limits.begin();
  if (b >= buckets_.size()) b = buckets_.size() - 1;
  buckets_[b]++;
  if (min_ > value) min_ = value;
  if (max_ < value) max_ = value;
  num_++;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  num_ += other.num_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t b = 0; b < buckets_.size(); b++) buckets_[b] += other.buckets_[b];
}

double Histogram::Percentile(double p) const {
  if (num_ == 0) return 0;
  const auto& limits = Limits();
  double threshold = num_ * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    cumulative += buckets_[b];
    if (cumulative >= threshold) {
      // Interpolate inside the bucket.
      double left = (b == 0) ? 0 : limits[b - 1];
      double right = limits[b];
      double left_sum = cumulative - buckets_[b];
      double pos = buckets_[b] == 0
                       ? 0
                       : (threshold - left_sum) / buckets_[b];
      double r = left + (right - left) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

double Histogram::Average() const { return num_ == 0 ? 0 : sum_ / num_; }

double Histogram::StandardDeviation() const {
  if (num_ == 0) return 0;
  double variance =
      (sum_squares_ * num_ - sum_ * sum_) / (static_cast<double>(num_) * num_);
  return variance <= 0 ? 0 : std::sqrt(variance);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu avg=%.2f p50=%.2f p99=%.2f p99.9=%.2f max=%.2f",
                static_cast<unsigned long long>(num_), Average(),
                Percentile(50), Percentile(99), Percentile(99.9), Max());
  return buf;
}

}  // namespace iamdb
