// Histogram with exponentially-spaced buckets for latency percentiles
// (p50/p99/p999/max).  Thread-compatible: callers synchronize or keep one
// histogram per thread and Merge().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iamdb {

class Histogram {
 public:
  Histogram();

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  double Median() const { return Percentile(50.0); }
  double Percentile(double p) const;  // p in [0,100]
  double Average() const;
  double StandardDeviation() const;
  double Min() const { return num_ == 0 ? 0 : min_; }
  double Max() const { return max_; }
  uint64_t Count() const { return num_; }

  std::string ToString() const;

 private:
  static const double kBucketLimit[];
  static const int kNumBuckets;

  double min_;
  double max_;
  uint64_t num_;
  double sum_;
  double sum_squares_;
  std::vector<uint64_t> buckets_;
};

}  // namespace iamdb
