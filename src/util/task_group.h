// TaskGroup: run a batch of independent Status-returning tasks on a
// ThreadPool and wait for all of them, with the calling thread itself
// claiming tasks.  Subcompactions fan out through this.
//
// The caller-runs design is what makes fan-out from inside a pool worker
// safe: a background worker that shards its merge job across the same pool
// it is running on would deadlock a 1-thread pool (and convoy an N-thread
// one) if it only enqueued and waited.  Here the pool helpers are pure
// opportunism — every task not yet started by a helper is executed by the
// caller, so the group always completes even if no helper ever runs.
#pragma once

#include <functional>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace iamdb {

class TaskGroup {
 public:
  // Runs every task, using up to tasks.size()-1 pool helpers on `lane` plus
  // the calling thread.  Returns the first non-OK status in task order
  // (remaining tasks still run to completion — partial-failure cleanup is
  // the caller's job, and it needs every task finished to do it safely).
  static Status RunAll(ThreadPool* pool, ThreadPool::Lane lane,
                       std::vector<std::function<Status()>> tasks);
};

}  // namespace iamdb
