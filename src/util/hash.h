// Non-cryptographic hash used by Bloom filters and the block cache shards.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/slice.h"

namespace iamdb {

uint32_t Hash(const char* data, size_t n, uint32_t seed);

inline uint32_t Hash(const Slice& s, uint32_t seed = 0xbc9f1d34) {
  return Hash(s.data(), s.size(), seed);
}

}  // namespace iamdb
