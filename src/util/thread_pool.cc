#include "util/thread_pool.h"

#include <cassert>

namespace iamdb {

ThreadPool::ThreadPool(int num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::Schedule(Lane lane, std::function<void()> work) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutting_down_) return false;
    (lane == Lane::kHigh ? high_queue_ : low_queue_).push_back(std::move(work));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> l(mu_);
  idle_cv_.wait(l, [this] {
    return high_queue_.empty() && low_queue_.empty() && active_ == 0;
  });
}

size_t ThreadPool::QueueDepth() {
  std::lock_guard<std::mutex> l(mu_);
  return high_queue_.size() + low_queue_.size();
}

size_t ThreadPool::QueueDepth(Lane lane) {
  std::lock_guard<std::mutex> l(mu_);
  return lane == Lane::kHigh ? high_queue_.size() : low_queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  while (true) {
    work_cv_.wait(l, [this] {
      return shutting_down_ || !high_queue_.empty() || !low_queue_.empty();
    });
    if (shutting_down_ && high_queue_.empty() && low_queue_.empty()) return;
    auto& queue = !high_queue_.empty() ? high_queue_ : low_queue_;
    std::function<void()> work = std::move(queue.front());
    queue.pop_front();
    active_++;
    l.unlock();
    work();
    l.lock();
    active_--;
    if (high_queue_.empty() && low_queue_.empty() && active_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace iamdb
