// Arena: bump allocator backing the memtable skiplist.  Nodes live exactly
// as long as the memtable, so per-object deallocation is unnecessary and a
// bump pointer removes malloc from the write hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace iamdb {

class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes);
  char* AllocateAligned(size_t bytes);

  // Approximate total memory footprint, readable concurrently with
  // allocation (used for memtable flush decisions).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::Allocate(size_t bytes) {
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace iamdb
