// Named test hooks on the durability-critical paths (WAL append, memtable
// flush install, manifest rewrite).  A test registers a callback on a point
// — e.g. to deactivate a FaultInjectionEnv, simulating a crash at exactly
// that instruction — and the production code stays branch-free when the
// hooks are compiled out (plain Release builds; see IAMDB_SYNC_POINTS in
// the top-level CMakeLists).
//
// Naming convention: "Class::Method:Event", e.g.
// "DBImpl::Write:AfterWalAppend".  docs/TESTING.md lists every planted
// point; tests/crash_consistency_test.cc is the canonical consumer.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace iamdb {

class SyncPoint {
 public:
  static SyncPoint* Instance();

  // Callbacks only run (and hits only count) while processing is enabled.
  void EnableProcessing();
  void DisableProcessing();

  // Registers `callback` to run each time `point` is processed.  The
  // callback runs on whatever thread hits the point, outside the registry
  // lock, so it may re-enter the SyncPoint API (but must not block on work
  // that itself needs to pass the same point).
  void SetCallback(const std::string& point,
                   std::function<void(void*)> callback);
  void ClearCallback(const std::string& point);

  // Clears every callback and hit counter and disables processing.
  void Reset();

  // Times `point` was processed since the last Reset (while enabled).
  uint64_t HitCount(const std::string& point) const;

  // Called by the IAMDB_SYNC_POINT macro; not for direct use.
  void Process(const char* point, void* arg = nullptr);

 private:
  SyncPoint() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::function<void(void*)>, std::less<>> callbacks_;
  std::map<std::string, uint64_t, std::less<>> hits_;
};

}  // namespace iamdb

#ifdef IAMDB_SYNC_POINTS
#define IAMDB_SYNC_POINT(name) ::iamdb::SyncPoint::Instance()->Process(name)
#define IAMDB_SYNC_POINT_ARG(name, arg) \
  ::iamdb::SyncPoint::Instance()->Process(name, arg)
#else
#define IAMDB_SYNC_POINT(name) \
  do {                         \
  } while (0)
#define IAMDB_SYNC_POINT_ARG(name, arg) \
  do {                                  \
  } while (0)
#endif
