#include "util/crc32c.h"

#include <array>

namespace iamdb::crc32c {

namespace {

// Table-driven software CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
// Four-table slicing keeps it fast enough for block-sized payloads without
// requiring SSE4.2.
struct Tables {
  uint32_t t[4][256];

  constexpr Tables() : t{} {
    constexpr uint32_t poly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

constexpr Tables kTables{};

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  uint32_t crc = ~init_crc;
  // Process 4 bytes at a time.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n--) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace iamdb::crc32c
