// CRC32C (Castagnoli) checksums guard every WAL record, table block and
// manifest entry against torn writes and bit rot.
#pragma once

#include <cstddef>
#include <cstdint>

namespace iamdb::crc32c {

// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the
// crc32c of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

// Checksums stored on disk are masked so that computing the CRC of a string
// that embeds its own CRC does not degenerate.
static constexpr uint32_t kMaskDelta = 0xa282ead8ul;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace iamdb::crc32c
