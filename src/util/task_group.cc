#include "util/task_group.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace iamdb {

namespace {

struct GroupState {
  std::vector<std::function<Status()>> tasks;
  std::vector<Status> results;
  std::atomic<size_t> next{0};

  std::mutex mu;
  std::condition_variable cv;
  size_t finished = 0;

  // Claims and runs tasks until the claim index runs out.
  void Drain() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      Status s = tasks[i]();
      std::lock_guard<std::mutex> l(mu);
      results[i] = std::move(s);
      finished++;
      if (finished == tasks.size()) cv.notify_all();
    }
  }
};

}  // namespace

Status TaskGroup::RunAll(ThreadPool* pool, ThreadPool::Lane lane,
                         std::vector<std::function<Status()>> tasks) {
  if (tasks.empty()) return Status::OK();
  if (tasks.size() == 1) return tasks[0]();

  auto state = std::make_shared<GroupState>();
  state->results.resize(tasks.size());
  state->tasks = std::move(tasks);

  // Helpers are best-effort: a full or shutting-down pool just means the
  // caller runs more of the tasks itself.
  const size_t helpers = state->tasks.size() - 1;
  for (size_t i = 0; i < helpers; i++) {
    if (!pool->Schedule(lane, [state] { state->Drain(); })) break;
  }
  state->Drain();

  // Wait for helper-claimed tasks.  Helpers hold only a shared_ptr to the
  // state, so the group outlives any helper still inside Drain().
  {
    std::unique_lock<std::mutex> l(state->mu);
    state->cv.wait(l, [&] { return state->finished == state->tasks.size(); });
  }
  for (Status& s : state->results) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

}  // namespace iamdb
