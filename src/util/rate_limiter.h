// Token-bucket pacing for background (compaction/flush) I/O, so a burst of
// merge traffic cannot saturate the device and starve foreground reads —
// the stall mechanism Luo & Carey identify in un-paced LSM compaction.
//
// Bytes are charged *before* the I/O they pace.  Two priorities: kHigh
// (flush I/O — the write path stalls behind it) is served before kLow
// (merge I/O); a low-priority waiter yields while any high-priority
// request is waiting, so pacing never converts a merge into a flush stall.
//
// Locking: the limiter's internal mutex is a leaf lock.  Request() blocks,
// so it must only be called from unlocked I/O sections — never with the DB
// mutex (or any other lock) held.  Table builders/readers call it from
// exactly such sections.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace iamdb {

class RateLimiter {
 public:
  enum class IoPriority { kHigh, kLow };

  // bytes_per_second == 0 disables pacing (every Request returns
  // immediately).
  explicit RateLimiter(uint64_t bytes_per_second);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  // Blocks until `bytes` of budget is available at the calling thread's
  // current priority (see ScopedPriority), then consumes it.
  void Request(uint64_t bytes);

  uint64_t bytes_per_second() const { return bytes_per_second_; }
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_wait_micros() const {
    return total_wait_micros_.load(std::memory_order_relaxed);
  }

  // The priority Request() charges at, carried thread-locally so the table
  // layer needs no plumbing: flush executors enter a kHigh scope, and every
  // builder/reader call under them is paced as flush I/O.  Default: kLow.
  static IoPriority ThreadPriority();

  class ScopedPriority {
   public:
    explicit ScopedPriority(IoPriority priority);
    ~ScopedPriority();

    ScopedPriority(const ScopedPriority&) = delete;
    ScopedPriority& operator=(const ScopedPriority&) = delete;

   private:
    IoPriority saved_;
  };

 private:
  void RequestChunk(uint64_t bytes, IoPriority priority);
  void Refill(uint64_t now_micros);

  const uint64_t bytes_per_second_;
  const uint64_t burst_bytes_;  // bucket capacity (one refill quantum)

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t available_ = 0;
  uint64_t last_refill_micros_ = 0;
  int high_waiters_ = 0;

  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> total_wait_micros_{0};
};

}  // namespace iamdb
