// Token-bucket pacing for background (compaction/flush) I/O, so a burst of
// merge traffic cannot saturate the device and starve foreground reads —
// the stall mechanism Luo & Carey identify in un-paced LSM compaction.
//
// Bytes are charged *before* the I/O they pace.  Two priorities: kHigh
// (flush I/O — the write path stalls behind it) is served before kLow
// (merge I/O); a low-priority waiter yields while any high-priority
// request is waiting, so pacing never converts a merge into a flush stall.
//
// The rate is dynamic: SetBytesPerSecond() retunes the bucket while
// requests are in flight (the CompactionPacer uses this to track ingest),
// and setting 0 drains all waiters and disables pacing.
//
// Locking: the limiter's internal mutex is a leaf lock.  Request() blocks,
// so it must only be called from unlocked I/O sections — never with the DB
// mutex (or any other lock) held.  SetBytesPerSecond() never blocks, so it
// *may* be called with the DB mutex held.  Table builders/readers call
// Request() from exactly such unlocked sections.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace iamdb {

// Time source for the limiter.  Owning the wait as well as the clock is
// what makes pacing testable: a simulated clock advances its own time in
// WaitFor() and returns immediately, so unit tests never sleep.
class RateClock {
 public:
  virtual ~RateClock() = default;

  virtual uint64_t NowMicros() = 0;

  // Block the calling thread for up to `micros` (or until notified).  The
  // caller holds `lock` and re-checks its predicate on return.
  virtual void WaitFor(std::condition_variable& cv,
                       std::unique_lock<std::mutex>& lock,
                       uint64_t micros) = 0;

  // Process-wide steady_clock-backed default.
  static RateClock* Default();
};

class RateLimiter {
 public:
  enum class IoPriority { kHigh, kLow };

  // bytes_per_second == 0 disables pacing (every Request returns
  // immediately).  `clock` defaults to the steady-clock RateClock; tests
  // inject a simulated one.
  explicit RateLimiter(uint64_t bytes_per_second,
                       RateClock* clock = RateClock::Default());

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  // Blocks until `bytes` of budget is available at the calling thread's
  // current priority (see ScopedPriority), then consumes it.
  void Request(uint64_t bytes);

  // Retunes the bucket.  Budget already accrued is kept (clamped to the
  // new burst size) and waiters re-evaluate at the new rate; 0 releases
  // every waiter and disables pacing.  Non-blocking.
  void SetBytesPerSecond(uint64_t bytes_per_second);

  uint64_t bytes_per_second() const {
    return bytes_per_second_.load(std::memory_order_relaxed);
  }
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  // Sum of per-thread wait time.  With N threads blocked concurrently this
  // advances N micros per elapsed micro, so it can exceed run time; use
  // total_paced_wall_micros() for "how long was the limiter the
  // bottleneck".
  uint64_t total_wait_micros() const {
    return total_wait_micros_.load(std::memory_order_relaxed);
  }
  // Wall-clock time during which at least one thread sat blocked in the
  // limiter (concurrent waits counted once).
  uint64_t total_paced_wall_micros() const {
    return total_paced_wall_micros_.load(std::memory_order_relaxed);
  }

  // The priority Request() charges at, carried thread-locally so the table
  // layer needs no plumbing: flush executors enter a kHigh scope, and every
  // builder/reader call under them is paced as flush I/O.  Default: kLow.
  static IoPriority ThreadPriority();

  class ScopedPriority {
   public:
    explicit ScopedPriority(IoPriority priority);
    ~ScopedPriority();

    ScopedPriority(const ScopedPriority&) = delete;
    ScopedPriority& operator=(const ScopedPriority&) = delete;

   private:
    IoPriority saved_;
  };

 private:
  static uint64_t BurstFor(uint64_t bytes_per_second);

  void RequestChunk(uint64_t bytes, IoPriority priority);
  void Refill(uint64_t now_micros);

  RateClock* const clock_;

  // Written under mu_, read lock-free by Request()'s chunking loop and the
  // stats path.
  std::atomic<uint64_t> bytes_per_second_;
  std::atomic<uint64_t> burst_bytes_;  // bucket capacity (one refill quantum)

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t available_ = 0;
  uint64_t last_refill_micros_ = 0;
  int high_waiters_ = 0;
  int waiters_ = 0;  // threads currently blocked
  // Paced-wall time up to this instant has been flushed into the gauge;
  // meaningful only while waiters_ > 0 (reset on each 0 -> 1 transition).
  uint64_t paced_cursor_micros_ = 0;

  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> total_wait_micros_{0};
  std::atomic<uint64_t> total_paced_wall_micros_{0};
};

}  // namespace iamdb
