// PublishedPtr<T>: a single-writer-at-a-time, many-reader published pointer
// with epoch-based reclamation — the publication primitive behind the
// lock-free read path (DBImpl's ReadView, the engines' TreeVersion).
//
// Why not std::atomic<std::shared_ptr<T>>?  libstdc++'s _Sp_atomic guards
// its raw pointer with an embedded lock bit but releases the reader side
// with memory_order_relaxed, so the reader's pointer load and the writer's
// swap are not ordered by happens-before in the formal model — correct on
// real hardware, but ThreadSanitizer (rightly) reports it, and our TSAN CI
// job is the regression guard for exactly this protocol.  It also takes a
// refcount RMW on a shared cache line per load; the guard-based fast path
// here takes none.
//
// Protocol (classic two-bank epoch reclamation, as in userspace-RCU):
//   * Readers enter a per-thread slot's counter for the current epoch's
//     bank, re-check the epoch (retrying if a flip raced them), read the
//     raw pointer, and leave the bank when the guard drops.  Wait-free in
//     the absence of concurrent flips; never blocks on writers.
//   * The writer (callers must serialize stores — in this codebase every
//     Store happens under the DB mutex) swaps the pointer, pushes the old
//     value onto a retired list, flips the epoch, and frees a retired
//     pointer only once EACH bank has been observed drained at some moment
//     after that pointer was retired.  Any reader that could still hold
//     the pointer entered its bank before the retirement, so two observed
//     drains prove no holder remains; readers entering later can only load
//     the newer pointer (the swap precedes the retirement).
//   The seq_cst fence pairing: the writer flips (seq_cst RMW) then reads
//   the counters; a reader increments (seq_cst RMW) then re-reads the
//   epoch.  In the single total order of seq_cst operations either the
//   writer sees the increment (and keeps the pointer), or the reader sees
//   the flip (and retries into the new bank).
//
// Reclamation is deferred, not blocking: an unlucky sample of a transient
// reader keeps a retired pointer one more round; it is freed by a later
// Store or the destructor.  The destructor requires all readers gone.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace iamdb {

template <typename T>
class PublishedPtr {
 public:
  explicit PublishedPtr(std::shared_ptr<T> initial = nullptr)
      : ptr_(new std::shared_ptr<T>(std::move(initial))) {}

  PublishedPtr(const PublishedPtr&) = delete;
  PublishedPtr& operator=(const PublishedPtr&) = delete;

  // REQUIRES: no live ReadGuard and no concurrent calls.
  ~PublishedPtr() {
    delete ptr_.load(std::memory_order_relaxed);
    for (Retired& r : retired_) delete r.ptr;
  }

  // RAII epoch membership: the pointee is guaranteed alive while the guard
  // lives.  Keep guards short (one operation) — a held guard delays
  // reclamation of every pointer retired after it was acquired.
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : value_(other.value_), bank_(other.bank_) {
      other.bank_ = nullptr;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;

    ~ReadGuard() {
      if (bank_ != nullptr) bank_->fetch_sub(1, std::memory_order_release);
    }

    T* get() const { return value_; }
    T* operator->() const { return value_; }
    T& operator*() const { return *value_; }

   private:
    friend class PublishedPtr;
    ReadGuard(T* value, std::atomic<uint64_t>* bank)
        : value_(value), bank_(bank) {}

    T* value_;
    std::atomic<uint64_t>* bank_;
  };

  // Lock-free fast path: no refcount traffic, two counter RMWs total.
  ReadGuard Acquire() const {
    Slot& slot = slots_[ThreadSlotIndex()];
    for (;;) {
      const uint64_t e = epoch_.load(std::memory_order_seq_cst);
      std::atomic<uint64_t>& bank = slot.count[e & 1];
      bank.fetch_add(1, std::memory_order_seq_cst);
      if (epoch_.load(std::memory_order_seq_cst) == e) {
        return ReadGuard(ptr_.load(std::memory_order_acquire)->get(), &bank);
      }
      // A flip raced us into the stale bank; bounce to the new one.
      bank.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  // A real shared_ptr for callers that pin the value beyond one operation
  // (iterators, stats, manifest writing).
  std::shared_ptr<T> Snapshot() const {
    ReadGuard guard = Acquire();
    // The heap shared_ptr object is immutable after publication and cannot
    // be reclaimed while the guard is held; copying bumps the refcount.
    return *ptr_.load(std::memory_order_acquire);
  }

  // Publication counter for optimistic read validation.  Bumped BEFORE the
  // pointer swap in Store(): a reader that observes a new pointer is
  // therefore guaranteed to observe the bump on its next stamp() load (the
  // bump is sequenced before the release exchange the reader's acquire
  // load synchronized with).  An unchanged stamp across a read brackets
  // the read to pointers published before the first sample.
  uint64_t stamp() const { return stamp_.load(std::memory_order_acquire); }

  // REQUIRES: stores are serialized by the caller (DB mutex).  Readers are
  // never blocked; old values are reclaimed once provably unreferenced.
  void Store(std::shared_ptr<T> desired) {
    stamp_.fetch_add(1, std::memory_order_release);
    auto* fresh = new std::shared_ptr<T>(std::move(desired));
    std::shared_ptr<T>* old =
        ptr_.exchange(fresh, std::memory_order_acq_rel);
    retired_.push_back(Retired{old, 0});
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    Collect();
  }

  // Retired pointers awaiting proof of quiescence (diagnostics/tests).
  size_t retired_count() const { return retired_.size(); }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> count[2] = {{0}, {0}};
  };
  static constexpr int kSlots = 16;

  struct Retired {
    std::shared_ptr<T>* ptr;
    unsigned drained_banks;  // bitmask of banks observed empty since retire
  };

  static size_t ThreadSlotIndex() {
    static std::atomic<size_t> next{0};
    thread_local const size_t assigned =
        next.fetch_add(1, std::memory_order_relaxed);
    return assigned & (kSlots - 1);
  }

  // Caller serialized (same contract as Store).
  void Collect() {
    unsigned drained = 0;
    for (int b = 0; b < 2; b++) {
      uint64_t readers = 0;
      for (const Slot& slot : slots_) {
        readers += slot.count[b].load(std::memory_order_seq_cst);
      }
      if (readers == 0) drained |= 1u << b;
    }
    if (drained == 0) return;
    size_t kept = 0;
    for (Retired& r : retired_) {
      r.drained_banks |= drained;
      if (r.drained_banks == 0b11) {
        delete r.ptr;
      } else {
        retired_[kept++] = r;
      }
    }
    retired_.resize(kept);
  }

  std::atomic<std::shared_ptr<T>*> ptr_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> stamp_{0};
  mutable Slot slots_[kSlots];
  std::vector<Retired> retired_;  // writer-side only (serialized)
};

}  // namespace iamdb
