// Fixed-size worker pool running background flushes and compactions.
// The paper's IamDB supports parallel background compaction (like RocksDB);
// the pool size is the "-nt" knob in the evaluation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iamdb {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue work; runs on some worker thread.  Safe from any thread,
  // including from within a task.  Returns true if the work was accepted;
  // false — a defined no-op, the work is dropped — when the pool is
  // already shutting down (e.g. a server drain racing pool destruction).
  // Callers that must not lose work check the result and run inline.
  [[nodiscard]] bool Schedule(std::function<void()> work);

  // Block until the queue is empty and all workers are idle.  New work
  // scheduled by running tasks is waited for too.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }
  size_t QueueDepth();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace iamdb
