// Fixed-size worker pool running background flushes and compactions.
// The paper's IamDB supports parallel background compaction (like RocksDB);
// the pool size is the "-nt" knob in the evaluation.
//
// Two priority lanes: kHigh work (immutable-memtable flushes — the jobs the
// write path hard-stalls on) is always dequeued before kLow work (merges,
// subcompaction shards).  A queued merge therefore never delays a flush by
// more than the one task each worker is already running.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iamdb {

class ThreadPool {
 public:
  enum class Lane { kHigh, kLow };

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue work; runs on some worker thread.  Safe from any thread,
  // including from within a task.  Returns true if the work was accepted;
  // false — a defined no-op, the work is dropped — when the pool is
  // already shutting down (e.g. a server drain racing pool destruction).
  // Callers that must not lose work check the result and run inline.
  // The single-argument form enqueues on the low lane.
  [[nodiscard]] bool Schedule(std::function<void()> work) {
    return Schedule(Lane::kLow, std::move(work));
  }
  [[nodiscard]] bool Schedule(Lane lane, std::function<void()> work);

  // Block until both queues are empty and all workers are idle.  New work
  // scheduled by running tasks is waited for too.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }
  size_t QueueDepth();            // both lanes
  size_t QueueDepth(Lane lane);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> high_queue_;
  std::deque<std::function<void()>> low_queue_;
  int active_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace iamdb
