// Binary encoding primitives: little-endian fixed-width integers and
// varints, plus length-prefixed slices.  Everything on disk goes through
// these helpers so the format is platform independent.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace iamdb {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Parsers advance *input past the consumed bytes; return false on underflow
// or malformed varint.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

// Low-level variants on raw buffers.
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);
char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

int VarintLength(uint64_t v);

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  std::memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  std::memcpy(&result, ptr, sizeof(result));
  return result;
}

}  // namespace iamdb
