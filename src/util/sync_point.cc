#include "util/sync_point.h"

namespace iamdb {

SyncPoint* SyncPoint::Instance() {
  static SyncPoint instance;
  return &instance;
}

void SyncPoint::EnableProcessing() {
  enabled_.store(true, std::memory_order_release);
}

void SyncPoint::DisableProcessing() {
  enabled_.store(false, std::memory_order_release);
}

void SyncPoint::SetCallback(const std::string& point,
                            std::function<void(void*)> callback) {
  std::lock_guard<std::mutex> l(mu_);
  callbacks_[point] = std::move(callback);
}

void SyncPoint::ClearCallback(const std::string& point) {
  std::lock_guard<std::mutex> l(mu_);
  callbacks_.erase(point);
}

void SyncPoint::Reset() {
  DisableProcessing();
  std::lock_guard<std::mutex> l(mu_);
  callbacks_.clear();
  hits_.clear();
}

uint64_t SyncPoint::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

void SyncPoint::Process(const char* point, void* arg) {
  if (!enabled_.load(std::memory_order_acquire)) return;
  std::function<void(void*)> callback;
  {
    std::lock_guard<std::mutex> l(mu_);
    hits_[point]++;
    auto it = callbacks_.find(std::string_view(point));
    if (it != callbacks_.end()) callback = it->second;
  }
  // Run outside the lock so the callback can use the SyncPoint API.
  if (callback) callback(arg);
}

}  // namespace iamdb
