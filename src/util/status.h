// Status: result type for every fallible operation.  Success is represented
// without allocation; errors carry a code and a message.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "util/slice.h"

namespace iamdb {

class Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kBusy, msg, msg2);
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == kNotFound; }
  bool IsCorruption() const { return code() == kCorruption; }
  bool IsIOError() const { return code() == kIOError; }
  bool IsNotSupported() const { return code() == kNotSupported; }
  bool IsInvalidArgument() const { return code() == kInvalidArgument; }
  bool IsBusy() const { return code() == kBusy; }

  std::string ToString() const;

  // The bare message, without the code prefix ToString() adds (empty for
  // OK).  Used where the code travels separately, e.g. the wire protocol.
  std::string message() const { return rep_ == nullptr ? "" : rep_->msg; }

 private:
  enum Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
  };

  struct Rep {
    Code code;
    std::string msg;
  };

  Status(Code code, const Slice& msg, const Slice& msg2) {
    std::string m = msg.ToString();
    if (!msg2.empty()) {
      m.append(": ");
      m.append(msg2.data(), msg2.size());
    }
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(m)});
  }

  Code code() const { return rep_ == nullptr ? kOk : rep_->code; }

  // shared_ptr keeps Status copyable and cheap to pass; errors are rare.
  std::shared_ptr<const Rep> rep_;
};

inline std::string Status::ToString() const {
  if (rep_ == nullptr) return "OK";
  const char* type;
  switch (rep_->code) {
    case kOk: type = "OK"; break;
    case kNotFound: type = "NotFound: "; break;
    case kCorruption: type = "Corruption: "; break;
    case kNotSupported: type = "Not implemented: "; break;
    case kInvalidArgument: type = "Invalid argument: "; break;
    case kIOError: type = "IO error: "; break;
    case kBusy: type = "Busy: "; break;
    default: type = "Unknown: "; break;
  }
  return std::string(type) + rep_->msg;
}

}  // namespace iamdb
