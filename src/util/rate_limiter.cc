#include "util/rate_limiter.h"

#include <algorithm>
#include <chrono>

namespace iamdb {

namespace {

class SteadyRateClock : public RateClock {
 public:
  uint64_t NowMicros() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void WaitFor(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
               uint64_t micros) override {
    cv.wait_for(lock, std::chrono::microseconds(micros));
  }
};

thread_local RateLimiter::IoPriority tls_priority =
    RateLimiter::IoPriority::kLow;

}  // namespace

RateClock* RateClock::Default() {
  static SteadyRateClock clock;
  return &clock;
}

RateLimiter::IoPriority RateLimiter::ThreadPriority() { return tls_priority; }

RateLimiter::ScopedPriority::ScopedPriority(IoPriority priority)
    : saved_(tls_priority) {
  tls_priority = priority;
}

RateLimiter::ScopedPriority::~ScopedPriority() { tls_priority = saved_; }

// 100ms worth of budget; large enough that block-sized requests don't wake
// per block at realistic rates, small enough to bound bursts.
uint64_t RateLimiter::BurstFor(uint64_t bytes_per_second) {
  return std::max<uint64_t>(bytes_per_second / 10, 64 << 10);
}

RateLimiter::RateLimiter(uint64_t bytes_per_second, RateClock* clock)
    : clock_(clock),
      bytes_per_second_(bytes_per_second),
      burst_bytes_(BurstFor(bytes_per_second)),
      last_refill_micros_(clock->NowMicros()) {}

void RateLimiter::Refill(uint64_t now_micros) {
  if (now_micros <= last_refill_micros_) return;
  uint64_t elapsed = now_micros - last_refill_micros_;
  uint64_t add =
      elapsed * bytes_per_second_.load(std::memory_order_relaxed) / 1000000;
  if (add == 0) return;  // keep the remainder accruing
  available_ =
      std::min(available_ + add, burst_bytes_.load(std::memory_order_relaxed));
  last_refill_micros_ = now_micros;
}

void RateLimiter::SetBytesPerSecond(uint64_t bytes_per_second) {
  std::lock_guard<std::mutex> l(mu_);
  // Settle accrued budget at the old rate before the new one takes effect,
  // so a retune never back-dates cheap or expensive credit.
  Refill(clock_->NowMicros());
  bytes_per_second_.store(bytes_per_second, std::memory_order_relaxed);
  const uint64_t burst = BurstFor(bytes_per_second);
  burst_bytes_.store(burst, std::memory_order_relaxed);
  available_ = std::min(available_, burst);
  cv_.notify_all();  // waiters re-evaluate (and drain entirely on rate 0)
}

void RateLimiter::Request(uint64_t bytes) {
  if (bytes_per_second() == 0 || bytes == 0) return;
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const IoPriority priority = tls_priority;
  // Requests larger than the bucket are charged in bucket-sized chunks so
  // one huge write cannot monopolize (or deadlock on) the budget.
  while (bytes > 0) {
    uint64_t chunk =
        std::min(bytes, burst_bytes_.load(std::memory_order_relaxed));
    RequestChunk(chunk, priority);
    bytes -= chunk;
  }
}

void RateLimiter::RequestChunk(uint64_t bytes, IoPriority priority) {
  std::unique_lock<std::mutex> l(mu_);
  const uint64_t start = clock_->NowMicros();
  Refill(start);
  if (priority == IoPriority::kHigh) high_waiters_++;
  bool waited = false;
  while (true) {
    const uint64_t rate = bytes_per_second_.load(std::memory_order_relaxed);
    if (rate == 0) break;  // retuned to unpaced mid-wait: grant for free
    // A retune may have shrunk the bucket below this chunk; clamp so the
    // chunk stays satisfiable.
    bytes = std::min(bytes, burst_bytes_.load(std::memory_order_relaxed));
    if (available_ >= bytes &&
        (priority == IoPriority::kHigh || high_waiters_ == 0)) {
      available_ -= bytes;
      break;
    }
    if (!waited) {
      waited = true;
      if (waiters_++ == 0) paced_cursor_micros_ = start;
    }
    // Sleep roughly until the deficit refills; re-check on wake.  Waking a
    // touch early just loops; late just means coarser pacing.
    uint64_t deficit = available_ < bytes ? bytes - available_ : bytes;
    uint64_t wait_us = std::max<uint64_t>(deficit * 1000000 / rate, 100);
    clock_->WaitFor(cv_, l, wait_us);
    const uint64_t awake = clock_->NowMicros();
    // Flush the elapsed paced-wall slice on every wake, not just when the
    // last waiter leaves: the pacer reads this gauge mid-saturation to
    // detect that the limiter is the bottleneck, so it must keep advancing
    // while threads stay blocked.  The cursor is shared (under mu_), so
    // overlapping waits are still counted once.
    if (awake > paced_cursor_micros_) {
      total_paced_wall_micros_.fetch_add(awake - paced_cursor_micros_,
                                         std::memory_order_relaxed);
      paced_cursor_micros_ = awake;
    }
    Refill(awake);
  }
  if (priority == IoPriority::kHigh) {
    high_waiters_--;
    if (high_waiters_ == 0) cv_.notify_all();  // release yielding low waiters
  }
  if (waited) {
    const uint64_t now = clock_->NowMicros();
    total_wait_micros_.fetch_add(now - start, std::memory_order_relaxed);
    if (now > paced_cursor_micros_) {
      total_paced_wall_micros_.fetch_add(now - paced_cursor_micros_,
                                         std::memory_order_relaxed);
      paced_cursor_micros_ = now;
    }
    --waiters_;
  }
}

}  // namespace iamdb
