#include "util/rate_limiter.h"

#include <algorithm>
#include <chrono>

namespace iamdb {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local RateLimiter::IoPriority tls_priority =
    RateLimiter::IoPriority::kLow;

}  // namespace

RateLimiter::IoPriority RateLimiter::ThreadPriority() { return tls_priority; }

RateLimiter::ScopedPriority::ScopedPriority(IoPriority priority)
    : saved_(tls_priority) {
  tls_priority = priority;
}

RateLimiter::ScopedPriority::~ScopedPriority() { tls_priority = saved_; }

RateLimiter::RateLimiter(uint64_t bytes_per_second)
    : bytes_per_second_(bytes_per_second),
      // 100ms worth of budget; large enough that block-sized requests don't
      // wake per block at realistic rates, small enough to bound bursts.
      burst_bytes_(std::max<uint64_t>(bytes_per_second / 10, 64 << 10)),
      last_refill_micros_(NowMicros()) {}

void RateLimiter::Refill(uint64_t now_micros) {
  if (now_micros <= last_refill_micros_) return;
  uint64_t elapsed = now_micros - last_refill_micros_;
  uint64_t add = elapsed * bytes_per_second_ / 1000000;
  if (add == 0) return;  // keep the remainder accruing
  available_ = std::min(available_ + add, burst_bytes_);
  last_refill_micros_ = now_micros;
}

void RateLimiter::Request(uint64_t bytes) {
  if (bytes_per_second_ == 0 || bytes == 0) return;
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const IoPriority priority = tls_priority;
  // Requests larger than the bucket are charged in bucket-sized chunks so
  // one huge write cannot monopolize (or deadlock on) the budget.
  while (bytes > 0) {
    uint64_t chunk = std::min(bytes, burst_bytes_);
    RequestChunk(chunk, priority);
    bytes -= chunk;
  }
}

void RateLimiter::RequestChunk(uint64_t bytes, IoPriority priority) {
  std::unique_lock<std::mutex> l(mu_);
  const uint64_t start = NowMicros();
  Refill(start);
  if (priority == IoPriority::kHigh) high_waiters_++;
  bool waited = false;
  while (available_ < bytes ||
         (priority == IoPriority::kLow && high_waiters_ > 0)) {
    waited = true;
    // Sleep roughly until the deficit refills; re-check on wake.  Waking a
    // touch early just loops; late just means coarser pacing.
    uint64_t deficit = available_ < bytes ? bytes - available_ : bytes;
    uint64_t wait_us =
        std::max<uint64_t>(deficit * 1000000 / bytes_per_second_, 100);
    cv_.wait_for(l, std::chrono::microseconds(wait_us));
    Refill(NowMicros());
  }
  available_ -= bytes;
  if (priority == IoPriority::kHigh) {
    high_waiters_--;
    if (high_waiters_ == 0) cv_.notify_all();  // release yielding low waiters
  }
  if (waited) {
    total_wait_micros_.fetch_add(NowMicros() - start,
                                 std::memory_order_relaxed);
  }
}

}  // namespace iamdb
