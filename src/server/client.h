// Blocking client for the iamdb wire protocol.  Mirrors the DB API:
// Put/Get/Delete/Write/Scan plus the server-only Info and Ping calls.
//
// Threading: a Client owns one TCP connection and serializes its calls
// internally, so it is safe to share across threads but calls do not
// pipeline — for concurrency open one Client per thread (the server
// multiplexes connections onto its worker pool).
//
// Failure handling: Connect() retries with backoff per ClientOptions.  A
// call that hits a broken connection marks the client disconnected and —
// for idempotent operations (GET/SCAN/INFO/PING) — reconnects and retries
// once.  Mutations are never auto-retried: the original may have applied.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/db.h"
#include "server/wire_protocol.h"
#include "util/status.h"

namespace iamdb {

class WriteBatch;

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 4490;
  // Per-attempt connect timeout and retry schedule.
  int connect_timeout_ms = 2000;
  int connect_retries = 3;
  int retry_backoff_ms = 100;  // doubled per retry
  // Send/receive timeout per operation; 0 = block forever.
  int op_timeout_ms = 30000;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Establishes the connection (also done lazily by the first call).
  Status Connect();
  void Close();
  bool connected() const;

  Status Ping();
  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);
  // Atomic batch; the batch's contents travel in the WAL wire format.
  Status Write(const WriteBatch& batch);
  // Forward scan of [start_key, end_key) capped at `limit` entries
  // (0 = server default).  *truncated (optional) reports whether the
  // server stopped early with more data remaining.
  Status Scan(const Slice& start_key, const Slice& end_key, uint32_t limit,
              std::vector<wire::KeyValue>* entries,
              bool* truncated = nullptr);
  // Remote DbStats snapshot (INFO with empty property).
  Status GetStats(DbStats* stats);
  // Remote GetProperty; also accepts the server-side "server.stats" key.
  Status GetProperty(const Slice& property, std::string* value);

 private:
  // Sends one request and blocks for its response; handles lazy connect
  // and the single idempotent retry.  *response_payload excludes the
  // leading status (already decoded into the returned Status).
  Status Call(wire::Opcode opcode, const Slice& payload, bool idempotent,
              std::string* response_payload);
  Status CallOnce(wire::Opcode opcode, const Slice& payload,
                  std::string* response_payload);
  Status ConnectLocked();
  void CloseLocked();
  Status ReadFrame(std::string* body);

  const ClientOptions options_;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string recv_buffer_;
};

}  // namespace iamdb
