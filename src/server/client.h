// Blocking client for the iamdb wire protocol.  Mirrors the DB API:
// Put/Get/Delete/Write/Scan plus the server-only Info and Ping calls.
//
// Threading: a Client owns one TCP connection and serializes its calls
// internally, so it is safe to share across threads but blocking calls do
// not pipeline — for concurrency open one Client per thread (the server
// multiplexes connections onto its worker pool).
//
// Pipelining: the Submit*/Wait* API sends requests without waiting for
// their responses, keeping many requests in flight on the one connection.
// The server may complete them out of order; Wait() correlates responses
// by request id and buffers the ones that arrive early.  Submitted
// requests are never auto-retried.
//
// Failure handling: Connect() retries with backoff per ClientOptions.  A
// call that hits a broken connection marks the client disconnected and —
// for idempotent operations (GET/SCAN/INFO/PING) — reconnects and retries
// once.  Mutations are never auto-retried: the original may have applied.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/db.h"
#include "server/wire_protocol.h"
#include "util/status.h"

namespace iamdb {

class WriteBatch;

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 4490;
  // Per-attempt connect timeout and retry schedule.
  int connect_timeout_ms = 2000;
  int connect_retries = 3;
  int retry_backoff_ms = 100;  // doubled per retry
  // Send/receive timeout per operation; 0 = block forever.
  int op_timeout_ms = 30000;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Establishes the connection (also done lazily by the first call).
  Status Connect();
  void Close();
  bool connected() const;

  Status Ping();
  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  // Batched point reads in one round trip.  On OK, *values and *statuses
  // have one entry per key: statuses[i] is OK (values[i] holds the value)
  // or NotFound (values[i] empty).  All keys are read at one snapshot.
  Status MultiGet(const std::vector<std::string>& keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses);
  Status Delete(const Slice& key);
  // Atomic batch; the batch's contents travel in the WAL wire format.
  Status Write(const WriteBatch& batch);
  // Forward scan of [start_key, end_key) capped at `limit` entries
  // (0 = server default).  *truncated (optional) reports whether the
  // server stopped early with more data remaining.
  Status Scan(const Slice& start_key, const Slice& end_key, uint32_t limit,
              std::vector<wire::KeyValue>* entries,
              bool* truncated = nullptr);
  // Remote DbStats snapshot (INFO with empty property).
  Status GetStats(DbStats* stats);
  // Remote GetProperty; also accepts the server-side "server.stats" key.
  Status GetProperty(const Slice& property, std::string* value);

  // --- cluster-aware API --------------------------------------------------
  // The server exposes its shard layout as the "iamdb.shardmap" property;
  // a non-sharded server reports NotFound, which maps to 1 shard here.
  // The count is cached after the first fetch (it is fixed for the life of
  // a database, so one round trip suffices).
  Status GetShardMap(int* num_shards);

  // MGET with client-side routing: keys are grouped by owning shard
  // (shard_map.h's ShardOf — the same function the server partitions by),
  // one pipelined MGET per shard, results scattered back into key order.
  // Falls back to plain MultiGet against a 1-shard server.  Each shard's
  // sub-MGET runs at that shard's snapshot; there is no cross-shard
  // snapshot (docs/SHARDING.md).  Empty key set returns OK with empty
  // outputs without touching the network.
  Status MultiGetSharded(const std::vector<std::string>& keys,
                         std::vector<std::string>* values,
                         std::vector<Status>* statuses);

  // SCAN with client-side fan-out: one shard-scoped scan per shard,
  // pipelined, merged by key client-side.  If any shard truncated, the
  // merged result is cut at the lowest last-returned key among truncated
  // shards so it stays a correct prefix of the global range, and
  // *truncated is set.
  Status ScanSharded(const Slice& start_key, const Slice& end_key,
                     uint32_t limit, std::vector<wire::KeyValue>* entries,
                     bool* truncated = nullptr);

  // --- pipelined API ------------------------------------------------------
  // Submit* sends the request and returns its correlation id immediately
  // (0 if the send failed — the connection is closed and every request
  // still in flight is lost).  Wait* blocks until that id's response
  // arrives, buffering any other responses that arrive first; ids may be
  // waited on in any order, each exactly once.
  uint64_t SubmitPing();
  uint64_t SubmitPut(const Slice& key, const Slice& value);
  uint64_t SubmitGet(const Slice& key);
  uint64_t SubmitMultiGet(const std::vector<std::string>& keys);
  uint64_t SubmitScan(const wire::ScanRequest& req);

  // Raw wait: *response_payload (optional) receives the payload after the
  // decoded status.  If the connection died while this id was in flight
  // (peer reset, send failure on a later submit, a corrupt frame), Wait
  // fails with a distinct IOError ("connection lost with request in
  // flight") rather than hanging or reporting "not in flight".
  Status Wait(uint64_t id, std::string* response_payload = nullptr);
  // Typed waits for the common cases.
  Status WaitGet(uint64_t id, std::string* value);
  Status WaitMultiGet(uint64_t id, std::vector<wire::MultiGetEntry>* entries);
  Status WaitScan(uint64_t id, wire::ScanResponse* resp);

 private:
  // Sends one request and blocks for its response; handles lazy connect
  // and the single idempotent retry.  *response_payload excludes the
  // leading status (already decoded into the returned Status).
  Status Call(wire::Opcode opcode, const Slice& payload, bool idempotent,
              std::string* response_payload);
  Status CallOnce(wire::Opcode opcode, const Slice& payload,
                  std::string* response_payload);
  Status ConnectLocked();
  void CloseLocked();
  Status ReadFrame(std::string* body);

  uint64_t SubmitLocked(wire::Opcode opcode, const Slice& payload);
  // Decodes a buffered/arriving response body for `id`; fills
  // *response_payload with the bytes after the status.
  Status WaitLocked(uint64_t id, std::string* response_payload);

  // Fetches the shard count on first use; later calls are lock-free.
  Status EnsureShardMap(int* num_shards);

  const ClientOptions options_;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string recv_buffer_;
  // Pipelined requests awaiting a response: id -> expected opcode.
  std::map<uint64_t, wire::Opcode> inflight_;
  // Responses received while waiting for a different id: id -> body
  // payload (status + opcode-specific bytes).  Survives a disconnect.
  std::map<uint64_t, std::string> ready_;
  // Requests that were in flight when the connection died.  Waiting on one
  // of these ids reports the distinct connection-lost IOError exactly once
  // (the id is then forgotten), so pipelined callers with several
  // outstanding ids all learn their requests are gone instead of hanging
  // on a dead socket.
  std::set<uint64_t> lost_;
  // Shard count learned from the server; 0 = not fetched yet.
  std::atomic<int> shard_count_{0};
};

}  // namespace iamdb
