#include "server/wire_protocol.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace iamdb::wire {

namespace {

bool KnownOpcode(uint8_t b) {
  switch (static_cast<Opcode>(b)) {
    case Opcode::kPing:
    case Opcode::kPut:
    case Opcode::kGet:
    case Opcode::kDelete:
    case Opcode::kWrite:
    case Opcode::kScan:
    case Opcode::kInfo:
    case Opcode::kMultiGet:
    case Opcode::kError:
      return true;
  }
  return false;
}

}  // namespace

StatusCode CodeOf(const Status& s) {
  if (s.ok()) return StatusCode::kOk;
  if (s.IsNotFound()) return StatusCode::kNotFound;
  if (s.IsCorruption()) return StatusCode::kCorruption;
  if (s.IsNotSupported()) return StatusCode::kNotSupported;
  if (s.IsInvalidArgument()) return StatusCode::kInvalidArgument;
  if (s.IsBusy()) return StatusCode::kBusy;
  return StatusCode::kIOError;
}

Status MakeStatus(StatusCode code, const Slice& msg) {
  switch (code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kNotFound: return Status::NotFound(msg);
    case StatusCode::kCorruption: return Status::Corruption(msg);
    case StatusCode::kNotSupported: return Status::NotSupported(msg);
    case StatusCode::kInvalidArgument: return Status::InvalidArgument(msg);
    case StatusCode::kIOError: return Status::IOError(msg);
    case StatusCode::kBusy: return Status::Busy(msg);
  }
  return Status::Corruption("unknown wire status code");
}

// --- frame assembly -------------------------------------------------------

void BuildFrame(uint64_t request_id, Opcode opcode, const Slice& payload,
                std::string* dst) {
  std::string body;
  body.reserve(kMinBodySize + payload.size());
  PutFixed64(&body, request_id);
  body.push_back(static_cast<char>(opcode));
  body.append(payload.data(), payload.size());

  PutFixed32(dst, static_cast<uint32_t>(4 + body.size()));
  PutFixed32(dst, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  dst->append(body);
}

FrameResult DecodeFrame(const char* buf, size_t size, Slice* body,
                        size_t* consumed) {
  if (size < kFrameHeaderSize) return FrameResult::kNeedMore;
  const uint32_t len = DecodeFixed32(buf);
  if (len > kMaxFrameSize || len < 4 + kMinBodySize) {
    // A nonsense length also lands here: there is no way to resync, treat
    // as oversized/underflow and let the caller drop the connection.
    return FrameResult::kTooLarge;
  }
  if (size < 4 + static_cast<size_t>(len)) return FrameResult::kNeedMore;
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(buf + 4));
  const char* body_ptr = buf + kFrameHeaderSize;
  const size_t body_len = len - 4;
  if (crc32c::Value(body_ptr, body_len) != expected) {
    return FrameResult::kBadCrc;
  }
  *body = Slice(body_ptr, body_len);
  *consumed = 4 + static_cast<size_t>(len);
  return FrameResult::kOk;
}

bool ParseBody(const Slice& body, uint64_t* request_id, Opcode* opcode,
               Slice* payload) {
  if (body.size() < kMinBodySize) return false;
  *request_id = DecodeFixed64(body.data());
  const uint8_t op = static_cast<uint8_t>(body[8]);
  if (!KnownOpcode(op)) return false;
  *opcode = static_cast<Opcode>(op);
  *payload = Slice(body.data() + kMinBodySize, body.size() - kMinBodySize);
  return true;
}

// --- request payloads -----------------------------------------------------

void EncodePut(const Slice& key, const Slice& value, std::string* dst) {
  PutLengthPrefixedSlice(dst, key);
  PutLengthPrefixedSlice(dst, value);
}

bool DecodePut(Slice payload, Slice* key, Slice* value) {
  return GetLengthPrefixedSlice(&payload, key) &&
         GetLengthPrefixedSlice(&payload, value) && payload.empty();
}

void EncodeKey(const Slice& key, std::string* dst) {
  PutLengthPrefixedSlice(dst, key);
}

bool DecodeKey(Slice payload, Slice* key) {
  return GetLengthPrefixedSlice(&payload, key) && payload.empty();
}

void EncodeScan(const ScanRequest& req, std::string* dst) {
  PutLengthPrefixedSlice(dst, req.start_key);
  PutLengthPrefixedSlice(dst, req.end_key);
  PutVarint32(dst, req.limit);
  // Biased by one so "whole database" (-1) encodes as 0; omitted entirely
  // when -1 to stay byte-identical with pre-shard encoders.
  if (req.shard >= 0) {
    PutVarint32(dst, static_cast<uint32_t>(req.shard) + 1);
  }
}

bool DecodeScan(Slice payload, ScanRequest* req) {
  Slice start, end;
  uint32_t limit;
  if (!GetLengthPrefixedSlice(&payload, &start) ||
      !GetLengthPrefixedSlice(&payload, &end) ||
      !GetVarint32(&payload, &limit)) {
    return false;
  }
  req->shard = -1;
  if (!payload.empty()) {
    uint32_t biased;
    if (!GetVarint32(&payload, &biased) || !payload.empty()) return false;
    req->shard = static_cast<int32_t>(biased) - 1;
  }
  req->start_key = start.ToString();
  req->end_key = end.ToString();
  req->limit = limit;
  return true;
}

void EncodeInfo(const Slice& property, std::string* dst) {
  PutLengthPrefixedSlice(dst, property);
}

bool DecodeInfo(Slice payload, Slice* property) {
  return GetLengthPrefixedSlice(&payload, property) && payload.empty();
}

void EncodeMultiGet(const std::vector<std::string>& keys, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(keys.size()));
  for (const std::string& key : keys) PutLengthPrefixedSlice(dst, key);
}

bool DecodeMultiGet(Slice payload, std::vector<Slice>* keys) {
  uint32_t n;
  if (!GetVarint32(&payload, &n)) return false;
  // One varstring needs at least its length byte; a count the remaining
  // bytes cannot possibly satisfy is rejected before reserving anything.
  if (static_cast<size_t>(n) > payload.size()) return false;
  keys->clear();
  keys->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    Slice key;
    if (!GetLengthPrefixedSlice(&payload, &key)) return false;
    keys->push_back(key);
  }
  return payload.empty();
}

// --- response payloads ----------------------------------------------------

void EncodeStatus(const Status& s, std::string* dst) {
  dst->push_back(static_cast<char>(CodeOf(s)));
  std::string msg = s.message();
  PutLengthPrefixedSlice(dst, msg);
}

bool DecodeStatus(Slice* payload, Status* s) {
  if (payload->empty()) return false;
  const uint8_t code = static_cast<uint8_t>((*payload)[0]);
  if (code > static_cast<uint8_t>(StatusCode::kBusy)) return false;
  payload->remove_prefix(1);
  Slice msg;
  if (!GetLengthPrefixedSlice(payload, &msg)) return false;
  *s = MakeStatus(static_cast<StatusCode>(code), msg);
  return true;
}

void EncodeScanResponse(const ScanResponse& resp, std::string* dst) {
  dst->push_back(resp.truncated ? 1 : 0);
  PutVarint32(dst, static_cast<uint32_t>(resp.entries.size()));
  for (const auto& [key, value] : resp.entries) {
    PutLengthPrefixedSlice(dst, key);
    PutLengthPrefixedSlice(dst, value);
  }
}

bool DecodeScanResponse(Slice payload, ScanResponse* resp) {
  if (payload.empty()) return false;
  resp->truncated = payload[0] != 0;
  payload.remove_prefix(1);
  uint32_t n;
  if (!GetVarint32(&payload, &n)) return false;
  resp->entries.clear();
  resp->entries.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    Slice key, value;
    if (!GetLengthPrefixedSlice(&payload, &key) ||
        !GetLengthPrefixedSlice(&payload, &value)) {
      return false;
    }
    resp->entries.emplace_back(key.ToString(), value.ToString());
  }
  return payload.empty();
}

void EncodeMultiGetResponse(const std::vector<MultiGetEntry>& entries,
                            std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(entries.size()));
  for (const MultiGetEntry& e : entries) {
    dst->push_back(static_cast<char>(e.code));
    if (e.code == StatusCode::kOk) PutLengthPrefixedSlice(dst, e.value);
  }
}

bool DecodeMultiGetResponse(Slice payload,
                            std::vector<MultiGetEntry>* entries) {
  uint32_t n;
  if (!GetVarint32(&payload, &n)) return false;
  if (static_cast<size_t>(n) > payload.size()) return false;
  entries->clear();
  entries->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    if (payload.empty()) return false;
    const uint8_t code = static_cast<uint8_t>(payload[0]);
    if (code > static_cast<uint8_t>(StatusCode::kBusy)) return false;
    payload.remove_prefix(1);
    MultiGetEntry e;
    e.code = static_cast<StatusCode>(code);
    if (e.code == StatusCode::kOk) {
      Slice value;
      if (!GetLengthPrefixedSlice(&payload, &value)) return false;
      e.value.assign(value.data(), value.size());
    }
    entries->push_back(std::move(e));
  }
  return payload.empty();
}

// --- DbStats serialization ------------------------------------------------
// Each field is (tag varint32, length varint32, bytes); decoders skip
// unknown tags so fields can be added compatibly.

namespace {

enum StatsTag : uint32_t {
  kTagUserBytes = 1,
  kTagSpaceUsed = 2,
  kTagCacheUsage = 3,
  kTagCacheHits = 4,
  kTagCacheMisses = 5,
  kTagStallMicros = 6,
  kTagPendingDebt = 7,
  kTagMixedLevel = 8,
  kTagMixedLevelK = 9,
  kTagTotalWriteAmp = 10,      // fixed64 bit-cast of double
  kTagLevelBytes = 11,         // varint64 per level
  kTagLevelNodeCounts = 12,    // varint64 per level
  kTagLevelWriteAmp = 13,      // fixed64 bit-cast of double per level
  kTagIoBytesWritten = 14,
  kTagIoBytesRead = 15,
  kTagIoWriteOps = 16,
  kTagIoReadOps = 17,
  kTagIoFsyncs = 18,
  kTagFlushQueueDepth = 19,
  kTagCompactQueueDepth = 20,
  kTagSubcompactionsRun = 21,
  kTagRateLimiterWaitMicros = 22,
  // Serving-layer reactor counters, filled only by the server's INFO path.
  kTagServerLoopIterations = 23,
  kTagServerWritevCalls = 24,
  kTagServerResponsesWritten = 25,
  kTagServerOutputBufferHwm = 26,
  kTagServerBackpressureStalls = 27,
  kTagServerAcceptErrors = 28,
  // Adaptive compaction pacing gauges.
  kTagPacerRate = 29,
  kTagPacerIngestRate = 30,
  kTagPacerRetunes = 31,
  kTagRateLimiterPacedWallMicros = 32,
  // Per-block compression gauges (format v2).
  kTagCompressInputBytes = 33,
  kTagCompressStoredBytes = 34,
  kTagCompressColumnarBlocks = 35,
  kTagCompressLzBlocks = 36,
  kTagCompressRawFallbackBlocks = 37,
  kTagDecompressedBlocks = 38,
  kTagDecompressMicros = 39,
  kTagCompressedCacheUsage = 40,
  kTagCompressedCacheHits = 41,
  kTagCompressedCacheMisses = 42,
  // Unified memory-arbiter gauges.
  kTagArbiterBudget = 43,
  kTagArbiterWriteBytes = 44,
  kTagArbiterReadBytes = 45,
  kTagArbiterRetunes = 46,
  kTagArbiterShifts = 47,
  kTagMixedLevelRetunes = 48,
  // Batched MultiGet gauges.
  kTagMultiGetBatches = 49,
  kTagMultiGetKeys = 50,
  kTagMultiGetCoalescedReads = 51,
  kTagMultiGetCoalescedBlocks = 52,
};

static_assert(kTagMultiGetCoalescedBlocks == kMaxDbStatsTag,
              "bump wire::kMaxDbStatsTag when adding a StatsTag");

void PutField(std::string* dst, uint32_t tag, const std::string& bytes) {
  PutVarint32(dst, tag);
  PutVarint32(dst, static_cast<uint32_t>(bytes.size()));
  dst->append(bytes);
}

void PutU64Field(std::string* dst, uint32_t tag, uint64_t v) {
  std::string tmp;
  PutVarint64(&tmp, v);
  PutField(dst, tag, tmp);
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

void EncodeDbStats(const DbStats& stats, std::string* dst) {
  PutU64Field(dst, kTagUserBytes, stats.user_bytes);
  PutU64Field(dst, kTagSpaceUsed, stats.space_used_bytes);
  PutU64Field(dst, kTagCacheUsage, stats.cache_usage);
  PutU64Field(dst, kTagCacheHits, stats.cache_hits);
  PutU64Field(dst, kTagCacheMisses, stats.cache_misses);
  PutU64Field(dst, kTagStallMicros, stats.stall_micros);
  PutU64Field(dst, kTagPendingDebt, stats.pending_debt_bytes);
  PutU64Field(dst, kTagMixedLevel, static_cast<uint64_t>(stats.mixed_level));
  PutU64Field(dst, kTagMixedLevelK,
              static_cast<uint64_t>(stats.mixed_level_k));
  {
    std::string tmp;
    PutFixed64(&tmp, DoubleBits(stats.total_write_amp));
    PutField(dst, kTagTotalWriteAmp, tmp);
  }
  {
    std::string tmp;
    for (uint64_t b : stats.level_bytes) PutVarint64(&tmp, b);
    PutField(dst, kTagLevelBytes, tmp);
  }
  {
    std::string tmp;
    for (int n : stats.level_node_counts) {
      PutVarint64(&tmp, static_cast<uint64_t>(n));
    }
    PutField(dst, kTagLevelNodeCounts, tmp);
  }
  {
    std::string tmp;
    for (double w : stats.level_write_amp) PutFixed64(&tmp, DoubleBits(w));
    PutField(dst, kTagLevelWriteAmp, tmp);
  }
  PutU64Field(dst, kTagIoBytesWritten, stats.io.bytes_written);
  PutU64Field(dst, kTagIoBytesRead, stats.io.bytes_read);
  PutU64Field(dst, kTagIoWriteOps, stats.io.write_ops);
  PutU64Field(dst, kTagIoReadOps, stats.io.read_ops);
  PutU64Field(dst, kTagIoFsyncs, stats.io.fsyncs);
  PutU64Field(dst, kTagFlushQueueDepth, stats.flush_queue_depth);
  PutU64Field(dst, kTagCompactQueueDepth, stats.compact_queue_depth);
  PutU64Field(dst, kTagSubcompactionsRun, stats.subcompactions_run);
  PutU64Field(dst, kTagRateLimiterWaitMicros, stats.rate_limiter_wait_micros);
  // Pacing tags, omitted when pacing never engaged (all four zero) so an
  // unpaced snapshot keeps its historical byte layout.
  if (stats.pacer_rate_bytes_per_sec != 0 ||
      stats.pacer_ingest_bytes_per_sec != 0 || stats.pacer_retunes != 0 ||
      stats.rate_limiter_paced_wall_micros != 0) {
    PutU64Field(dst, kTagPacerRate, stats.pacer_rate_bytes_per_sec);
    PutU64Field(dst, kTagPacerIngestRate, stats.pacer_ingest_bytes_per_sec);
    PutU64Field(dst, kTagPacerRetunes, stats.pacer_retunes);
    PutU64Field(dst, kTagRateLimiterPacedWallMicros,
                stats.rate_limiter_paced_wall_micros);
  }
  // The reactor tags are omitted entirely when zero (embedded DB): old
  // decoders skip unknown tags anyway, and an embedded snapshot stays
  // byte-identical to the pre-reactor encoding.
  if (stats.server_loop_iterations != 0 || stats.server_writev_calls != 0 ||
      stats.server_responses_written != 0 ||
      stats.server_output_buffer_hwm != 0 ||
      stats.server_backpressure_stalls != 0 ||
      stats.server_accept_errors != 0) {
    PutU64Field(dst, kTagServerLoopIterations, stats.server_loop_iterations);
    PutU64Field(dst, kTagServerWritevCalls, stats.server_writev_calls);
    PutU64Field(dst, kTagServerResponsesWritten,
                stats.server_responses_written);
    PutU64Field(dst, kTagServerOutputBufferHwm,
                stats.server_output_buffer_hwm);
    PutU64Field(dst, kTagServerBackpressureStalls,
                stats.server_backpressure_stalls);
    PutU64Field(dst, kTagServerAcceptErrors, stats.server_accept_errors);
  }
  // Compression tags, omitted as a group when compression never engaged so
  // a compression-off snapshot keeps its historical byte layout.
  if (stats.compress_input_bytes != 0 || stats.compress_stored_bytes != 0 ||
      stats.compress_columnar_blocks != 0 || stats.compress_lz_blocks != 0 ||
      stats.compress_raw_fallback_blocks != 0 ||
      stats.decompressed_blocks != 0 || stats.decompress_micros != 0 ||
      stats.compressed_cache_usage != 0 || stats.compressed_cache_hits != 0 ||
      stats.compressed_cache_misses != 0) {
    PutU64Field(dst, kTagCompressInputBytes, stats.compress_input_bytes);
    PutU64Field(dst, kTagCompressStoredBytes, stats.compress_stored_bytes);
    PutU64Field(dst, kTagCompressColumnarBlocks,
                stats.compress_columnar_blocks);
    PutU64Field(dst, kTagCompressLzBlocks, stats.compress_lz_blocks);
    PutU64Field(dst, kTagCompressRawFallbackBlocks,
                stats.compress_raw_fallback_blocks);
    PutU64Field(dst, kTagDecompressedBlocks, stats.decompressed_blocks);
    PutU64Field(dst, kTagDecompressMicros, stats.decompress_micros);
    PutU64Field(dst, kTagCompressedCacheUsage, stats.compressed_cache_usage);
    PutU64Field(dst, kTagCompressedCacheHits, stats.compressed_cache_hits);
    PutU64Field(dst, kTagCompressedCacheMisses,
                stats.compressed_cache_misses);
  }
  // Arbiter tags, omitted as a group when no pooled budget was configured
  // so a fixed-sizing snapshot keeps its historical byte layout.
  if (stats.arbiter_budget_bytes != 0 || stats.arbiter_write_bytes != 0 ||
      stats.arbiter_read_bytes != 0 || stats.arbiter_retunes != 0 ||
      stats.arbiter_shifts != 0 || stats.mixed_level_retunes != 0) {
    PutU64Field(dst, kTagArbiterBudget, stats.arbiter_budget_bytes);
    PutU64Field(dst, kTagArbiterWriteBytes, stats.arbiter_write_bytes);
    PutU64Field(dst, kTagArbiterReadBytes, stats.arbiter_read_bytes);
    PutU64Field(dst, kTagArbiterRetunes, stats.arbiter_retunes);
    PutU64Field(dst, kTagArbiterShifts, stats.arbiter_shifts);
    PutU64Field(dst, kTagMixedLevelRetunes, stats.mixed_level_retunes);
  }
  // MultiGet tags, omitted as a group until the first batched read so a
  // Get-only snapshot keeps its historical byte layout.
  if (stats.multiget_batches != 0 || stats.multiget_keys != 0 ||
      stats.multiget_coalesced_reads != 0 ||
      stats.multiget_coalesced_blocks != 0) {
    PutU64Field(dst, kTagMultiGetBatches, stats.multiget_batches);
    PutU64Field(dst, kTagMultiGetKeys, stats.multiget_keys);
    PutU64Field(dst, kTagMultiGetCoalescedReads,
                stats.multiget_coalesced_reads);
    PutU64Field(dst, kTagMultiGetCoalescedBlocks,
                stats.multiget_coalesced_blocks);
  }
}

bool DecodeDbStats(Slice payload, DbStats* stats) {
  *stats = DbStats();
  while (!payload.empty()) {
    uint32_t tag, len;
    if (!GetVarint32(&payload, &tag) || !GetVarint32(&payload, &len) ||
        payload.size() < len) {
      return false;
    }
    Slice field(payload.data(), len);
    payload.remove_prefix(len);

    auto get_u64 = [&field](uint64_t* v) { return GetVarint64(&field, v); };
    uint64_t u = 0;
    switch (tag) {
      case kTagUserBytes:
        if (!get_u64(&stats->user_bytes)) return false;
        break;
      case kTagSpaceUsed:
        if (!get_u64(&stats->space_used_bytes)) return false;
        break;
      case kTagCacheUsage:
        if (!get_u64(&stats->cache_usage)) return false;
        break;
      case kTagCacheHits:
        if (!get_u64(&stats->cache_hits)) return false;
        break;
      case kTagCacheMisses:
        if (!get_u64(&stats->cache_misses)) return false;
        break;
      case kTagStallMicros:
        if (!get_u64(&stats->stall_micros)) return false;
        break;
      case kTagPendingDebt:
        if (!get_u64(&stats->pending_debt_bytes)) return false;
        break;
      case kTagMixedLevel:
        if (!get_u64(&u)) return false;
        stats->mixed_level = static_cast<int>(u);
        break;
      case kTagMixedLevelK:
        if (!get_u64(&u)) return false;
        stats->mixed_level_k = static_cast<int>(u);
        break;
      case kTagTotalWriteAmp: {
        if (field.size() != 8) return false;
        stats->total_write_amp = BitsDouble(DecodeFixed64(field.data()));
        break;
      }
      case kTagLevelBytes:
        while (!field.empty()) {
          if (!GetVarint64(&field, &u)) return false;
          stats->level_bytes.push_back(u);
        }
        break;
      case kTagLevelNodeCounts:
        while (!field.empty()) {
          if (!GetVarint64(&field, &u)) return false;
          stats->level_node_counts.push_back(static_cast<int>(u));
        }
        break;
      case kTagLevelWriteAmp:
        if (field.size() % 8 != 0) return false;
        for (size_t i = 0; i < field.size(); i += 8) {
          stats->level_write_amp.push_back(
              BitsDouble(DecodeFixed64(field.data() + i)));
        }
        break;
      case kTagIoBytesWritten:
        if (!get_u64(&stats->io.bytes_written)) return false;
        break;
      case kTagIoBytesRead:
        if (!get_u64(&stats->io.bytes_read)) return false;
        break;
      case kTagIoWriteOps:
        if (!get_u64(&stats->io.write_ops)) return false;
        break;
      case kTagIoReadOps:
        if (!get_u64(&stats->io.read_ops)) return false;
        break;
      case kTagIoFsyncs:
        if (!get_u64(&stats->io.fsyncs)) return false;
        break;
      case kTagFlushQueueDepth:
        if (!get_u64(&stats->flush_queue_depth)) return false;
        break;
      case kTagCompactQueueDepth:
        if (!get_u64(&stats->compact_queue_depth)) return false;
        break;
      case kTagSubcompactionsRun:
        if (!get_u64(&stats->subcompactions_run)) return false;
        break;
      case kTagRateLimiterWaitMicros:
        if (!get_u64(&stats->rate_limiter_wait_micros)) return false;
        break;
      case kTagServerLoopIterations:
        if (!get_u64(&stats->server_loop_iterations)) return false;
        break;
      case kTagServerWritevCalls:
        if (!get_u64(&stats->server_writev_calls)) return false;
        break;
      case kTagServerResponsesWritten:
        if (!get_u64(&stats->server_responses_written)) return false;
        break;
      case kTagServerOutputBufferHwm:
        if (!get_u64(&stats->server_output_buffer_hwm)) return false;
        break;
      case kTagServerBackpressureStalls:
        if (!get_u64(&stats->server_backpressure_stalls)) return false;
        break;
      case kTagServerAcceptErrors:
        if (!get_u64(&stats->server_accept_errors)) return false;
        break;
      case kTagPacerRate:
        if (!get_u64(&stats->pacer_rate_bytes_per_sec)) return false;
        break;
      case kTagPacerIngestRate:
        if (!get_u64(&stats->pacer_ingest_bytes_per_sec)) return false;
        break;
      case kTagPacerRetunes:
        if (!get_u64(&stats->pacer_retunes)) return false;
        break;
      case kTagRateLimiterPacedWallMicros:
        if (!get_u64(&stats->rate_limiter_paced_wall_micros)) return false;
        break;
      case kTagCompressInputBytes:
        if (!get_u64(&stats->compress_input_bytes)) return false;
        break;
      case kTagCompressStoredBytes:
        if (!get_u64(&stats->compress_stored_bytes)) return false;
        break;
      case kTagCompressColumnarBlocks:
        if (!get_u64(&stats->compress_columnar_blocks)) return false;
        break;
      case kTagCompressLzBlocks:
        if (!get_u64(&stats->compress_lz_blocks)) return false;
        break;
      case kTagCompressRawFallbackBlocks:
        if (!get_u64(&stats->compress_raw_fallback_blocks)) return false;
        break;
      case kTagDecompressedBlocks:
        if (!get_u64(&stats->decompressed_blocks)) return false;
        break;
      case kTagDecompressMicros:
        if (!get_u64(&stats->decompress_micros)) return false;
        break;
      case kTagCompressedCacheUsage:
        if (!get_u64(&stats->compressed_cache_usage)) return false;
        break;
      case kTagCompressedCacheHits:
        if (!get_u64(&stats->compressed_cache_hits)) return false;
        break;
      case kTagCompressedCacheMisses:
        if (!get_u64(&stats->compressed_cache_misses)) return false;
        break;
      case kTagArbiterBudget:
        if (!get_u64(&stats->arbiter_budget_bytes)) return false;
        break;
      case kTagArbiterWriteBytes:
        if (!get_u64(&stats->arbiter_write_bytes)) return false;
        break;
      case kTagArbiterReadBytes:
        if (!get_u64(&stats->arbiter_read_bytes)) return false;
        break;
      case kTagArbiterRetunes:
        if (!get_u64(&stats->arbiter_retunes)) return false;
        break;
      case kTagArbiterShifts:
        if (!get_u64(&stats->arbiter_shifts)) return false;
        break;
      case kTagMixedLevelRetunes:
        if (!get_u64(&stats->mixed_level_retunes)) return false;
        break;
      case kTagMultiGetBatches:
        if (!get_u64(&stats->multiget_batches)) return false;
        break;
      case kTagMultiGetKeys:
        if (!get_u64(&stats->multiget_keys)) return false;
        break;
      case kTagMultiGetCoalescedReads:
        if (!get_u64(&stats->multiget_coalesced_reads)) return false;
        break;
      case kTagMultiGetCoalescedBlocks:
        if (!get_u64(&stats->multiget_coalesced_blocks)) return false;
        break;
      default:
        break;  // forward compatibility: skip unknown field
    }
  }
  return true;
}

}  // namespace iamdb::wire
