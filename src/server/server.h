// Event-driven TCP front end exposing a DB over the wire protocol of
// wire_protocol.h.
//
// Thread model — O(shards + workers), independent of connection count:
//
//   * one acceptor thread owns the listening socket and hands accepted
//     sockets to the reactor shards round-robin;
//   * `num_shards` reactor threads each run an epoll loop over the
//     non-blocking connections they own: they decode frames, dispatch
//     request execution onto the shared two-lane ThreadPool, and write
//     responses;
//   * `num_workers` pool threads execute DB work and post each finished
//     response back to the owning shard (eventfd wakeup), where it is
//     appended to the connection's output buffer.
//
// Responses queued for one connection are flushed with a single writev()
// whenever possible, so a pipelined client pays one syscall for a whole
// batch of responses instead of one per response.  Requests from one
// connection still pipeline: up to `max_pipeline` execute concurrently
// and responses complete out of order (correlate by request_id).
//
// Backpressure: a connection whose output buffer exceeds
// `output_buffer_soft_limit` stops being read (its requests stop being
// decoded) until the peer drains; one that exceeds
// `output_buffer_hard_limit` — possible because already-dispatched
// requests keep completing while reading is paused — is disconnected.
//
// Shutdown is graceful: Stop() stops accepting, half-closes every
// connection's read side, waits for in-flight requests to finish and
// their responses to flush, then joins all threads.  Stop() is
// idempotent and a concurrent second caller blocks until the server is
// fully stopped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "server/wire_protocol.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace iamdb {

struct ServerOptions {
  // IPv4 address to bind; loopback by default (no auth on the protocol).
  std::string host = "127.0.0.1";
  // 0 picks an ephemeral port; read it back via Server::port().
  int port = 0;
  // DB work executes on this many pool threads.
  int num_workers = 4;
  // Reactor shards owning connection I/O; 0 derives a default from
  // hardware_concurrency (clamped to [1, 4]).
  int num_shards = 0;
  int backlog = 128;
  // Per-connection cap on concurrently executing requests; the shard
  // stops decoding further frames until a slot frees (backpressure).
  int max_pipeline = 128;
  // Reading from a connection pauses while its buffered responses exceed
  // the soft limit; the connection is dropped past the hard limit.
  size_t output_buffer_soft_limit = 1u << 20;
  size_t output_buffer_hard_limit = 64u << 20;
  // SO_SNDBUF for accepted sockets; 0 keeps the OS default.  Tests shrink
  // it so backpressure triggers deterministically.
  int sndbuf_bytes = 0;
  // Per-request cap on MGET fan-in.
  uint32_t max_mget_keys = 4096;
  // SCAN limit applied when the request asks for 0, and the hard cap.
  uint32_t default_scan_limit = 1000;
  uint32_t max_scan_limit = 100000;
  // SCAN responses stop adding entries past this many payload bytes
  // (marked truncated) so a frame stays well under wire::kMaxFrameSize.
  size_t max_scan_bytes = 4u << 20;
};

// Monotonic counters; sampled via GetProperty("server.stats") or the
// INFO opcode's property passthrough.  Snapshot of the server-internal
// relaxed atomics — counters are individually, not mutually, consistent.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t requests = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t writes = 0;
  uint64_t scans = 0;
  uint64_t infos = 0;
  uint64_t pings = 0;
  uint64_t mgets = 0;
  uint64_t mget_keys = 0;
  uint64_t malformed_frames = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  // Reactor observability.
  uint64_t accept_errors = 0;        // accept() failures (EMFILE backoff &c)
  uint64_t loop_iterations = 0;      // epoll_wait returns, summed over shards
  uint64_t writev_calls = 0;
  uint64_t responses_written = 0;    // frames fully flushed to a socket
  uint64_t output_buffer_hwm = 0;    // max buffered response bytes seen
  uint64_t backpressure_stalls = 0;  // reads paused on the soft limit
  uint64_t overflow_disconnects = 0; // connections dropped at the hard limit
};

class Server {
 public:
  // `db` must outlive the server and is shared with any local users; the
  // server adds no locking beyond what DB already guarantees.
  Server(DB* db, ServerOptions options);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and starts the acceptor, reactor shards and worker
  // pool.  Not restartable: one Start()/Stop() cycle per instance.
  Status Start();

  // Graceful shutdown: drain in-flight requests, flush their responses,
  // join every thread.  Idempotent; safe to call concurrently with
  // serving.  A second concurrent caller blocks until teardown completes,
  // so any caller returning from Stop() observes a fully stopped server.
  void Stop();

  // Port actually bound (differs from options.port when that was 0).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

  // Textual counters summary (the "server.stats" property body).
  std::string StatsString() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Connection;
  struct Shard;
  struct AtomicStats;

  enum class State { kIdle, kRunning, kStopping, kStopped };

  void AcceptLoop();
  void ShardLoop(Shard* shard);

  // Runs on a pool worker (or inline during teardown): executes the
  // request against the DB, builds the complete response frame, posts it
  // to the owning shard.
  void ExecuteRequest(const std::shared_ptr<Connection>& conn,
                      uint64_t request_id, wire::Opcode op,
                      const std::string& payload);

  // Shard-loop helpers; all run on the owning shard's thread.
  void AddConnection(Shard* shard, int fd);
  void HandleReadable(Shard* shard, const std::shared_ptr<Connection>& conn);
  void ProcessInput(Shard* shard, const std::shared_ptr<Connection>& conn);
  void QueueResponse(Shard* shard, Connection* conn, std::string frame);
  void FlushOutput(Shard* shard, Connection* conn);
  void UpdateInterest(Shard* shard, Connection* conn);
  void MaybeResume(Shard* shard, const std::shared_ptr<Connection>& conn);
  void MaybeFinish(Shard* shard, Connection* conn);
  void CloseConnection(Shard* shard, Connection* conn);

  void DoGet(const Slice& payload, std::string* out);
  void DoMultiGet(const Slice& payload, std::string* out);
  void DoPut(const Slice& payload, std::string* out);
  void DoDelete(const Slice& payload, std::string* out);
  void DoWrite(const Slice& payload, std::string* out);
  void DoScan(const Slice& payload, std::string* out);
  void DoInfo(const Slice& payload, std::string* out);

  DB* const db_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Start/Stop lifecycle; guards `state_` only (the serving hot path
  // never touches it).
  mutable std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  State state_ = State::kIdle;

  std::unique_ptr<AtomicStats> stats_;
};

}  // namespace iamdb
