// Multi-threaded TCP front end exposing a DB over the wire protocol of
// wire_protocol.h.  One acceptor thread owns the listening socket; each
// connection gets a lightweight reader thread that decodes frames and
// dispatches request execution onto a shared ThreadPool, so requests from
// one connection are pipelined: up to `max_pipeline` of them execute
// concurrently and responses are written back as they finish (correlated
// by request_id, possibly out of order).
//
// Shutdown is graceful: Stop() stops accepting, half-closes every
// connection's read side, waits for in-flight requests to finish and their
// responses to flush, then joins all threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "server/wire_protocol.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace iamdb {

struct ServerOptions {
  // IPv4 address to bind; loopback by default (no auth on the protocol).
  std::string host = "127.0.0.1";
  // 0 picks an ephemeral port; read it back via Server::port().
  int port = 0;
  int num_workers = 4;
  int backlog = 128;
  // Per-connection cap on concurrently executing requests; the reader
  // stops decoding further frames until a slot frees (backpressure).
  int max_pipeline = 128;
  // SCAN limit applied when the request asks for 0, and the hard cap.
  uint32_t default_scan_limit = 1000;
  uint32_t max_scan_limit = 100000;
  // SCAN responses stop adding entries past this many payload bytes
  // (marked truncated) so a frame stays well under wire::kMaxFrameSize.
  size_t max_scan_bytes = 4u << 20;
};

// Monotonic counters; sampled via GetProperty("server.stats") or the
// INFO opcode's property passthrough.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t requests = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t writes = 0;
  uint64_t scans = 0;
  uint64_t infos = 0;
  uint64_t pings = 0;
  uint64_t malformed_frames = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
};

class Server {
 public:
  // `db` must outlive the server and is shared with any local users; the
  // server adds no locking beyond what DB already guarantees.
  Server(DB* db, ServerOptions options);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and starts the acceptor + worker pool.  Not restartable:
  // one Start()/Stop() cycle per instance.
  Status Start();

  // Graceful shutdown: drain in-flight requests, flush their responses,
  // join every thread.  Idempotent; safe to call concurrently with serving.
  void Stop();

  // Port actually bound (differs from options.port when that was 0).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

  // Textual counters summary (the "server.stats" property body).
  std::string StatsString() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ReadLoop(Connection* conn);
  void HandleRequest(Connection* conn, uint64_t request_id, wire::Opcode op,
                     const std::string& payload);
  void SendResponse(Connection* conn, uint64_t request_id, wire::Opcode op,
                    const Slice& payload);
  void ReapFinishedConnections();  // conn_mu_ held

  void DoGet(const Slice& payload, std::string* out);
  void DoPut(const Slice& payload, std::string* out);
  void DoDelete(const Slice& payload, std::string* out);
  void DoWrite(const Slice& payload, std::string* out);
  void DoScan(const Slice& payload, std::string* out);
  void DoInfo(const Slice& payload, std::string* out);

  DB* const db_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace iamdb
