// Length-prefixed binary wire protocol spoken between iamdb_server and its
// clients (see docs/PROTOCOL.md for the normative spec).
//
// Frame layout (all integers little-endian, via util/coding.h):
//
//   len   (fixed32)  byte count of everything after this field (crc + body)
//   crc   (fixed32)  masked CRC32C of the body (util/crc32c.h masking)
//   body:
//     request_id (fixed64)  client-chosen correlation id, echoed verbatim
//     opcode     (1 byte)   Opcode below
//     payload    (...)      opcode-specific, varint/length-prefixed
//
// Requests and responses share the frame; a response echoes the request's
// id and opcode and prefixes its payload with a status (code + message).
// Responses to pipelined requests may arrive out of order — correlate by
// request_id.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/db.h"
#include "util/slice.h"
#include "util/status.h"

namespace iamdb::wire {

// Frame header: len (fixed32) + crc (fixed32).
constexpr size_t kFrameHeaderSize = 8;
// Minimum body: request_id (8) + opcode (1).
constexpr size_t kMinBodySize = 9;
// Hard cap on `len`; larger frames are rejected without allocation so a
// corrupt or hostile length prefix cannot trigger a huge read.
constexpr uint32_t kMaxFrameSize = 32u << 20;

enum class Opcode : uint8_t {
  kPing = 1,
  kPut = 2,
  kGet = 3,
  kDelete = 4,
  kWrite = 5,   // WriteBatch (atomic multi-op)
  kScan = 6,      // bounded forward range scan
  kInfo = 7,      // DbStats snapshot or GetProperty passthrough
  kMultiGet = 8,  // batched point reads (one frame, per-key statuses)
  kError = 255    // server-generated: unparseable request
};

// Status codes on the wire; mirrors util/status.h Status::Code.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kNotSupported = 3,
  kInvalidArgument = 4,
  kIOError = 5,
  kBusy = 6,
};

StatusCode CodeOf(const Status& s);
Status MakeStatus(StatusCode code, const Slice& msg);

// One entry of a SCAN response.
using KeyValue = std::pair<std::string, std::string>;

struct ScanRequest {
  std::string start_key;  // inclusive; empty = first key
  std::string end_key;    // exclusive; empty = unbounded
  uint32_t limit = 0;     // max entries; 0 = server default
  // Restrict the scan to one shard of a sharded server (-1 = whole
  // database, merged server-side).  Cluster-aware clients fetch the shard
  // map via INFO "iamdb.shardmap" and fan scans out per shard, merging
  // client-side.  Encoded as varint32(shard + 1); absent = -1 so frames
  // from pre-shard clients still parse.
  int32_t shard = -1;
};

struct ScanResponse {
  std::vector<KeyValue> entries;
  bool truncated = false;  // hit limit with more data remaining
};

// One MGET response entry: per-key status code plus the value when found.
struct MultiGetEntry {
  StatusCode code = StatusCode::kNotFound;
  std::string value;  // meaningful only when code == kOk
};

// --- frame assembly -------------------------------------------------------

// Appends a complete frame (header + body) to *dst.  `payload` is the
// opcode-specific bytes after the opcode byte.
void BuildFrame(uint64_t request_id, Opcode opcode, const Slice& payload,
                std::string* dst);

// Result of scanning a receive buffer for one frame.
enum class FrameResult {
  kOk,         // *body holds the verified body; *consumed bytes were used
  kNeedMore,   // buffer holds an incomplete frame
  kBadCrc,     // length was sane but checksum mismatched
  kTooLarge,   // length prefix exceeds kMaxFrameSize
};

// Examines buf[0, size); on kOk sets *consumed to the full frame size and
// *body to the body bytes (pointing into buf — valid until buf mutates).
FrameResult DecodeFrame(const char* buf, size_t size, Slice* body,
                        size_t* consumed);

// Splits a verified body into its id/opcode/payload. False if too short or
// the opcode byte is not a known Opcode.
bool ParseBody(const Slice& body, uint64_t* request_id, Opcode* opcode,
               Slice* payload);

// --- request payloads -----------------------------------------------------

void EncodePut(const Slice& key, const Slice& value, std::string* dst);
bool DecodePut(Slice payload, Slice* key, Slice* value);

void EncodeKey(const Slice& key, std::string* dst);  // GET / DELETE
bool DecodeKey(Slice payload, Slice* key);

void EncodeScan(const ScanRequest& req, std::string* dst);
bool DecodeScan(Slice payload, ScanRequest* req);

// INFO: empty property = serialized DbStats; otherwise GetProperty(prop).
void EncodeInfo(const Slice& property, std::string* dst);
bool DecodeInfo(Slice payload, Slice* property);

// MGET request: varint32 count + count varstring keys.
void EncodeMultiGet(const std::vector<std::string>& keys, std::string* dst);
bool DecodeMultiGet(Slice payload, std::vector<Slice>* keys);

// --- response payloads ----------------------------------------------------
// Every response payload begins with: code (1 byte) + varstring message.

void EncodeStatus(const Status& s, std::string* dst);
bool DecodeStatus(Slice* payload, Status* s);  // advances past the status

void EncodeScanResponse(const ScanResponse& resp, std::string* dst);
bool DecodeScanResponse(Slice payload, ScanResponse* resp);

// MGET response (after the overall status): varint32 count + count entries,
// each a status-code byte followed by a varstring value iff the code is OK.
void EncodeMultiGetResponse(const std::vector<MultiGetEntry>& entries,
                            std::string* dst);
bool DecodeMultiGetResponse(Slice payload,
                            std::vector<MultiGetEntry>* entries);

// --- DbStats serialization (INFO opcode) ----------------------------------
// Tag-prefixed so fields can be added without breaking old clients; unknown
// tags are skipped by length.
//
// kMaxDbStatsTag is the highest tag the codec emits (static_assert'd
// against the private StatsTag enum in wire_protocol.cc).  Bump it when
// adding a field, and extend tests/db_stats_test.cc — that test walks
// every tag in [1, kMaxDbStatsTag] and fails on any it does not cover, so
// a new field cannot silently skip the codec, the aggregation operator, or
// the tests.
constexpr uint32_t kMaxDbStatsTag = 52;
void EncodeDbStats(const DbStats& stats, std::string* dst);
bool DecodeDbStats(Slice payload, DbStats* stats);

}  // namespace iamdb::wire
