#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "core/snapshot.h"
#include "memtable/write_batch.h"
#include "util/coding.h"

namespace iamdb {

namespace {

constexpr int kMaxEpollEvents = 64;
// iovecs per vectored send; far below IOV_MAX, and 64 coalesced responses
// per syscall already amortizes the syscall to noise.
constexpr int kMaxIov = 64;

// Counts records while Iterate() checks structural integrity.
class CountingHandler : public WriteBatch::Handler {
 public:
  void Put(const Slice&, const Slice&) override { count++; }
  void Delete(const Slice&) override { count++; }
  int count = 0;
};

void RelaxedAdd(std::atomic<uint64_t>& counter, uint64_t n) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

void RelaxedMax(std::atomic<uint64_t>& counter, uint64_t v) {
  uint64_t cur = counter.load(std::memory_order_relaxed);
  while (v > cur && !counter.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed,
                        std::memory_order_relaxed)) {
  }
}

}  // namespace

// Request/response counters as relaxed atomics: requests complete on every
// pool worker and flush on every shard, so a shared mutex here would be
// per-request contention for numbers that only need to be individually
// monotonic.
struct Server::AtomicStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> infos{0};
  std::atomic<uint64_t> pings{0};
  std::atomic<uint64_t> mgets{0};
  std::atomic<uint64_t> mget_keys{0};
  std::atomic<uint64_t> malformed_frames{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> accept_errors{0};
  std::atomic<uint64_t> loop_iterations{0};
  std::atomic<uint64_t> writev_calls{0};
  std::atomic<uint64_t> responses_written{0};
  std::atomic<uint64_t> output_buffer_hwm{0};
  std::atomic<uint64_t> backpressure_stalls{0};
  std::atomic<uint64_t> overflow_disconnects{0};
};

// One accepted socket, owned by exactly one shard.  Everything here is
// touched only from the owning shard's thread; pool workers hold a
// shared_ptr for lifetime but post responses through Shard::completions,
// never into the connection directly.
struct Server::Connection {
  int fd = -1;
  Shard* shard = nullptr;

  std::string in_buf;                 // received bytes; incomplete frame tail
  std::deque<std::string> out_frames; // encoded responses awaiting the socket
  size_t out_front_off = 0;           // bytes of out_frames.front() already sent
  size_t out_bytes = 0;               // total buffered response bytes
  int outstanding = 0;                // dispatched, response not yet queued

  bool read_closed = false;  // EOF / read error / fatal framing error
  bool paused = false;       // decoding paused (pipeline cap or backpressure)
  bool want_write = false;   // EPOLLOUT armed (socket was full)
  bool dead = false;         // closed; late completions are dropped
  bool touched = false;      // dedup flag for the per-iteration flush list
  uint32_t armed_events = 0; // events currently registered with epoll
};

// One epoll reactor.  The loop thread owns `conns` and all connection
// state; `mu` guards only the two inbound queues (accepted sockets from
// the acceptor, finished responses from pool workers), which the loop
// drains after every epoll_wait.  `wake_fd` is an eventfd registered in
// the epoll set (data.ptr == nullptr) so producers can interrupt a
// blocking wait; `wake_pending` coalesces redundant wakeups.
struct Server::Shard {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;

  // Loop-thread-only.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  size_t outstanding_total = 0;  // across all conns, incl. already-closed
  // Closed connections stay alive here until the next loop iteration so
  // raw pointers inside an already-collected epoll event batch stay valid.
  std::vector<std::shared_ptr<Connection>> graveyard;

  std::mutex mu;
  bool wake_pending = false;
  std::vector<int> pending_accepts;
  std::vector<std::pair<std::shared_ptr<Connection>, std::string>>
      completions;

  void Wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }
};

Server::Server(DB* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      stats_(std::make_unique<AtomicStats>()) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  {
    std::lock_guard<std::mutex> l(lifecycle_mu_);
    if (state_ != State::kIdle) {
      return Status::NotSupported("server is not restartable");
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host address", options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError("bind", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    Status s = Status::IOError("listen", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  int num_shards = options_.num_shards;
  if (num_shards <= 0) {
    num_shards = static_cast<int>(std::thread::hardware_concurrency());
    num_shards = std::clamp(num_shards, 1, 4);
  }
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; i++) {
    auto shard = std::make_unique<Shard>();
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->epoll_fd < 0 || shard->wake_fd < 0) {
      Status s = Status::IOError("epoll/eventfd", std::strerror(errno));
      if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
      if (shard->wake_fd >= 0) ::close(shard->wake_fd);
      for (auto& prev : shards_) {
        ::close(prev->epoll_fd);
        ::close(prev->wake_fd);
      }
      shards_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return s;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the wakeup eventfd
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->wake_fd, &ev);
    shards_.push_back(std::move(shard));
  }

  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.num_workers));
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> l(lifecycle_mu_);
    state_ = State::kRunning;
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([this, raw] { ShardLoop(raw); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  {
    std::unique_lock<std::mutex> l(lifecycle_mu_);
    if (state_ == State::kIdle || state_ == State::kStopped) return;
    if (state_ == State::kStopping) {
      // A concurrent caller owns the teardown; block until it completes
      // so every caller returning from Stop() sees a fully-stopped server.
      lifecycle_cv_.wait(l, [this] { return state_ == State::kStopped; });
      return;
    }
    state_ = State::kStopping;
  }

  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();  // poll loop sees stopping_
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Wake every shard so a loop blocked in epoll_wait notices stopping_,
  // half-closes its connections and drains.  Each loop exits once all its
  // connections have finished their in-flight requests and flushed.
  for (auto& shard : shards_) shard->Wake();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }

  pool_->WaitIdle();
  pool_.reset();
  for (auto& shard : shards_) {
    ::close(shard->epoll_fd);
    ::close(shard->wake_fd);
  }
  shards_.clear();
  running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> l(lifecycle_mu_);
    state_ = State::kStopped;
  }
  lifecycle_cv_.notify_all();
}

ServerStats Server::stats() const {
  const AtomicStats& a = *stats_;
  ServerStats s;
  s.connections_accepted = a.connections_accepted.load(std::memory_order_relaxed);
  s.connections_active = a.connections_active.load(std::memory_order_relaxed);
  s.requests = a.requests.load(std::memory_order_relaxed);
  s.puts = a.puts.load(std::memory_order_relaxed);
  s.gets = a.gets.load(std::memory_order_relaxed);
  s.deletes = a.deletes.load(std::memory_order_relaxed);
  s.writes = a.writes.load(std::memory_order_relaxed);
  s.scans = a.scans.load(std::memory_order_relaxed);
  s.infos = a.infos.load(std::memory_order_relaxed);
  s.pings = a.pings.load(std::memory_order_relaxed);
  s.mgets = a.mgets.load(std::memory_order_relaxed);
  s.mget_keys = a.mget_keys.load(std::memory_order_relaxed);
  s.malformed_frames = a.malformed_frames.load(std::memory_order_relaxed);
  s.bytes_received = a.bytes_received.load(std::memory_order_relaxed);
  s.bytes_sent = a.bytes_sent.load(std::memory_order_relaxed);
  s.accept_errors = a.accept_errors.load(std::memory_order_relaxed);
  s.loop_iterations = a.loop_iterations.load(std::memory_order_relaxed);
  s.writev_calls = a.writev_calls.load(std::memory_order_relaxed);
  s.responses_written = a.responses_written.load(std::memory_order_relaxed);
  s.output_buffer_hwm = a.output_buffer_hwm.load(std::memory_order_relaxed);
  s.backpressure_stalls =
      a.backpressure_stalls.load(std::memory_order_relaxed);
  s.overflow_disconnects =
      a.overflow_disconnects.load(std::memory_order_relaxed);
  return s;
}

std::string Server::StatsString() const {
  ServerStats s = stats();
  char buf[1024];
  const double per_writev =
      s.writev_calls > 0
          ? static_cast<double>(s.responses_written) / s.writev_calls
          : 0.0;
  std::snprintf(
      buf, sizeof(buf),
      "connections: accepted=%llu active=%llu accept_errors=%llu\n"
      "requests=%llu put=%llu get=%llu delete=%llu write=%llu "
      "scan=%llu info=%llu ping=%llu mget=%llu mget_keys=%llu\n"
      "malformed_frames=%llu bytes_received=%llu bytes_sent=%llu\n"
      "reactor: shards=%d loop_iterations=%llu writev_calls=%llu "
      "responses_written=%llu responses_per_writev=%.2f\n"
      "reactor: output_buffer_hwm=%llu backpressure_stalls=%llu "
      "overflow_disconnects=%llu\n",
      (unsigned long long)s.connections_accepted,
      (unsigned long long)s.connections_active,
      (unsigned long long)s.accept_errors, (unsigned long long)s.requests,
      (unsigned long long)s.puts, (unsigned long long)s.gets,
      (unsigned long long)s.deletes, (unsigned long long)s.writes,
      (unsigned long long)s.scans, (unsigned long long)s.infos,
      (unsigned long long)s.pings, (unsigned long long)s.mgets,
      (unsigned long long)s.mget_keys,
      (unsigned long long)s.malformed_frames,
      (unsigned long long)s.bytes_received,
      (unsigned long long)s.bytes_sent, num_shards(),
      (unsigned long long)s.loop_iterations,
      (unsigned long long)s.writev_calls,
      (unsigned long long)s.responses_written, per_writev,
      (unsigned long long)s.output_buffer_hwm,
      (unsigned long long)s.backpressure_stalls,
      (unsigned long long)s.overflow_disconnects);
  return buf;
}

void Server::AcceptLoop() {
  size_t next_shard = 0;
  int backoff_ms = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n < 0 && errno != EINTR) break;
    if (n <= 0 || !(pfd.revents & POLLIN)) continue;

    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      // EMFILE/ENFILE/ENOBUFS/...: the fd table (or kernel memory) is
      // exhausted and the pending connection stays in the backlog, so a
      // plain retry spins poll+accept at full speed.  Count it and back
      // off exponentially; a freed descriptor ends the wait early only in
      // the sense that the next round's accept succeeds and resets it.
      RelaxedAdd(stats_->accept_errors, 1);
      backoff_ms = backoff_ms == 0 ? 10 : std::min(backoff_ms * 2, 1000);
      for (int waited = 0;
           waited < backoff_ms && !stopping_.load(std::memory_order_acquire);
           waited += 10) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      continue;
    }
    backoff_ms = 0;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }
    RelaxedAdd(stats_->connections_accepted, 1);
    RelaxedAdd(stats_->connections_active, 1);

    Shard* shard = shards_[next_shard++ % shards_.size()].get();
    bool wake = false;
    {
      std::lock_guard<std::mutex> l(shard->mu);
      shard->pending_accepts.push_back(fd);
      if (!shard->wake_pending) {
        shard->wake_pending = true;
        wake = true;
      }
    }
    if (wake) shard->Wake();
  }
}

void Server::ShardLoop(Shard* shard) {
  epoll_event events[kMaxEpollEvents];
  std::vector<std::shared_ptr<Connection>> touched;
  bool half_closed = false;

  while (true) {
    shard->graveyard.clear();
    // Block indefinitely while serving (the eventfd interrupts); poll at
    // 100ms while draining so shutdown cannot hang on a lost wakeup.
    const int timeout =
        stopping_.load(std::memory_order_acquire) ? 100 : -1;
    int n = ::epoll_wait(shard->epoll_fd, events, kMaxEpollEvents, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EBADF etc.: unrecoverable, abandon the loop
    }
    RelaxedAdd(stats_->loop_iterations, 1);
    const bool stopping = stopping_.load(std::memory_order_acquire);

    for (int i = 0; i < n; i++) {
      if (events[i].data.ptr == nullptr) {
        uint64_t junk;
        while (::read(shard->wake_fd, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      Connection* raw = static_cast<Connection*>(events[i].data.ptr);
      // A connection closed earlier in this batch: the object is kept
      // alive by the graveyard, but there is nothing left to do.
      if (raw->dead) continue;
      auto it = shard->conns.find(raw->fd);
      if (it == shard->conns.end()) continue;
      std::shared_ptr<Connection> conn = it->second;

      if (events[i].events & EPOLLOUT) {
        FlushOutput(shard, conn.get());
        if (!conn->dead) {
          MaybeResume(shard, conn);
          MaybeFinish(shard, conn.get());
        }
      }
      if (!conn->dead &&
          (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR))) {
        HandleReadable(shard, conn);
      }
    }

    // Drain the inbound queues: new sockets from the acceptor, finished
    // responses from the pool.  All responses are appended to their
    // connections' buffers first and each touched connection is flushed
    // once afterwards — that is what coalesces a burst of pipelined
    // completions into a single writev.
    std::vector<int> accepts;
    std::vector<std::pair<std::shared_ptr<Connection>, std::string>> done;
    {
      std::lock_guard<std::mutex> l(shard->mu);
      accepts.swap(shard->pending_accepts);
      done.swap(shard->completions);
      shard->wake_pending = false;
    }
    for (int fd : accepts) {
      if (stopping) {
        ::close(fd);
        RelaxedAdd(stats_->connections_active, static_cast<uint64_t>(-1));
        continue;
      }
      AddConnection(shard, fd);
    }
    touched.clear();
    for (auto& [conn, frame] : done) {
      Connection* c = conn.get();
      c->outstanding--;
      shard->outstanding_total--;
      if (c->dead) continue;
      QueueResponse(shard, c, std::move(frame));
      if (!c->dead && !c->touched) {
        c->touched = true;
        touched.push_back(conn);
      }
    }
    for (auto& conn : touched) {
      conn->touched = false;
      if (conn->dead) continue;
      FlushOutput(shard, conn.get());
      if (conn->dead) continue;
      MaybeResume(shard, conn);
      MaybeFinish(shard, conn.get());
    }

    if (stopping) {
      if (!half_closed) {
        half_closed = true;
        // Half-close: readers see EOF, stop producing requests, and the
        // drain below waits for what was already dispatched.
        for (auto& [fd, conn] : shard->conns) {
          ::shutdown(fd, SHUT_RD);
          (void)conn;
        }
      }
      if (shard->conns.empty() && shard->outstanding_total == 0) {
        std::lock_guard<std::mutex> l(shard->mu);
        if (shard->completions.empty() && shard->pending_accepts.empty()) {
          break;
        }
      }
    }
  }
  shard->graveyard.clear();
}

void Server::AddConnection(Shard* shard, int fd) {
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conn->shard = shard;
  conn->armed_events = EPOLLIN;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = conn.get();
  if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    RelaxedAdd(stats_->connections_active, static_cast<uint64_t>(-1));
    return;
  }
  shard->conns.emplace(fd, std::move(conn));
}

void Server::HandleReadable(Shard* shard,
                            const std::shared_ptr<Connection>& conn) {
  Connection* c = conn.get();
  char chunk[64 << 10];
  while (!c->read_closed && !c->paused && !c->dead) {
    ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      c->read_closed = true;  // hard error: treat as EOF, drain and close
      break;
    }
    if (n == 0) {
      c->read_closed = true;  // peer closed (or Stop() half-closed)
      break;
    }
    RelaxedAdd(stats_->bytes_received, static_cast<uint64_t>(n));
    c->in_buf.append(chunk, static_cast<size_t>(n));
    ProcessInput(shard, conn);
  }
  if (!c->dead) {
    UpdateInterest(shard, c);
    MaybeFinish(shard, c);
  }
}

void Server::ProcessInput(Shard* shard,
                          const std::shared_ptr<Connection>& conn) {
  Connection* c = conn.get();
  size_t consumed_total = 0;
  while (!c->dead) {
    // Backpressure: stop decoding while the pipeline is full or the peer
    // is not draining its responses.  MaybeResume() restarts decoding of
    // whatever stayed buffered once a slot frees / the output drains.
    if (c->outstanding >= options_.max_pipeline ||
        c->out_bytes > options_.output_buffer_soft_limit) {
      if (!c->paused) {
        c->paused = true;
        if (c->out_bytes > options_.output_buffer_soft_limit) {
          RelaxedAdd(stats_->backpressure_stalls, 1);
        }
      }
      break;
    }

    Slice body;
    size_t consumed = 0;
    wire::FrameResult r =
        wire::DecodeFrame(c->in_buf.data() + consumed_total,
                          c->in_buf.size() - consumed_total, &body, &consumed);
    if (r == wire::FrameResult::kNeedMore) break;
    if (r != wire::FrameResult::kOk) {
      // Bad CRC or insane length: the stream cannot be resynchronized.
      // Report once (request_id 0: the header is untrusted), flush, close.
      RelaxedAdd(stats_->malformed_frames, 1);
      std::string msg;
      wire::EncodeStatus(
          Status::Corruption(r == wire::FrameResult::kBadCrc
                                 ? "frame checksum mismatch"
                                 : "frame length out of range"),
          &msg);
      std::string frame;
      wire::BuildFrame(0, wire::Opcode::kError, msg, &frame);
      c->in_buf.clear();
      c->read_closed = true;
      QueueResponse(shard, c, std::move(frame));
      if (!c->dead) {
        FlushOutput(shard, c);
        if (!c->dead) MaybeFinish(shard, c);
      }
      return;
    }

    uint64_t request_id = 0;
    wire::Opcode opcode;
    Slice payload;
    if (!wire::ParseBody(body, &request_id, &opcode, &payload)) {
      RelaxedAdd(stats_->malformed_frames, 1);
      // The frame checksummed fine, so framing is still intact: answer
      // with an error and keep the connection.
      std::string msg;
      wire::EncodeStatus(Status::InvalidArgument("unknown opcode"), &msg);
      std::string frame;
      wire::BuildFrame(request_id, wire::Opcode::kError, msg, &frame);
      consumed_total += consumed;
      QueueResponse(shard, c, std::move(frame));
      if (c->dead) break;
      FlushOutput(shard, c);
      if (c->dead) break;
      continue;
    }
    consumed_total += consumed;

    c->outstanding++;
    shard->outstanding_total++;
    std::string owned_payload = payload.ToString();
    auto task = [this, conn, request_id, opcode,
                 owned_payload = std::move(owned_payload)] {
      ExecuteRequest(conn, request_id, opcode, owned_payload);
    };
    if (!pool_->Schedule(task)) {
      // Pool is shutting down (server teardown racing a live shard):
      // execute inline — the completion lands in our own queue and the
      // drain loop below will process it.
      task();
    }
  }
  if (consumed_total > 0 && !c->dead) c->in_buf.erase(0, consumed_total);
}

void Server::QueueResponse(Shard* shard, Connection* c, std::string frame) {
  if (c->dead) return;
  c->out_bytes += frame.size();
  c->out_frames.push_back(std::move(frame));
  RelaxedMax(stats_->output_buffer_hwm, c->out_bytes);
  if (c->out_bytes > options_.output_buffer_hard_limit) {
    // Reading was paused at the soft limit, but responses already
    // dispatched keep arriving; a peer that never drains past the hard
    // limit is disconnected instead of buffering without bound.
    RelaxedAdd(stats_->overflow_disconnects, 1);
    CloseConnection(shard, c);
  }
}

void Server::FlushOutput(Shard* shard, Connection* c) {
  if (c->dead) return;
  while (!c->out_frames.empty()) {
    iovec iov[kMaxIov];
    int cnt = 0;
    size_t off = c->out_front_off;
    for (auto it = c->out_frames.begin();
         it != c->out_frames.end() && cnt < kMaxIov; ++it) {
      iov[cnt].iov_base = const_cast<char*>(it->data() + off);
      iov[cnt].iov_len = it->size() - off;
      off = 0;
      cnt++;
    }
    // sendmsg == vectored writev, plus MSG_NOSIGNAL so a dead peer yields
    // EPIPE instead of killing the process.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(cnt);
    ssize_t n = ::sendmsg(c->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c->want_write) {
          c->want_write = true;
          UpdateInterest(shard, c);
        }
        return;
      }
      CloseConnection(shard, c);  // peer gone: buffered responses are moot
      return;
    }
    RelaxedAdd(stats_->writev_calls, 1);
    RelaxedAdd(stats_->bytes_sent, static_cast<uint64_t>(n));
    c->out_bytes -= static_cast<size_t>(n);
    size_t left = static_cast<size_t>(n);
    uint64_t retired = 0;
    while (left > 0) {
      std::string& front = c->out_frames.front();
      const size_t remain = front.size() - c->out_front_off;
      if (left >= remain) {
        left -= remain;
        c->out_front_off = 0;
        c->out_frames.pop_front();
        retired++;
      } else {
        c->out_front_off += left;
        left = 0;
      }
    }
    if (retired > 0) RelaxedAdd(stats_->responses_written, retired);
  }
  if (c->want_write) {
    c->want_write = false;
    UpdateInterest(shard, c);
  }
}

void Server::UpdateInterest(Shard* shard, Connection* c) {
  if (c->dead) return;
  uint32_t ev = 0;
  if (!c->read_closed && !c->paused) ev |= EPOLLIN;
  if (c->want_write) ev |= EPOLLOUT;
  if (ev == c->armed_events) return;
  epoll_event e{};
  e.events = ev;
  e.data.ptr = c;
  ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_MOD, c->fd, &e);
  c->armed_events = ev;
}

void Server::MaybeResume(Shard* shard,
                         const std::shared_ptr<Connection>& conn) {
  Connection* c = conn.get();
  if (c->dead || !c->paused) return;
  if (c->outstanding >= options_.max_pipeline) return;
  if (c->out_bytes > options_.output_buffer_soft_limit) return;
  c->paused = false;
  // Frames that were already buffered while paused decode now; the
  // level-triggered EPOLLIN re-arm below picks up anything still queued
  // in the kernel.
  ProcessInput(shard, conn);
  if (!c->dead) UpdateInterest(shard, c);
}

void Server::MaybeFinish(Shard* shard, Connection* c) {
  if (c->dead || !c->read_closed || c->paused) return;
  if (c->outstanding > 0 || !c->out_frames.empty()) return;
  CloseConnection(shard, c);
}

void Server::CloseConnection(Shard* shard, Connection* c) {
  if (c->dead) return;
  c->dead = true;
  ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
  // shutdown first: pushes a FIN at the peer even when unread input would
  // otherwise make close() send RST.
  ::shutdown(c->fd, SHUT_RDWR);
  ::close(c->fd);
  auto it = shard->conns.find(c->fd);
  c->fd = -1;
  if (it != shard->conns.end()) {
    shard->graveyard.push_back(it->second);
    shard->conns.erase(it);
  }
  RelaxedAdd(stats_->connections_active, static_cast<uint64_t>(-1));
}

void Server::ExecuteRequest(const std::shared_ptr<Connection>& conn,
                            uint64_t request_id, wire::Opcode opcode,
                            const std::string& payload) {
  RelaxedAdd(stats_->requests, 1);
  std::string out;
  switch (opcode) {
    case wire::Opcode::kPing:
      RelaxedAdd(stats_->pings, 1);
      wire::EncodeStatus(Status::OK(), &out);
      break;
    case wire::Opcode::kPut:
      RelaxedAdd(stats_->puts, 1);
      DoPut(payload, &out);
      break;
    case wire::Opcode::kGet:
      RelaxedAdd(stats_->gets, 1);
      DoGet(payload, &out);
      break;
    case wire::Opcode::kMultiGet:
      RelaxedAdd(stats_->mgets, 1);
      DoMultiGet(payload, &out);
      break;
    case wire::Opcode::kDelete:
      RelaxedAdd(stats_->deletes, 1);
      DoDelete(payload, &out);
      break;
    case wire::Opcode::kWrite:
      RelaxedAdd(stats_->writes, 1);
      DoWrite(payload, &out);
      break;
    case wire::Opcode::kScan:
      RelaxedAdd(stats_->scans, 1);
      DoScan(payload, &out);
      break;
    case wire::Opcode::kInfo:
      RelaxedAdd(stats_->infos, 1);
      DoInfo(payload, &out);
      break;
    default:
      wire::EncodeStatus(Status::InvalidArgument("unexpected opcode"), &out);
      break;
  }
  std::string frame;
  wire::BuildFrame(request_id, opcode, out, &frame);

  Shard* shard = conn->shard;
  bool wake = false;
  {
    std::lock_guard<std::mutex> l(shard->mu);
    shard->completions.emplace_back(conn, std::move(frame));
    if (!shard->wake_pending) {
      shard->wake_pending = true;
      wake = true;
    }
  }
  if (wake) shard->Wake();
}

void Server::DoPut(const Slice& payload, std::string* out) {
  Slice key, value;
  if (!wire::DecodePut(payload, &key, &value)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed PUT payload"), out);
    return;
  }
  wire::EncodeStatus(db_->Put(WriteOptions(), key, value), out);
}

void Server::DoGet(const Slice& payload, std::string* out) {
  Slice key;
  if (!wire::DecodeKey(payload, &key)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed GET payload"), out);
    return;
  }
  std::string value;
  Status s = db_->Get(ReadOptions(), key, &value);
  wire::EncodeStatus(s, out);
  if (s.ok()) PutLengthPrefixedSlice(out, value);
}

void Server::DoMultiGet(const Slice& payload, std::string* out) {
  std::vector<Slice> keys;
  if (!wire::DecodeMultiGet(payload, &keys)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed MGET payload"), out);
    return;
  }
  if (keys.size() > options_.max_mget_keys) {
    wire::EncodeStatus(
        Status::InvalidArgument("MGET key count exceeds limit"), out);
    return;
  }
  RelaxedAdd(stats_->mget_keys, keys.size());

  // One snapshot for the whole batch: every key is read at the same
  // sequence, so a batch can never observe half of a concurrent write.
  const Snapshot* snapshot = db_->GetSnapshot();
  ReadOptions read_options;
  read_options.snapshot = snapshot;

  // One native MultiGet for the whole batch: the DB acquires its read view
  // once and coalesces table I/O across the keys (docs/PROTOCOL.md).
  std::vector<std::string> values(keys.size());
  std::vector<Status> statuses(keys.size());
  db_->MultiGet(read_options, keys.size(), keys.data(), values.data(),
                statuses.data());
  db_->ReleaseSnapshot(snapshot);

  std::vector<wire::MultiGetEntry> entries;
  entries.reserve(keys.size());
  size_t bytes = 0;
  Status overall = Status::OK();
  for (size_t i = 0; i < keys.size(); i++) {
    wire::MultiGetEntry e;
    e.code = wire::CodeOf(statuses[i]);
    if (statuses[i].ok()) e.value = std::move(values[i]);
    bytes += e.value.size();
    if (bytes > options_.max_scan_bytes) {
      overall = Status::InvalidArgument("MGET response exceeds size limit");
      break;
    }
    entries.push_back(std::move(e));
  }

  wire::EncodeStatus(overall, out);
  if (overall.ok()) wire::EncodeMultiGetResponse(entries, out);
}

void Server::DoDelete(const Slice& payload, std::string* out) {
  Slice key;
  if (!wire::DecodeKey(payload, &key)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed DELETE payload"),
                       out);
    return;
  }
  wire::EncodeStatus(db_->Delete(WriteOptions(), key), out);
}

void Server::DoWrite(const Slice& payload, std::string* out) {
  // Payload is the WriteBatch wire representation (write_batch.h).  Verify
  // the record stream before applying: a malformed batch must not reach the
  // WAL.
  if (payload.size() < 12) {
    wire::EncodeStatus(Status::InvalidArgument("short WRITE payload"), out);
    return;
  }
  WriteBatch batch;
  WriteBatchInternal::SetContents(&batch, payload);
  CountingHandler counter;
  Status s = batch.Iterate(&counter);
  if (s.ok() && counter.count != WriteBatchInternal::Count(&batch)) {
    s = Status::Corruption("WRITE batch count mismatch");
  }
  if (s.ok()) s = db_->Write(WriteOptions(), &batch);
  wire::EncodeStatus(s, out);
}

void Server::DoScan(const Slice& payload, std::string* out) {
  wire::ScanRequest req;
  if (!wire::DecodeScan(payload, &req)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed SCAN payload"), out);
    return;
  }
  uint32_t limit = req.limit == 0 ? options_.default_scan_limit : req.limit;
  if (limit > options_.max_scan_limit) limit = options_.max_scan_limit;
  if (req.shard >= db_->NumShards()) {
    wire::EncodeStatus(
        Status::InvalidArgument("shard out of range: server has " +
                                std::to_string(db_->NumShards()) + " shards"),
        out);
    return;
  }

  wire::ScanResponse resp;
  size_t bytes = 0;
  // shard >= 0 scopes the scan to one shard so cluster-aware clients can
  // fan out and merge client-side; -1 scans the whole database (merged
  // server-side when the DB is a ShardedDB).
  std::unique_ptr<Iterator> iter(
      req.shard >= 0 ? db_->NewShardIterator(ReadOptions(), req.shard)
                     : db_->NewIterator(ReadOptions()));
  if (req.start_key.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(req.start_key);
  }
  for (; iter->Valid(); iter->Next()) {
    if (!req.end_key.empty() && iter->key().compare(req.end_key) >= 0) break;
    if (resp.entries.size() >= limit || bytes >= options_.max_scan_bytes) {
      resp.truncated = true;
      break;
    }
    resp.entries.emplace_back(iter->key().ToString(),
                              iter->value().ToString());
    bytes += iter->key().size() + iter->value().size();
  }
  Status s = iter->status();
  iter.reset();
  wire::EncodeStatus(s, out);
  if (s.ok()) wire::EncodeScanResponse(resp, out);
}

void Server::DoInfo(const Slice& payload, std::string* out) {
  Slice property;
  if (!wire::DecodeInfo(payload, &property)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed INFO payload"), out);
    return;
  }
  if (property.empty()) {
    // Binary DbStats snapshot, with the serving-layer reactor counters
    // grafted on (tags 23-28) so remote consumers see both in one frame.
    wire::EncodeStatus(Status::OK(), out);
    DbStats db_stats = db_->GetStats();
    ServerStats s = stats();
    db_stats.server_loop_iterations = s.loop_iterations;
    db_stats.server_writev_calls = s.writev_calls;
    db_stats.server_responses_written = s.responses_written;
    db_stats.server_output_buffer_hwm = s.output_buffer_hwm;
    db_stats.server_backpressure_stalls = s.backpressure_stalls;
    db_stats.server_accept_errors = s.accept_errors;
    std::string encoded;
    wire::EncodeDbStats(db_stats, &encoded);
    PutLengthPrefixedSlice(out, encoded);
    return;
  }
  std::string value;
  if (property == Slice("server.stats")) {
    value = StatsString();
  } else if (!db_->GetProperty(property, &value)) {
    wire::EncodeStatus(
        Status::NotFound("unknown property", property.ToString()), out);
    return;
  }
  wire::EncodeStatus(Status::OK(), out);
  PutLengthPrefixedSlice(out, value);
}

}  // namespace iamdb
