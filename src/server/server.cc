#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>

#include "memtable/write_batch.h"
#include "util/coding.h"

namespace iamdb {

namespace {

// send() the whole buffer; MSG_NOSIGNAL so a dead peer yields EPIPE
// instead of killing the process.
bool SendAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

// Counts records while Iterate() checks structural integrity.
class CountingHandler : public WriteBatch::Handler {
 public:
  void Put(const Slice&, const Slice&) override { count++; }
  void Delete(const Slice&) override { count++; }
  int count = 0;
};

}  // namespace

// One accepted socket.  The reader thread owns `fd`'s read side; response
// writers serialize on write_mu.  `outstanding` counts requests dispatched
// to the pool whose responses have not been written yet — the reader stops
// decoding at max_pipeline and the drain path waits for it to hit zero.
struct Server::Connection {
  int fd = -1;
  std::thread reader;
  std::mutex write_mu;
  std::mutex pipeline_mu;
  std::condition_variable pipeline_cv;
  int outstanding = 0;         // pipeline_mu
  bool write_failed = false;   // write_mu
  std::atomic<bool> done{false};
};

Server::Server(DB* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load() || stopping_.load()) {
    return Status::NotSupported("server is not restartable");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host address", options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError("bind", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    Status s = Status::IOError("listen", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.num_workers));
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Someone else is (or finished) stopping; wait for the acceptor to be
    // joined by them — nothing more to do for idempotent callers.
    return;
  }
  if (!running_.load(std::memory_order_acquire)) return;

  if (acceptor_.joinable()) acceptor_.join();  // poll loop sees stopping_
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Half-close every connection: readers see EOF, stop decoding new
  // requests, and drain their in-flight responses.  The fd is closed only
  // after the reader is joined (never by the reader itself) so a shutdown()
  // here cannot race a close() and hit a recycled descriptor.
  {
    std::lock_guard<std::mutex> l(conn_mu_);
    for (auto& conn : connections_) ::shutdown(conn->fd, SHUT_RD);
    for (auto& conn : connections_) {
      if (conn->reader.joinable()) conn->reader.join();
      ::close(conn->fd);
    }
    connections_.clear();
  }

  pool_->WaitIdle();
  pool_.reset();
  running_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> l(stats_mu_);
  return stats_;
}

std::string Server::StatsString() const {
  ServerStats s = stats();
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "connections: accepted=%llu active=%llu\n"
                "requests=%llu put=%llu get=%llu delete=%llu write=%llu "
                "scan=%llu info=%llu ping=%llu\n"
                "malformed_frames=%llu bytes_received=%llu bytes_sent=%llu\n",
                (unsigned long long)s.connections_accepted,
                (unsigned long long)s.connections_active,
                (unsigned long long)s.requests, (unsigned long long)s.puts,
                (unsigned long long)s.gets, (unsigned long long)s.deletes,
                (unsigned long long)s.writes, (unsigned long long)s.scans,
                (unsigned long long)s.infos, (unsigned long long)s.pings,
                (unsigned long long)s.malformed_frames,
                (unsigned long long)s.bytes_received,
                (unsigned long long)s.bytes_sent);
  return buf;
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n < 0 && errno != EINTR) break;
    if (n <= 0 || !(pfd.revents & POLLIN)) continue;

    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> l(conn_mu_);
      ReapFinishedConnections();
      connections_.push_back(std::move(conn));
    }
    {
      std::lock_guard<std::mutex> l(stats_mu_);
      stats_.connections_accepted++;
      stats_.connections_active++;
    }
    raw->reader = std::thread([this, raw] { ReadLoop(raw); });
  }
}

void Server::ReapFinishedConnections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::ReadLoop(Connection* conn) {
  std::string buffer;
  char chunk[64 << 10];
  bool fatal = false;

  while (!fatal) {
    // Drain complete frames already buffered.
    size_t consumed_total = 0;
    while (true) {
      Slice body;
      size_t consumed = 0;
      wire::FrameResult r =
          wire::DecodeFrame(buffer.data() + consumed_total,
                            buffer.size() - consumed_total, &body, &consumed);
      if (r == wire::FrameResult::kNeedMore) break;
      if (r != wire::FrameResult::kOk) {
        // Bad CRC or insane length: the stream cannot be resynchronized.
        // Report once (request_id 0: the header is untrusted) and drop.
        {
          std::lock_guard<std::mutex> l(stats_mu_);
          stats_.malformed_frames++;
        }
        std::string msg;
        wire::EncodeStatus(
            Status::Corruption(r == wire::FrameResult::kBadCrc
                                   ? "frame checksum mismatch"
                                   : "frame length out of range"),
            &msg);
        SendResponse(conn, 0, wire::Opcode::kError, msg);
        fatal = true;
        break;
      }

      uint64_t request_id;
      wire::Opcode opcode;
      Slice payload;
      if (!wire::ParseBody(body, &request_id, &opcode, &payload)) {
        {
          std::lock_guard<std::mutex> l(stats_mu_);
          stats_.malformed_frames++;
        }
        // The frame itself checksummed fine, so framing is still intact:
        // answer with an error and keep the connection.
        std::string msg;
        wire::EncodeStatus(Status::InvalidArgument("unknown opcode"), &msg);
        consumed_total += consumed;
        SendResponse(conn, request_id, wire::Opcode::kError, msg);
        continue;
      }
      consumed_total += consumed;

      // Backpressure: wait for a pipeline slot.
      {
        std::unique_lock<std::mutex> l(conn->pipeline_mu);
        conn->pipeline_cv.wait(l, [&] {
          return conn->outstanding < options_.max_pipeline;
        });
        conn->outstanding++;
      }
      std::string owned_payload = payload.ToString();
      if (!pool_->Schedule([this, conn, request_id, opcode,
                            owned_payload = std::move(owned_payload)] {
            HandleRequest(conn, request_id, opcode, owned_payload);
          })) {
        // Pool is shutting down (server teardown racing a live reader):
        // fail the request instead of dropping it silently.
        HandleRequest(conn, request_id, opcode, owned_payload);
      }
    }
    if (consumed_total > 0) buffer.erase(0, consumed_total);
    if (fatal) break;

    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF (client closed or Stop() half-closed) / error
    {
      std::lock_guard<std::mutex> l(stats_mu_);
      stats_.bytes_received += static_cast<uint64_t>(n);
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  // Drain: let every dispatched request finish and write its response
  // before the socket goes away.  The fd itself is closed by whoever joins
  // this thread (reaper or Stop()).
  {
    std::unique_lock<std::mutex> l(conn->pipeline_mu);
    conn->pipeline_cv.wait(l, [&] { return conn->outstanding == 0; });
  }
  // Signal EOF to the peer now; shutdown (unlike close) cannot recycle the
  // descriptor, so it cannot race Stop()'s own shutdown on this fd.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> l(stats_mu_);
    stats_.connections_active--;
  }
}

void Server::HandleRequest(Connection* conn, uint64_t request_id,
                           wire::Opcode opcode, const std::string& payload) {
  std::string out;
  {
    std::lock_guard<std::mutex> l(stats_mu_);
    stats_.requests++;
    switch (opcode) {
      case wire::Opcode::kPut: stats_.puts++; break;
      case wire::Opcode::kGet: stats_.gets++; break;
      case wire::Opcode::kDelete: stats_.deletes++; break;
      case wire::Opcode::kWrite: stats_.writes++; break;
      case wire::Opcode::kScan: stats_.scans++; break;
      case wire::Opcode::kInfo: stats_.infos++; break;
      case wire::Opcode::kPing: stats_.pings++; break;
      default: break;
    }
  }
  switch (opcode) {
    case wire::Opcode::kPing:
      wire::EncodeStatus(Status::OK(), &out);
      break;
    case wire::Opcode::kPut:
      DoPut(payload, &out);
      break;
    case wire::Opcode::kGet:
      DoGet(payload, &out);
      break;
    case wire::Opcode::kDelete:
      DoDelete(payload, &out);
      break;
    case wire::Opcode::kWrite:
      DoWrite(payload, &out);
      break;
    case wire::Opcode::kScan:
      DoScan(payload, &out);
      break;
    case wire::Opcode::kInfo:
      DoInfo(payload, &out);
      break;
    default:
      wire::EncodeStatus(Status::InvalidArgument("unexpected opcode"), &out);
      break;
  }
  SendResponse(conn, request_id, opcode, out);
  {
    // Notify under the lock: the drain path may free *conn the moment it
    // observes outstanding == 0, so notifying after unlock could touch a
    // dead condition variable.
    std::lock_guard<std::mutex> l(conn->pipeline_mu);
    conn->outstanding--;
    conn->pipeline_cv.notify_all();
  }
}

void Server::SendResponse(Connection* conn, uint64_t request_id,
                          wire::Opcode opcode, const Slice& payload) {
  std::string frame;
  wire::BuildFrame(request_id, opcode, payload, &frame);
  std::lock_guard<std::mutex> l(conn->write_mu);
  if (conn->write_failed) return;
  if (!SendAll(conn->fd, frame.data(), frame.size())) {
    conn->write_failed = true;
    return;
  }
  std::lock_guard<std::mutex> sl(stats_mu_);
  stats_.bytes_sent += frame.size();
}

void Server::DoPut(const Slice& payload, std::string* out) {
  Slice key, value;
  if (!wire::DecodePut(payload, &key, &value)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed PUT payload"), out);
    return;
  }
  wire::EncodeStatus(db_->Put(WriteOptions(), key, value), out);
}

void Server::DoGet(const Slice& payload, std::string* out) {
  Slice key;
  if (!wire::DecodeKey(payload, &key)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed GET payload"), out);
    return;
  }
  std::string value;
  Status s = db_->Get(ReadOptions(), key, &value);
  wire::EncodeStatus(s, out);
  if (s.ok()) PutLengthPrefixedSlice(out, value);
}

void Server::DoDelete(const Slice& payload, std::string* out) {
  Slice key;
  if (!wire::DecodeKey(payload, &key)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed DELETE payload"),
                       out);
    return;
  }
  wire::EncodeStatus(db_->Delete(WriteOptions(), key), out);
}

void Server::DoWrite(const Slice& payload, std::string* out) {
  // Payload is the WriteBatch wire representation (write_batch.h).  Verify
  // the record stream before applying: a malformed batch must not reach the
  // WAL.
  if (payload.size() < 12) {
    wire::EncodeStatus(Status::InvalidArgument("short WRITE payload"), out);
    return;
  }
  WriteBatch batch;
  WriteBatchInternal::SetContents(&batch, payload);
  CountingHandler counter;
  Status s = batch.Iterate(&counter);
  if (s.ok() && counter.count != WriteBatchInternal::Count(&batch)) {
    s = Status::Corruption("WRITE batch count mismatch");
  }
  if (s.ok()) s = db_->Write(WriteOptions(), &batch);
  wire::EncodeStatus(s, out);
}

void Server::DoScan(const Slice& payload, std::string* out) {
  wire::ScanRequest req;
  if (!wire::DecodeScan(payload, &req)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed SCAN payload"), out);
    return;
  }
  uint32_t limit =
      req.limit == 0 ? options_.default_scan_limit : req.limit;
  if (limit > options_.max_scan_limit) limit = options_.max_scan_limit;

  wire::ScanResponse resp;
  size_t bytes = 0;
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  if (req.start_key.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(req.start_key);
  }
  for (; iter->Valid(); iter->Next()) {
    if (!req.end_key.empty() && iter->key().compare(req.end_key) >= 0) break;
    if (resp.entries.size() >= limit || bytes >= options_.max_scan_bytes) {
      resp.truncated = true;
      break;
    }
    resp.entries.emplace_back(iter->key().ToString(),
                              iter->value().ToString());
    bytes += iter->key().size() + iter->value().size();
  }
  Status s = iter->status();
  iter.reset();
  wire::EncodeStatus(s, out);
  if (s.ok()) wire::EncodeScanResponse(resp, out);
}

void Server::DoInfo(const Slice& payload, std::string* out) {
  Slice property;
  if (!wire::DecodeInfo(payload, &property)) {
    wire::EncodeStatus(Status::InvalidArgument("malformed INFO payload"), out);
    return;
  }
  if (property.empty()) {
    // Binary DbStats snapshot.
    wire::EncodeStatus(Status::OK(), out);
    std::string encoded;
    wire::EncodeDbStats(db_->GetStats(), &encoded);
    PutLengthPrefixedSlice(out, encoded);
    return;
  }
  std::string value;
  if (property == Slice("server.stats")) {
    value = StatsString();
  } else if (!db_->GetProperty(property, &value)) {
    wire::EncodeStatus(
        Status::NotFound("unknown property", property.ToString()), out);
    return;
  }
  wire::EncodeStatus(Status::OK(), out);
  PutLengthPrefixedSlice(out, value);
}

}  // namespace iamdb
