#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "memtable/write_batch.h"
#include "shard/shard_map.h"
#include "util/coding.h"

namespace iamdb {

namespace {

bool SendAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

void SetOpTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Non-blocking connect with a deadline, restored to blocking on success.
int ConnectWithTimeout(const std::string& host, int port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }

  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (rc == 1 && (pfd.revents & POLLOUT)) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      rc = err == 0 ? 0 : -1;
    } else {
      rc = -1;
    }
  }
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {}

Client::~Client() { Close(); }

Status Client::Connect() {
  std::lock_guard<std::mutex> l(mu_);
  return ConnectLocked();
}

Status Client::ConnectLocked() {
  if (fd_ >= 0) return Status::OK();
  int backoff = options_.retry_backoff_ms;
  for (int attempt = 0; attempt <= options_.connect_retries; attempt++) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
    int fd = ConnectWithTimeout(options_.host, options_.port,
                                options_.connect_timeout_ms);
    if (fd >= 0) {
      SetOpTimeout(fd, options_.op_timeout_ms);
      fd_ = fd;
      recv_buffer_.clear();
      return Status::OK();
    }
  }
  return Status::IOError("connect failed",
                         options_.host + ":" + std::to_string(options_.port));
}

void Client::Close() {
  std::lock_guard<std::mutex> l(mu_);
  CloseLocked();
}

void Client::CloseLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  recv_buffer_.clear();
  // Pipelined requests still in flight died with the connection.  Remember
  // their ids so each pending Wait* fails with the distinct connection-lost
  // error instead of hanging or claiming the id was never submitted.
  // Already received responses in ready_ stay claimable.
  for (const auto& [id, opcode] : inflight_) lost_.insert(id);
  inflight_.clear();
}

bool Client::connected() const {
  std::lock_guard<std::mutex> l(mu_);
  return fd_ >= 0;
}

Status Client::ReadFrame(std::string* body) {
  char chunk[64 << 10];
  while (true) {
    Slice body_slice;
    size_t consumed = 0;
    wire::FrameResult r = wire::DecodeFrame(
        recv_buffer_.data(), recv_buffer_.size(), &body_slice, &consumed);
    if (r == wire::FrameResult::kOk) {
      body->assign(body_slice.data(), body_slice.size());
      recv_buffer_.erase(0, consumed);
      return Status::OK();
    }
    if (r == wire::FrameResult::kBadCrc) {
      return Status::Corruption("response checksum mismatch");
    }
    if (r == wire::FrameResult::kTooLarge) {
      return Status::Corruption("response frame length out of range");
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IOError("receive timeout");
    }
    if (n <= 0) return Status::IOError("connection closed by server");
    recv_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status Client::CallOnce(wire::Opcode opcode, const Slice& payload,
                        std::string* response_payload) {
  // Submit + wait, so a blocking call composes with responses still in
  // flight from the pipelined API (they get buffered, not mismatched).
  const uint64_t id = SubmitLocked(opcode, payload);
  if (id == 0) {
    return Status::IOError("send failed",
                           options_.host + ":" + std::to_string(options_.port));
  }
  return WaitLocked(id, response_payload);
}

Status Client::Call(wire::Opcode opcode, const Slice& payload,
                    bool idempotent, std::string* response_payload) {
  std::lock_guard<std::mutex> l(mu_);
  const bool was_connected = fd_ >= 0;
  Status s = CallOnce(opcode, payload, response_payload);
  // Retry once on a transport error over a pre-existing (possibly stale)
  // connection; fresh failures and non-idempotent ops surface directly.
  if (s.IsIOError() && idempotent && was_connected && fd_ < 0) {
    s = CallOnce(opcode, payload, response_payload);
  }
  return s;
}

Status Client::Ping() {
  std::string resp;
  return Call(wire::Opcode::kPing, Slice(), /*idempotent=*/true, &resp);
}

Status Client::Put(const Slice& key, const Slice& value) {
  std::string payload, resp;
  wire::EncodePut(key, value, &payload);
  return Call(wire::Opcode::kPut, payload, /*idempotent=*/false, &resp);
}

Status Client::Get(const Slice& key, std::string* value) {
  std::string payload, resp;
  wire::EncodeKey(key, &payload);
  Status s = Call(wire::Opcode::kGet, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  Slice p(resp), v;
  if (!GetLengthPrefixedSlice(&p, &v)) {
    return Status::Corruption("malformed GET response");
  }
  value->assign(v.data(), v.size());
  return Status::OK();
}

Status Client::MultiGet(const std::vector<std::string>& keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses) {
  std::string payload, resp;
  wire::EncodeMultiGet(keys, &payload);
  Status s =
      Call(wire::Opcode::kMultiGet, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  std::vector<wire::MultiGetEntry> entries;
  if (!wire::DecodeMultiGetResponse(resp, &entries) ||
      entries.size() != keys.size()) {
    return Status::Corruption("malformed MGET response");
  }
  values->clear();
  values->reserve(entries.size());
  statuses->clear();
  statuses->reserve(entries.size());
  for (wire::MultiGetEntry& e : entries) {
    statuses->push_back(wire::MakeStatus(e.code, Slice()));
    values->push_back(std::move(e.value));
  }
  return Status::OK();
}

Status Client::Delete(const Slice& key) {
  std::string payload, resp;
  wire::EncodeKey(key, &payload);
  return Call(wire::Opcode::kDelete, payload, /*idempotent=*/false, &resp);
}

Status Client::Write(const WriteBatch& batch) {
  std::string resp;
  return Call(wire::Opcode::kWrite, WriteBatchInternal::Contents(&batch),
              /*idempotent=*/false, &resp);
}

Status Client::Scan(const Slice& start_key, const Slice& end_key,
                    uint32_t limit, std::vector<wire::KeyValue>* entries,
                    bool* truncated) {
  wire::ScanRequest req;
  req.start_key = start_key.ToString();
  req.end_key = end_key.ToString();
  req.limit = limit;
  std::string payload, resp;
  wire::EncodeScan(req, &payload);
  Status s = Call(wire::Opcode::kScan, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  wire::ScanResponse decoded;
  if (!wire::DecodeScanResponse(resp, &decoded)) {
    return Status::Corruption("malformed SCAN response");
  }
  *entries = std::move(decoded.entries);
  if (truncated != nullptr) *truncated = decoded.truncated;
  return Status::OK();
}

Status Client::GetStats(DbStats* stats) {
  std::string payload, resp;
  wire::EncodeInfo(Slice(), &payload);
  Status s = Call(wire::Opcode::kInfo, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  Slice p(resp), encoded;
  if (!GetLengthPrefixedSlice(&p, &encoded) ||
      !wire::DecodeDbStats(encoded, stats)) {
    return Status::Corruption("malformed INFO response");
  }
  return Status::OK();
}

Status Client::GetProperty(const Slice& property, std::string* value) {
  std::string payload, resp;
  wire::EncodeInfo(property, &payload);
  Status s = Call(wire::Opcode::kInfo, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  Slice p(resp), v;
  if (!GetLengthPrefixedSlice(&p, &v)) {
    return Status::Corruption("malformed INFO response");
  }
  value->assign(v.data(), v.size());
  return Status::OK();
}

// --- pipelined API --------------------------------------------------------

uint64_t Client::SubmitLocked(wire::Opcode opcode, const Slice& payload) {
  if (!ConnectLocked().ok()) return 0;
  const uint64_t id = next_request_id_++;
  std::string frame;
  wire::BuildFrame(id, opcode, payload, &frame);
  if (!SendAll(fd_, frame.data(), frame.size())) {
    CloseLocked();
    return 0;
  }
  inflight_.emplace(id, opcode);
  return id;
}

uint64_t Client::SubmitPing() {
  std::lock_guard<std::mutex> l(mu_);
  return SubmitLocked(wire::Opcode::kPing, Slice());
}

uint64_t Client::SubmitPut(const Slice& key, const Slice& value) {
  std::string payload;
  wire::EncodePut(key, value, &payload);
  std::lock_guard<std::mutex> l(mu_);
  return SubmitLocked(wire::Opcode::kPut, payload);
}

uint64_t Client::SubmitGet(const Slice& key) {
  std::string payload;
  wire::EncodeKey(key, &payload);
  std::lock_guard<std::mutex> l(mu_);
  return SubmitLocked(wire::Opcode::kGet, payload);
}

uint64_t Client::SubmitMultiGet(const std::vector<std::string>& keys) {
  std::string payload;
  wire::EncodeMultiGet(keys, &payload);
  std::lock_guard<std::mutex> l(mu_);
  return SubmitLocked(wire::Opcode::kMultiGet, payload);
}

uint64_t Client::SubmitScan(const wire::ScanRequest& req) {
  std::string payload;
  wire::EncodeScan(req, &payload);
  std::lock_guard<std::mutex> l(mu_);
  return SubmitLocked(wire::Opcode::kScan, payload);
}

Status Client::WaitLocked(uint64_t id, std::string* response_payload) {
  auto DecodeReady = [&](const std::string& body_payload) {
    Slice rest(body_payload);
    Status op_status;
    if (!wire::DecodeStatus(&rest, &op_status)) {
      return Status::Corruption("malformed response status");
    }
    if (response_payload != nullptr) {
      response_payload->assign(rest.data(), rest.size());
    }
    return op_status;
  };

  while (true) {
    auto ready = ready_.find(id);
    if (ready != ready_.end()) {
      std::string body_payload = std::move(ready->second);
      ready_.erase(ready);
      return DecodeReady(body_payload);
    }
    auto lost = lost_.find(id);
    if (lost != lost_.end()) {
      lost_.erase(lost);
      return Status::IOError("connection lost with request in flight",
                             "id " + std::to_string(id));
    }
    auto inflight = inflight_.find(id);
    if (inflight == inflight_.end()) {
      return Status::IOError("request is not in flight",
                             "id " + std::to_string(id));
    }

    std::string body;
    Status s = ReadFrame(&body);
    if (!s.ok()) {
      CloseLocked();
      lost_.erase(id);  // this wait reports the failure for its own id
      return s;
    }
    uint64_t resp_id;
    wire::Opcode resp_op;
    Slice resp_payload;
    if (!wire::ParseBody(body, &resp_id, &resp_op, &resp_payload)) {
      CloseLocked();
      lost_.erase(id);
      return Status::Corruption("malformed response body");
    }
    if (resp_op == wire::Opcode::kError) {
      // id 0 = the stream is unrecoverable (framing error); a nonzero id
      // answers just that request and the connection survives.
      Status err;
      Slice p = resp_payload;
      if (!wire::DecodeStatus(&p, &err)) {
        err = Status::Corruption("server rejected request");
      }
      if (resp_id == 0) {
        CloseLocked();
        return err;
      }
      inflight_.erase(resp_id);
      if (resp_id == id) return err;
      continue;
    }
    auto expected = inflight_.find(resp_id);
    if (expected == inflight_.end() || expected->second != resp_op) {
      CloseLocked();
      lost_.erase(id);
      return Status::Corruption("response correlation mismatch");
    }
    inflight_.erase(expected);
    if (resp_id == id) {
      return DecodeReady(std::string(resp_payload.data(),
                                     resp_payload.size()));
    }
    ready_.emplace(resp_id,
                   std::string(resp_payload.data(), resp_payload.size()));
  }
}

Status Client::Wait(uint64_t id, std::string* response_payload) {
  std::lock_guard<std::mutex> l(mu_);
  return WaitLocked(id, response_payload);
}

Status Client::WaitGet(uint64_t id, std::string* value) {
  std::string resp;
  Status s = Wait(id, &resp);
  if (!s.ok()) return s;
  Slice p(resp), v;
  if (!GetLengthPrefixedSlice(&p, &v)) {
    return Status::Corruption("malformed GET response");
  }
  value->assign(v.data(), v.size());
  return Status::OK();
}

Status Client::WaitMultiGet(uint64_t id,
                            std::vector<wire::MultiGetEntry>* entries) {
  std::string resp;
  Status s = Wait(id, &resp);
  if (!s.ok()) return s;
  if (!wire::DecodeMultiGetResponse(resp, entries)) {
    return Status::Corruption("malformed MGET response");
  }
  return Status::OK();
}

Status Client::WaitScan(uint64_t id, wire::ScanResponse* resp) {
  std::string payload;
  Status s = Wait(id, &payload);
  if (!s.ok()) return s;
  if (!wire::DecodeScanResponse(payload, resp)) {
    return Status::Corruption("malformed SCAN response");
  }
  return Status::OK();
}

// --- cluster-aware API ----------------------------------------------------

Status Client::GetShardMap(int* num_shards) {
  std::string text;
  Status s = GetProperty("iamdb.shardmap", &text);
  if (s.IsNotFound()) {
    *num_shards = 1;  // pre-shard server: the whole keyspace is one shard
    return Status::OK();
  }
  if (!s.ok()) return s;
  ShardMap map;
  if (!ParseShardMap(text, &map) || map.num_shards == 0) {
    return Status::Corruption("malformed shard map", text);
  }
  *num_shards = static_cast<int>(map.num_shards);
  return Status::OK();
}

Status Client::EnsureShardMap(int* num_shards) {
  int cached = shard_count_.load(std::memory_order_acquire);
  if (cached == 0) {
    Status s = GetShardMap(&cached);
    if (!s.ok()) return s;
    shard_count_.store(cached, std::memory_order_release);
  }
  *num_shards = cached;
  return Status::OK();
}

Status Client::MultiGetSharded(const std::vector<std::string>& keys,
                               std::vector<std::string>* values,
                               std::vector<Status>* statuses) {
  values->clear();
  statuses->clear();
  if (keys.empty()) return Status::OK();

  int num_shards = 1;
  Status s = EnsureShardMap(&num_shards);
  if (!s.ok()) return s;
  if (num_shards <= 1) return MultiGet(keys, values, statuses);

  // Group key positions by owning shard, preserving input order within
  // each group so responses scatter back by position.
  std::vector<std::vector<size_t>> groups(num_shards);
  for (size_t i = 0; i < keys.size(); i++) {
    groups[ShardOf(keys[i], static_cast<uint32_t>(num_shards))].push_back(i);
  }

  struct Fanout {
    uint64_t id;
    const std::vector<size_t>* positions;
  };
  std::vector<Fanout> fanout;
  std::vector<std::string> sub_keys;
  Status submit_error;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    sub_keys.clear();
    sub_keys.reserve(group.size());
    for (size_t pos : group) sub_keys.push_back(keys[pos]);
    uint64_t id = SubmitMultiGet(sub_keys);
    if (id == 0) {
      submit_error = Status::IOError("send failed during MGET fan-out");
      break;
    }
    fanout.push_back({id, &group});
  }

  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  // Drain every submitted sub-request even after a failure so the
  // connection state stays coherent; first error wins.
  Status first_error = submit_error;
  for (const Fanout& f : fanout) {
    std::vector<wire::MultiGetEntry> entries;
    Status ws = WaitMultiGet(f.id, &entries);
    if (ws.ok() && entries.size() != f.positions->size()) {
      ws = Status::Corruption("MGET fan-out arity mismatch");
    }
    if (!ws.ok()) {
      if (first_error.ok()) first_error = ws;
      continue;
    }
    for (size_t j = 0; j < entries.size(); j++) {
      const size_t pos = (*f.positions)[j];
      (*statuses)[pos] = wire::MakeStatus(entries[j].code, Slice());
      (*values)[pos] = std::move(entries[j].value);
    }
  }
  if (!first_error.ok()) {
    values->clear();
    statuses->clear();
    return first_error;
  }
  return Status::OK();
}

Status Client::ScanSharded(const Slice& start_key, const Slice& end_key,
                           uint32_t limit, std::vector<wire::KeyValue>* entries,
                           bool* truncated) {
  entries->clear();
  if (truncated != nullptr) *truncated = false;

  int num_shards = 1;
  Status s = EnsureShardMap(&num_shards);
  if (!s.ok()) return s;
  if (num_shards <= 1) return Scan(start_key, end_key, limit, entries, truncated);

  // Every shard scans the same bounds with the same limit: to produce a
  // correct global prefix of L entries, each shard may need to contribute
  // up to all L of them.
  std::vector<uint64_t> ids;
  ids.reserve(num_shards);
  Status submit_error;
  for (int i = 0; i < num_shards; i++) {
    wire::ScanRequest req;
    req.start_key = start_key.ToString();
    req.end_key = end_key.ToString();
    req.limit = limit;
    req.shard = i;
    uint64_t id = SubmitScan(req);
    if (id == 0) {
      submit_error = Status::IOError("send failed during SCAN fan-out");
      break;
    }
    ids.push_back(id);
  }

  std::vector<wire::ScanResponse> responses(ids.size());
  Status first_error = submit_error;
  for (size_t i = 0; i < ids.size(); i++) {
    Status ws = WaitScan(ids[i], &responses[i]);
    if (!ws.ok() && first_error.ok()) first_error = ws;
  }
  if (!first_error.ok()) return first_error;

  // A truncated shard covers the range only up to its last returned key;
  // the merged result must stop at the lowest such frontier or it would
  // skip that shard's unseen keys.  A truncated shard with no entries
  // covers nothing.
  bool any_truncated = false;
  bool empty_frontier = false;
  std::string frontier;
  for (const auto& resp : responses) {
    if (!resp.truncated) continue;
    any_truncated = true;
    if (resp.entries.empty()) {
      empty_frontier = true;
    } else if (frontier.empty() || resp.entries.back().first < frontier) {
      frontier = resp.entries.back().first;
    }
  }
  if (empty_frontier) {
    if (truncated != nullptr) *truncated = true;
    return Status::OK();
  }

  // K-way merge by key.  Shards partition the keyspace, so keys never tie.
  std::vector<size_t> cursor(responses.size(), 0);
  while (true) {
    int best = -1;
    for (size_t i = 0; i < responses.size(); i++) {
      if (cursor[i] >= responses[i].entries.size()) continue;
      if (best < 0 || responses[i].entries[cursor[i]].first <
                          responses[best].entries[cursor[best]].first) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    wire::KeyValue& kv = responses[best].entries[cursor[best]++];
    if (any_truncated && kv.first > frontier) break;
    if (limit > 0 && entries->size() >= limit) {
      any_truncated = true;
      break;
    }
    entries->push_back(std::move(kv));
  }
  if (truncated != nullptr) *truncated = any_truncated;
  return Status::OK();
}

}  // namespace iamdb
