#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "memtable/write_batch.h"
#include "util/coding.h"

namespace iamdb {

namespace {

bool SendAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

void SetOpTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Non-blocking connect with a deadline, restored to blocking on success.
int ConnectWithTimeout(const std::string& host, int port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }

  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (rc == 1 && (pfd.revents & POLLOUT)) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      rc = err == 0 ? 0 : -1;
    } else {
      rc = -1;
    }
  }
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {}

Client::~Client() { Close(); }

Status Client::Connect() {
  std::lock_guard<std::mutex> l(mu_);
  return ConnectLocked();
}

Status Client::ConnectLocked() {
  if (fd_ >= 0) return Status::OK();
  int backoff = options_.retry_backoff_ms;
  for (int attempt = 0; attempt <= options_.connect_retries; attempt++) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
    int fd = ConnectWithTimeout(options_.host, options_.port,
                                options_.connect_timeout_ms);
    if (fd >= 0) {
      SetOpTimeout(fd, options_.op_timeout_ms);
      fd_ = fd;
      recv_buffer_.clear();
      return Status::OK();
    }
  }
  return Status::IOError("connect failed",
                         options_.host + ":" + std::to_string(options_.port));
}

void Client::Close() {
  std::lock_guard<std::mutex> l(mu_);
  CloseLocked();
}

void Client::CloseLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  recv_buffer_.clear();
  // Pipelined requests still in flight died with the connection; already
  // received responses in ready_ stay claimable.
  inflight_.clear();
}

bool Client::connected() const {
  std::lock_guard<std::mutex> l(mu_);
  return fd_ >= 0;
}

Status Client::ReadFrame(std::string* body) {
  char chunk[64 << 10];
  while (true) {
    Slice body_slice;
    size_t consumed = 0;
    wire::FrameResult r = wire::DecodeFrame(
        recv_buffer_.data(), recv_buffer_.size(), &body_slice, &consumed);
    if (r == wire::FrameResult::kOk) {
      body->assign(body_slice.data(), body_slice.size());
      recv_buffer_.erase(0, consumed);
      return Status::OK();
    }
    if (r == wire::FrameResult::kBadCrc) {
      return Status::Corruption("response checksum mismatch");
    }
    if (r == wire::FrameResult::kTooLarge) {
      return Status::Corruption("response frame length out of range");
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IOError("receive timeout");
    }
    if (n <= 0) return Status::IOError("connection closed by server");
    recv_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status Client::CallOnce(wire::Opcode opcode, const Slice& payload,
                        std::string* response_payload) {
  // Submit + wait, so a blocking call composes with responses still in
  // flight from the pipelined API (they get buffered, not mismatched).
  const uint64_t id = SubmitLocked(opcode, payload);
  if (id == 0) {
    return Status::IOError("send failed",
                           options_.host + ":" + std::to_string(options_.port));
  }
  return WaitLocked(id, response_payload);
}

Status Client::Call(wire::Opcode opcode, const Slice& payload,
                    bool idempotent, std::string* response_payload) {
  std::lock_guard<std::mutex> l(mu_);
  const bool was_connected = fd_ >= 0;
  Status s = CallOnce(opcode, payload, response_payload);
  // Retry once on a transport error over a pre-existing (possibly stale)
  // connection; fresh failures and non-idempotent ops surface directly.
  if (s.IsIOError() && idempotent && was_connected && fd_ < 0) {
    s = CallOnce(opcode, payload, response_payload);
  }
  return s;
}

Status Client::Ping() {
  std::string resp;
  return Call(wire::Opcode::kPing, Slice(), /*idempotent=*/true, &resp);
}

Status Client::Put(const Slice& key, const Slice& value) {
  std::string payload, resp;
  wire::EncodePut(key, value, &payload);
  return Call(wire::Opcode::kPut, payload, /*idempotent=*/false, &resp);
}

Status Client::Get(const Slice& key, std::string* value) {
  std::string payload, resp;
  wire::EncodeKey(key, &payload);
  Status s = Call(wire::Opcode::kGet, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  Slice p(resp), v;
  if (!GetLengthPrefixedSlice(&p, &v)) {
    return Status::Corruption("malformed GET response");
  }
  value->assign(v.data(), v.size());
  return Status::OK();
}

Status Client::MultiGet(const std::vector<std::string>& keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses) {
  std::string payload, resp;
  wire::EncodeMultiGet(keys, &payload);
  Status s =
      Call(wire::Opcode::kMultiGet, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  std::vector<wire::MultiGetEntry> entries;
  if (!wire::DecodeMultiGetResponse(resp, &entries) ||
      entries.size() != keys.size()) {
    return Status::Corruption("malformed MGET response");
  }
  values->clear();
  values->reserve(entries.size());
  statuses->clear();
  statuses->reserve(entries.size());
  for (wire::MultiGetEntry& e : entries) {
    statuses->push_back(wire::MakeStatus(e.code, Slice()));
    values->push_back(std::move(e.value));
  }
  return Status::OK();
}

Status Client::Delete(const Slice& key) {
  std::string payload, resp;
  wire::EncodeKey(key, &payload);
  return Call(wire::Opcode::kDelete, payload, /*idempotent=*/false, &resp);
}

Status Client::Write(const WriteBatch& batch) {
  std::string resp;
  return Call(wire::Opcode::kWrite, WriteBatchInternal::Contents(&batch),
              /*idempotent=*/false, &resp);
}

Status Client::Scan(const Slice& start_key, const Slice& end_key,
                    uint32_t limit, std::vector<wire::KeyValue>* entries,
                    bool* truncated) {
  wire::ScanRequest req;
  req.start_key = start_key.ToString();
  req.end_key = end_key.ToString();
  req.limit = limit;
  std::string payload, resp;
  wire::EncodeScan(req, &payload);
  Status s = Call(wire::Opcode::kScan, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  wire::ScanResponse decoded;
  if (!wire::DecodeScanResponse(resp, &decoded)) {
    return Status::Corruption("malformed SCAN response");
  }
  *entries = std::move(decoded.entries);
  if (truncated != nullptr) *truncated = decoded.truncated;
  return Status::OK();
}

Status Client::GetStats(DbStats* stats) {
  std::string payload, resp;
  wire::EncodeInfo(Slice(), &payload);
  Status s = Call(wire::Opcode::kInfo, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  Slice p(resp), encoded;
  if (!GetLengthPrefixedSlice(&p, &encoded) ||
      !wire::DecodeDbStats(encoded, stats)) {
    return Status::Corruption("malformed INFO response");
  }
  return Status::OK();
}

Status Client::GetProperty(const Slice& property, std::string* value) {
  std::string payload, resp;
  wire::EncodeInfo(property, &payload);
  Status s = Call(wire::Opcode::kInfo, payload, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  Slice p(resp), v;
  if (!GetLengthPrefixedSlice(&p, &v)) {
    return Status::Corruption("malformed INFO response");
  }
  value->assign(v.data(), v.size());
  return Status::OK();
}

// --- pipelined API --------------------------------------------------------

uint64_t Client::SubmitLocked(wire::Opcode opcode, const Slice& payload) {
  if (!ConnectLocked().ok()) return 0;
  const uint64_t id = next_request_id_++;
  std::string frame;
  wire::BuildFrame(id, opcode, payload, &frame);
  if (!SendAll(fd_, frame.data(), frame.size())) {
    CloseLocked();
    return 0;
  }
  inflight_.emplace(id, opcode);
  return id;
}

uint64_t Client::SubmitPing() {
  std::lock_guard<std::mutex> l(mu_);
  return SubmitLocked(wire::Opcode::kPing, Slice());
}

uint64_t Client::SubmitPut(const Slice& key, const Slice& value) {
  std::string payload;
  wire::EncodePut(key, value, &payload);
  std::lock_guard<std::mutex> l(mu_);
  return SubmitLocked(wire::Opcode::kPut, payload);
}

uint64_t Client::SubmitGet(const Slice& key) {
  std::string payload;
  wire::EncodeKey(key, &payload);
  std::lock_guard<std::mutex> l(mu_);
  return SubmitLocked(wire::Opcode::kGet, payload);
}

uint64_t Client::SubmitMultiGet(const std::vector<std::string>& keys) {
  std::string payload;
  wire::EncodeMultiGet(keys, &payload);
  std::lock_guard<std::mutex> l(mu_);
  return SubmitLocked(wire::Opcode::kMultiGet, payload);
}

Status Client::WaitLocked(uint64_t id, std::string* response_payload) {
  auto DecodeReady = [&](const std::string& body_payload) {
    Slice rest(body_payload);
    Status op_status;
    if (!wire::DecodeStatus(&rest, &op_status)) {
      return Status::Corruption("malformed response status");
    }
    if (response_payload != nullptr) {
      response_payload->assign(rest.data(), rest.size());
    }
    return op_status;
  };

  while (true) {
    auto ready = ready_.find(id);
    if (ready != ready_.end()) {
      std::string body_payload = std::move(ready->second);
      ready_.erase(ready);
      return DecodeReady(body_payload);
    }
    auto inflight = inflight_.find(id);
    if (inflight == inflight_.end()) {
      return Status::IOError("request is not in flight",
                             "id " + std::to_string(id));
    }

    std::string body;
    Status s = ReadFrame(&body);
    if (!s.ok()) {
      CloseLocked();
      return s;
    }
    uint64_t resp_id;
    wire::Opcode resp_op;
    Slice resp_payload;
    if (!wire::ParseBody(body, &resp_id, &resp_op, &resp_payload)) {
      CloseLocked();
      return Status::Corruption("malformed response body");
    }
    if (resp_op == wire::Opcode::kError) {
      // id 0 = the stream is unrecoverable (framing error); a nonzero id
      // answers just that request and the connection survives.
      Status err;
      Slice p = resp_payload;
      if (!wire::DecodeStatus(&p, &err)) {
        err = Status::Corruption("server rejected request");
      }
      if (resp_id == 0) {
        CloseLocked();
        return err;
      }
      inflight_.erase(resp_id);
      if (resp_id == id) return err;
      continue;
    }
    auto expected = inflight_.find(resp_id);
    if (expected == inflight_.end() || expected->second != resp_op) {
      CloseLocked();
      return Status::Corruption("response correlation mismatch");
    }
    inflight_.erase(expected);
    if (resp_id == id) {
      return DecodeReady(std::string(resp_payload.data(),
                                     resp_payload.size()));
    }
    ready_.emplace(resp_id,
                   std::string(resp_payload.data(), resp_payload.size()));
  }
}

Status Client::Wait(uint64_t id, std::string* response_payload) {
  std::lock_guard<std::mutex> l(mu_);
  return WaitLocked(id, response_payload);
}

Status Client::WaitGet(uint64_t id, std::string* value) {
  std::string resp;
  Status s = Wait(id, &resp);
  if (!s.ok()) return s;
  Slice p(resp), v;
  if (!GetLengthPrefixedSlice(&p, &v)) {
    return Status::Corruption("malformed GET response");
  }
  value->assign(v.data(), v.size());
  return Status::OK();
}

Status Client::WaitMultiGet(uint64_t id,
                            std::vector<wire::MultiGetEntry>* entries) {
  std::string resp;
  Status s = Wait(id, &resp);
  if (!s.ok()) return s;
  if (!wire::DecodeMultiGetResponse(resp, entries)) {
    return Status::Corruption("malformed MGET response");
  }
  return Status::OK();
}

}  // namespace iamdb
