#include "memtable/write_batch.h"

#include "memtable/memtable.h"
#include "util/coding.h"

namespace iamdb {

static constexpr size_t kHeader = 12;  // 8B sequence + 4B count

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader);
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

int WriteBatch::Count() const { return WriteBatchInternal::Count(this); }

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  input.remove_prefix(kHeader);
  Slice key, value;
  int found = 0;
  while (!input.empty()) {
    found++;
    char tag = input[0];
    input.remove_prefix(1);
    switch (static_cast<ValueType>(tag)) {
      case kTypeValue:
        if (GetLengthPrefixedSlice(&input, &key) &&
            GetLengthPrefixedSlice(&input, &value)) {
          handler->Put(key, value);
        } else {
          return Status::Corruption("bad WriteBatch Put");
        }
        break;
      case kTypeDeletion:
        if (GetLengthPrefixedSlice(&input, &key)) {
          handler->Delete(key);
        } else {
          return Status::Corruption("bad WriteBatch Delete");
        }
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != WriteBatchInternal::Count(this)) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

int WriteBatchInternal::Count(const WriteBatch* b) {
  return static_cast<int>(DecodeFixed32(b->rep_.data() + 8));
}

void WriteBatchInternal::SetCount(WriteBatch* b, int n) {
  EncodeFixed32(b->rep_.data() + 8, static_cast<uint32_t>(n));
}

SequenceNumber WriteBatchInternal::Sequence(const WriteBatch* b) {
  return DecodeFixed64(b->rep_.data());
}

void WriteBatchInternal::SetSequence(WriteBatch* b, SequenceNumber seq) {
  EncodeFixed64(b->rep_.data(), seq);
}

void WriteBatchInternal::SetContents(WriteBatch* b, const Slice& contents) {
  assert(contents.size() >= kHeader);
  b->rep_.assign(contents.data(), contents.size());
}

void WriteBatchInternal::Append(WriteBatch* dst, const WriteBatch* src) {
  SetCount(dst, Count(dst) + Count(src));
  assert(src->rep_.size() >= kHeader);
  dst->rep_.append(src->rep_.data() + kHeader, src->rep_.size() - kHeader);
}

namespace {

class MemTableInserter final : public WriteBatch::Handler {
 public:
  SequenceNumber sequence;
  MemTable* mem;

  void Put(const Slice& key, const Slice& value) override {
    mem->Add(sequence, kTypeValue, key, value);
    sequence++;
  }
  void Delete(const Slice& key) override {
    mem->Add(sequence, kTypeDeletion, key, Slice());
    sequence++;
  }
};

class UserBytesCounter final : public WriteBatch::Handler {
 public:
  uint64_t bytes = 0;
  void Put(const Slice& key, const Slice& value) override {
    bytes += key.size() + value.size();
  }
  void Delete(const Slice& key) override { bytes += key.size(); }
};

}  // namespace

Status WriteBatchInternal::InsertInto(const WriteBatch* batch,
                                      MemTable* memtable) {
  MemTableInserter inserter;
  inserter.sequence = Sequence(batch);
  inserter.mem = memtable;
  return batch->Iterate(&inserter);
}

uint64_t WriteBatchInternal::UserBytes(const WriteBatch* batch) {
  UserBytesCounter counter;
  batch->Iterate(&counter);
  return counter.bytes;
}

}  // namespace iamdb
