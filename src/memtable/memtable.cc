#include "memtable/memtable.h"

#include "util/coding.h"

namespace iamdb {

namespace {

// Entries are length-prefixed internal keys; decode for comparison.
Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = data;
  p = GetVarint32Ptr(p, p + 5, &len);
  return Slice(p, len);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* aptr,
                                        const char* bptr) const {
  Slice a = GetLengthPrefixedSliceAt(aptr);
  Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

MemTable::MemTable() : table_(comparator_, &arena_) {}

MemTable::~MemTable() = default;

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  const size_t key_size = key.size();
  const size_t val_size = value.size();
  const size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  std::memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  std::memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
  data_bytes_.fetch_add(key_size + val_size, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s) {
  Slice memkey = key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (!iter.Valid()) return false;

  // The seek landed on the first entry >= (user_key, seek_seq).  Check that
  // it belongs to the same user key.
  const char* entry = iter.key();
  uint32_t key_length;
  const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
  if (Slice(key_ptr, key_length - 8) != key.user_key()) return false;

  const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
  switch (static_cast<ValueType>(tag & 0xff)) {
    case kTypeValue: {
      Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
      value->assign(v.data(), v.size());
      *s = Status::OK();
      return true;
    }
    case kTypeDeletion:
      *s = Status::NotFound(Slice());
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(MemTable* mem)
      : mem_(mem), iter_(&mem->table_) {
    mem_->Ref();
  }
  ~MemTableIterator() override { mem_->Unref(); }

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override {
    // Build a length-prefixed key for the skiplist.
    tmp_.clear();
    PutVarint32(&tmp_, static_cast<uint32_t>(k.size()));
    tmp_.append(k.data(), k.size());
    iter_.Seek(tmp_.data());
  }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override {
    const char* entry = iter_.key();
    uint32_t key_length;
    const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
    return Slice(key_ptr, key_length);
  }
  Slice value() const override {
    const char* entry = iter_.key();
    uint32_t key_length;
    const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
    const char* value_ptr = key_ptr + key_length;
    uint32_t value_length;
    value_ptr = GetVarint32Ptr(value_ptr, value_ptr + 5, &value_length);
    return Slice(value_ptr, value_length);
  }
  Status status() const override { return Status::OK(); }

 private:
  MemTable* mem_;
  MemTable::Table::Iterator iter_;
  std::string tmp_;
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(this); }

}  // namespace iamdb
