// Lock-free-read skiplist (single writer at a time, concurrent readers
// without locks).  Writes are serialized by the DB's write queue; reads
// rely on release/acquire pointer publication — the standard LevelDB
// concurrency contract.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "util/arena.h"
#include "util/random.h"

namespace iamdb {

template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  // Objects allocated in *arena must remain allocated for the lifetime of
  // the skiplist object.
  explicit SkipList(Comparator cmp, Arena* arena);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // REQUIRES: nothing that compares equal to key is currently in the list;
  // no concurrent Insert.
  void Insert(const Key& key);

  bool Contains(const Key& key) const;

  class Iterator {
   public:
    explicit Iterator(const SkipList* list);

    bool Valid() const;
    const Key& key() const;
    void Next();
    void Prev();
    void Seek(const Key& target);
    void SeekToFirst();
    void SeekToLast();

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;

  inline int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  Node* NewNode(const Key& key, int height);
  int RandomHeight();
  bool Equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }

  bool KeyIsAfterNode(const Key& key, Node* n) const;

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const;
  Node* FindLessThan(const Key& key) const;
  Node* FindLast() const;

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
};

template <typename Key, class Comparator>
struct SkipList<Key, Comparator>::Node {
  explicit Node(const Key& k) : key(k) {}

  Key const key;

  Node* Next(int n) {
    assert(n >= 0);
    return next_[n].load(std::memory_order_acquire);
  }
  void SetNext(int n, Node* x) {
    assert(n >= 0);
    next_[n].store(x, std::memory_order_release);
  }
  Node* NoBarrier_Next(int n) {
    assert(n >= 0);
    return next_[n].load(std::memory_order_relaxed);
  }
  void NoBarrier_SetNext(int n, Node* x) {
    assert(n >= 0);
    next_[n].store(x, std::memory_order_relaxed);
  }

 private:
  // Array of length equal to the node height; next_[0] is the lowest level.
  std::atomic<Node*> next_[1];
};

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node* SkipList<Key, Comparator>::NewNode(
    const Key& key, int height) {
  char* node_memory = arena_->AllocateAligned(
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  return new (node_memory) Node(key);
}

template <typename Key, class Comparator>
inline SkipList<Key, Comparator>::Iterator::Iterator(const SkipList* list)
    : list_(list), node_(nullptr) {}

template <typename Key, class Comparator>
inline bool SkipList<Key, Comparator>::Iterator::Valid() const {
  return node_ != nullptr;
}

template <typename Key, class Comparator>
inline const Key& SkipList<Key, Comparator>::Iterator::key() const {
  assert(Valid());
  return node_->key;
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::Next() {
  assert(Valid());
  node_ = node_->Next(0);
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::Prev() {
  // No back pointers: search for the last node < key.
  assert(Valid());
  node_ = list_->FindLessThan(node_->key);
  if (node_ == list_->head_) node_ = nullptr;
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::Seek(const Key& target) {
  node_ = list_->FindGreaterOrEqual(target, nullptr);
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::SeekToFirst() {
  node_ = list_->head_->Next(0);
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::SeekToLast() {
  node_ = list_->FindLast();
  if (node_ == list_->head_) node_ = nullptr;
}

template <typename Key, class Comparator>
int SkipList<Key, Comparator>::RandomHeight() {
  static const unsigned int kBranching = 4;
  int height = 1;
  while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
    height++;
  }
  assert(height > 0);
  assert(height <= kMaxHeight);
  return height;
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::KeyIsAfterNode(const Key& key, Node* n) const {
  return (n != nullptr) && (compare_(n->key, key) < 0);
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindGreaterOrEqual(const Key& key,
                                              Node** prev) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (KeyIsAfterNode(key, next)) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) {
        return next;
      }
      level--;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLessThan(const Key& key) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    assert(x == head_ || compare_(x->key, key) < 0);
    Node* next = x->Next(level);
    if (next == nullptr || compare_(next->key, key) >= 0) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node* SkipList<Key, Comparator>::FindLast()
    const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next == nullptr) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
SkipList<Key, Comparator>::SkipList(Comparator cmp, Arena* arena)
    : compare_(cmp),
      arena_(arena),
      head_(NewNode(Key() /* any key will do */, kMaxHeight)),
      max_height_(1),
      rnd_(0xdeadbeef) {
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::Insert(const Key& key) {
  Node* prev[kMaxHeight];
  Node* x = FindGreaterOrEqual(key, prev);

  // Duplicate insertion is a caller bug (internal keys embed the sequence).
  assert(x == nullptr || !Equal(key, x->key));

  int height = RandomHeight();
  if (height > GetMaxHeight()) {
    for (int i = GetMaxHeight(); i < height; i++) {
      prev[i] = head_;
    }
    // Relaxed is fine: concurrent readers seeing the old height miss the
    // new upper links but still find the node via lower levels.
    max_height_.store(height, std::memory_order_relaxed);
  }

  x = NewNode(key, height);
  for (int i = 0; i < height; i++) {
    x->NoBarrier_SetNext(i, prev[i]->NoBarrier_Next(i));
    prev[i]->SetNext(i, x);  // release: publishes the node
  }
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::Contains(const Key& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && Equal(key, x->key);
}

}  // namespace iamdb
