// MemTable: the in-memory level (L0 of the LSA/IAM trees).  Entries are
// arena-allocated skiplist records:
//   varint32 internal_key_len | user_key | tag | varint32 value_len | value
// Reference-counted because flushes hand the immutable memtable to a
// background thread while readers may still be iterating it.
#pragma once

#include <atomic>
#include <string>

#include "core/dbformat.h"
#include "memtable/skiplist.h"
#include "table/iterator.h"
#include "util/arena.h"

namespace iamdb {

class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  // Total user-visible bytes added (key+value sizes), used for flush sizing.
  uint64_t data_bytes() const {
    return data_bytes_.load(std::memory_order_relaxed);
  }

  // Iterator keys are internal keys; value() is the user value.
  Iterator* NewIterator();

  // REQUIRES: external synchronization for writers (DB write queue).
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  // If a version of key.user_key() with sequence <= key's is present:
  // returns true and sets *s to OK (+ *value) for a put, NotFound for a
  // tombstone.  Returns false if this memtable has no visible version.
  bool Get(const LookupKey& key, std::string* value, Status* s);

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    InternalKeyComparator comparator;
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

  ~MemTable();  // private: use Unref()

  std::atomic<int> refs_{0};
  KeyComparator comparator_;
  Arena arena_;
  Table table_;
  std::atomic<uint64_t> num_entries_{0};
  std::atomic<uint64_t> data_bytes_{0};
};

}  // namespace iamdb
