// WriteBatch: atomic group of updates.  Wire format (also the WAL record
// payload):
//   sequence (fixed64) | count (fixed32) | records
//   record := kTypeValue  varstring key varstring value
//           | kTypeDeletion varstring key
// The DB's group-commit path concatenates batches, so one WAL record may
// carry many user batches.
#pragma once

#include <cstdint>
#include <string>

#include "core/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace iamdb {

class MemTable;

class WriteBatch {
 public:
  WriteBatch();

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  // Size of the serialized representation.
  size_t ApproximateSize() const { return rep_.size(); }
  int Count() const;

  // Callers iterating the batch contents.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

 private:
  friend class WriteBatchInternal;

  std::string rep_;
};

// Internal plumbing used by the DB write path and WAL recovery.
class WriteBatchInternal {
 public:
  static int Count(const WriteBatch* batch);
  static void SetCount(WriteBatch* batch, int n);
  static SequenceNumber Sequence(const WriteBatch* batch);
  static void SetSequence(WriteBatch* batch, SequenceNumber seq);
  static Slice Contents(const WriteBatch* batch) { return batch->rep_; }
  static size_t ByteSize(const WriteBatch* batch) { return batch->rep_.size(); }
  static void SetContents(WriteBatch* batch, const Slice& contents);
  static Status InsertInto(const WriteBatch* batch, MemTable* memtable);
  static void Append(WriteBatch* dst, const WriteBatch* src);
  // Sum of user key+value bytes (amp accounting).
  static uint64_t UserBytes(const WriteBatch* batch);
};

}  // namespace iamdb
