#include "stats/amp_stats.h"

#include <cstdio>

namespace iamdb {

const char* WriteReasonName(WriteReason r) {
  switch (r) {
    case WriteReason::kWal: return "wal";
    case WriteReason::kFlush: return "flush";
    case WriteReason::kAppend: return "append";
    case WriteReason::kMerge: return "merge";
    case WriteReason::kSplit: return "split";
    case WriteReason::kMove: return "move";
    case WriteReason::kMetadata: return "metadata";
    default: return "unknown";
  }
}

double AmpStats::LevelWriteAmp(int level) const {
  uint64_t user = user_bytes();
  if (user == 0) return 0.0;
  return static_cast<double>(level_bytes(level)) / user;
}

double AmpStats::TotalWriteAmp() const {
  uint64_t user = user_bytes();
  if (user == 0) return 0.0;
  uint64_t total = 0;
  for (int l = 0; l < kMaxLevels; l++) total += level_bytes(l);
  // level_bytes_ never includes WAL traffic (see RecordLevelWrite callers:
  // the WAL writer records reason kWal with level -1 routed to reasons
  // only via AmpStats::RecordWal).
  return static_cast<double>(total) / user;
}

int AmpStats::MaxRecordedLevel() const {
  int max_level = 0;
  for (int l = 0; l < kMaxLevels; l++) {
    if (level_bytes(l) > 0) max_level = l;
  }
  return max_level;
}

std::string AmpStats::ToString() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "user=%.1fMB total_wamp=%.2f\n",
                user_bytes() / 1048576.0, TotalWriteAmp());
  out += buf;
  for (int l = 0; l <= MaxRecordedLevel(); l++) {
    std::snprintf(buf, sizeof(buf), "  L%d: %.2f (%.1fMB)\n", l,
                  LevelWriteAmp(l), level_bytes(l) / 1048576.0);
    out += buf;
  }
  for (int r = 0; r < static_cast<int>(WriteReason::kNumReasons); r++) {
    uint64_t b = reason_bytes(static_cast<WriteReason>(r));
    if (b == 0) continue;
    std::snprintf(buf, sizeof(buf), "  reason %s: %.1fMB\n",
                  WriteReasonName(static_cast<WriteReason>(r)),
                  b / 1048576.0);
    out += buf;
  }
  return out;
}

void AmpStats::Add(const AmpStats& other) {
  user_bytes_.fetch_add(other.user_bytes(), std::memory_order_relaxed);
  for (int l = 0; l < kMaxLevels; l++) {
    level_bytes_[l].fetch_add(other.level_bytes(l),
                              std::memory_order_relaxed);
  }
  for (int r = 0; r < static_cast<int>(WriteReason::kNumReasons); r++) {
    reason_bytes_[r].fetch_add(other.reason_bytes(static_cast<WriteReason>(r)),
                               std::memory_order_relaxed);
  }
}

void AmpStats::Reset() {
  user_bytes_.store(0, std::memory_order_relaxed);
  for (auto& b : level_bytes_) b.store(0, std::memory_order_relaxed);
  for (auto& b : reason_bytes_) b.store(0, std::memory_order_relaxed);
}

}  // namespace iamdb
