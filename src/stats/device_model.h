// Device model: converts measured I/O (seeks + bytes) into modeled time for
// a parametric storage device.  This substitutes for the paper's physical
// 200GB SSD and 1.2TB 10k-RPM HDD: amplifications are measured exactly on
// the real/in-memory filesystem, while throughput and latency *shape* come
// from applying these profiles to the measured I/O stream.
//
// The byte counts fed in are *physical* (post-compression) bytes from
// CountingEnv, so enabling a block codec (table/compressor.h) automatically
// shows up here as fewer modeled transfer micros — no codec-specific terms
// are needed in the profiles.
#pragma once

#include <cstdint>
#include <string>

#include "stats/io_stats.h"

namespace iamdb {

struct DeviceProfile {
  std::string name;
  double seek_latency_us;      // cost of one positional I/O dispatch
  double read_bw_mbps;         // sequential read bandwidth
  double write_bw_mbps;        // sequential write bandwidth

  // Paper hardware analogues (Sec 6.1).
  static DeviceProfile SSD() { return {"SSD", 100.0, 500.0, 400.0}; }
  static DeviceProfile HDD() { return {"HDD", 8000.0, 150.0, 150.0}; }
};

class DeviceModel {
 public:
  explicit DeviceModel(DeviceProfile profile) : profile_(std::move(profile)) {}

  const DeviceProfile& profile() const { return profile_; }

  // Modeled microseconds for an I/O batch.  At X MB/s a device moves
  // exactly X bytes per microsecond, so bytes / bw_mbps is microseconds.
  double ReadMicros(uint64_t seeks, uint64_t bytes) const {
    return seeks * profile_.seek_latency_us + bytes / profile_.read_bw_mbps;
  }
  double WriteMicros(uint64_t ops, uint64_t bytes) const {
    // Writes are buffered/sequential: charge dispatch cost per sync-sized
    // batch rather than per append (one seek per 64 appends approximates
    // filesystem write-back clustering).
    return (ops / 64.0) * profile_.seek_latency_us +
           bytes / profile_.write_bw_mbps;
  }

  // Total modeled busy-time for a snapshot delta.
  double TotalMicros(const IoStatsSnapshot& delta) const {
    return ReadMicros(delta.read_ops, delta.bytes_read) +
           WriteMicros(delta.write_ops, delta.bytes_written);
  }

  // Modeled latency of a single user operation from its OpIoContext.
  double OpMicros(const OpIoContext& op) const {
    return op.seeks * profile_.seek_latency_us +
           op.bytes_read / profile_.read_bw_mbps +
           op.bytes_written / profile_.write_bw_mbps + op.stall_micros;
  }

 private:
  DeviceProfile profile_;
};

}  // namespace iamdb
