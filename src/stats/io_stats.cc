#include "stats/io_stats.h"

namespace iamdb {

namespace {
thread_local OpIoContext* tls_op_ctx = nullptr;
}  // namespace

OpIoScope::OpIoScope() : prev_(tls_op_ctx) { tls_op_ctx = &ctx_; }

OpIoScope::~OpIoScope() { tls_op_ctx = prev_; }

const OpIoContext& OpIoScope::context() const { return ctx_; }

void OpIoScope::RecordRead(uint64_t bytes) {
  if (tls_op_ctx != nullptr) {
    tls_op_ctx->seeks++;
    tls_op_ctx->bytes_read += bytes;
  }
}

void OpIoScope::RecordReadV(uint64_t bytes, uint64_t seeks) {
  if (tls_op_ctx != nullptr) {
    tls_op_ctx->seeks += seeks;
    tls_op_ctx->bytes_read += bytes;
  }
}

void OpIoScope::RecordWrite(uint64_t bytes) {
  if (tls_op_ctx != nullptr) tls_op_ctx->bytes_written += bytes;
}

void OpIoScope::RecordStall(uint64_t micros) {
  if (tls_op_ctx != nullptr) tls_op_ctx->stall_micros += micros;
}

}  // namespace iamdb
