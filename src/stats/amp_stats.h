// AmpStats: per-level write-amplification accounting, the primary metric of
// the paper (Tables 3 and 4).  Engines record every file write with its
// level and reason; write amp of level L = bytes written into L / bytes of
// user data ingested.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace iamdb {

enum class WriteReason {
  kWal = 0,
  kFlush,      // memtable -> first on-disk level
  kAppend,     // LSA/IAM append into a child node
  kMerge,      // merge-compaction rewrite
  kSplit,      // node split rewrite
  kMove,       // metadata-only move (bytes not rewritten; recorded as 0)
  kMetadata,   // MSTable footer rewrites on append
  kNumReasons
};

const char* WriteReasonName(WriteReason r);

class AmpStats {
 public:
  static constexpr int kMaxLevels = 16;

  void RecordUserWrite(uint64_t bytes) {
    user_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  // WAL traffic is tracked by reason only; the paper's per-level tables
  // exclude the log.
  void RecordWal(uint64_t bytes) {
    reason_bytes_[static_cast<int>(WriteReason::kWal)].fetch_add(
        bytes, std::memory_order_relaxed);
  }

  // `reason` must not be kWal (use RecordWal).
  void RecordLevelWrite(int level, WriteReason reason, uint64_t bytes) {
    if (level < 0) level = 0;
    if (level >= kMaxLevels) level = kMaxLevels - 1;
    level_bytes_[level].fetch_add(bytes, std::memory_order_relaxed);
    reason_bytes_[static_cast<int>(reason)].fetch_add(
        bytes, std::memory_order_relaxed);
  }

  uint64_t user_bytes() const {
    return user_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t level_bytes(int level) const {
    return level_bytes_[level].load(std::memory_order_relaxed);
  }
  uint64_t reason_bytes(WriteReason r) const {
    return reason_bytes_[static_cast<int>(r)].load(std::memory_order_relaxed);
  }

  // Write amp of one level (excludes WAL by construction: WAL writes are
  // recorded with reason kWal at level 0 but the paper's tables exclude the
  // log, so TotalWriteAmp sums levels only for non-WAL reasons).
  double LevelWriteAmp(int level) const;
  // Sum over levels, excluding the WAL (paper Sec 6.2: "the write
  // amplifications do not include what is incurred by writing log").
  double TotalWriteAmp() const;

  int MaxRecordedLevel() const;
  std::string ToString() const;
  void Reset();

  // Accumulates another instance's counters into this one (ShardedDB
  // presents the sum of its shards).  Relaxed snapshot of `other`:
  // individually consistent counters, like every other reader here.
  void Add(const AmpStats& other);

 private:
  std::atomic<uint64_t> user_bytes_{0};
  std::array<std::atomic<uint64_t>, kMaxLevels> level_bytes_{};
  std::array<std::atomic<uint64_t>,
             static_cast<int>(WriteReason::kNumReasons)>
      reason_bytes_{};
};

}  // namespace iamdb
