#include "stats/device_model.h"

// Header-only logic; this TU anchors the component in the build and hosts
// nothing else today.

namespace iamdb {}  // namespace iamdb
