// Exact I/O accounting.  Two granularities:
//  * IoStats — global, per-DB byte/seek counters fed by CountingEnv.
//  * OpIoContext — thread-local per-operation counters so benchmarks can
//    model the latency of an individual Get/Scan/Put from its actual I/O.
#pragma once

#include <atomic>
#include <cstdint>

namespace iamdb {

struct IoStatsSnapshot {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t write_ops = 0;   // distinct Append calls
  uint64_t read_ops = 0;    // distinct positional reads ("seeks")
  uint64_t fsyncs = 0;

  IoStatsSnapshot operator-(const IoStatsSnapshot& rhs) const {
    IoStatsSnapshot d;
    d.bytes_written = bytes_written - rhs.bytes_written;
    d.bytes_read = bytes_read - rhs.bytes_read;
    d.write_ops = write_ops - rhs.write_ops;
    d.read_ops = read_ops - rhs.read_ops;
    d.fsyncs = fsyncs - rhs.fsyncs;
    return d;
  }
};

class IoStats {
 public:
  void RecordWrite(uint64_t bytes) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    write_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordRead(uint64_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  // A vectored read: `seeks` distinct device positions covering `bytes`
  // total.  Coalesced segments cost one seek, so ReadV accounting shows
  // fewer read_ops than the equivalent loop of Read() calls.
  void RecordReadV(uint64_t bytes, uint64_t seeks) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_ops_.fetch_add(seeks, std::memory_order_relaxed);
  }
  void RecordSync() { fsyncs_.fetch_add(1, std::memory_order_relaxed); }

  IoStatsSnapshot Snapshot() const {
    IoStatsSnapshot s;
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.write_ops = write_ops_.load(std::memory_order_relaxed);
    s.read_ops = read_ops_.load(std::memory_order_relaxed);
    s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    bytes_written_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    write_ops_.store(0, std::memory_order_relaxed);
    read_ops_.store(0, std::memory_order_relaxed);
    fsyncs_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> write_ops_{0};
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> fsyncs_{0};
};

// Per-operation I/O gathered while the current thread executes one user
// operation.  Disk reads that hit the block cache never reach here, so the
// counts reflect true device traffic.
struct OpIoContext {
  uint64_t seeks = 0;        // positional reads issued
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t stall_micros = 0;  // time spent blocked on write stalls

  void Clear() { *this = OpIoContext{}; }
};

// Scoped access to the calling thread's op context.  Enabled only while a
// benchmark wraps an operation; otherwise recording is a no-op.
class OpIoScope {
 public:
  OpIoScope();
  ~OpIoScope();
  OpIoScope(const OpIoScope&) = delete;
  OpIoScope& operator=(const OpIoScope&) = delete;

  const OpIoContext& context() const;

  // Static recording hooks used by CountingEnv / stall logic.
  static void RecordRead(uint64_t bytes);
  static void RecordReadV(uint64_t bytes, uint64_t seeks);
  static void RecordWrite(uint64_t bytes);
  static void RecordStall(uint64_t micros);

 private:
  OpIoContext* prev_;
  OpIoContext ctx_;
};

}  // namespace iamdb
