// WAL record framing: 32KB blocks, each record fragment carrying
//   checksum (4B, crc32c of type+payload, masked) | length (2B) | type (1B)
// Records never span a block via FIRST/MIDDLE/LAST fragment types, so a
// reader can resynchronize after a torn write.
#pragma once

namespace iamdb::log {

enum RecordType {
  kZeroType = 0,  // preallocated / zeroed region
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
static constexpr int kMaxRecordType = kLastType;

static constexpr int kBlockSize = 32768;
static constexpr int kHeaderSize = 4 + 2 + 1;

}  // namespace iamdb::log
