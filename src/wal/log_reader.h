#pragma once

#include <cstdint>
#include <string>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"
#include "wal/log_format.h"

namespace iamdb::log {

class Reader {
 public:
  // Interface for reporting corruption during replay.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  // If checksum is true, verify every fragment's CRC.  *file must remain
  // live while this Reader is in use.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  // Read the next complete record into *record (backed by *scratch when
  // fragmented).  Returns false at EOF.  A record torn at the log tail is
  // silently dropped — the standard crash-recovery contract.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Internal extended codes for ReadPhysicalRecord.
  enum { kEof = kMaxRecordType + 1, kBadRecord = kMaxRecordType + 2 };

  unsigned int ReadPhysicalRecord(Slice* result);
  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  std::string backing_store_;
  Slice buffer_;
  bool eof_;
};

}  // namespace iamdb::log
