#pragma once

#include <cstdint>
#include <memory>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"
#include "wal/log_format.h"

namespace iamdb::log {

class Writer {
 public:
  // Writer appends to *dest, which must be initially empty or have length
  // dest_length (to resume an existing log).
  explicit Writer(WritableFile* dest, uint64_t dest_length = 0);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // current offset within the block

  // Pre-computed crc of the type byte, one per record type.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace iamdb::log
