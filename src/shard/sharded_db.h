// ShardedDB: N independent DBImpl instances behind the one DB interface,
// hash-partitioned by user key (shard_map.h).  This is the unit of
// horizontal scale: each shard owns its own WAL, group-commit front
// writer, memtables, manifest, compactions and sequence domain, so the
// last global serialization points of a single instance disappear —
// writers to different shards never touch the same mutex.
//
// Semantics (docs/SHARDING.md has the full contract):
//   * Single-key ops route to the owning shard and behave exactly like a
//     single instance.
//   * A WriteBatch is split per shard and applied shard-by-shard in shard
//     order.  Atomicity is per shard: a crash can persist the batch's
//     writes on some shards and not others (each shard is individually
//     prefix-consistent; asserted by the crash harness).
//   * Sequence numbers are per shard.  A snapshot is a vector of per-shard
//     snapshots taken in shard order, not a single global sequence; SCAN
//     merges per-shard iterators pinned to one such snapshot set.
//   * GetStats() sums shards via DbStats::operator+=; the per-shard
//     breakdown is the "iamdb.shard-stats" property.
//
// The shard count is fixed at create time and persisted in the SHARDMAP
// manifest; reopening with a different count is refused.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/snapshot.h"
#include "shard/shard_map.h"

namespace iamdb {

// Snapshot handle over one snapshot per shard (shard order).  Returned by
// ShardedDB::GetSnapshot; passing it to any other DB is undefined.
class ShardedSnapshot final : public Snapshot {
 public:
  ~ShardedSnapshot() override = default;
  const std::vector<const Snapshot*>& shards() const { return shards_; }

 private:
  friend class ShardedDB;
  std::vector<const Snapshot*> shards_;
};

class ShardedDB final : public DB {
 public:
  // Opens (creating if allowed) a sharded database at `name`.
  //   num_shards > 0: create with that count, or verify it matches the
  //                   persisted SHARDMAP (mismatch = InvalidArgument).
  //   num_shards == 0: open with the persisted count (absent = error).
  // Per-shard resources are divided from the shared Options: each shard
  // gets block_cache_capacity/N of cache and background_threads/N (min 1)
  // background threads, so a ShardedDB consumes roughly the same memory
  // budget as a single instance with the same Options.
  static Status Open(const Options& options, const std::string& name,
                     int num_shards, std::unique_ptr<DB>* dbptr);

  // Deletes all shard directories and the SHARDMAP manifest.
  static Status Destroy(const Options& options, const std::string& name);

  ~ShardedDB() override;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  // Groups the batch per owning shard and issues one native MultiGet per
  // shard, so coalesced table I/O survives sharding.  Read-point contract
  // matches GetSnapshot(): one snapshot per shard, taken in shard order.
  void MultiGet(const ReadOptions& options, size_t count, const Slice* keys,
                std::string* values, Status* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status WaitForQuiescence() override;
  Status FlushAll() override;
  DbStats GetStats() override;
  // Sum of the shards' amp counters, recomputed on each call into a
  // member scratch instance (callers are benchmarks sampling between
  // phases; concurrent calls would race the scratch and must not happen).
  const AmpStats& amp_stats() const override;
  bool GetProperty(const Slice& property, std::string* value) override;
  Status CheckInvariants(bool quiescent) override;

  int NumShards() const override {
    return static_cast<int>(shards_.size());
  }
  Iterator* NewShardIterator(const ReadOptions& options, int shard) override;

  const ShardMap& shard_map() const { return map_; }
  DB* shard(int i) { return shards_[i].get(); }

 private:
  ShardedDB(const ShardMap& map, std::vector<std::unique_ptr<DB>> shards);

  // Per-shard ReadOptions: the caller's sharded snapshot (when set) is
  // narrowed to the given shard's member snapshot.
  ReadOptions RouteRead(const ReadOptions& options, uint32_t shard) const;

  const ShardMap map_;
  std::vector<std::unique_ptr<DB>> shards_;
  mutable AmpStats agg_amp_stats_;  // scratch for amp_stats()
};

}  // namespace iamdb
