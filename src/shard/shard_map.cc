#include "shard/shard_map.h"

#include <cinttypes>
#include <cstdio>

#include "env/env.h"
#include "util/crc32c.h"

namespace iamdb {

std::string ShardMapFileName(const std::string& dbname) {
  return dbname + "/SHARDMAP";
}

std::string ShardDirName(const std::string& dbname, uint32_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%04u", shard);
  return dbname + "/" + buf;
}

std::string FormatShardMap(const ShardMap& map) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "v=%u shards=%u hash=%s", map.version,
                map.num_shards, map.hash.c_str());
  return buf;
}

bool ParseShardMap(const Slice& text, ShardMap* map) {
  char hash[32];
  unsigned version = 0, shards = 0;
  if (std::sscanf(text.ToString().c_str(), "v=%u shards=%u hash=%31s",
                  &version, &shards, hash) != 3) {
    return false;
  }
  if (version == 0 || shards == 0) return false;
  map->version = version;
  map->num_shards = shards;
  map->hash = hash;
  return true;
}

Status WriteShardMapFile(Env* env, const std::string& dbname,
                         const ShardMap& map) {
  std::string body = "iamdb-shardmap " + FormatShardMap(map) + "\n";
  char crc_line[24];
  std::snprintf(crc_line, sizeof(crc_line), "crc=%08x\n",
                crc32c::Value(body.data(), body.size()));
  body += crc_line;

  const std::string tmp = ShardMapFileName(dbname) + ".tmp";
  Status s = WriteStringToFile(env, body, tmp, /*sync=*/true);
  if (!s.ok()) return s;
  return env->RenameFile(tmp, ShardMapFileName(dbname));
}

Status ReadShardMapFile(Env* env, const std::string& dbname, ShardMap* map) {
  std::string contents;
  Status s = ReadFileToString(env, ShardMapFileName(dbname), &contents);
  if (!s.ok()) return s;

  const size_t crc_at = contents.rfind("crc=");
  if (crc_at == std::string::npos || contents.size() - crc_at < 13) {
    return Status::Corruption("SHARDMAP missing checksum");
  }
  unsigned expected = 0;
  if (std::sscanf(contents.c_str() + crc_at, "crc=%x", &expected) != 1 ||
      crc32c::Value(contents.data(), crc_at) != expected) {
    return Status::Corruption("SHARDMAP checksum mismatch");
  }

  const std::string magic = "iamdb-shardmap ";
  if (contents.compare(0, magic.size(), magic) != 0) {
    return Status::Corruption("SHARDMAP bad magic");
  }
  const size_t line_end = contents.find('\n');
  if (!ParseShardMap(Slice(contents.data() + magic.size(),
                           line_end - magic.size()),
                     map)) {
    return Status::Corruption("SHARDMAP unparseable");
  }
  if (map->hash != "splitmix64") {
    return Status::NotSupported("unknown shard hash scheme", map->hash);
  }
  return Status::OK();
}

}  // namespace iamdb
