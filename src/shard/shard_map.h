// Hash partitioning of the user keyspace across N independent DB
// instances, plus the small on-disk manifest (the SHARDMAP file) that
// pins the shard count and hash scheme at create time.
//
// The partition function is load-bearing persistent state: every key's
// owning shard is derived from it, so it can never change for an existing
// database (a different function would orphan every key in place).  The
// manifest records the scheme name so a future incompatible hash can be
// introduced under a new name instead of silently rehashing old data.
// See docs/SHARDING.md for the format and the resharding outlook.
#pragma once

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace iamdb {

class Env;

struct ShardMap {
  uint32_t version = 1;
  uint32_t num_shards = 1;
  std::string hash = "splitmix64";  // partition scheme name (pinned)
};

// SplitMix64 finalizer (Steele et al.): full-avalanche mixing of a 64-bit
// state.  Used to scatter the byte-hash below across shards.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// 64-bit user-key hash: FNV-1a over the bytes, finished with SplitMix64
// so short / sequential keys (the benchmarks' "user%012d") still spread
// evenly.  Pinned by test vectors in sharded_db_test.cc — do not change.
inline uint64_t ShardHash(const Slice& key) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (size_t i = 0; i < key.size(); i++) {
    h ^= static_cast<uint8_t>(key[i]);
    h *= 0x100000001b3ull;  // FNV-1a 64 prime
  }
  return SplitMix64(h);
}

inline uint32_t ShardOf(const Slice& key, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<uint32_t>(ShardHash(key) % num_shards);
}

// File / directory layout under the sharded root:
//   <dbname>/SHARDMAP        the manifest
//   <dbname>/shard-0000/...  one full single-instance DB per shard
std::string ShardMapFileName(const std::string& dbname);
std::string ShardDirName(const std::string& dbname, uint32_t shard);

// Single-line textual form, e.g. "v=1 shards=4 hash=splitmix64".  Also the
// value of the "iamdb.shardmap" property, which is how a cluster-aware
// client learns the routing function over the wire (docs/PROTOCOL.md).
std::string FormatShardMap(const ShardMap& map);
bool ParseShardMap(const Slice& text, ShardMap* map);

// Durable manifest I/O.  Write goes through a temp file + rename so a
// crash leaves either the old or the new map, never a torn one; the
// payload carries a CRC32C so a torn or bit-rotted file reads as
// Corruption instead of a wrong shard count.
Status WriteShardMapFile(Env* env, const std::string& dbname,
                         const ShardMap& map);
Status ReadShardMapFile(Env* env, const std::string& dbname, ShardMap* map);

}  // namespace iamdb
