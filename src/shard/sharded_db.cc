#include "shard/sharded_db.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "core/memory_arbiter.h"
#include "env/env.h"
#include "memtable/write_batch.h"

namespace iamdb {

namespace {

// K-way merge over per-shard user-key iterators.  Shards partition the
// keyspace, so no two children can ever stand on the same key — the merge
// is a pure interleave with no tie-breaking or version resolution (that
// already happened inside each shard's DBIter).  Bidirectional with the
// usual direction-switch resync: when reversing, every non-current child
// is repositioned relative to the current key before stepping.
class ShardMergingIterator final : public Iterator {
 public:
  explicit ShardMergingIterator(std::vector<std::unique_ptr<Iterator>> kids)
      : children_(std::move(kids)) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    direction_ = kForward;
    FindSmallest();
  }

  void SeekToLast() override {
    for (auto& child : children_) child->SeekToLast();
    direction_ = kReverse;
    FindLargest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    direction_ = kForward;
    FindSmallest();
  }

  void Next() override {
    assert(Valid());
    if (direction_ != kForward) {
      // Children other than current_ sit at the entry *before* key() (or
      // are exhausted on its left); put them at the first entry after it.
      // Keys are disjoint across shards, so Seek(key()) alone would land
      // a child exactly on key() only if it IS current_ — every other
      // child lands strictly past it, no extra advance needed.
      const std::string saved = key().ToString();
      for (auto& child : children_) {
        if (child.get() == current_) continue;
        child->Seek(saved);
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());
    if (direction_ != kReverse) {
      // Children other than current_ sit at the first entry >= key() (or
      // are exhausted on its right); put them at the last entry before it.
      const std::string saved = key().ToString();
      for (auto& child : children_) {
        if (child.get() == current_) continue;
        child->Seek(saved);
        if (child->Valid()) {
          // Landed at the first entry >= saved (never == saved: shards
          // are disjoint); step back to the last entry < saved.
          child->Prev();
        } else {
          // Every entry in this child is < saved: its last one qualifies.
          child->SeekToLast();
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    current_ = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (current_ == nullptr || child->key().compare(current_->key()) < 0) {
        current_ = child.get();
      }
    }
  }

  void FindLargest() {
    current_ = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (current_ == nullptr || child->key().compare(current_->key()) > 0) {
        current_ = child.get();
      }
    }
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
  Direction direction_ = kForward;
};

// Routes each record of a batch into its owning shard's sub-batch,
// preserving the batch's internal order within every shard.
struct ShardSplitter final : public WriteBatch::Handler {
  uint32_t num_shards = 1;
  std::vector<WriteBatch>* batches = nullptr;

  void Put(const Slice& key, const Slice& value) override {
    (*batches)[ShardOf(key, num_shards)].Put(key, value);
  }
  void Delete(const Slice& key) override {
    (*batches)[ShardOf(key, num_shards)].Delete(key);
  }
};

}  // namespace

Status ShardedDB::Open(const Options& options, const std::string& name,
                       int num_shards, std::unique_ptr<DB>* dbptr) {
  dbptr->reset();
  if (options.env == nullptr) {
    return Status::InvalidArgument("Options::env is required");
  }
  if (num_shards < 0 || num_shards > 1024) {
    return Status::InvalidArgument("num_shards must be in [0, 1024]");
  }
  Env* env = options.env;
  env->CreateDir(name);

  ShardMap map;
  Status s = ReadShardMapFile(env, name, &map);
  if (s.ok()) {
    if (num_shards > 0 && static_cast<uint32_t>(num_shards) !=
                              map.num_shards) {
      return Status::InvalidArgument(
          "shard count mismatch: SHARDMAP has " +
          std::to_string(map.num_shards) + ", requested " +
          std::to_string(num_shards));
    }
  } else if (s.IsCorruption() || s.IsNotSupported()) {
    return s;  // never guess over a torn or foreign manifest
  } else {
    // No manifest: this is a fresh sharded database.
    if (num_shards == 0) {
      return Status::InvalidArgument(name, "has no SHARDMAP manifest");
    }
    if (!options.create_if_missing) {
      return Status::InvalidArgument(name, "does not exist");
    }
    map.num_shards = static_cast<uint32_t>(num_shards);
    s = WriteShardMapFile(env, name, map);
    if (!s.ok()) return s;
  }

  // Split the shared memory / thread budgets across the shards.
  Options shard_options = options;
  shard_options.block_cache_capacity = std::max<uint64_t>(
      options.block_cache_capacity / map.num_shards, 1ull << 20);
  if (options.compressed_cache_capacity > 0) {
    // The compressed tier divides like the block cache; 0 stays 0 so the
    // tier is only instantiated when asked for.
    shard_options.compressed_cache_capacity = std::max<uint64_t>(
        options.compressed_cache_capacity / map.num_shards, 1ull << 20);
  }
  shard_options.background_threads = std::max(
      1, options.background_threads / static_cast<int>(map.num_shards));
  if (options.memory_budget_bytes > 0) {
    // The pooled budget divides like the caches, floored at the smallest
    // workable per-shard pool so Open-time validation cannot fail for a
    // budget that was valid cluster-wide.
    shard_options.memory_budget_bytes =
        std::max(options.memory_budget_bytes / map.num_shards,
                 MemoryArbiter::MinBudgetBytes(shard_options));
  }

  std::vector<std::unique_ptr<DB>> shards;
  shards.reserve(map.num_shards);
  for (uint32_t i = 0; i < map.num_shards; i++) {
    std::unique_ptr<DB> shard;
    s = DB::Open(shard_options, ShardDirName(name, i), &shard);
    if (!s.ok()) return s;
    shards.push_back(std::move(shard));
  }

  dbptr->reset(new ShardedDB(map, std::move(shards)));
  return Status::OK();
}

Status ShardedDB::Destroy(const Options& options, const std::string& name) {
  Env* env = options.env;
  ShardMap map;
  Status s = ReadShardMapFile(env, name, &map);
  if (!s.ok()) return Status::OK();  // nothing recognizable to destroy
  for (uint32_t i = 0; i < map.num_shards; i++) {
    Status d = DestroyDB(ShardDirName(name, i), options);
    if (!d.ok()) return d;
  }
  env->RemoveFile(ShardMapFileName(name));
  env->RemoveDir(name);
  return Status::OK();
}

ShardedDB::ShardedDB(const ShardMap& map,
                     std::vector<std::unique_ptr<DB>> shards)
    : map_(map), shards_(std::move(shards)) {}

ShardedDB::~ShardedDB() = default;

ReadOptions ShardedDB::RouteRead(const ReadOptions& options,
                                 uint32_t shard) const {
  ReadOptions ro = options;
  if (options.snapshot != nullptr) {
    ro.snapshot = static_cast<const ShardedSnapshot*>(options.snapshot)
                      ->shards()[shard];
  }
  return ro;
}

Status ShardedDB::Put(const WriteOptions& options, const Slice& key,
                      const Slice& value) {
  return shards_[ShardOf(key, map_.num_shards)]->Put(options, key, value);
}

Status ShardedDB::Delete(const WriteOptions& options, const Slice& key) {
  return shards_[ShardOf(key, map_.num_shards)]->Delete(options, key);
}

Status ShardedDB::Write(const WriteOptions& options, WriteBatch* updates) {
  if (shards_.size() == 1) return shards_[0]->Write(options, updates);

  std::vector<WriteBatch> batches(shards_.size());
  ShardSplitter splitter;
  splitter.num_shards = map_.num_shards;
  splitter.batches = &batches;
  Status s = updates->Iterate(&splitter);
  if (!s.ok()) return s;

  // Shard order, first error wins.  Atomicity is per shard: on error (or
  // a crash) a prefix of the shards may have applied — each shard is
  // individually atomic and prefix-consistent, the cross-shard batch is
  // not (docs/SHARDING.md).
  for (size_t i = 0; i < shards_.size(); i++) {
    if (batches[i].Count() == 0) continue;
    s = shards_[i]->Write(options, &batches[i]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedDB::Get(const ReadOptions& options, const Slice& key,
                      std::string* value) {
  const uint32_t shard = ShardOf(key, map_.num_shards);
  return shards_[shard]->Get(RouteRead(options, shard), key, value);
}

void ShardedDB::MultiGet(const ReadOptions& options, size_t count,
                         const Slice* keys, std::string* values,
                         Status* statuses) {
  if (count == 0) return;
  if (shards_.size() == 1) {
    shards_[0]->MultiGet(RouteRead(options, 0), count, keys, values,
                         statuses);
    return;
  }

  // Group key indices per owning shard, preserving batch order within each
  // group, then issue one native MultiGet per non-empty shard and scatter
  // the per-key results back.  Without an explicit snapshot each shard
  // picks its own read point (shard order) — the same view GetSnapshot()
  // would have pinned.
  std::vector<std::vector<size_t>> groups(shards_.size());
  for (size_t i = 0; i < count; i++) {
    groups[ShardOf(keys[i], map_.num_shards)].push_back(i);
  }

  std::vector<Slice> shard_keys;
  std::vector<std::string> shard_values;
  std::vector<Status> shard_statuses;
  for (uint32_t shard = 0; shard < shards_.size(); shard++) {
    const std::vector<size_t>& idx = groups[shard];
    if (idx.empty()) continue;
    shard_keys.clear();
    shard_keys.reserve(idx.size());
    for (size_t i : idx) shard_keys.push_back(keys[i]);
    shard_values.assign(idx.size(), std::string());
    shard_statuses.assign(idx.size(), Status::OK());
    shards_[shard]->MultiGet(RouteRead(options, shard), idx.size(),
                             shard_keys.data(), shard_values.data(),
                             shard_statuses.data());
    for (size_t j = 0; j < idx.size(); j++) {
      values[idx[j]] = std::move(shard_values[j]);
      statuses[idx[j]] = std::move(shard_statuses[j]);
    }
  }
}

Iterator* ShardedDB::NewIterator(const ReadOptions& options) {
  // Pin one snapshot per shard for the merge so the view is per-shard
  // consistent even while writers land on other shards mid-scan.
  const Snapshot* own_snapshot =
      options.snapshot == nullptr ? GetSnapshot() : nullptr;
  ReadOptions ro = options;
  if (own_snapshot != nullptr) ro.snapshot = own_snapshot;

  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(shards_.size());
  for (uint32_t i = 0; i < shards_.size(); i++) {
    children.emplace_back(shards_[i]->NewIterator(RouteRead(ro, i)));
  }
  Iterator* merged = new ShardMergingIterator(std::move(children));
  if (own_snapshot != nullptr) {
    merged->RegisterCleanup(
        [this, own_snapshot] { ReleaseSnapshot(own_snapshot); });
  }
  return merged;
}

Iterator* ShardedDB::NewShardIterator(const ReadOptions& options, int shard) {
  if (shard < 0 || shard >= NumShards()) {
    return NewErrorIterator(Status::InvalidArgument("shard out of range"));
  }
  return shards_[shard]->NewIterator(
      RouteRead(options, static_cast<uint32_t>(shard)));
}

const Snapshot* ShardedDB::GetSnapshot() {
  auto* snapshot = new ShardedSnapshot();
  snapshot->shards_.reserve(shards_.size());
  for (auto& shard : shards_) {
    snapshot->shards_.push_back(shard->GetSnapshot());
  }
  return snapshot;
}

void ShardedDB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  auto* sharded = static_cast<const ShardedSnapshot*>(snapshot);
  for (size_t i = 0; i < shards_.size(); i++) {
    shards_[i]->ReleaseSnapshot(sharded->shards()[i]);
  }
  delete sharded;
}

Status ShardedDB::WaitForQuiescence() {
  for (auto& shard : shards_) {
    Status s = shard->WaitForQuiescence();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedDB::FlushAll() {
  for (auto& shard : shards_) {
    Status s = shard->FlushAll();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

DbStats ShardedDB::GetStats() {
  DbStats total;
  for (auto& shard : shards_) total += shard->GetStats();
  return total;
}

const AmpStats& ShardedDB::amp_stats() const {
  agg_amp_stats_.Reset();
  for (const auto& shard : shards_) agg_amp_stats_.Add(shard->amp_stats());
  return agg_amp_stats_;
}

Status ShardedDB::CheckInvariants(bool quiescent) {
  for (size_t i = 0; i < shards_.size(); i++) {
    Status s = shards_[i]->CheckInvariants(quiescent);
    if (!s.ok()) {
      return Status::Corruption("shard " + std::to_string(i),
                                s.ToString());
    }
  }
  return Status::OK();
}

bool ShardedDB::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  if (property == Slice("iamdb.shardmap")) {
    *value = FormatShardMap(map_);
    return true;
  }
  if (property == Slice("iamdb.shard-stats")) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "shards=%u hash=%s\n", map_.num_shards,
                  map_.hash.c_str());
    value->append(buf);
    for (size_t i = 0; i < shards_.size(); i++) {
      DbStats s = shards_[i]->GetStats();
      std::snprintf(
          buf, sizeof(buf),
          "[shard %zu] user=%llu space=%llu wamp=%.2f cache=%llu/%llu "
          "debt=%llu stall_us=%llu\n",
          i, static_cast<unsigned long long>(s.user_bytes),
          static_cast<unsigned long long>(s.space_used_bytes),
          s.total_write_amp,
          static_cast<unsigned long long>(s.cache_hits),
          static_cast<unsigned long long>(s.cache_hits + s.cache_misses),
          static_cast<unsigned long long>(s.pending_debt_bytes),
          static_cast<unsigned long long>(s.stall_micros));
      value->append(buf);
    }
    return true;
  }
  if (property == Slice("iamdb.approximate-memory-usage")) {
    // Numeric property: sum instead of concatenating.
    uint64_t total = 0;
    for (auto& shard : shards_) {
      std::string v;
      if (!shard->GetProperty(property, &v)) return false;
      total += std::strtoull(v.c_str(), nullptr, 10);
    }
    *value = std::to_string(total);
    return true;
  }
  // Text properties: concatenate per-shard sections.
  for (size_t i = 0; i < shards_.size(); i++) {
    std::string v;
    if (!shards_[i]->GetProperty(property, &v)) {
      value->clear();
      return false;
    }
    value->append("[shard " + std::to_string(i) + "]\n");
    value->append(v);
  }
  return true;
}

}  // namespace iamdb
