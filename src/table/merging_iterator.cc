#include "table/merging_iterator.h"

#include <cassert>
#include <memory>
#include <vector>

namespace iamdb {

namespace {

class MergingIterator final : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator* comparator, Iterator** children,
                  int n)
      : comparator_(comparator), current_(nullptr) {
    children_.reserve(n);
    for (int i = 0; i < n; i++) children_.emplace_back(children[i]);
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (auto& child : children_) child->SeekToLast();
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    assert(Valid());
    if (direction_ != kForward) {
      // All non-current children must be repositioned after current's key.
      for (auto& child : children_) {
        if (child.get() == current_) continue;
        child->Seek(key());
        if (child->Valid() &&
            comparator_->Compare(key(), child->key()) == 0) {
          child->Next();
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());
    if (direction_ != kReverse) {
      for (auto& child : children_) {
        if (child.get() == current_) continue;
        child->Seek(key());
        if (child->Valid()) {
          child->Prev();  // entry strictly before key()
        } else {
          child->SeekToLast();  // everything in child is before key()
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  // Linear scan: child counts are small (sequences per node <= 2t) and this
  // keeps ties deterministic (lowest index wins).
  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (smallest == nullptr ||
          comparator_->Compare(child->key(), smallest->key()) < 0) {
        smallest = child.get();
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
      auto& child = *it;
      if (!child->Valid()) continue;
      if (largest == nullptr ||
          comparator_->Compare(child->key(), largest->key()) > 0) {
        largest = child.get();
      }
    }
    current_ = largest;
  }

  const InternalKeyComparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_ = kForward;
};

}  // namespace

Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             Iterator** children, int n) {
  assert(n >= 0);
  if (n == 0) return NewEmptyIterator();
  if (n == 1) return children[0];
  return new MergingIterator(comparator, children, n);
}

}  // namespace iamdb
