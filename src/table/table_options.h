// Knobs for the physical table layer, shared by both engines.
#pragma once

#include <cstddef>

namespace iamdb {

class LruCache;
class RateLimiter;

struct TableOptions {
  // Target uncompressed size of a data block (paper: records are
  // partitioned into 4KB blocks).
  size_t block_size = 4096;

  // Keys between restart points for prefix compression.
  int block_restart_interval = 16;

  // Bloom bits per key; paper Sec 6.1 uses 14 (=> ~0.2% false positives).
  int bloom_bits_per_key = 14;

  // Verify block CRCs on read.
  bool verify_checksums = true;

  // Block cache, or nullptr to read through.  Not owned.
  LruCache* block_cache = nullptr;

  // Paces table-build writes (compaction/flush output) when non-null; the
  // priority comes from the calling thread (RateLimiter::ScopedPriority).
  // Not owned.  Foreground WAL writes never pass through the table layer,
  // so user writes are never paced.
  RateLimiter* rate_limiter = nullptr;
};

}  // namespace iamdb
