// Knobs for the physical table layer, shared by both engines.
#pragma once

#include <cstddef>
#include <cstdint>

namespace iamdb {

class LruCache;
class RateLimiter;
struct CompressionStats;

// Per-block codec recorded in the one-byte type tag of format-v2 block
// trailers (docs/FORMAT.md).  Values are on-disk and must not change.
enum class CompressionType : uint8_t {
  kNone = 0,      // raw block bytes (also the per-block fallback)
  kColumnar = 1,  // column-split codec for fixed-size YCSB-style records
  kLz = 2,        // general-purpose LZ77 byte codec
};

struct TableOptions {
  // Target uncompressed size of a data block (paper: records are
  // partitioned into 4KB blocks).
  size_t block_size = 4096;

  // Keys between restart points for prefix compression.
  int block_restart_interval = 16;

  // Bloom bits per key; paper Sec 6.1 uses 14 (=> ~0.2% false positives).
  int bloom_bits_per_key = 14;

  // Verify block CRCs on read.
  bool verify_checksums = true;

  // Per-block codec for newly written data blocks.  Blocks that do not
  // shrink enough (see compression_max_stored_fraction) are stored raw;
  // metadata blocks are always raw.  Appends to a format-v1 file stay raw
  // regardless, so one file never mixes framing versions.
  CompressionType compression = CompressionType::kNone;

  // A compressed block is kept only when stored_size <= uncompressed_size *
  // this fraction; otherwise the block falls back to raw.  Saves decompress
  // work on blocks that barely shrink.
  double compression_max_stored_fraction = 0.875;

  // Block cache, or nullptr to read through.  Not owned.  Entries are
  // charged at their uncompressed (resident) size.
  LruCache* block_cache = nullptr;

  // Second cache tier holding still-compressed block bytes (charged at
  // stored size).  An uncompressed-tier miss that hits here decompresses
  // from memory instead of re-reading the device.  nullptr = tier off.
  // Not owned.
  LruCache* compressed_block_cache = nullptr;

  // Compression/decompression counters, shared across all tables of a DB
  // (see stats in core/db.h).  Not owned; may be nullptr.
  CompressionStats* compression_stats = nullptr;

  // Paces table-build writes (compaction/flush output) when non-null; the
  // priority comes from the calling thread (RateLimiter::ScopedPriority).
  // Not owned.  Foreground WAL writes never pass through the table layer,
  // so user writes are never paced.
  RateLimiter* rate_limiter = nullptr;
};

}  // namespace iamdb
