// BlockBuilder: serializes sorted key/value entries into one ~4KB block with
// shared-prefix key compression and restart points for binary search.
//
// Entry:   shared_len | non_shared_len | value_len | key_delta | value
// Trailer: restart offsets (fixed32 each) | num_restarts (fixed32)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace iamdb {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();

  // REQUIRES: key > all previously added keys (internal-key order is
  // enforced by callers; the builder itself is comparator-agnostic).
  void Add(const Slice& key, const Slice& value);

  // Finish building; returns a slice valid until Reset().
  Slice Finish();

  size_t CurrentSizeEstimate() const;
  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;
  bool finished_;
  std::string last_key_;
};

}  // namespace iamdb
