#include "table/cache.h"

#include <atomic>

namespace iamdb {

struct LruCache::Shard {
  struct Entry {
    std::string key;
    ValuePtr value;
    size_t charge;
  };
  using List = std::list<Entry>;

  std::mutex mu;
  List lru;  // front = most recent
  std::unordered_map<std::string, List::iterator> index;
  size_t usage = 0;
  size_t capacity = 0;

  void EvictIfNeeded() {
    while (usage > capacity && !lru.empty()) {
      const Entry& victim = lru.back();
      usage -= victim.charge;
      index.erase(victim.key);
      lru.pop_back();
    }
  }
};

LruCache::LruCache(size_t capacity_bytes)
    : capacity_(capacity_bytes), shards_(new Shard[kNumShards]) {
  for (int i = 0; i < kNumShards; i++) {
    shards_[i].capacity = capacity_bytes / kNumShards;
  }
}

LruCache::~LruCache() = default;

LruCache::Shard* LruCache::GetShard(const Slice& key) {
  return &shards_[Hash(key) % kNumShards];
}

void LruCache::Insert(const Slice& key, ValuePtr value, size_t charge) {
  Shard* shard = GetShard(key);
  std::lock_guard<std::mutex> l(shard->mu);
  std::string k = key.ToString();
  auto it = shard->index.find(k);
  if (it != shard->index.end()) {
    shard->usage -= it->second->charge;
    shard->lru.erase(it->second);
    shard->index.erase(it);
  }
  shard->lru.push_front(Shard::Entry{std::move(k), std::move(value), charge});
  shard->index[shard->lru.front().key] = shard->lru.begin();
  shard->usage += charge;
  shard->EvictIfNeeded();
}

LruCache::ValuePtr LruCache::Lookup(const Slice& key) {
  Shard* shard = GetShard(key);
  std::lock_guard<std::mutex> l(shard->mu);
  auto it = shard->index.find(key.ToString());
  if (it == shard->index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  return it->second->value;
}

void LruCache::Erase(const Slice& key) {
  Shard* shard = GetShard(key);
  std::lock_guard<std::mutex> l(shard->mu);
  auto it = shard->index.find(key.ToString());
  if (it == shard->index.end()) return;
  shard->usage -= it->second->charge;
  shard->lru.erase(it->second);
  shard->index.erase(it);
}

size_t LruCache::usage() const {
  size_t total = 0;
  for (int i = 0; i < kNumShards; i++) {
    std::lock_guard<std::mutex> l(shards_[i].mu);
    total += shards_[i].usage;
  }
  return total;
}

void LruCache::SetCapacity(size_t capacity_bytes) {
  capacity_ = capacity_bytes;
  for (int i = 0; i < kNumShards; i++) {
    std::lock_guard<std::mutex> l(shards_[i].mu);
    shards_[i].capacity = capacity_bytes / kNumShards;
    shards_[i].EvictIfNeeded();
  }
}

}  // namespace iamdb
