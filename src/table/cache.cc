#include "table/cache.h"

namespace iamdb {

struct LruCache::Shard {
  struct Entry {
    BlockCacheKey key;
    ValuePtr value;
    size_t charge;
  };
  using List = std::list<Entry>;

  std::mutex mu;
  List lru;  // front = most recent
  std::unordered_map<BlockCacheKey, List::iterator, BlockCacheKeyHash> index;
  size_t usage = 0;
  size_t capacity = 0;

  void EvictIfNeeded() {
    while (usage > capacity && !lru.empty()) {
      const Entry& victim = lru.back();
      usage -= victim.charge;
      index.erase(victim.key);
      lru.pop_back();
    }
  }
};

LruCache::LruCache(size_t capacity_bytes)
    : capacity_(capacity_bytes), shards_(new Shard[kNumShards]) {
  for (int i = 0; i < kNumShards; i++) {
    shards_[i].capacity = capacity_bytes / kNumShards;
  }
}

LruCache::~LruCache() = default;

LruCache::Shard* LruCache::GetShard(const BlockCacheKey& key) {
  // High bits: decorrelated from the unordered_map's bucket choice.
  static_assert(kNumShards == 16 && sizeof(size_t) == 8,
                "shard selector takes the top 4 bits of a 64-bit hash");
  return &shards_[BlockCacheKeyHash{}(key) >> 60];
}

void LruCache::Insert(const BlockCacheKey& key, ValuePtr value, size_t charge) {
  Shard* shard = GetShard(key);
  std::lock_guard<std::mutex> l(shard->mu);
  // Single probe: try_emplace either finds the existing slot (update the
  // entry in place and splice it to the front) or claims a fresh one.
  auto [it, inserted] = shard->index.try_emplace(key);
  if (inserted) {
    shard->lru.push_front(Shard::Entry{key, std::move(value), charge});
    it->second = shard->lru.begin();
  } else {
    Shard::Entry& entry = *it->second;
    shard->usage -= entry.charge;
    entry.value = std::move(value);
    entry.charge = charge;
    shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  }
  shard->usage += charge;
  shard->EvictIfNeeded();
}

LruCache::ValuePtr LruCache::InsertIfAbsent(const BlockCacheKey& key,
                                            ValuePtr value, size_t charge) {
  Shard* shard = GetShard(key);
  std::lock_guard<std::mutex> l(shard->mu);
  auto [it, inserted] = shard->index.try_emplace(key);
  if (!inserted) {
    // Lost the fill race: keep the resident copy, just promote it.
    shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
    return it->second->value;
  }
  ValuePtr resident = value;  // survives even if eviction reclaims the entry
  shard->lru.push_front(Shard::Entry{key, std::move(value), charge});
  it->second = shard->lru.begin();
  shard->usage += charge;
  shard->EvictIfNeeded();
  return resident;
}

LruCache::ValuePtr LruCache::Lookup(const BlockCacheKey& key) {
  Shard* shard = GetShard(key);
  std::lock_guard<std::mutex> l(shard->mu);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  return it->second->value;
}

void LruCache::Erase(const BlockCacheKey& key) {
  Shard* shard = GetShard(key);
  std::lock_guard<std::mutex> l(shard->mu);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) return;
  shard->usage -= it->second->charge;
  shard->lru.erase(it->second);
  shard->index.erase(it);
}

size_t LruCache::usage() const {
  size_t total = 0;
  for (int i = 0; i < kNumShards; i++) {
    std::lock_guard<std::mutex> l(shards_[i].mu);
    total += shards_[i].usage;
  }
  return total;
}

void LruCache::SetCapacity(size_t capacity_bytes) {
  capacity_.store(capacity_bytes, std::memory_order_relaxed);
  for (int i = 0; i < kNumShards; i++) {
    std::lock_guard<std::mutex> l(shards_[i].mu);
    shards_[i].capacity = capacity_bytes / kNumShards;
    shards_[i].EvictIfNeeded();
  }
}

}  // namespace iamdb
