// SequenceBuilder: writes one sorted sequence's data blocks into an MSTable
// file.  The index and bloom contents are returned to the caller (the
// MSTable writer) rather than written inline, because MSTables cluster all
// metadata at the end of the file (paper Sec 4.1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "env/env.h"
#include "table/block_builder.h"
#include "table/bloom.h"
#include "table/compressor.h"
#include "table/format.h"
#include "table/table_options.h"

namespace iamdb {

class SequenceBuilder {
 public:
  // Writes data blocks to *file starting at file offset `start_offset`
  // (which must be the file's current end).  Neither pointer is owned.
  // `format_version` selects the block framing; compression only applies
  // from kFormatVersion2 on (appends to v1 files stay raw).
  SequenceBuilder(const TableOptions& options, WritableFile* file,
                  uint64_t start_offset,
                  uint32_t format_version = kCurrentFormatVersion);

  SequenceBuilder(const SequenceBuilder&) = delete;
  SequenceBuilder& operator=(const SequenceBuilder&) = delete;

  // REQUIRES: internal keys added in strictly increasing order.
  Status Add(const Slice& internal_key, const Slice& value);

  // Flushes the final data block.  After Finish():
  //  * meta() describes the sequence (handles unset — the MSTable writer
  //    fills them after writing the metadata region),
  //  * index_contents() / bloom_contents() are ready to be written there,
  //  * end_offset() is the file offset just past the last data block.
  Status Finish();

  uint64_t num_entries() const { return meta_.num_entries; }
  uint64_t end_offset() const { return offset_; }
  // Uncompressed bytes emitted so far (block contents + per-block trailer,
  // as if every block were stored raw).  SequenceMeta::data_bytes records
  // this, keeping node-capacity decisions — and therefore tree shape —
  // independent of the codec; physical footprint is tracked by meta_end.
  uint64_t logical_bytes() const { return logical_bytes_; }
  const SequenceMeta& meta() const { return meta_; }
  SequenceMeta& mutable_meta() { return meta_; }
  Slice index_contents() const { return index_contents_; }
  Slice bloom_contents() const { return bloom_contents_; }

 private:
  Status FlushDataBlock();

  const TableOptions options_;
  InternalKeyComparator icmp_;
  BloomFilterPolicy bloom_policy_;
  WritableFile* file_;
  uint64_t start_offset_;
  uint64_t offset_;
  uint64_t logical_bytes_ = 0;
  uint32_t format_version_;
  const Compressor* compressor_;  // nullptr when writing raw
  std::string compressed_scratch_;

  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::string last_key_;
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;

  // Bloom input: user keys of every entry, stored flat.
  std::string bloom_keys_flat_;
  std::vector<size_t> bloom_key_offsets_;

  SequenceMeta meta_;
  std::string index_contents_;
  std::string bloom_contents_;
  bool finished_ = false;
  Status status_;
};

}  // namespace iamdb
