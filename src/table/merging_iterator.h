// MergingIterator: k-way merge over child iterators, yielding their union
// in internal-key order.  This is how multi-sequence MSTable nodes, levels
// and the whole tree are presented as one sorted stream (paper Sec 4.1:
// "a scan ... merges them to get the sorted result").
#pragma once

#include "core/dbformat.h"
#include "table/iterator.h"

namespace iamdb {

// Takes ownership of children[0..n-1].  When two children are positioned on
// equal keys, the child with the smaller index wins first — callers order
// children newest-first so MVCC resolution in db_iter sees newest versions
// first (internal keys already embed the sequence number, so exact ties
// cannot occur across valid inputs).
Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             Iterator** children, int n);

}  // namespace iamdb
