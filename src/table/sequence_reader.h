// SequenceReader: query interface over one sorted sequence of an MSTable.
// Index and bloom contents live in memory (the paper assumes all table
// metadata is cached); data blocks are fetched through the block cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/dbformat.h"
#include "core/multiget.h"
#include "core/options.h"
#include "table/block.h"
#include "table/bloom.h"
#include "table/cache.h"
#include "table/format.h"
#include "table/iterator.h"
#include "table/table_options.h"

namespace iamdb {

class SequenceReader {
 public:
  // `file` must outlive the reader (owned by the MSTableReader).
  // `format_version` comes from the table trailer and selects the block
  // framing (v2 blocks carry a compression-type tag).
  SequenceReader(const TableOptions& options, const InternalKeyComparator* cmp,
                 RandomAccessFile* file, uint64_t file_number,
                 SequenceMeta meta, std::string index_contents,
                 std::string bloom_contents,
                 uint32_t format_version = kCurrentFormatVersion);

  SequenceReader(const SequenceReader&) = delete;
  SequenceReader& operator=(const SequenceReader&) = delete;

  const SequenceMeta& meta() const { return meta_; }
  Slice index_contents() const { return index_contents_raw_; }
  Slice bloom_contents() const { return bloom_contents_; }

  // Bloom check on the user key; false means definitely absent.
  bool KeyMayMatch(const Slice& user_key) const;

  enum class GetState { kNotFound, kFound, kDeleted, kCorrupt };

  // Looks up the newest entry for ikey's user key with sequence <= ikey's.
  // kFound fills *value.
  Status Get(const ReadOptions& options, const Slice& ikey, std::string* value,
             GetState* state) const;

  // Batched lookup.  `reqs` are still-pending requests sorted by internal
  // key.  The bloom filter and in-memory index are consulted once per key;
  // all cache-missing data blocks are fetched with a single vectored ReadV
  // (adjacent blocks coalesce into one device read) and inserted into each
  // cache tier at most once.  Requests resolved here get state/status set;
  // the rest stay pending for older sequences/levels.  Byte-equivalent to
  // calling Get() per key.
  void MultiGet(const ReadOptions& options, MultiGetRequest* const* reqs,
                size_t count) const;

  // Iterator over the full sequence (internal keys).
  Iterator* NewIterator(const ReadOptions& options) const;

 private:
  Iterator* NewBlockIterator(const ReadOptions& options,
                             const Slice& index_value) const;
  std::shared_ptr<const Block> ReadDataBlock(const ReadOptions& options,
                                             const BlockHandle& handle,
                                             Status* s) const;
  // Final leg of a block fetch whose stored payload is already in memory:
  // optionally parks the compressed form in the compressed tier, then
  // decompresses and inserts into the uncompressed tier (both via
  // InsertIfAbsent so concurrent fillers never double-charge a block).
  // `from_compressed_tier` skips the compressed-tier insert.
  std::shared_ptr<const Block> FinishBlock(const ReadOptions& options,
                                           const BlockCacheKey& key,
                                           std::string&& stored,
                                           CompressionType type,
                                           bool from_compressed_tier,
                                           Status* s) const;
  // Resolves one request against a loaded data block (shared by Get's tail
  // and MultiGet).
  void ResolveInBlock(const Block& block, MultiGetRequest* req) const;

  const TableOptions options_;
  const InternalKeyComparator* cmp_;
  BloomFilterPolicy bloom_policy_;
  RandomAccessFile* file_;
  uint64_t file_number_;
  uint32_t format_version_;
  SequenceMeta meta_;
  std::string index_contents_raw_;
  std::string bloom_contents_;
  Block index_block_;
};

}  // namespace iamdb
