// Pluggable per-block compression (format v2, docs/FORMAT.md).
//
// Two built-in codecs:
//  * kColumnar — splits a prefix-compressed data block into columns
//    (entry headers | key bytes | value bytes) and run-length-encodes the
//    value column.  Specialized for fixed-size YCSB-style records, where
//    the value column dominates and compresses independently of the
//    restart-prefixed keys (the rose-LSM observation).  Decompression
//    rebuilds the original block byte-for-byte.
//  * kLz — general-purpose LZ77 byte codec (LZ4-flavoured token stream)
//    for arbitrary block contents.
//
// Compress() may decline (returns false) when the input does not fit the
// codec's model; the caller then stores the block raw with a kNone tag.
// Decompress() is strict: every length is bounds-checked against both the
// encoded stream and the declared uncompressed size, and any mismatch —
// truncation, over-declared lengths, trailing garbage — returns
// Status::Corruption without over-reading.  (Bit flips are normally caught
// earlier by the block CRC, which covers payload + type tag.)
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "table/table_options.h"
#include "util/slice.h"
#include "util/status.h"

namespace iamdb {

// Upper bound a decoder accepts for the declared uncompressed size.  The
// builder never compresses blocks larger than this, so a bigger declared
// size is corruption, not data.
constexpr uint64_t kMaxUncompressedBlockBytes = 1ull << 27;  // 128MB

class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual CompressionType type() const = 0;
  virtual const char* name() const = 0;

  // Encodes `input` into *output (cleared first).  Returns false when the
  // input does not fit the codec's model (the caller stores raw); a true
  // return does NOT imply the output is smaller — the caller applies the
  // ratio threshold.
  virtual bool Compress(const Slice& input, std::string* output) const = 0;

  // Exact inverse of Compress.  *output (cleared first) receives the
  // original bytes; any malformed input yields Corruption.
  virtual Status Decompress(const Slice& input, std::string* output) const = 0;
};

// Singleton codec for `type`; nullptr for kNone.
const Compressor* GetCompressor(CompressionType type);

// Dispatches to the right codec (kNone copies through).  Corruption on an
// unknown type.
Status DecompressBlock(CompressionType type, const Slice& stored,
                       std::string* contents);

// "none" / "columnar" / "lz" (for flags and stats output).
const char* CompressionTypeName(CompressionType type);
bool ParseCompressionType(const std::string& name, CompressionType* type);

// A still-compressed block as held by the compressed cache tier.
struct CompressedBlock {
  std::string data;  // stored payload (no type tag, no CRC)
  CompressionType type = CompressionType::kNone;
};

// Shared counters, aggregated into DbStats (core/db.h).  One instance per
// DB, pointed at by TableOptions::compression_stats.
struct CompressionStats {
  // Uncompressed bytes presented to a codec at build time, and the bytes
  // actually stored for those same blocks (compressed or raw-fallback).
  std::atomic<uint64_t> input_bytes{0};
  std::atomic<uint64_t> stored_bytes{0};
  // Blocks written per outcome; raw_fallback counts blocks the codec
  // declined or that missed the ratio threshold.
  std::atomic<uint64_t> columnar_blocks{0};
  std::atomic<uint64_t> lz_blocks{0};
  std::atomic<uint64_t> raw_fallback_blocks{0};
  // Read-side work.
  std::atomic<uint64_t> decompressed_blocks{0};
  std::atomic<uint64_t> decompress_micros{0};
};

}  // namespace iamdb
