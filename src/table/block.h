// Block: immutable reader over a BlockBuilder-produced block, with a
// bidirectional iterator using the restart array for binary search.
#pragma once

#include <cstdint>
#include <string>

#include "core/dbformat.h"
#include "table/iterator.h"
#include "util/slice.h"

namespace iamdb {

class Block {
 public:
  // Takes ownership of the contents (moved in).
  explicit Block(std::string contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_.size(); }

  // Iterator keys are internal keys; comparison uses InternalKeyComparator.
  Iterator* NewIterator(const InternalKeyComparator* cmp) const;

 private:
  class Iter;

  std::string data_;
  uint32_t restart_offset_;  // offset of restart array
  uint32_t num_restarts_;
  bool malformed_ = false;
};

}  // namespace iamdb
