#include "table/sequence_reader.h"

#include <chrono>

#include "table/compressor.h"
#include "table/two_level_iterator.h"
#include "util/rate_limiter.h"

namespace iamdb {

SequenceReader::SequenceReader(const TableOptions& options,
                               const InternalKeyComparator* cmp,
                               RandomAccessFile* file, uint64_t file_number,
                               SequenceMeta meta, std::string index_contents,
                               std::string bloom_contents,
                               uint32_t format_version)
    : options_(options),
      cmp_(cmp),
      bloom_policy_(options.bloom_bits_per_key),
      file_(file),
      file_number_(file_number),
      format_version_(format_version),
      meta_(std::move(meta)),
      index_contents_raw_(index_contents),  // keep a copy for appenders
      bloom_contents_(std::move(bloom_contents)),
      index_block_(std::move(index_contents)) {}

bool SequenceReader::KeyMayMatch(const Slice& user_key) const {
  return bloom_policy_.KeyMayMatch(user_key, bloom_contents_);
}

std::shared_ptr<const Block> SequenceReader::ReadDataBlock(
    const ReadOptions& options, const BlockHandle& handle, Status* s) const {
  const BlockCacheKey key{file_number_, handle.offset()};

  if (options_.block_cache != nullptr) {
    auto cached = CacheLookup<Block>(*options_.block_cache, key);
    if (cached != nullptr) return cached;
  }

  // Uncompressed-tier miss: try the compressed tier before the device.
  std::shared_ptr<const CompressedBlock> compressed;
  if (options_.compressed_block_cache != nullptr) {
    compressed =
        CacheLookup<CompressedBlock>(*options_.compressed_block_cache, key);
  }

  std::string contents;
  CompressionType type = CompressionType::kNone;
  if (compressed != nullptr) {
    type = compressed->type;
  } else {
    // Device read: pace it if the caller (a compaction) carries the
    // background I/O budget.  Foreground ReadOptions leave this null.
    if (options.rate_limiter != nullptr) {
      options.rate_limiter->Request(handle.size() +
                                    BlockTrailerSize(format_version_));
    }
    *s = ReadBlockContents(
        file_, handle, options.verify_checksums || options_.verify_checksums,
        format_version_, &contents, &type);
    if (!s->ok()) return nullptr;
    if (type != CompressionType::kNone &&
        options_.compressed_block_cache != nullptr && options.fill_cache) {
      auto stored = std::make_shared<CompressedBlock>();
      stored->data = contents;  // copy: `contents` is decompressed below
      stored->type = type;
      // The compressed tier is charged at stored (on-disk) size.
      options_.compressed_block_cache->Insert(key, std::move(stored),
                                              contents.size());
    }
  }

  if (type != CompressionType::kNone) {
    const auto start = std::chrono::steady_clock::now();
    std::string raw;
    *s = DecompressBlock(
        type, compressed != nullptr ? Slice(compressed->data) : Slice(contents),
        &raw);
    if (!s->ok()) return nullptr;
    if (options_.compression_stats != nullptr) {
      const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      options_.compression_stats->decompressed_blocks.fetch_add(
          1, std::memory_order_relaxed);
      options_.compression_stats->decompress_micros.fetch_add(
          static_cast<uint64_t>(micros), std::memory_order_relaxed);
    }
    contents = std::move(raw);
  }

  auto block = std::make_shared<const Block>(std::move(contents));
  if (options_.block_cache != nullptr && options.fill_cache) {
    // Charge the uncompressed (resident) size, not the on-disk stored size:
    // the cache models memory, and a decompressed block occupies its full
    // logical size regardless of the codec.
    options_.block_cache->Insert(key, block, block->size());
  }
  return block;
}

Iterator* SequenceReader::NewBlockIterator(const ReadOptions& options,
                                           const Slice& index_value) const {
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewErrorIterator(s);

  std::shared_ptr<const Block> block = ReadDataBlock(options, handle, &s);
  if (block == nullptr) return NewErrorIterator(s);
  Iterator* iter = block->NewIterator(cmp_);
  // Pin the block for the iterator's lifetime.
  iter->RegisterCleanup([block]() mutable { block.reset(); });
  return iter;
}

Status SequenceReader::Get(const ReadOptions& options, const Slice& ikey,
                           std::string* value, GetState* state) const {
  *state = GetState::kNotFound;
  Slice user_key = ExtractUserKey(ikey);
  if (!KeyMayMatch(user_key)) return Status::OK();

  std::unique_ptr<Iterator> index_iter(index_block_.NewIterator(cmp_));
  index_iter->Seek(ikey);
  if (!index_iter->Valid()) return index_iter->status();

  Slice input = index_iter->value();
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return s;
  std::shared_ptr<const Block> block = ReadDataBlock(options, handle, &s);
  if (block == nullptr) return s;

  std::unique_ptr<Iterator> block_iter(block->NewIterator(cmp_));
  block_iter->Seek(ikey);
  if (block_iter->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(block_iter->key(), &parsed)) {
      *state = GetState::kCorrupt;
      return Status::Corruption("bad internal key in sequence");
    }
    if (parsed.user_key == user_key) {
      if (parsed.type == kTypeValue) {
        value->assign(block_iter->value().data(), block_iter->value().size());
        *state = GetState::kFound;
      } else {
        *state = GetState::kDeleted;
      }
    }
  }
  return block_iter->status();
}

Iterator* SequenceReader::NewIterator(const ReadOptions& options) const {
  return NewTwoLevelIterator(
      index_block_.NewIterator(cmp_),
      [this, options](const Slice& index_value) {
        return NewBlockIterator(options, index_value);
      });
}

}  // namespace iamdb
