#include "table/sequence_reader.h"

#include "table/two_level_iterator.h"
#include "util/rate_limiter.h"

namespace iamdb {

SequenceReader::SequenceReader(const TableOptions& options,
                               const InternalKeyComparator* cmp,
                               RandomAccessFile* file, uint64_t file_number,
                               SequenceMeta meta, std::string index_contents,
                               std::string bloom_contents)
    : options_(options),
      cmp_(cmp),
      bloom_policy_(options.bloom_bits_per_key),
      file_(file),
      file_number_(file_number),
      meta_(std::move(meta)),
      index_contents_raw_(index_contents),  // keep a copy for appenders
      bloom_contents_(std::move(bloom_contents)),
      index_block_(std::move(index_contents)) {}

bool SequenceReader::KeyMayMatch(const Slice& user_key) const {
  return bloom_policy_.KeyMayMatch(user_key, bloom_contents_);
}

std::shared_ptr<const Block> SequenceReader::ReadDataBlock(
    const ReadOptions& options, const BlockHandle& handle, Status* s) const {
  const BlockCacheKey key{file_number_, handle.offset()};

  if (options_.block_cache != nullptr) {
    auto cached = CacheLookup<Block>(*options_.block_cache, key);
    if (cached != nullptr) return cached;
  }

  // Cache miss: pace the device read if the caller (a compaction) carries
  // the background I/O budget.  Foreground ReadOptions leave this null.
  if (options.rate_limiter != nullptr) {
    options.rate_limiter->Request(handle.size());
  }
  std::string contents;
  *s = ReadBlockContents(file_, handle,
                         options.verify_checksums || options_.verify_checksums,
                         &contents);
  if (!s->ok()) return nullptr;
  auto block = std::make_shared<const Block>(std::move(contents));
  if (options_.block_cache != nullptr && options.fill_cache) {
    options_.block_cache->Insert(key, block, block->size());
  }
  return block;
}

Iterator* SequenceReader::NewBlockIterator(const ReadOptions& options,
                                           const Slice& index_value) const {
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewErrorIterator(s);

  std::shared_ptr<const Block> block = ReadDataBlock(options, handle, &s);
  if (block == nullptr) return NewErrorIterator(s);
  Iterator* iter = block->NewIterator(cmp_);
  // Pin the block for the iterator's lifetime.
  iter->RegisterCleanup([block]() mutable { block.reset(); });
  return iter;
}

Status SequenceReader::Get(const ReadOptions& options, const Slice& ikey,
                           std::string* value, GetState* state) const {
  *state = GetState::kNotFound;
  Slice user_key = ExtractUserKey(ikey);
  if (!KeyMayMatch(user_key)) return Status::OK();

  std::unique_ptr<Iterator> index_iter(index_block_.NewIterator(cmp_));
  index_iter->Seek(ikey);
  if (!index_iter->Valid()) return index_iter->status();

  Slice input = index_iter->value();
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return s;
  std::shared_ptr<const Block> block = ReadDataBlock(options, handle, &s);
  if (block == nullptr) return s;

  std::unique_ptr<Iterator> block_iter(block->NewIterator(cmp_));
  block_iter->Seek(ikey);
  if (block_iter->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(block_iter->key(), &parsed)) {
      *state = GetState::kCorrupt;
      return Status::Corruption("bad internal key in sequence");
    }
    if (parsed.user_key == user_key) {
      if (parsed.type == kTypeValue) {
        value->assign(block_iter->value().data(), block_iter->value().size());
        *state = GetState::kFound;
      } else {
        *state = GetState::kDeleted;
      }
    }
  }
  return block_iter->status();
}

Iterator* SequenceReader::NewIterator(const ReadOptions& options) const {
  return NewTwoLevelIterator(
      index_block_.NewIterator(cmp_),
      [this, options](const Slice& index_value) {
        return NewBlockIterator(options, index_value);
      });
}

}  // namespace iamdb
