#include "table/sequence_reader.h"

#include <chrono>

#include "table/compressor.h"
#include "table/two_level_iterator.h"
#include "util/rate_limiter.h"

namespace iamdb {

SequenceReader::SequenceReader(const TableOptions& options,
                               const InternalKeyComparator* cmp,
                               RandomAccessFile* file, uint64_t file_number,
                               SequenceMeta meta, std::string index_contents,
                               std::string bloom_contents,
                               uint32_t format_version)
    : options_(options),
      cmp_(cmp),
      bloom_policy_(options.bloom_bits_per_key),
      file_(file),
      file_number_(file_number),
      format_version_(format_version),
      meta_(std::move(meta)),
      index_contents_raw_(index_contents),  // keep a copy for appenders
      bloom_contents_(std::move(bloom_contents)),
      index_block_(std::move(index_contents)) {}

bool SequenceReader::KeyMayMatch(const Slice& user_key) const {
  return bloom_policy_.KeyMayMatch(user_key, bloom_contents_);
}

std::shared_ptr<const Block> SequenceReader::FinishBlock(
    const ReadOptions& options, const BlockCacheKey& key, std::string&& stored,
    CompressionType type, bool from_compressed_tier, Status* s) const {
  if (type != CompressionType::kNone && !from_compressed_tier &&
      options_.compressed_block_cache != nullptr && options.fill_cache) {
    auto cached = std::make_shared<CompressedBlock>();
    cached->data = stored;  // copy: `stored` is decompressed below
    cached->type = type;
    // The compressed tier is charged at stored (on-disk) size.  IfAbsent:
    // a concurrent reader that missed on the same block may have filled it
    // already; replacing would charge the block twice transiently and
    // churn the LRU.
    options_.compressed_block_cache->InsertIfAbsent(key, std::move(cached),
                                                    stored.size());
  }

  std::string contents = std::move(stored);
  if (type != CompressionType::kNone) {
    const auto start = std::chrono::steady_clock::now();
    std::string raw;
    *s = DecompressBlock(type, Slice(contents), &raw);
    if (!s->ok()) return nullptr;
    if (options_.compression_stats != nullptr) {
      const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      options_.compression_stats->decompressed_blocks.fetch_add(
          1, std::memory_order_relaxed);
      options_.compression_stats->decompress_micros.fetch_add(
          static_cast<uint64_t>(micros), std::memory_order_relaxed);
    }
    contents = std::move(raw);
  }

  auto block = std::make_shared<const Block>(std::move(contents));
  if (options_.block_cache != nullptr && options.fill_cache) {
    // Charge the uncompressed (resident) size, not the on-disk stored size:
    // the cache models memory, and a decompressed block occupies its full
    // logical size regardless of the codec.  Losing the fill race adopts
    // the resident copy so two lookups never hold two heap copies alive.
    return std::static_pointer_cast<const Block>(
        options_.block_cache->InsertIfAbsent(key, block, block->size()));
  }
  return block;
}

std::shared_ptr<const Block> SequenceReader::ReadDataBlock(
    const ReadOptions& options, const BlockHandle& handle, Status* s) const {
  const BlockCacheKey key{file_number_, handle.offset()};

  if (options_.block_cache != nullptr) {
    auto cached = CacheLookup<Block>(*options_.block_cache, key);
    if (cached != nullptr) return cached;
  }

  // Uncompressed-tier miss: try the compressed tier before the device.
  if (options_.compressed_block_cache != nullptr) {
    auto compressed =
        CacheLookup<CompressedBlock>(*options_.compressed_block_cache, key);
    if (compressed != nullptr) {
      std::string stored(compressed->data);
      return FinishBlock(options, key, std::move(stored), compressed->type,
                         /*from_compressed_tier=*/true, s);
    }
  }

  // Device read: pace it if the caller (a compaction) carries the
  // background I/O budget.  Foreground ReadOptions leave this null.
  if (options.rate_limiter != nullptr) {
    options.rate_limiter->Request(handle.size() +
                                  BlockTrailerSize(format_version_));
  }
  std::string contents;
  CompressionType type = CompressionType::kNone;
  *s = ReadBlockContents(
      file_, handle, options.verify_checksums || options_.verify_checksums,
      format_version_, &contents, &type);
  if (!s->ok()) return nullptr;
  return FinishBlock(options, key, std::move(contents), type,
                     /*from_compressed_tier=*/false, s);
}

Iterator* SequenceReader::NewBlockIterator(const ReadOptions& options,
                                           const Slice& index_value) const {
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewErrorIterator(s);

  std::shared_ptr<const Block> block = ReadDataBlock(options, handle, &s);
  if (block == nullptr) return NewErrorIterator(s);
  Iterator* iter = block->NewIterator(cmp_);
  // Pin the block for the iterator's lifetime.
  iter->RegisterCleanup([block]() mutable { block.reset(); });
  return iter;
}

Status SequenceReader::Get(const ReadOptions& options, const Slice& ikey,
                           std::string* value, GetState* state) const {
  *state = GetState::kNotFound;
  Slice user_key = ExtractUserKey(ikey);
  if (!KeyMayMatch(user_key)) return Status::OK();

  std::unique_ptr<Iterator> index_iter(index_block_.NewIterator(cmp_));
  index_iter->Seek(ikey);
  if (!index_iter->Valid()) return index_iter->status();

  Slice input = index_iter->value();
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return s;
  std::shared_ptr<const Block> block = ReadDataBlock(options, handle, &s);
  if (block == nullptr) return s;

  std::unique_ptr<Iterator> block_iter(block->NewIterator(cmp_));
  block_iter->Seek(ikey);
  if (block_iter->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(block_iter->key(), &parsed)) {
      *state = GetState::kCorrupt;
      return Status::Corruption("bad internal key in sequence");
    }
    if (parsed.user_key == user_key) {
      if (parsed.type == kTypeValue) {
        value->assign(block_iter->value().data(), block_iter->value().size());
        *state = GetState::kFound;
      } else {
        *state = GetState::kDeleted;
      }
    }
  }
  return block_iter->status();
}

void SequenceReader::ResolveInBlock(const Block& block,
                                    MultiGetRequest* req) const {
  std::unique_ptr<Iterator> block_iter(block.NewIterator(cmp_));
  block_iter->Seek(req->lkey->internal_key());
  if (block_iter->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(block_iter->key(), &parsed)) {
      req->state = MultiGetRequest::State::kCorrupt;
      req->status = Status::Corruption("bad internal key in sequence");
      return;
    }
    if (parsed.user_key == req->lkey->user_key()) {
      if (parsed.type == kTypeValue) {
        req->value->assign(block_iter->value().data(),
                           block_iter->value().size());
        req->state = MultiGetRequest::State::kFound;
      } else {
        req->state = MultiGetRequest::State::kDeleted;
      }
    }
  }
  if (!block_iter->status().ok() && req->status.ok()) {
    req->status = block_iter->status();
  }
}

void SequenceReader::MultiGet(const ReadOptions& options,
                              MultiGetRequest* const* reqs,
                              size_t count) const {
  // Keys mapped to the same data block share one Group; requests arrive in
  // internal-key order and the index is in key order, so same-block keys
  // are adjacent and block offsets ascend across groups.
  struct Group {
    BlockHandle handle;
    std::shared_ptr<const Block> block;
    Status error;
    size_t first_key = 0;  // range into `probe`
    size_t num_keys = 0;
  };
  std::vector<MultiGetRequest*> probe;
  std::vector<Group> groups;
  std::unique_ptr<Iterator> index_iter(index_block_.NewIterator(cmp_));
  for (size_t i = 0; i < count; ++i) {
    MultiGetRequest* req = reqs[i];
    if (req->resolved()) continue;
    if (!KeyMayMatch(req->lkey->user_key())) continue;
    index_iter->Seek(req->lkey->internal_key());
    if (!index_iter->Valid()) {
      // Past the last block: the key is not in this sequence.
      if (!index_iter->status().ok() && req->status.ok()) {
        req->status = index_iter->status();
      }
      continue;
    }
    Slice input = index_iter->value();
    BlockHandle handle;
    Status s = handle.DecodeFrom(&input);
    if (!s.ok()) {
      req->status = s;
      continue;
    }
    if (groups.empty() || groups.back().handle.offset() != handle.offset()) {
      Group g;
      g.handle = handle;
      g.first_key = probe.size();
      groups.push_back(std::move(g));
    }
    probe.push_back(req);
    groups.back().num_keys++;
  }
  if (groups.empty()) return;

  // Cache probes per group; misses on both tiers queue for the device.
  std::vector<size_t> missing;
  for (size_t g = 0; g < groups.size(); ++g) {
    const BlockCacheKey key{file_number_, groups[g].handle.offset()};
    if (options_.block_cache != nullptr) {
      auto cached = CacheLookup<Block>(*options_.block_cache, key);
      if (cached != nullptr) {
        groups[g].block = std::move(cached);
        continue;
      }
    }
    if (options_.compressed_block_cache != nullptr) {
      auto compressed =
          CacheLookup<CompressedBlock>(*options_.compressed_block_cache, key);
      if (compressed != nullptr) {
        std::string stored(compressed->data);
        groups[g].block =
            FinishBlock(options, key, std::move(stored), compressed->type,
                        /*from_compressed_tier=*/true, &groups[g].error);
        continue;
      }
    }
    missing.push_back(g);
  }

  // One vectored read covers every device-missing block of this sequence;
  // adjacent blocks coalesce into single device operations underneath.
  if (!missing.empty()) {
    const uint64_t trailer = BlockTrailerSize(format_version_);
    size_t total = 0;
    for (size_t g : missing) {
      total += static_cast<size_t>(groups[g].handle.size() + trailer);
    }
    if (options.rate_limiter != nullptr) options.rate_limiter->Request(total);
    auto scratch = std::make_unique<char[]>(total);
    std::vector<ReadRequest> rr(missing.size());
    size_t buf_off = 0;
    for (size_t i = 0; i < missing.size(); ++i) {
      const BlockHandle& h = groups[missing[i]].handle;
      rr[i].offset = h.offset();
      rr[i].n = static_cast<size_t>(h.size() + trailer);
      rr[i].scratch = scratch.get() + buf_off;
      buf_off += rr[i].n;
    }
    file_->ReadV(rr.data(), rr.size());

    if (options.batch != nullptr) {
      // Batch accounting: contiguous runs of 2+ blocks became one device
      // read each.
      size_t run_len = 1;
      for (size_t i = 1; i <= rr.size(); ++i) {
        if (i < rr.size() && rr[i].offset == rr[i - 1].offset + rr[i - 1].n) {
          run_len++;
          continue;
        }
        if (run_len >= 2) {
          options.batch->coalesced_reads++;
          options.batch->coalesced_blocks += run_len;
        }
        run_len = 1;
      }
    }

    const bool verify =
        options.verify_checksums || options_.verify_checksums;
    for (size_t i = 0; i < missing.size(); ++i) {
      Group& grp = groups[missing[i]];
      Status s = rr[i].status;
      if (s.ok() && rr[i].result.size() != rr[i].n) {
        s = Status::Corruption("truncated block read");
      }
      CompressionType type = CompressionType::kNone;
      if (s.ok()) {
        s = CheckBlockTrailer(rr[i].result.data(), grp.handle.size(), verify,
                              format_version_, &type);
      }
      if (s.ok()) {
        std::string stored(rr[i].result.data(),
                           static_cast<size_t>(grp.handle.size()));
        grp.block = FinishBlock(
            options, BlockCacheKey{file_number_, grp.handle.offset()},
            std::move(stored), type, /*from_compressed_tier=*/false, &s);
      }
      if (grp.block == nullptr) grp.error = s;
    }
  }

  for (const Group& grp : groups) {
    if (grp.block == nullptr) {
      for (size_t k = grp.first_key; k < grp.first_key + grp.num_keys; ++k) {
        if (probe[k]->status.ok()) probe[k]->status = grp.error;
      }
      continue;
    }
    for (size_t k = grp.first_key; k < grp.first_key + grp.num_keys; ++k) {
      if (!probe[k]->resolved()) ResolveInBlock(*grp.block, probe[k]);
    }
  }
}

Iterator* SequenceReader::NewIterator(const ReadOptions& options) const {
  return NewTwoLevelIterator(
      index_block_.NewIterator(cmp_),
      [this, options](const Slice& index_value) {
        return NewBlockIterator(options, index_value);
      });
}

}  // namespace iamdb
