// On-disk physical format shared by all tables.
//
// Block framing by format version (the version is whole-file, recorded via
// the trailer magic):
//   v1:  contents | crc32c(contents) (fixed32, masked)
//   v2:  payload | type(1B) | crc32c(payload|type) (fixed32, masked)
// addressed by a BlockHandle {offset, size-of-stored-payload}.  The v2 type
// byte is the block's CompressionType (table_options.h): kNone for raw
// bytes (all metadata blocks, and data blocks that fell back to raw),
// kColumnar/kLz for payloads that decompress to the logical block.
//
// MSTable file layout (the paper's Multiple Sequence Table, Sec 4.1):
//
//   [seq 0 data blocks][seq 1 data blocks] ... | metadata region | trailer
//
// Each *append* writes the new sequence's data blocks at the end of the
// file, then a fresh metadata region describing ALL sequences (per-sequence
// index block + bloom block + descriptor list), then a fixed-size trailer.
// The previous metadata region becomes a dead zone inside the file — the
// moral equivalent of the paper's "hole"; it is reclaimed when the node is
// merged or split.  Metadata stays clustered so opening a node costs one
// contiguous read.
//
// The manifest records `meta_end` (offset just past the trailer) for each
// node version, so a crash mid-append is invisible: recovery reads the
// trailer at the recorded offset and garbage past it is ignored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "table/table_options.h"
#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace iamdb {

// Table format versions.  v1 files (and files appended to v1 files) keep
// the 4-byte block trailer and raw blocks; new files are written v2.
constexpr uint32_t kFormatVersion1 = 1;
constexpr uint32_t kFormatVersion2 = 2;
constexpr uint32_t kCurrentFormatVersion = kFormatVersion2;

// Bytes following a block's stored payload: the masked CRC, plus the
// one-byte compression-type tag from v2 on.
inline uint64_t BlockTrailerSize(uint32_t format_version) {
  return format_version >= kFormatVersion2 ? 5 : 4;
}

class BlockHandle {
 public:
  BlockHandle() : offset_(0), size_(0) {}
  BlockHandle(uint64_t offset, uint64_t size) : offset_(offset), size_(size) {}

  uint64_t offset() const { return offset_; }
  uint64_t size() const { return size_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, offset_);
    PutVarint64(dst, size_);
  }
  Status DecodeFrom(Slice* input) {
    if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
      return Status::OK();
    }
    return Status::Corruption("bad block handle");
  }

 private:
  uint64_t offset_;
  uint64_t size_;
};

// Descriptor of one sorted sequence inside an MSTable.
struct SequenceMeta {
  BlockHandle index_handle;   // index block: last-key -> data BlockHandle
  BlockHandle bloom_handle;   // whole-sequence bloom filter
  uint64_t num_entries = 0;
  uint64_t data_bytes = 0;    // total size of this sequence's data blocks
  std::string smallest;       // internal keys
  std::string largest;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);
};

// Trailer at `meta_end - kSize`:
//   region_start | meta_handle (2 fixed64) | seq_count | magic | crc
// region_start is the file offset where this metadata region begins, so a
// reader fetches the whole clustered metadata with one contiguous read.
// The magic doubles as the format version: kMagic marks a v1 file (4-byte
// block trailers, raw blocks), kMagicV2 a v2 file (type-tagged framing).
struct MSTableTrailer {
  uint64_t region_start = 0;
  BlockHandle meta_handle;  // the descriptor block (list of SequenceMeta)
  uint32_t seq_count = 0;
  uint32_t format_version = kCurrentFormatVersion;

  static constexpr size_t kSize = 8 + 8 + 8 + 4 + 8 + 4;
  static constexpr uint64_t kMagic = 0x1a4d5462'69616d64ull;  // "iamdbMT"-ish
  static constexpr uint64_t kMagicV2 = 0x2a4d5462'69616d64ull;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& input);
};

// Verifies the trailer of a block already in memory: `data` must hold the
// stored payload (`payload_size` bytes) followed by the block trailer,
// exactly as read from the device.  Fills *type from the v2 tag (kNone on
// v1).  Shared by ReadBlockContents and the vectored MultiGet read path.
Status CheckBlockTrailer(const char* data, uint64_t payload_size,
                         bool verify_checksums, uint32_t format_version,
                         CompressionType* type);

// Reads the block named by `handle`, verifying its CRC, and reports the
// stored payload (still compressed when *type != kNone — the caller
// decompresses via DecompressBlock).  On success, *contents owns the bytes.
Status ReadBlockContents(RandomAccessFile* file, const BlockHandle& handle,
                         bool verify_checksums, uint32_t format_version,
                         std::string* contents, CompressionType* type);

// Appends `contents | [type] | crc` to file and fills *handle (offset must
// be the current end of file, tracked by the caller).  v1 files require
// type == kNone.
Status WriteBlock(WritableFile* file, uint64_t offset, const Slice& contents,
                  uint32_t format_version, CompressionType type,
                  BlockHandle* handle);

}  // namespace iamdb
