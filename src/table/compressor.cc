#include "table/compressor.h"

#include <cstring>
#include <vector>

#include "util/coding.h"

namespace iamdb {

namespace {

// ---------------------------------------------------------------------------
// LZ codec: LZ4-flavoured token stream.
//
//   varint64 uncompressed_size
//   sequence*:  token | literal-length ext* | literals
//               [ offset(2B LE) | match-length ext* ]
//
// token = (literal_len nibble << 4) | (match_len - 4) nibble; a nibble of 15
// is followed by extension bytes, each added to the length, ending at the
// first byte != 255.  The final sequence carries literals only — the stream
// simply ends after them.  Offsets are 1..65535 back into the output.

constexpr size_t kLzMinMatch = 4;
constexpr size_t kLzMaxOffset = 65535;
constexpr int kLzHashBits = 13;

inline uint32_t LzLoad32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t LzHash(uint32_t v) {
  return (v * 2654435761u) >> (32 - kLzHashBits);
}

void LzPutLengthExt(std::string* out, size_t v) {
  while (v >= 255) {
    out->push_back(static_cast<char>(0xff));
    v -= 255;
  }
  out->push_back(static_cast<char>(v));
}

void LzEmitSequence(std::string* out, const char* literals, size_t lit_len,
                    size_t offset, size_t match_len) {
  const size_t match_code = match_len >= kLzMinMatch ? match_len - kLzMinMatch
                                                     : 0;  // final: unused
  const uint8_t lit_nibble = lit_len >= 15 ? 15 : static_cast<uint8_t>(lit_len);
  const uint8_t match_nibble =
      match_code >= 15 ? 15 : static_cast<uint8_t>(match_code);
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) LzPutLengthExt(out, lit_len - 15);
  out->append(literals, lit_len);
  if (match_len == 0) return;  // final literals-only sequence
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_nibble == 15) LzPutLengthExt(out, match_code - 15);
}

// Reads a nibble's extension bytes; false on truncation.
bool LzGetLengthExt(const char** p, const char* end, size_t* len) {
  while (true) {
    if (*p >= end) return false;
    const uint8_t b = static_cast<uint8_t>(*(*p)++);
    *len += b;
    if (b != 255) return true;
  }
}

class LzCompressor : public Compressor {
 public:
  CompressionType type() const override { return CompressionType::kLz; }
  const char* name() const override { return "lz"; }

  bool Compress(const Slice& input, std::string* output) const override {
    output->clear();
    const size_t n = input.size();
    if (n > kMaxUncompressedBlockBytes) return false;
    PutVarint64(output, n);
    const char* base = input.data();
    uint32_t table[1 << kLzHashBits] = {0};  // position + 1; 0 = empty

    size_t pos = 0, anchor = 0;
    while (pos + kLzMinMatch <= n) {
      const uint32_t h = LzHash(LzLoad32(base + pos));
      const uint32_t cand = table[h];
      table[h] = static_cast<uint32_t>(pos) + 1;
      if (cand != 0 && pos + 1 - cand <= kLzMaxOffset &&
          LzLoad32(base + cand - 1) == LzLoad32(base + pos)) {
        const size_t match_pos = cand - 1;
        size_t len = kLzMinMatch;
        while (pos + len < n && base[match_pos + len] == base[pos + len]) {
          len++;
        }
        LzEmitSequence(output, base + anchor, pos - anchor, pos - match_pos,
                       len);
        pos += len;
        anchor = pos;
      } else {
        pos++;
      }
    }
    if (anchor < n || n == 0) {
      LzEmitSequence(output, base + anchor, n - anchor, 0, 0);
    }
    return true;
  }

  Status Decompress(const Slice& input, std::string* output) const override {
    output->clear();
    const char* p = input.data();
    const char* end = p + input.size();
    uint64_t n = 0;
    p = GetVarint64Ptr(p, end, &n);
    if (p == nullptr) return Status::Corruption("lz: bad size prefix");
    if (n > kMaxUncompressedBlockBytes) {
      return Status::Corruption("lz: declared size too large");
    }
    output->reserve(n);
    while (p < end) {
      const uint8_t token = static_cast<uint8_t>(*p++);
      size_t lit_len = token >> 4;
      if (lit_len == 15 && !LzGetLengthExt(&p, end, &lit_len)) {
        return Status::Corruption("lz: truncated literal length");
      }
      if (static_cast<size_t>(end - p) < lit_len) {
        return Status::Corruption("lz: truncated literals");
      }
      if (output->size() + lit_len > n) {
        return Status::Corruption("lz: literals exceed declared size");
      }
      output->append(p, lit_len);
      p += lit_len;
      if (p == end) break;  // final sequence carries no match

      if (end - p < 2) return Status::Corruption("lz: truncated offset");
      const size_t offset = static_cast<uint8_t>(p[0]) |
                            (static_cast<size_t>(static_cast<uint8_t>(p[1]))
                             << 8);
      p += 2;
      if (offset == 0 || offset > output->size()) {
        return Status::Corruption("lz: offset out of range");
      }
      size_t match_len = token & 0xf;
      if (match_len == 15 && !LzGetLengthExt(&p, end, &match_len)) {
        return Status::Corruption("lz: truncated match length");
      }
      match_len += kLzMinMatch;
      if (output->size() + match_len > n) {
        return Status::Corruption("lz: match exceeds declared size");
      }
      // Byte-by-byte: matches may overlap their own output (offset < len).
      size_t from = output->size() - offset;
      for (size_t i = 0; i < match_len; i++) {
        output->push_back((*output)[from + i]);
      }
    }
    if (output->size() != n) {
      return Status::Corruption("lz: size mismatch");
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Columnar codec.
//
// Parses the block's entry stream (shared | non_shared | value_len varints,
// key suffix, value — table/block_builder.cc) plus the restart array, and
// stores it column-wise:
//
//   varint64 uncompressed_size
//   varint32 num_entries | varint32 num_restarts
//   restart entry-indices as delta varints (not byte offsets — those are
//     recomputed on decompress)
//   flags byte (bit0: all values share one length)
//   value length column (one varint, or one per entry)
//   entry headers: (shared | non_shared) varint pairs
//   varint64 key_bytes_len | concatenated key suffix bytes
//   value column: varint32 mode (0 raw, 1 RLE) | varint64 encoded_len | bytes
//
// The value column concatenates all values, so RLE runs span records —
// exactly the fixed-size YCSB-record shape this codec targets.  Compress
// declines (returns false) on anything that does not parse as a well-formed
// block, and Decompress rebuilds the original block byte-for-byte
// (varints are canonical, restart offsets are a function of the entries).

constexpr size_t kRleMinRun = 4;

void RleEncode(const Slice& in, std::string* out) {
  const char* p = in.data();
  const char* end = p + in.size();
  while (p < end) {
    // Measure the run at p.
    const char* q = p + 1;
    while (q < end && *q == *p) q++;
    const size_t run = static_cast<size_t>(q - p);
    if (run >= kRleMinRun) {
      PutVarint64(out, (static_cast<uint64_t>(run) << 1) | 1);
      out->push_back(*p);
      p = q;
    } else {
      // Literal segment: up to the start of the next long run.
      const char* lit_end = q;
      while (lit_end < end) {
        const char* r = lit_end + 1;
        while (r < end && *r == *lit_end) r++;
        if (static_cast<size_t>(r - lit_end) >= kRleMinRun) break;
        lit_end = r;
      }
      const size_t lit = static_cast<size_t>(lit_end - p);
      PutVarint64(out, static_cast<uint64_t>(lit) << 1);
      out->append(p, lit);
      p = lit_end;
    }
  }
}

Status RleDecode(const char* p, const char* end, size_t expected,
                 std::string* out) {
  while (p < end) {
    uint64_t header = 0;
    p = GetVarint64Ptr(p, end, &header);
    if (p == nullptr) return Status::Corruption("columnar: bad rle header");
    const uint64_t len = header >> 1;
    if (len == 0 || out->size() + len > expected) {
      return Status::Corruption("columnar: rle length out of range");
    }
    if (header & 1) {
      if (p >= end) return Status::Corruption("columnar: truncated rle run");
      out->append(static_cast<size_t>(len), *p++);
    } else {
      if (static_cast<size_t>(end - p) < len) {
        return Status::Corruption("columnar: truncated rle literals");
      }
      out->append(p, static_cast<size_t>(len));
      p += len;
    }
  }
  if (out->size() != expected) {
    return Status::Corruption("columnar: rle size mismatch");
  }
  return Status::OK();
}

class ColumnarCompressor : public Compressor {
 public:
  CompressionType type() const override { return CompressionType::kColumnar; }
  const char* name() const override { return "columnar"; }

  bool Compress(const Slice& input, std::string* output) const override {
    output->clear();
    const size_t n = input.size();
    if (n < 8 || n > kMaxUncompressedBlockBytes) return false;

    const uint32_t num_restarts = DecodeFixed32(input.data() + n - 4);
    if (num_restarts == 0 ||
        static_cast<uint64_t>(num_restarts) * 4 + 4 > n) {
      return false;
    }
    const size_t entries_end = n - 4 - static_cast<size_t>(num_restarts) * 4;

    // Walk the entry stream, splitting into columns.
    std::vector<uint32_t> entry_offsets;
    std::string headers;      // (shared | non_shared) varint pairs
    std::string value_lens;   // value_len varints (unless uniform)
    std::string key_bytes;
    std::string value_bytes;
    uint32_t first_value_len = 0;
    bool fixed_value_len = true;
    const char* p = input.data();
    const char* limit = input.data() + entries_end;
    uint32_t num_entries = 0;
    while (p < limit) {
      entry_offsets.push_back(static_cast<uint32_t>(p - input.data()));
      uint32_t shared = 0, non_shared = 0, value_len = 0;
      p = GetVarint32Ptr(p, limit, &shared);
      if (p != nullptr) p = GetVarint32Ptr(p, limit, &non_shared);
      if (p != nullptr) p = GetVarint32Ptr(p, limit, &value_len);
      if (p == nullptr ||
          static_cast<size_t>(limit - p) <
              static_cast<size_t>(non_shared) + value_len) {
        return false;  // not a well-formed block: store raw
      }
      PutVarint32(&headers, shared);
      PutVarint32(&headers, non_shared);
      if (num_entries == 0) {
        first_value_len = value_len;
      } else if (value_len != first_value_len) {
        fixed_value_len = false;
      }
      PutVarint32(&value_lens, value_len);
      key_bytes.append(p, non_shared);
      p += non_shared;
      value_bytes.append(p, value_len);
      p += value_len;
      num_entries++;
    }
    if (num_entries == 0) return false;

    // Restart byte offsets must land exactly on entry boundaries; store
    // them as entry indices so decompression can recompute the offsets.
    std::vector<uint32_t> restart_indices;
    restart_indices.reserve(num_restarts);
    size_t scan = 0;
    for (uint32_t i = 0; i < num_restarts; i++) {
      const uint32_t restart_offset =
          DecodeFixed32(input.data() + entries_end + static_cast<size_t>(i) * 4);
      while (scan < entry_offsets.size() &&
             entry_offsets[scan] < restart_offset) {
        scan++;
      }
      if (scan >= entry_offsets.size() ||
          entry_offsets[scan] != restart_offset) {
        return false;
      }
      restart_indices.push_back(static_cast<uint32_t>(scan));
    }

    PutVarint64(output, n);
    PutVarint32(output, num_entries);
    PutVarint32(output, num_restarts);
    uint32_t prev = 0;
    for (size_t i = 0; i < restart_indices.size(); i++) {
      PutVarint32(output, restart_indices[i] - prev);
      prev = restart_indices[i];
    }
    output->push_back(fixed_value_len ? 1 : 0);
    if (fixed_value_len) {
      PutVarint32(output, first_value_len);
    } else {
      output->append(value_lens);
    }
    output->append(headers);
    PutVarint64(output, key_bytes.size());
    output->append(key_bytes);

    std::string rle;
    RleEncode(value_bytes, &rle);
    if (rle.size() < value_bytes.size()) {
      PutVarint32(output, 1);
      PutVarint64(output, rle.size());
      output->append(rle);
    } else {
      PutVarint32(output, 0);
      PutVarint64(output, value_bytes.size());
      output->append(value_bytes);
    }
    return true;
  }

  Status Decompress(const Slice& input, std::string* output) const override {
    output->clear();
    const char* p = input.data();
    const char* end = p + input.size();
    uint64_t n = 0;
    uint32_t num_entries = 0, num_restarts = 0;
    p = GetVarint64Ptr(p, end, &n);
    if (p != nullptr) p = GetVarint32Ptr(p, end, &num_entries);
    if (p != nullptr) p = GetVarint32Ptr(p, end, &num_restarts);
    if (p == nullptr) return Status::Corruption("columnar: bad header");
    if (n > kMaxUncompressedBlockBytes) {
      return Status::Corruption("columnar: declared size too large");
    }
    if (num_entries == 0 || num_restarts == 0 ||
        static_cast<uint64_t>(num_restarts) * 4 + 4 > n ||
        static_cast<uint64_t>(num_entries) * 3 +
                static_cast<uint64_t>(num_restarts) * 4 + 4 >
            n) {
      return Status::Corruption("columnar: implausible entry counts");
    }

    std::vector<uint32_t> restart_indices(num_restarts);
    uint32_t prev = 0;
    for (uint32_t i = 0; i < num_restarts; i++) {
      uint32_t delta = 0;
      p = GetVarint32Ptr(p, end, &delta);
      if (p == nullptr) return Status::Corruption("columnar: bad restarts");
      prev = (i == 0) ? delta : prev + delta;
      if (prev >= num_entries || (i > 0 && delta == 0)) {
        return Status::Corruption("columnar: restart index out of range");
      }
      restart_indices[i] = prev;
    }

    if (p >= end) return Status::Corruption("columnar: truncated flags");
    const uint8_t flags = static_cast<uint8_t>(*p++);
    if (flags > 1) return Status::Corruption("columnar: bad flags");
    std::vector<uint32_t> value_lens(num_entries);
    uint64_t value_total = 0;
    if (flags & 1) {
      uint32_t fixed = 0;
      p = GetVarint32Ptr(p, end, &fixed);
      if (p == nullptr) return Status::Corruption("columnar: bad value len");
      for (uint32_t i = 0; i < num_entries; i++) value_lens[i] = fixed;
      value_total = static_cast<uint64_t>(fixed) * num_entries;
    } else {
      for (uint32_t i = 0; i < num_entries; i++) {
        p = GetVarint32Ptr(p, end, &value_lens[i]);
        if (p == nullptr) return Status::Corruption("columnar: bad value len");
        value_total += value_lens[i];
      }
    }
    if (value_total > n) {
      return Status::Corruption("columnar: values exceed declared size");
    }

    std::vector<std::pair<uint32_t, uint32_t>> headers(num_entries);
    for (uint32_t i = 0; i < num_entries; i++) {
      p = GetVarint32Ptr(p, end, &headers[i].first);
      if (p != nullptr) p = GetVarint32Ptr(p, end, &headers[i].second);
      if (p == nullptr) return Status::Corruption("columnar: bad entry header");
    }

    uint64_t key_len = 0;
    p = GetVarint64Ptr(p, end, &key_len);
    if (p == nullptr || static_cast<uint64_t>(end - p) < key_len ||
        key_len > n) {
      return Status::Corruption("columnar: truncated key column");
    }
    const char* keys = p;
    p += key_len;

    uint32_t value_mode = 0;
    uint64_t value_enc_len = 0;
    p = GetVarint32Ptr(p, end, &value_mode);
    if (p != nullptr) p = GetVarint64Ptr(p, end, &value_enc_len);
    if (p == nullptr || value_mode > 1 ||
        static_cast<uint64_t>(end - p) != value_enc_len) {
      return Status::Corruption("columnar: bad value column header");
    }
    std::string values;
    if (value_mode == 1) {
      values.reserve(value_total);
      Status s = RleDecode(p, end, value_total, &values);
      if (!s.ok()) return s;
    } else {
      if (value_enc_len != value_total) {
        return Status::Corruption("columnar: value column size mismatch");
      }
      values.assign(p, value_enc_len);
    }

    // Rebuild the block byte-for-byte: entries, then the restart array.
    output->reserve(n);
    std::vector<uint32_t> restart_offsets(num_restarts);
    size_t key_pos = 0, value_pos = 0, next_restart = 0;
    for (uint32_t i = 0; i < num_entries; i++) {
      while (next_restart < num_restarts && restart_indices[next_restart] == i) {
        restart_offsets[next_restart] = static_cast<uint32_t>(output->size());
        next_restart++;
      }
      const uint32_t non_shared = headers[i].second;
      const uint32_t value_len = value_lens[i];
      if (key_pos + non_shared > key_len) {
        return Status::Corruption("columnar: key column exhausted");
      }
      PutVarint32(output, headers[i].first);
      PutVarint32(output, non_shared);
      PutVarint32(output, value_len);
      output->append(keys + key_pos, non_shared);
      key_pos += non_shared;
      output->append(values, value_pos, value_len);
      value_pos += value_len;
      if (output->size() > n) {
        return Status::Corruption("columnar: entries exceed declared size");
      }
    }
    if (key_pos != key_len || value_pos != values.size() ||
        next_restart != num_restarts) {
      return Status::Corruption("columnar: column size mismatch");
    }
    for (uint32_t i = 0; i < num_restarts; i++) {
      PutFixed32(output, restart_offsets[i]);
    }
    PutFixed32(output, num_restarts);
    if (output->size() != n) {
      return Status::Corruption("columnar: size mismatch");
    }
    return Status::OK();
  }
};

const LzCompressor kLzCompressor;
const ColumnarCompressor kColumnarCompressor;

}  // namespace

const Compressor* GetCompressor(CompressionType type) {
  switch (type) {
    case CompressionType::kNone:
      return nullptr;
    case CompressionType::kColumnar:
      return &kColumnarCompressor;
    case CompressionType::kLz:
      return &kLzCompressor;
  }
  return nullptr;
}

Status DecompressBlock(CompressionType type, const Slice& stored,
                       std::string* contents) {
  if (type == CompressionType::kNone) {
    contents->assign(stored.data(), stored.size());
    return Status::OK();
  }
  const Compressor* compressor = GetCompressor(type);
  if (compressor == nullptr) {
    return Status::Corruption("unknown block compression type");
  }
  return compressor->Decompress(stored, contents);
}

const char* CompressionTypeName(CompressionType type) {
  switch (type) {
    case CompressionType::kNone:
      return "none";
    case CompressionType::kColumnar:
      return "columnar";
    case CompressionType::kLz:
      return "lz";
  }
  return "unknown";
}

bool ParseCompressionType(const std::string& name, CompressionType* type) {
  if (name == "none" || name == "raw") {
    *type = CompressionType::kNone;
  } else if (name == "columnar") {
    *type = CompressionType::kColumnar;
  } else if (name == "lz") {
    *type = CompressionType::kLz;
  } else {
    return false;
  }
  return true;
}

}  // namespace iamdb
