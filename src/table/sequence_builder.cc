#include "table/sequence_builder.h"

#include <cassert>

#include "util/rate_limiter.h"

namespace iamdb {

SequenceBuilder::SequenceBuilder(const TableOptions& options,
                                 WritableFile* file, uint64_t start_offset,
                                 uint32_t format_version)
    : options_(options),
      bloom_policy_(options.bloom_bits_per_key),
      file_(file),
      start_offset_(start_offset),
      offset_(start_offset),
      format_version_(format_version),
      compressor_(format_version >= kFormatVersion2
                      ? GetCompressor(options.compression)
                      : nullptr),
      data_block_(options.block_restart_interval),
      index_block_(1) {}

Status SequenceBuilder::Add(const Slice& internal_key, const Slice& value) {
  assert(!finished_);
  if (!status_.ok()) return status_;
  assert(meta_.num_entries == 0 ||
         icmp_.Compare(internal_key, Slice(last_key_)) > 0);

  if (pending_index_entry_) {
    // First key of a new block: a short separator between the previous
    // block's last key and this key indexes the previous block.
    assert(data_block_.empty());
    icmp_.FindShortestSeparator(&last_key_, internal_key);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    pending_index_entry_ = false;
  }

  if (meta_.num_entries == 0) {
    meta_.smallest.assign(internal_key.data(), internal_key.size());
  }
  last_key_.assign(internal_key.data(), internal_key.size());
  meta_.num_entries++;

  bloom_key_offsets_.push_back(bloom_keys_flat_.size());
  Slice user_key = ExtractUserKey(internal_key);
  bloom_keys_flat_.append(user_key.data(), user_key.size());

  data_block_.Add(internal_key, value);
  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    status_ = FlushDataBlock();
  }
  return status_;
}

Status SequenceBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  Slice contents = data_block_.Finish();

  // Compress, falling back to raw unless the block shrinks past the
  // configured threshold (or the codec declines the input outright).
  Slice stored = contents;
  CompressionType stored_type = CompressionType::kNone;
  if (compressor_ != nullptr) {
    if (compressor_->Compress(contents, &compressed_scratch_) &&
        static_cast<double>(compressed_scratch_.size()) <=
            static_cast<double>(contents.size()) *
                options_.compression_max_stored_fraction) {
      stored = Slice(compressed_scratch_);
      stored_type = compressor_->type();
    }
    if (options_.compression_stats != nullptr) {
      CompressionStats* cs = options_.compression_stats;
      cs->input_bytes.fetch_add(contents.size(), std::memory_order_relaxed);
      cs->stored_bytes.fetch_add(stored.size(), std::memory_order_relaxed);
      switch (stored_type) {
        case CompressionType::kColumnar:
          cs->columnar_blocks.fetch_add(1, std::memory_order_relaxed);
          break;
        case CompressionType::kLz:
          cs->lz_blocks.fetch_add(1, std::memory_order_relaxed);
          break;
        case CompressionType::kNone:
          cs->raw_fallback_blocks.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
  }

  // Pace before issuing the write; FlushDataBlock always runs in an
  // unlocked I/O section (never under the DB mutex), which Request requires.
  if (options_.rate_limiter != nullptr) {
    options_.rate_limiter->Request(stored.size());
  }
  Status s = WriteBlock(file_, offset_, stored, format_version_, stored_type,
                        &pending_handle_);
  if (!s.ok()) return s;
  offset_ += stored.size() + BlockTrailerSize(format_version_);
  logical_bytes_ += contents.size() + BlockTrailerSize(format_version_);
  data_block_.Reset();
  pending_index_entry_ = true;
  return Status::OK();
}

Status SequenceBuilder::Finish() {
  assert(!finished_);
  finished_ = true;
  // Record the true largest key before FindShortSuccessor mutates last_key_.
  meta_.largest = last_key_;
  if (status_.ok()) status_ = FlushDataBlock();
  if (!status_.ok()) return status_;

  if (pending_index_entry_) {
    icmp_.FindShortSuccessor(&last_key_);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    pending_index_entry_ = false;
  }
  // last_key_ was mutated by FindShortSuccessor only after recording the
  // true largest key below.
  index_contents_ = index_block_.Finish().ToString();

  // Build the whole-sequence bloom over user keys.
  std::vector<Slice> keys;
  keys.reserve(bloom_key_offsets_.size());
  for (size_t i = 0; i < bloom_key_offsets_.size(); i++) {
    size_t begin = bloom_key_offsets_[i];
    size_t end = (i + 1 < bloom_key_offsets_.size())
                     ? bloom_key_offsets_[i + 1]
                     : bloom_keys_flat_.size();
    keys.emplace_back(bloom_keys_flat_.data() + begin, end - begin);
  }
  bloom_contents_.clear();
  bloom_policy_.CreateFilter(keys, &bloom_contents_);

  // Logical (uncompressed) bytes, not the physical offset delta: engines
  // size and split nodes on data_bytes, and logical accounting keeps those
  // decisions — hence tree shape and iamdb.tree-digest — identical across
  // codec settings.  Physical footprint is meta_end (space_used_bytes).
  meta_.data_bytes = logical_bytes_;
  return Status::OK();
}

}  // namespace iamdb
