#include "table/sequence_builder.h"

#include <cassert>

#include "util/rate_limiter.h"

namespace iamdb {

SequenceBuilder::SequenceBuilder(const TableOptions& options,
                                 WritableFile* file, uint64_t start_offset)
    : options_(options),
      bloom_policy_(options.bloom_bits_per_key),
      file_(file),
      start_offset_(start_offset),
      offset_(start_offset),
      data_block_(options.block_restart_interval),
      index_block_(1) {}

Status SequenceBuilder::Add(const Slice& internal_key, const Slice& value) {
  assert(!finished_);
  if (!status_.ok()) return status_;
  assert(meta_.num_entries == 0 ||
         icmp_.Compare(internal_key, Slice(last_key_)) > 0);

  if (pending_index_entry_) {
    // First key of a new block: a short separator between the previous
    // block's last key and this key indexes the previous block.
    assert(data_block_.empty());
    icmp_.FindShortestSeparator(&last_key_, internal_key);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    pending_index_entry_ = false;
  }

  if (meta_.num_entries == 0) {
    meta_.smallest.assign(internal_key.data(), internal_key.size());
  }
  last_key_.assign(internal_key.data(), internal_key.size());
  meta_.num_entries++;

  bloom_key_offsets_.push_back(bloom_keys_flat_.size());
  Slice user_key = ExtractUserKey(internal_key);
  bloom_keys_flat_.append(user_key.data(), user_key.size());

  data_block_.Add(internal_key, value);
  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    status_ = FlushDataBlock();
  }
  return status_;
}

Status SequenceBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  Slice contents = data_block_.Finish();
  // Pace before issuing the write; FlushDataBlock always runs in an
  // unlocked I/O section (never under the DB mutex), which Request requires.
  if (options_.rate_limiter != nullptr) {
    options_.rate_limiter->Request(contents.size());
  }
  Status s = WriteBlock(file_, offset_, contents, &pending_handle_);
  if (!s.ok()) return s;
  offset_ += contents.size() + 4;  // + crc
  data_block_.Reset();
  pending_index_entry_ = true;
  return Status::OK();
}

Status SequenceBuilder::Finish() {
  assert(!finished_);
  finished_ = true;
  // Record the true largest key before FindShortSuccessor mutates last_key_.
  meta_.largest = last_key_;
  if (status_.ok()) status_ = FlushDataBlock();
  if (!status_.ok()) return status_;

  if (pending_index_entry_) {
    icmp_.FindShortSuccessor(&last_key_);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    pending_index_entry_ = false;
  }
  // last_key_ was mutated by FindShortSuccessor only after recording the
  // true largest key below.
  index_contents_ = index_block_.Finish().ToString();

  // Build the whole-sequence bloom over user keys.
  std::vector<Slice> keys;
  keys.reserve(bloom_key_offsets_.size());
  for (size_t i = 0; i < bloom_key_offsets_.size(); i++) {
    size_t begin = bloom_key_offsets_[i];
    size_t end = (i + 1 < bloom_key_offsets_.size())
                     ? bloom_key_offsets_[i + 1]
                     : bloom_keys_flat_.size();
    keys.emplace_back(bloom_keys_flat_.data() + begin, end - begin);
  }
  bloom_contents_.clear();
  bloom_policy_.CreateFilter(keys, &bloom_contents_);

  meta_.data_bytes = offset_ - start_offset_;
  return Status::OK();
}

}  // namespace iamdb
