#include "table/format.h"

#include "util/crc32c.h"

namespace iamdb {

void SequenceMeta::EncodeTo(std::string* dst) const {
  index_handle.EncodeTo(dst);
  bloom_handle.EncodeTo(dst);
  PutVarint64(dst, num_entries);
  PutVarint64(dst, data_bytes);
  PutLengthPrefixedSlice(dst, smallest);
  PutLengthPrefixedSlice(dst, largest);
}

Status SequenceMeta::DecodeFrom(Slice* input) {
  Status s = index_handle.DecodeFrom(input);
  if (s.ok()) s = bloom_handle.DecodeFrom(input);
  if (!s.ok()) return s;
  Slice sm, lg;
  if (!GetVarint64(input, &num_entries) || !GetVarint64(input, &data_bytes) ||
      !GetLengthPrefixedSlice(input, &sm) ||
      !GetLengthPrefixedSlice(input, &lg)) {
    return Status::Corruption("bad sequence meta");
  }
  smallest = sm.ToString();
  largest = lg.ToString();
  return Status::OK();
}

void MSTableTrailer::EncodeTo(std::string* dst) const {
  PutFixed64(dst, region_start);
  PutFixed64(dst, meta_handle.offset());
  PutFixed64(dst, meta_handle.size());
  PutFixed32(dst, seq_count);
  PutFixed64(dst, format_version >= kFormatVersion2 ? kMagicV2 : kMagic);
  uint32_t crc = crc32c::Value(dst->data() + dst->size() - (kSize - 4),
                               kSize - 4);
  PutFixed32(dst, crc32c::Mask(crc));
}

Status MSTableTrailer::DecodeFrom(const Slice& input) {
  if (input.size() < kSize) return Status::Corruption("trailer too short");
  const char* p = input.data() + input.size() - kSize;
  uint64_t magic = DecodeFixed64(p + 28);
  if (magic == kMagic) {
    format_version = kFormatVersion1;
  } else if (magic == kMagicV2) {
    format_version = kFormatVersion2;
  } else {
    return Status::Corruption("bad table magic");
  }
  uint32_t expected = crc32c::Unmask(DecodeFixed32(p + 36));
  uint32_t actual = crc32c::Value(p, kSize - 4);
  if (expected != actual) return Status::Corruption("trailer checksum");
  region_start = DecodeFixed64(p);
  meta_handle.set_offset(DecodeFixed64(p + 8));
  meta_handle.set_size(DecodeFixed64(p + 16));
  seq_count = DecodeFixed32(p + 24);
  return Status::OK();
}

Status CheckBlockTrailer(const char* data, uint64_t payload_size,
                         bool verify_checksums, uint32_t format_version,
                         CompressionType* type) {
  const size_t n = static_cast<size_t>(payload_size);
  const size_t trailer = static_cast<size_t>(BlockTrailerSize(format_version));
  *type = CompressionType::kNone;
  // The CRC covers payload + type tag (v2) or bare contents (v1).
  const size_t crc_covered = n + trailer - 4;
  if (verify_checksums) {
    const uint32_t expected =
        crc32c::Unmask(DecodeFixed32(data + crc_covered));
    const uint32_t actual = crc32c::Value(data, crc_covered);
    if (expected != actual) {
      return Status::Corruption("block checksum mismatch");
    }
  }
  if (format_version >= kFormatVersion2) {
    const uint8_t tag = static_cast<uint8_t>(data[n]);
    if (tag > static_cast<uint8_t>(CompressionType::kLz)) {
      return Status::Corruption("unknown block compression tag");
    }
    *type = static_cast<CompressionType>(tag);
  }
  return Status::OK();
}

Status ReadBlockContents(RandomAccessFile* file, const BlockHandle& handle,
                         bool verify_checksums, uint32_t format_version,
                         std::string* contents, CompressionType* type) {
  const size_t n = static_cast<size_t>(handle.size());
  const size_t trailer = static_cast<size_t>(BlockTrailerSize(format_version));
  *type = CompressionType::kNone;
  contents->clear();
  contents->resize(n + trailer);
  Slice result;
  Status s =
      file->Read(handle.offset(), n + trailer, &result, contents->data());
  if (!s.ok()) return s;
  if (result.size() != n + trailer) {
    return Status::Corruption("truncated block read");
  }
  s = CheckBlockTrailer(result.data(), n, verify_checksums, format_version,
                        type);
  if (!s.ok()) return s;
  // The read may have landed elsewhere (mmap-style envs return internal
  // pointers); normalize into *contents.
  if (result.data() != contents->data()) {
    contents->assign(result.data(), n);
  } else {
    contents->resize(n);  // strip tag + crc
  }
  return Status::OK();
}

Status WriteBlock(WritableFile* file, uint64_t offset, const Slice& contents,
                  uint32_t format_version, CompressionType type,
                  BlockHandle* handle) {
  handle->set_offset(offset);
  handle->set_size(contents.size());
  Status s = file->Append(contents);
  if (!s.ok()) return s;
  if (format_version >= kFormatVersion2) {
    char trailer[5];
    trailer[0] = static_cast<char>(type);
    uint32_t crc = crc32c::Value(contents.data(), contents.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    return file->Append(Slice(trailer, 5));
  }
  // v1 framing carries no type tag; compressed payloads are a v2 feature.
  if (type != CompressionType::kNone) {
    return Status::InvalidArgument("compressed block in v1 table");
  }
  char trailer[4];
  EncodeFixed32(trailer, crc32c::Mask(crc32c::Value(contents.data(),
                                                    contents.size())));
  return file->Append(Slice(trailer, 4));
}

}  // namespace iamdb
