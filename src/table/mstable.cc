#include "table/mstable.h"

#include <algorithm>
#include <cassert>

#include "table/merging_iterator.h"

namespace iamdb {

namespace {

// Writes the clustered metadata region for `sequences` (index + bloom blocks
// in order, then the descriptor block, then the trailer) starting at file
// offset `region_start`.  Fills handles in-place and returns meta_end.
struct SequenceMetaInput {
  SequenceMeta meta;
  Slice index_contents;
  Slice bloom_contents;
};

Status WriteMetadataRegion(WritableFile* file, uint64_t region_start,
                           std::vector<SequenceMetaInput>* sequences,
                           uint32_t format_version, uint64_t* meta_end,
                           uint64_t* meta_bytes) {
  // Metadata blocks are always stored raw (kNone); only data blocks carry
  // compressed payloads.
  const uint64_t trailer_size = BlockTrailerSize(format_version);
  uint64_t offset = region_start;
  for (auto& seq : *sequences) {
    Status s = WriteBlock(file, offset, seq.index_contents, format_version,
                          CompressionType::kNone, &seq.meta.index_handle);
    if (!s.ok()) return s;
    offset += seq.index_contents.size() + trailer_size;
    s = WriteBlock(file, offset, seq.bloom_contents, format_version,
                   CompressionType::kNone, &seq.meta.bloom_handle);
    if (!s.ok()) return s;
    offset += seq.bloom_contents.size() + trailer_size;
  }

  std::string descriptor;
  PutVarint32(&descriptor, static_cast<uint32_t>(sequences->size()));
  for (const auto& seq : *sequences) {
    seq.meta.EncodeTo(&descriptor);
  }
  MSTableTrailer trailer;
  Status s = WriteBlock(file, offset, descriptor, format_version,
                        CompressionType::kNone, &trailer.meta_handle);
  if (!s.ok()) return s;
  offset += descriptor.size() + trailer_size;

  trailer.region_start = region_start;
  trailer.format_version = format_version;
  trailer.seq_count = static_cast<uint32_t>(sequences->size());
  std::string trailer_bytes;
  trailer.EncodeTo(&trailer_bytes);
  s = file->Append(trailer_bytes);
  if (!s.ok()) return s;
  offset += trailer_bytes.size();

  *meta_end = offset;
  *meta_bytes = offset - region_start;
  return Status::OK();
}

void FillResultRanges(const std::vector<SequenceMetaInput>& sequences,
                      const InternalKeyComparator& icmp,
                      MSTableBuildResult* result) {
  result->seq_count = static_cast<uint32_t>(sequences.size());
  result->data_bytes = 0;
  result->num_entries = 0;
  result->smallest.clear();
  result->largest.clear();
  for (const auto& seq : sequences) {
    result->data_bytes += seq.meta.data_bytes;
    result->num_entries += seq.meta.num_entries;
    if (seq.meta.num_entries == 0) continue;
    if (result->smallest.empty() ||
        icmp.Compare(seq.meta.smallest, result->smallest) < 0) {
      result->smallest = seq.meta.smallest;
    }
    if (result->largest.empty() ||
        icmp.Compare(seq.meta.largest, result->largest) > 0) {
      result->largest = seq.meta.largest;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// MSTableWriter

MSTableWriter::MSTableWriter(Env* env, const TableOptions& options,
                             std::string fname)
    : env_(env), options_(options), fname_(std::move(fname)) {}

MSTableWriter::~MSTableWriter() {
  if (file_ != nullptr && !finished_) Abandon();
}

Status MSTableWriter::Open() {
  Status s = env_->NewWritableFile(fname_, &file_);
  if (!s.ok()) return s;
  builder_ = std::make_unique<SequenceBuilder>(options_, file_.get(), 0);
  return Status::OK();
}

Status MSTableWriter::Add(const Slice& internal_key, const Slice& value) {
  return builder_->Add(internal_key, value);
}

uint64_t MSTableWriter::EstimatedDataBytes() const {
  // Logical (uncompressed) bytes: compactions cut output nodes on this, and
  // logical accounting keeps node boundaries identical across codecs.
  return builder_->logical_bytes();
}

uint64_t MSTableWriter::NumEntries() const { return builder_->num_entries(); }

Status MSTableWriter::Finish(bool sync, MSTableBuildResult* result) {
  assert(!finished_);
  finished_ = true;
  Status s = builder_->Finish();
  if (!s.ok()) return s;

  std::vector<SequenceMetaInput> sequences;
  sequences.push_back(SequenceMetaInput{builder_->meta(),
                                        builder_->index_contents(),
                                        builder_->bloom_contents()});
  s = WriteMetadataRegion(file_.get(), builder_->end_offset(), &sequences,
                          kCurrentFormatVersion, &result->meta_end,
                          &result->meta_bytes);
  if (!s.ok()) return s;
  if (sync) {
    s = file_->Sync();
    if (!s.ok()) return s;
  }
  s = file_->Close();
  file_.reset();
  if (!s.ok()) return s;

  InternalKeyComparator icmp;
  FillResultRanges(sequences, icmp, result);
  result->new_data_bytes = sequences[0].meta.data_bytes;
  return Status::OK();
}

void MSTableWriter::Abandon() {
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
  env_->RemoveFile(fname_);
  finished_ = true;
}

// ---------------------------------------------------------------------------
// MSTableAppender

MSTableAppender::MSTableAppender(Env* env, const TableOptions& options,
                                 std::string fname,
                                 const MSTableReader& existing)
    : env_(env),
      options_(options),
      fname_(std::move(fname)),
      // Appends inherit the file's format version so one file never mixes
      // framings: a v1 file appended today stays v1 (raw blocks only).
      format_version_(existing.format_version()) {
  prior_.reserve(existing.seq_count());
  for (int i = 0; i < existing.seq_count(); i++) {
    const SequenceReader& seq = existing.sequence(i);
    prior_.push_back(PriorSequence{seq.meta(),
                                   seq.index_contents().ToString(),
                                   seq.bloom_contents().ToString()});
    prior_data_bytes_ += seq.meta().data_bytes;
    prior_entries_ += seq.meta().num_entries;
  }
  prior_smallest_ = existing.smallest().ToString();
  prior_largest_ = existing.largest().ToString();
}

MSTableAppender::~MSTableAppender() {
  if (file_ != nullptr && !finished_) Abandon();
}

Status MSTableAppender::Open() {
  // O_APPEND semantics: writes land at the physical end of file, which may
  // be past the recorded meta_end if a previous append crashed before its
  // manifest record; the garbage gap is harmless.
  Status s = env_->GetFileSize(fname_, &start_offset_);
  if (!s.ok()) return s;
  s = env_->NewAppendableFile(fname_, &file_);
  if (!s.ok()) return s;
  builder_ = std::make_unique<SequenceBuilder>(options_, file_.get(),
                                               start_offset_, format_version_);
  return Status::OK();
}

Status MSTableAppender::Add(const Slice& internal_key, const Slice& value) {
  return builder_->Add(internal_key, value);
}

uint64_t MSTableAppender::NumEntries() const { return builder_->num_entries(); }

Status MSTableAppender::Finish(bool sync, MSTableBuildResult* result) {
  assert(!finished_);
  finished_ = true;
  Status s = builder_->Finish();
  if (!s.ok()) return s;

  std::vector<SequenceMetaInput> sequences;
  sequences.reserve(prior_.size() + 1);
  for (const auto& p : prior_) {
    sequences.push_back(
        SequenceMetaInput{p.meta, p.index_contents, p.bloom_contents});
  }
  sequences.push_back(SequenceMetaInput{builder_->meta(),
                                        builder_->index_contents(),
                                        builder_->bloom_contents()});

  s = WriteMetadataRegion(file_.get(), builder_->end_offset(), &sequences,
                          format_version_, &result->meta_end,
                          &result->meta_bytes);
  if (!s.ok()) return s;
  if (sync) {
    s = file_->Sync();
    if (!s.ok()) return s;
  }
  s = file_->Close();
  file_.reset();
  if (!s.ok()) return s;

  InternalKeyComparator icmp;
  FillResultRanges(sequences, icmp, result);
  result->new_data_bytes = builder_->meta().data_bytes;
  return Status::OK();
}

void MSTableAppender::Abandon() {
  // Nothing to delete: the partial append past the recorded meta_end is
  // invisible to readers and will be overwritten-or-ignored later.
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
  finished_ = true;
}

// ---------------------------------------------------------------------------
// MSTableReader

Status MSTableReader::Open(Env* env, const TableOptions& options,
                           const InternalKeyComparator* cmp,
                           const std::string& fname, uint64_t file_number,
                           uint64_t meta_end,
                           std::shared_ptr<MSTableReader>* reader) {
  reader->reset();
  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;

  if (meta_end < MSTableTrailer::kSize) {
    return Status::Corruption("meta_end too small", fname);
  }

  // One read for the trailer, one for the whole clustered metadata region.
  char trailer_space[MSTableTrailer::kSize];
  Slice trailer_input;
  s = file->Read(meta_end - MSTableTrailer::kSize, MSTableTrailer::kSize,
                 &trailer_input, trailer_space);
  if (!s.ok()) return s;
  MSTableTrailer trailer;
  s = trailer.DecodeFrom(trailer_input);
  if (!s.ok()) return s;

  if (trailer.region_start >= meta_end) {
    return Status::Corruption("bad metadata region", fname);
  }
  const uint64_t region_size =
      meta_end - MSTableTrailer::kSize - trailer.region_start;
  std::string region;
  region.resize(region_size);
  Slice region_input;
  s = file->Read(trailer.region_start, region_size, &region_input,
                 region.data());
  if (!s.ok()) return s;
  if (region_input.size() != region_size) {
    return Status::Corruption("truncated metadata region", fname);
  }
  if (region_input.data() != region.data()) {
    region.assign(region_input.data(), region_input.size());
  }

  // Parse descriptor block (its handle is region-relative on disk terms:
  // absolute file offsets; translate into the region buffer).
  auto slice_of = [&](const BlockHandle& h, Slice* out) -> Status {
    if (h.offset() < trailer.region_start ||
        h.offset() + h.size() > trailer.region_start + region_size) {
      return Status::Corruption("metadata handle out of region", fname);
    }
    *out = Slice(region.data() + (h.offset() - trailer.region_start),
                 h.size());
    return Status::OK();
  };

  Slice descriptor;
  s = slice_of(trailer.meta_handle, &descriptor);
  if (!s.ok()) return s;

  uint32_t count = 0;
  if (!GetVarint32(&descriptor, &count) || count != trailer.seq_count) {
    return Status::Corruption("bad sequence descriptor", fname);
  }

  auto result = std::shared_ptr<MSTableReader>(new MSTableReader());
  result->cmp_ = cmp;
  result->format_version_ = trailer.format_version;
  InternalKeyComparator icmp;
  for (uint32_t i = 0; i < count; i++) {
    SequenceMeta meta;
    s = meta.DecodeFrom(&descriptor);
    if (!s.ok()) return s;
    Slice index_contents, bloom_contents;
    s = slice_of(meta.index_handle, &index_contents);
    if (s.ok()) s = slice_of(meta.bloom_handle, &bloom_contents);
    if (!s.ok()) return s;
    result->total_data_bytes_ += meta.data_bytes;
    result->total_entries_ += meta.num_entries;
    if (meta.num_entries > 0) {
      if (result->smallest_.empty() ||
          icmp.Compare(meta.smallest, result->smallest_) < 0) {
        result->smallest_ = meta.smallest;
      }
      if (result->largest_.empty() ||
          icmp.Compare(meta.largest, result->largest_) > 0) {
        result->largest_ = meta.largest;
      }
    }
    result->sequences_.push_back(std::make_unique<SequenceReader>(
        options, cmp, file.get(), file_number, std::move(meta),
        index_contents.ToString(), bloom_contents.ToString(),
        trailer.format_version));
  }
  result->file_ = std::move(file);
  *reader = std::move(result);
  return Status::OK();
}

Status MSTableReader::Get(const ReadOptions& options, const Slice& ikey,
                          std::string* value, GetState* state) const {
  *state = GetState::kNotFound;
  // Newest sequence first: the first version found with sequence <= the
  // lookup snapshot is the visible one (upper sequences hold newer data).
  for (int i = seq_count() - 1; i >= 0; i--) {
    SequenceReader::GetState seq_state;
    Status s = sequences_[i]->Get(options, ikey, value, &seq_state);
    if (!s.ok()) return s;
    switch (seq_state) {
      case SequenceReader::GetState::kFound:
        *state = GetState::kFound;
        return Status::OK();
      case SequenceReader::GetState::kDeleted:
        *state = GetState::kDeleted;
        return Status::OK();
      case SequenceReader::GetState::kCorrupt:
        *state = GetState::kCorrupt;
        return Status::Corruption("corrupt sequence entry");
      case SequenceReader::GetState::kNotFound:
        break;
    }
  }
  return Status::OK();
}

void MSTableReader::MultiGet(const ReadOptions& options,
                             MultiGetRequest* const* reqs,
                             size_t count) const {
  // Newest sequence first, narrowing to the keys still pending after each —
  // the batched mirror of Get()'s first-visible-version rule.
  std::vector<MultiGetRequest*> pending(reqs, reqs + count);
  for (int i = seq_count() - 1; i >= 0 && !pending.empty(); i--) {
    sequences_[i]->MultiGet(options, pending.data(), pending.size());
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [](const MultiGetRequest* r) {
                                   return r->resolved();
                                 }),
                  pending.end());
  }
}

Iterator* MSTableReader::NewIterator(const ReadOptions& options) const {
  std::vector<Iterator*> iters;
  AddSequenceIterators(options, &iters);
  return NewMergingIterator(cmp_, iters.data(),
                            static_cast<int>(iters.size()));
}

void MSTableReader::AddSequenceIterators(const ReadOptions& options,
                                         std::vector<Iterator*>* out) const {
  for (int i = seq_count() - 1; i >= 0; i--) {
    out->push_back(sequences_[i]->NewIterator(options));
  }
}

}  // namespace iamdb
