// MSTable (Multiple Sequence Table): the on-disk node of the LSA/IAM trees,
// and — with exactly one sequence — the SSTable of the leveled baseline.
//
// Three roles:
//  * MSTableWriter   — create a new node file with one sequence.
//  * MSTableAppender — append one more sequence to an existing node,
//                      rewriting the clustered metadata region at the end
//                      (the paper's append compaction, Sec 4).
//  * MSTableReader   — open a node at a recorded `meta_end`, read the whole
//                      metadata region in one contiguous I/O, and serve
//                      point reads (newest sequence first, bloom-guarded)
//                      and merged scans.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "core/options.h"
#include "env/env.h"
#include "table/format.h"
#include "table/sequence_builder.h"
#include "table/sequence_reader.h"
#include "table/table_options.h"

namespace iamdb {

// What a finished write/append looks like to the engine's metadata.
struct MSTableBuildResult {
  uint64_t meta_end = 0;         // valid size: offset just past the trailer
  uint64_t data_bytes = 0;       // live data bytes across ALL sequences
  uint64_t new_data_bytes = 0;   // data bytes written by THIS operation
  uint64_t meta_bytes = 0;       // metadata bytes written by this operation
  uint64_t num_entries = 0;      // entries across all sequences
  uint32_t seq_count = 0;
  std::string smallest;          // internal keys across all sequences
  std::string largest;
};

class MSTableReader;

// Builds a brand-new single-sequence node.
class MSTableWriter {
 public:
  MSTableWriter(Env* env, const TableOptions& options, std::string fname);
  ~MSTableWriter();

  MSTableWriter(const MSTableWriter&) = delete;
  MSTableWriter& operator=(const MSTableWriter&) = delete;

  Status Open();
  Status Add(const Slice& internal_key, const Slice& value);
  // Bytes of data blocks emitted so far (compactions cut output nodes on
  // this).
  uint64_t EstimatedDataBytes() const;
  uint64_t NumEntries() const;
  Status Finish(bool sync, MSTableBuildResult* result);
  // Delete the partial file (error paths).
  void Abandon();

 private:
  Env* env_;
  const TableOptions options_;
  std::string fname_;
  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<SequenceBuilder> builder_;
  bool finished_ = false;
};

// Appends one sequence to an existing node.  The previous metadata region
// is abandoned in place (becomes a hole, reclaimed on merge/split) and a
// fresh region covering all sequences is written at the new end.
class MSTableAppender {
 public:
  // `existing` supplies the prior sequences' metadata (copied out, so the
  // reader may be released before Finish).
  MSTableAppender(Env* env, const TableOptions& options, std::string fname,
                  const MSTableReader& existing);
  ~MSTableAppender();

  MSTableAppender(const MSTableAppender&) = delete;
  MSTableAppender& operator=(const MSTableAppender&) = delete;

  Status Open();
  Status Add(const Slice& internal_key, const Slice& value);
  uint64_t NumEntries() const;
  Status Finish(bool sync, MSTableBuildResult* result);
  void Abandon();

 private:
  struct PriorSequence {
    SequenceMeta meta;
    std::string index_contents;
    std::string bloom_contents;
  };

  Env* env_;
  const TableOptions options_;
  std::string fname_;
  uint32_t format_version_;  // inherited from the existing file
  std::vector<PriorSequence> prior_;
  uint64_t prior_data_bytes_ = 0;
  uint64_t prior_entries_ = 0;
  std::string prior_smallest_, prior_largest_;
  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<SequenceBuilder> builder_;
  uint64_t start_offset_ = 0;
  bool finished_ = false;
};

class MSTableReader {
 public:
  // Opens the node whose metadata trailer ends at `meta_end` (recorded in
  // the manifest; bytes past it are ignored).
  static Status Open(Env* env, const TableOptions& options,
                     const InternalKeyComparator* cmp,
                     const std::string& fname, uint64_t file_number,
                     uint64_t meta_end,
                     std::shared_ptr<MSTableReader>* reader);

  MSTableReader(const MSTableReader&) = delete;
  MSTableReader& operator=(const MSTableReader&) = delete;

  int seq_count() const { return static_cast<int>(sequences_.size()); }
  // Format version from the trailer magic; appenders inherit it so a file
  // never mixes block framings.
  uint32_t format_version() const { return format_version_; }
  // i = 0 is the OLDEST sequence; seq_count()-1 the newest.
  const SequenceReader& sequence(int i) const { return *sequences_[i]; }

  uint64_t total_data_bytes() const { return total_data_bytes_; }
  uint64_t total_entries() const { return total_entries_; }
  Slice smallest() const { return smallest_; }
  Slice largest() const { return largest_; }

  enum class GetState { kNotFound, kFound, kDeleted, kCorrupt };

  // Point lookup: newest sequence first; stops at the first version of the
  // user key with sequence <= ikey's snapshot sequence.
  Status Get(const ReadOptions& options, const Slice& ikey, std::string* value,
             GetState* state) const;

  // Batched point lookup: `reqs` are pending requests sorted by internal
  // key.  Each sequence (newest first) is probed with the keys the younger
  // sequences left pending; per sequence the bloom filter and index are
  // consulted once per key and cache-missing data blocks are fetched with
  // one vectored read.  Per-key outcomes land in each request's
  // state/status; byte-equivalent to calling Get() per key.
  void MultiGet(const ReadOptions& options, MultiGetRequest* const* reqs,
                size_t count) const;

  // Merged iterator over all sequences (newest-first tie order).
  Iterator* NewIterator(const ReadOptions& options) const;

  // Iterators for each sequence, appended to *out (newest first).
  void AddSequenceIterators(const ReadOptions& options,
                            std::vector<Iterator*>* out) const;

 private:
  MSTableReader() = default;

  const InternalKeyComparator* cmp_ = nullptr;
  uint32_t format_version_ = kCurrentFormatVersion;
  std::unique_ptr<RandomAccessFile> file_;
  std::vector<std::unique_ptr<SequenceReader>> sequences_;
  uint64_t total_data_bytes_ = 0;
  uint64_t total_entries_ = 0;
  std::string smallest_, largest_;
};

}  // namespace iamdb
