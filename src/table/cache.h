// Sharded LRU cache.  Used as the block cache — the explicit stand-in for
// the OS page cache in the paper's setup.  The IAM (m,k) tuner reads the
// capacity from here (paper Sec 5.1.3 measures residency with mincore; we
// control residency directly, see DESIGN.md).
//
// Values are held by shared_ptr so eviction never invalidates a concurrent
// reader; charge accounting uses the caller-declared byte size.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/hash.h"
#include "util/slice.h"

namespace iamdb {

class LruCache {
 public:
  using ValuePtr = std::shared_ptr<const void>;

  explicit LruCache(size_t capacity_bytes);
  ~LruCache();  // out-of-line: Shard is incomplete here

  // Insert (replacing any existing entry); the cache holds `value` until
  // evicted.
  void Insert(const Slice& key, ValuePtr value, size_t charge);

  // Returns the value or nullptr; promotes the entry to most-recent.
  ValuePtr Lookup(const Slice& key);

  void Erase(const Slice& key);

  size_t usage() const;
  size_t capacity() const { return capacity_; }
  void SetCapacity(size_t capacity_bytes);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Shard;
  static constexpr int kNumShards = 16;

  Shard* GetShard(const Slice& key);

  size_t capacity_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

// Typed convenience wrapper.
template <typename T>
std::shared_ptr<const T> CacheLookup(LruCache& cache, const Slice& key) {
  return std::static_pointer_cast<const T>(cache.Lookup(key));
}

}  // namespace iamdb
