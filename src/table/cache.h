// Sharded LRU cache.  Used as the block cache — the explicit stand-in for
// the OS page cache in the paper's setup.  The IAM (m,k) tuner reads the
// capacity from here (paper Sec 5.1.3 measures residency with mincore; we
// control residency directly, see DESIGN.md).
//
// Keys are a fixed 16-byte (file_number, offset) pair — exactly what the
// table layer constructs for every block — so probes never heap-allocate:
// a Lookup hit costs one shard lock, one hash probe and a list splice.
//
// Values are held by shared_ptr so eviction never invalidates a concurrent
// reader; charge accounting uses the caller-declared byte size.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace iamdb {

// Identity of a cached block: the table file and the block's offset in it.
struct BlockCacheKey {
  uint64_t file_number = 0;
  uint64_t offset = 0;

  friend bool operator==(const BlockCacheKey&, const BlockCacheKey&) = default;
};

// splitmix64 finalizer over both words: cheap, well-mixed in every bit, so
// both the shard selector (high bits) and the hash table (low bits) see
// independent distributions.
struct BlockCacheKeyHash {
  size_t operator()(const BlockCacheKey& key) const {
    uint64_t x = key.file_number * 0x9E3779B97F4A7C15ull ^ key.offset;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

class LruCache {
 public:
  using ValuePtr = std::shared_ptr<const void>;

  explicit LruCache(size_t capacity_bytes);
  ~LruCache();  // out-of-line: Shard is incomplete here

  // Insert (replacing any existing entry); the cache holds `value` until
  // evicted.
  void Insert(const BlockCacheKey& key, ValuePtr value, size_t charge);

  // Insert only if the key is absent, returning the resident value either
  // way.  Concurrent readers that miss on the same block race to fill it;
  // the loser adopts the winner's copy instead of replacing it, so a block
  // is never charged (or allocated downstream) twice.
  ValuePtr InsertIfAbsent(const BlockCacheKey& key, ValuePtr value,
                          size_t charge);

  // Returns the value or nullptr; promotes the entry to most-recent.
  // Allocation-free on both hit and miss.
  ValuePtr Lookup(const BlockCacheKey& key);

  void Erase(const BlockCacheKey& key);

  size_t usage() const;
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  void SetCapacity(size_t capacity_bytes);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Shard;
  static constexpr int kNumShards = 16;

  Shard* GetShard(const BlockCacheKey& key);

  // Atomic: SetCapacity may race with capacity() readers (the IAM tuner);
  // the authoritative per-shard budgets live in the shards, under their
  // locks.
  std::atomic<size_t> capacity_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

// Typed convenience wrapper.
template <typename T>
std::shared_ptr<const T> CacheLookup(LruCache& cache,
                                     const BlockCacheKey& key) {
  return std::static_pointer_cast<const T>(cache.Lookup(key));
}

}  // namespace iamdb
