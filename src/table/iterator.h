// Iterator: the uniform cursor abstraction over blocks, sequences, nodes,
// levels and whole trees — bidirectional at every layer, including the
// user-facing DB iterator.
#pragma once

#include <functional>
#include <memory>

#include "util/slice.h"
#include "util/status.h"

namespace iamdb {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator();

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  // Position at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;

  // REQUIRES: Valid().  Slices remain valid until the next mutation.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;

  // Register a function to run when this iterator is destroyed — used to
  // pin blocks / versions for the iterator's lifetime.
  void RegisterCleanup(std::function<void()> fn);

 private:
  struct Cleanup {
    std::function<void()> fn;
    Cleanup* next = nullptr;
  };
  Cleanup* cleanup_head_ = nullptr;
};

// Singleton-style helpers.
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace iamdb
