// Bloom filter over user keys.  One filter per sequence: a point read
// consults the filter before seeking a data block, which is what lets LSA
// and IAM keep point-read amplification ~1 despite multi-sequence nodes
// (paper Sec 5.3.2; 14 bits/key -> ~0.2% false positives).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace iamdb {

class BloomFilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key);

  // Append the filter for keys[0..n-1] to *dst.
  void CreateFilter(const std::vector<Slice>& keys, std::string* dst) const;

  // May return true for keys not in the filter (false positive); never
  // returns false for a key that was in it.
  bool KeyMayMatch(const Slice& key, const Slice& filter) const;

  int bits_per_key() const { return bits_per_key_; }

 private:
  int bits_per_key_;
  int k_;  // number of probes
};

}  // namespace iamdb
