// TwoLevelIterator: composes an index iterator whose values name sub-
// iterators (data blocks, or nodes within a level).  Bidirectional.
#pragma once

#include <functional>

#include "table/iterator.h"

namespace iamdb {

// block_function turns an index value into the iterator over that entry's
// contents; it may return nullptr on error (iterator becomes invalid with
// the given status captured by the returned iterator itself).
Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    std::function<Iterator*(const Slice& index_value)> block_function);

}  // namespace iamdb
