// Unified memory arbiter: one Options::memory_budget_bytes pool divided
// between the write side (the memtable quota that drives rotation and
// bounds group commit) and the read side (the uncompressed + compressed
// block-cache tiers), re-divided online from signals the system already
// produces.
//
// The fixed sizing this replaces bakes the write/read split in at Open:
// as the dataset grows the caches run cold while the memtable quota sits
// idle (or vice versa), and the paper's (m,k) mixed-level tuner — whose
// budget is the cache — drifts against a capacity that never moves
// ("Breaking Down Memory Walls", PAPERS.md).  The arbiter closes the
// loop: once per retune interval it folds two per-mille pressure signals
// into EWMAs (alpha = 1/2, the pacer's convention)
//
//   stall - memtable-full write-stall time as a share of the interval
//           (DBImpl::stall_micros deltas), the write side starving, and
//   miss  - block-cache miss rate over both tiers (cache gauge deltas),
//           the read side starving,
//
// and moves the split one step_fraction toward whichever side is starved:
// stalls past stall_shift_per_mille pull budget toward the memtable —
// unless compaction debt is past pacing.debt_high_bytes, in which case
// the stalls are compaction-bound and a bigger memtable would only defer
// them — while a miss rate past miss_shift_per_mille (with stalls quiet)
// pushes budget toward the caches.  Intervals with no read traffic carry
// no read signal and leave the miss EWMA untouched, so a write-only lull
// cannot decay the evidence that reads were starved.  The write quota
// never drops below one memtable (node_capacity) and the read target
// never drops below the minimum cache allotment, so neither side can be
// starved out entirely.
//
// Applying a new division is immediate on the read side —
// LruCache::SetCapacity evicts down to the new target under the shard
// locks — and takes effect at the next rotation on the write side (the
// quota is only consulted when a write checks for room).  After every
// move the caller re-runs the engine's memory-dependent decisions
// (TreeEngine::OnMemoryRetune: the AMT engine re-runs ChooseMixedLevel
// against the new cache capacity), so a grown read share deepens the
// mixed level at the next flush/merge boundary.
//
// Threading: MaybeRebalance/ForceStep are called with the DB mutex held
// (piggybacked on MaybeScheduleBackgroundWork like the pacer, plus a
// try-lock path from the read side so read-only phases still retune); the
// cache shard locks taken by SetCapacity are leaf locks.  write_quota()
// and the gauges are atomics readable without the mutex (the write path
// reads the quota under the mutex anyway; stats threads read it raw).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/options.h"
#include "table/cache.h"
#include "util/rate_limiter.h"

namespace iamdb {

class MemoryArbiter {
 public:
  // Which way a rebalance moved the split.
  enum class Shift { kNone, kToWrite, kToRead };

  // Smallest read-side allotment per cache tier (64KB per shard).
  static uint64_t MinReadBytesPerTier() { return 1ull << 20; }

  // Smallest workable pool: one memtable plus the minimum allotment for
  // each configured cache tier.  Open rejects budgets below this.
  static uint64_t MinBudgetBytes(const Options& options) {
    uint64_t tiers = options.compressed_cache_capacity > 0 ? 2 : 1;
    return options.node_capacity + tiers * MinReadBytesPerTier();
  }

  // Computes the initial division; AttachCaches hands over the tier
  // pointers once DBImpl has constructed them from the initial targets.
  explicit MemoryArbiter(const Options& options,
                         RateClock* clock = RateClock::Default());

  MemoryArbiter(const MemoryArbiter&) = delete;
  MemoryArbiter& operator=(const MemoryArbiter&) = delete;

  // `compressed` may be null (tier off).  Both must outlive the arbiter.
  void AttachCaches(LruCache* block_cache, LruCache* compressed);

  // True once retune_interval_micros have elapsed since the last
  // rebalance (one clock read; lets hot paths skip the rest).
  bool RetuneDue() const;

  // Folds the elapsed interval's stall share and miss rate into the
  // EWMAs and moves the split one step if either side is starved,
  // applying the new read targets to the cache tiers (SetCapacity evicts
  // down).  No-op between intervals.  DB mutex held; returns true when
  // the split moved (caller must re-run TreeEngine::OnMemoryRetune).
  bool MaybeRebalance(uint64_t stall_micros_total, uint64_t debt_bytes);

  // Applies one explicit step (ops/test hook; also what MaybeRebalance
  // calls once it has decided).  DB mutex held; returns true when the
  // split moved (false once clamped at the floor/ceiling).
  bool ForceStep(Shift direction);

  // The control law itself, pure; exposed for deterministic unit tests.
  Shift Decide(uint64_t stall_per_mille, uint64_t miss_per_mille,
               uint64_t debt_bytes) const;

  // Current memtable quota: the rotation threshold MakeRoomForWrite uses
  // in place of node_capacity, and the group-commit size bound.
  uint64_t write_quota() const {
    return write_quota_.load(std::memory_order_relaxed);
  }
  // Current read-side target across both tiers.
  uint64_t read_target() const { return budget_ - write_quota(); }
  uint64_t budget() const { return budget_; }

  // Initial per-tier targets (DBImpl sizes the caches from these before
  // AttachCaches).
  uint64_t uncompressed_target() const;
  uint64_t compressed_target() const;

  // Gauges (exported through DbStats).
  uint64_t retunes() const {
    return retunes_.load(std::memory_order_relaxed);
  }
  uint64_t shifts() const { return shifts_.load(std::memory_order_relaxed); }

 private:
  void ApplyReadTargets();

  const ArbiterOptions opts_;
  const uint64_t budget_;
  const uint64_t write_floor_;      // one memtable (node_capacity)
  const uint64_t write_ceiling_;    // budget - min read allotment
  const uint64_t step_bytes_;
  const uint64_t debt_high_bytes_;  // pacing watermark: stalls are
                                    // compaction-bound above this
  // Read-share division between the tiers, in the ratio of the configured
  // capacities (0 compressed weight = tier off, everything uncompressed).
  const uint64_t uncompressed_weight_;
  const uint64_t compressed_weight_;
  RateClock* const clock_;

  LruCache* block_cache_ = nullptr;
  LruCache* compressed_cache_ = nullptr;

  std::atomic<uint64_t> write_quota_;
  std::atomic<uint64_t> last_retune_micros_;
  std::atomic<uint64_t> last_stall_micros_{0};   // totals at last fold
  std::atomic<uint64_t> last_hits_{0};
  std::atomic<uint64_t> last_misses_{0};
  std::atomic<uint64_t> ewma_stall_pm_{0};
  std::atomic<uint64_t> ewma_miss_pm_{0};
  std::atomic<uint64_t> retunes_{0};
  std::atomic<uint64_t> shifts_{0};
};

}  // namespace iamdb
