// DBIter: turns the merged internal-key stream (memtables + every sequence
// of every covering node) into the user-visible view at one sequence number:
// newest visible version per key, tombstones hide older versions.
// Fully bidirectional (Seek/Next/Prev/SeekToFirst/SeekToLast).
#pragma once

#include "core/dbformat.h"
#include "table/iterator.h"

namespace iamdb {

// Takes ownership of internal_iter.
Iterator* NewDBIterator(Iterator* internal_iter, SequenceNumber sequence);

}  // namespace iamdb
