// Mixed-level tuner: picks the paper's (m, k) from the memory budget.
//
// Paper Sec 5.1.3: the average appended-sequence volume of the mixed level
// with parameter k is  S(m,k) = D_m * (k-1) / t   (Eq. 1), and (m, k) must
// satisfy  sum_{j<m} D_j + S(m,k) <= M            (Eq. 2)
// where M is the memory available for caching appended sequences.  The
// largest m, then the largest k, wins (smaller write amplification).
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.h"

namespace iamdb {

struct MixedLevelChoice {
  // 1-based paper level index of the mixed level; n+1 means every on-disk
  // level is an appending level (the LSA limit).  0 means "no levels yet".
  int m = 0;
  int k = 1;
};

// level_bytes[j] = D_{j+1} (bytes stored in paper level j+1); t = fanout;
// budget = usable cache bytes (M, already scaled by the fraction).
MixedLevelChoice ChooseMixedLevel(const std::vector<uint64_t>& level_bytes,
                                  int fanout, int max_k, uint64_t budget);

}  // namespace iamdb
