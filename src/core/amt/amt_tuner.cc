#include "core/amt/amt_tuner.h"

namespace iamdb {

MixedLevelChoice ChooseMixedLevel(const std::vector<uint64_t>& level_bytes,
                                  int fanout, int max_k, uint64_t budget) {
  const int n = static_cast<int>(level_bytes.size());
  MixedLevelChoice choice;
  if (n == 0) {
    choice.m = 1;
    choice.k = max_k;
    return choice;
  }

  // Largest m first (paper: "the largest m and k satisfying the inequality
  // is preferred").  m ranges over 1..n+1; m = n+1 means all-append (LSA
  // shape) and requires the whole store to fit in the budget.
  for (int m = n + 1; m >= 1; m--) {
    uint64_t upper = 0;  // sum of D_j for j < m
    bool overflow = false;
    for (int j = 1; j < m; j++) {
      upper += level_bytes[j - 1];
      if (upper > budget) {
        overflow = true;
        break;
      }
    }
    if (overflow) continue;

    if (m == n + 1) {
      choice.m = m;
      choice.k = max_k;
      return choice;
    }
    const uint64_t dm = level_bytes[m - 1];
    for (int k = max_k; k >= 1; k--) {
      // Eq. 1: S(m,k) = D_m * (k-1) / t.
      uint64_t appended = dm * static_cast<uint64_t>(k - 1) /
                          static_cast<uint64_t>(fanout);
      if (upper + appended <= budget) {
        choice.m = m;
        choice.k = k;
        return choice;
      }
    }
    // Even k=1 does not fit: the mixed level must move up.
  }

  // Budget smaller than D_... nothing fits: mixed level is L1 with k=1
  // (merge everywhere — the degenerate LSM shape).
  choice.m = 1;
  choice.k = 1;
  return choice;
}

}  // namespace iamdb
