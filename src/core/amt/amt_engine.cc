#include "core/amt/amt_engine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>

#include "core/compaction_stream.h"
#include "core/db_impl.h"
#include "core/filename.h"
#include "core/level_iters.h"
#include "table/merging_iterator.h"
#include "util/rate_limiter.h"
#include "util/task_group.h"

namespace iamdb {

namespace {

// Sorted in-memory record buffer exposed as an Iterator (forward-only use
// inside merges).
using RecordVec = std::vector<std::pair<std::string, std::string>>;

class VectorIterator final : public Iterator {
 public:
  explicit VectorIterator(const RecordVec* records)
      : records_(records), index_(records->size()) {}

  bool Valid() const override { return index_ < records_->size(); }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = records_->empty() ? 0 : records_->size() - 1;
  }
  void Seek(const Slice& target) override {
    InternalKeyComparator cmp;
    size_t lo = 0, hi = records_->size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cmp.Compare(Slice((*records_)[mid].first), target) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    index_ = lo;
  }
  void Next() override { index_++; }
  void Prev() override {
    if (index_ == 0) {
      index_ = records_->size();
    } else {
      index_--;
    }
  }
  Slice key() const override { return Slice((*records_)[index_].first); }
  Slice value() const override { return Slice((*records_)[index_].second); }
  Status status() const override { return Status::OK(); }

 private:
  const RecordVec* records_;
  size_t index_;
};

NodePtr NodeFromEdit(const NodeEdit& e, Env* env, const std::string& dbname) {
  auto node = std::make_shared<NodeMeta>();
  node->node_id = e.node_id;
  node->file_number = e.file_number;
  node->meta_end = e.meta_end;
  node->data_bytes = e.data_bytes;
  node->num_entries = e.num_entries;
  node->seq_count = e.seq_count;
  node->range_lo = e.range_lo;
  node->range_hi = e.range_hi;
  node->smallest_ikey = e.smallest_ikey;
  node->largest_ikey = e.largest_ikey;
  if (e.file_number != 0) {
    node->lifetime = std::make_shared<FileLifetime>(
        env, TableFileName(dbname, e.file_number));
  }
  return node;
}

void SortByRange(std::vector<NodePtr>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const NodePtr& a, const NodePtr& b) {
              return a->range_lo < b->range_lo;
            });
}

}  // namespace

AmtEngine::AmtEngine(DBImpl* db) : db_(db) {
  current_.Store(
      std::make_shared<const TreeVersion>(std::vector<std::vector<NodePtr>>()));
  RecomputeMixedLevel();
}

Status AmtEngine::Recover(const RecoveredState& state) {
  std::vector<std::vector<NodePtr>> levels(state.num_levels);
  for (int level = 0; level < static_cast<int>(state.nodes.size()); level++) {
    for (const NodeEdit& e : state.nodes[level]) {
      levels[level].push_back(NodeFromEdit(e, db_->env(), db_->dbname()));
    }
    SortByRange(&levels[level]);
  }
  current_.Store(std::make_shared<const TreeVersion>(std::move(levels)));
  RecomputeMixedLevel();
  // The recovered-state computation above is the baseline, not a retune.
  mk_retunes_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

int AmtEngine::Fanout() const { return db_->options().amt.fanout; }
uint64_t AmtEngine::NodeCapacity() const {
  return db_->options().node_capacity;
}

uint64_t AmtEngine::LevelNodeLimit(int version_index) const {
  uint64_t limit = 1;
  for (int i = 0; i <= version_index; i++) {
    limit *= static_cast<uint64_t>(Fanout());
  }
  return limit;
}

void AmtEngine::RecomputeMixedLevel() {
  const AmtOptions& amt = db_->options().amt;
  TreeVersionPtr version = current_version();
  const int n = version->num_levels();

  MixedLevelChoice choice;
  if (amt.policy == AmtPolicy::kLsa) {
    choice = MixedLevelChoice{n + 1, amt.k};
  } else if (!amt.auto_tune_mk) {
    int m = amt.fixed_mixed_level;
    choice = MixedLevelChoice{m <= 0 ? n + 1 : m, amt.k};
  } else {
    std::vector<uint64_t> level_bytes;
    level_bytes.reserve(n);
    for (int i = 0; i < n; i++) level_bytes.push_back(version->LevelBytes(i));
    // The tuner's M: an explicit override, else the live cache capacity —
    // which the memory arbiter moves online, so a re-division here picks
    // up the new read share (with fixed sizing it equals
    // block_cache_capacity and this is the historical behaviour).
    uint64_t budget = amt.memory_budget_bytes != 0
                          ? amt.memory_budget_bytes
                          : db_->block_cache()->capacity();
    budget = static_cast<uint64_t>(budget * amt.memory_budget_fraction);
    choice = ChooseMixedLevel(level_bytes, amt.fanout, amt.k, budget);
  }
  MixedLevelChoice old = mixed_.load(std::memory_order_relaxed);
  if (old.m != 0 && (old.m != choice.m || old.k != choice.k)) {
    mk_retunes_.fetch_add(1, std::memory_order_relaxed);
  }
  mixed_.store(choice, std::memory_order_release);
}

bool AmtEngine::IsAppendLevel(int paper_level) const {
  return paper_level < mixed_level().m;
}
bool AmtEngine::IsMixedLevel(int paper_level) const {
  return paper_level == mixed_level().m;
}

std::vector<NodePtr> AmtEngine::Children(const TreeVersion& version, int level,
                                         const NodeMeta& node) const {
  std::vector<NodePtr> result;
  if (level + 1 >= version.num_levels()) return result;
  const auto& next = version.level(level + 1);
  // Binary search the first child whose range can overlap (range-sorted,
  // disjoint): first child with range_hi >= node.range_lo.  range_hi is
  // also sorted because ranges are disjoint.
  size_t lo = 0, hi = next.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (next[mid]->range_hi < node.range_lo) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (size_t i = lo; i < next.size(); i++) {
    if (next[i]->range_lo > node.range_hi) break;
    result.push_back(next[i]);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Picking

bool AmtEngine::AnyBusy(const Job& job, const std::set<uint64_t>& busy) {
  if (job.node != nullptr && busy.count(job.node->node_id)) return true;
  for (const auto& t : job.targets) {
    if (busy.count(t->node_id)) return true;
  }
  return false;
}

void AmtEngine::MarkBusyIn(const Job& job, std::set<uint64_t>* busy) {
  if (job.node != nullptr) busy->insert(job.node->node_id);
  for (const auto& t : job.targets) busy->insert(t->node_id);
}

void AmtEngine::MarkBusy(const Job& job) { MarkBusyIn(job, &busy_nodes_); }

void AmtEngine::ClearBusy(const Job& job) {
  if (job.node != nullptr) busy_nodes_.erase(job.node->node_id);
  for (const auto& t : job.targets) busy_nodes_.erase(t->node_id);
}

bool AmtEngine::PickCompactionJob(const TreeVersion& version,
                                  const std::set<uint64_t>& busy,
                                  Job* job) const {
  const int n = version.num_levels();
  const uint64_t capacity = NodeCapacity();

  // 1. Grow: the leaf level reached its node-count threshold (Sec 4.2.3
  //    pre-processing: n increases, a fresh empty leaf level appears).
  if (n > 0 &&
      version.level(n - 1).size() >= LevelNodeLimit(n - 1)) {
    job->type = Job::Type::kGrow;
    return true;
  }

  // 2. Combine: deepest internal level with too many nodes.
  for (int level = n - 2; level >= 0; level--) {
    const auto& nodes = version.level(level);
    if (nodes.size() <= LevelNodeLimit(level)) continue;
    // Candidates: nodes with two adjacent siblings and Tcn <= 3t; pick the
    // smallest Tcn (Sec 4.2.3).
    int t = Fanout();
    const bool min_tcn = db_->options().amt.combine_min_tcn;
    size_t best = SIZE_MAX;
    size_t best_tcn = SIZE_MAX;
    for (size_t i = 1; i + 1 < nodes.size(); i++) {
      NodeMeta combined;
      combined.range_lo = nodes[i - 1]->range_lo;
      combined.range_hi = nodes[i + 1]->range_hi;
      size_t tcn =
          min_tcn ? Children(version, level, combined).size() : i;
      if (tcn < best_tcn) {
        Job probe;
        probe.node = nodes[i];
        probe.targets = Children(version, level, *nodes[i]);
        if (AnyBusy(probe, busy)) continue;
        best_tcn = tcn;
        best = i;
        if (!min_tcn) break;  // naive: first available candidate
      }
    }
    if (best == SIZE_MAX) continue;  // everything busy; try other levels
    // Paper: candidates must satisfy Tcn <= 3t and the set is non-empty on
    // average; under extreme skew we still take the global minimum so the
    // node-count invariant is always restored.
    (void)t;
    job->type = Job::Type::kCombine;
    job->level = level;
    job->node = nodes[best];
    job->targets = Children(version, level, *job->node);
    return true;
  }

  // 3. Full internal nodes; split at >= 2t children.  Greedy mode picks
  //    the fullest node anywhere in the tree (most debt bytes retired per
  //    job); classic mode takes the first hit deepest level first.
  const bool greedy = db_->options().greedy_compaction;
  Job best;
  uint64_t best_bytes = 0;
  for (int level = n - 2; level >= 0; level--) {
    for (const auto& node : version.level(level)) {
      if (node->data_bytes < capacity) continue;
      if (greedy && node->data_bytes <= best_bytes) continue;
      Job probe;
      probe.node = node;
      probe.targets = Children(version, level, *node);
      if (AnyBusy(probe, busy)) continue;
      // Precondition (Sec 4.2.1): an internal child that is itself full
      // must be flushed first.  The deepest-first scan guarantees that for
      // the first hit (any such child was handled or is busy, and a busy
      // child means AnyBusy skipped us) — but the greedy pick compares
      // across levels, so a shallow node could otherwise be chosen over
      // its own full child.  Skip such nodes explicitly; the child is a
      // candidate itself, so progress is preserved.
      if (greedy && level < n - 2) {
        bool full_internal_child = false;
        for (const auto& t : probe.targets) {
          if (t->data_bytes >= capacity) {
            full_internal_child = true;
            break;
          }
        }
        if (full_internal_child) continue;
      }
      probe.level = level;
      const double split_at =
          db_->options().amt.split_child_factor * Fanout();
      probe.type = probe.targets.size() >= static_cast<size_t>(split_at) &&
                           probe.targets.size() >= 2
                       ? Job::Type::kSplit
                       : Job::Type::kFlushNode;
      if (!greedy) {
        *job = probe;
        return true;
      }
      best = probe;
      best_bytes = probe.node->data_bytes;
    }
  }
  if (greedy && best.node != nullptr) {
    *job = best;
    return true;
  }
  return false;
}

bool AmtEngine::PickFlushJob(const TreeVersion& version, Job* job) {
  if (db_->imm() == nullptr || imm_flush_running_) return false;
  const int n = version.num_levels();
  const uint64_t capacity = NodeCapacity();

  // Targets are the L1 nodes whose ranges overlap the memtable's key span —
  // when none do (sequential loads), the memtable becomes a brand-new node
  // written exactly once.
  Job probe;
  probe.type = Job::Type::kFlushImm;
  probe.level = -1;
  if (n > 0) {
    std::string imm_lo, imm_hi;
    {
      std::unique_ptr<Iterator> it(db_->imm()->NewIterator());
      it->SeekToFirst();
      if (it->Valid()) imm_lo = ExtractUserKey(it->key()).ToString();
      it->SeekToLast();
      if (it->Valid()) imm_hi = ExtractUserKey(it->key()).ToString();
    }
    for (const auto& node : version.level(0)) {
      if (node->range_hi < imm_lo || node->range_lo > imm_hi) continue;
      if (n > 1 && node->data_bytes >= capacity) {
        // A full internal L1 child blocks the memtable flush
        // (precondition 2, Sec 4.2.1).  Run that child's own flush here on
        // the flush lane — with flush priority — instead of waiting for
        // the compaction queue to reach it, so the stalled writer is
        // unblocked as fast as the prerequisite allows.
        Job pre;
        pre.level = 0;
        pre.node = node;
        pre.targets = Children(version, 0, *node);
        if (AnyBusy(pre, busy_nodes_)) return false;  // being handled now
        const double split_at =
            db_->options().amt.split_child_factor * Fanout();
        pre.type = pre.targets.size() >= static_cast<size_t>(split_at) &&
                           pre.targets.size() >= 2
                       ? Job::Type::kSplit
                       : Job::Type::kFlushNode;
        *job = pre;
        return true;
      }
      probe.targets.push_back(node);
    }
  }
  if (AnyBusy(probe, busy_nodes_)) return false;
  *job = probe;
  return true;
}

bool AmtEngine::NeedsCompaction() const {
  return RunnableCompactions(1) > 0;
}

int AmtEngine::RunnableCompactions(int max) const {
  if (max <= 0) return 0;
  TreeVersionPtr version = current_version();
  // Simulate the scheduler: pick, busy-mark, repeat.  Every non-grow pick
  // marks at least its own node busy, so the loop terminates.
  std::set<uint64_t> busy = busy_nodes_;
  int count = 0;
  while (count < max) {
    Job job;
    if (!PickCompactionJob(*version, busy, &job)) break;
    count++;
    // Grow mutates the level count under the mutex and serializes with
    // everything; it marks nothing busy, so stop simulating past it.
    if (job.type == Job::Type::kGrow) break;
    MarkBusyIn(job, &busy);
  }
  return count;
}

TreeEngine::WritePressure AmtEngine::GetWritePressure() const {
  // IamDB relies on the natural imm backpressure (the paper adds no extra
  // stall control; Sec 6.2 contrasts this with RocksDB's).
  return WritePressure::kNone;
}

Status AmtEngine::BackgroundWork(WorkLane lane, bool* did_work) {
  *did_work = false;
  TreeVersionPtr version = current_version();
  Job job;
  if (lane == WorkLane::kFlush) {
    if (!PickFlushJob(*version, &job)) return Status::OK();
  } else {
    if (!PickCompactionJob(*version, busy_nodes_, &job)) return Status::OK();
  }
  *did_work = true;

  if (job.type == Job::Type::kGrow) return RunGrow();

  // Flush-lane I/O outranks merge I/O at the rate limiter for the whole
  // job on this thread; subcompaction shards re-establish the scope on
  // their own threads (FlushInto).
  RateLimiter::ScopedPriority prio(lane == WorkLane::kFlush
                                       ? RateLimiter::IoPriority::kHigh
                                       : RateLimiter::IoPriority::kLow);

  MarkBusy(job);
  if (job.type == Job::Type::kFlushImm) imm_flush_running_ = true;
  Status s;
  switch (job.type) {
    case Job::Type::kFlushImm:
      s = RunFlushImm(job, lane);
      break;
    case Job::Type::kFlushNode:
      s = RunFlushNode(job, /*destroy_parent=*/false, lane);
      break;
    case Job::Type::kCombine:
      s = RunFlushNode(job, /*destroy_parent=*/true, lane);
      break;
    case Job::Type::kSplit:
      s = RunSplit(job);
      break;
    case Job::Type::kGrow:
      break;
  }
  if (job.type == Job::Type::kFlushImm) imm_flush_running_ = false;
  ClearBusy(job);
  return s;
}

// ---------------------------------------------------------------------------
// Version application

void AmtEngine::ApplyToVersion(
    const std::vector<std::pair<int, uint64_t>>& removed,
    const std::vector<std::pair<int, NodePtr>>& added, int new_num_levels) {
  TreeVersionPtr base = current_version();
  std::vector<std::vector<NodePtr>> levels = base->levels();
  if (new_num_levels > static_cast<int>(levels.size())) {
    levels.resize(new_num_levels);
  }
  for (const auto& [level, node_id] : removed) {
    auto& nodes = levels[level];
    nodes.erase(std::remove_if(nodes.begin(), nodes.end(),
                               [&, id = node_id](const NodePtr& node) {
                                 return node->node_id == id;
                               }),
                nodes.end());
  }
  for (const auto& [level, node] : added) {
    levels[level].push_back(node);
  }
  for (auto& nodes : levels) SortByRange(&nodes);
  current_.Store(std::make_shared<const TreeVersion>(std::move(levels)));
  RecomputeMixedLevel();
}

NodeEdit AmtEngine::ToEdit(const NodeMeta& node, int level) const {
  NodeEdit e;
  e.level = level;
  e.node_id = node.node_id;
  e.file_number = node.file_number;
  e.meta_end = node.meta_end;
  e.data_bytes = node.data_bytes;
  e.num_entries = node.num_entries;
  e.seq_count = node.seq_count;
  e.range_lo = node.range_lo;
  e.range_hi = node.range_hi;
  e.smallest_ikey = node.smallest_ikey;
  e.largest_ikey = node.largest_ikey;
  return e;
}

NodePtr AmtEngine::MakeEmptyNode(uint64_t node_id, const std::string& lo,
                                 const std::string& hi) const {
  auto node = std::make_shared<NodeMeta>();
  node->node_id = node_id;
  node->range_lo = lo;
  node->range_hi = hi;
  return node;
}

Status AmtEngine::RunGrow() {
  TreeVersionPtr version = current_version();
  int new_count = version->num_levels() + 1;
  VersionEdit edit;
  edit.SetNumLevels(new_count);
  Status s = db_->LogEdit(&edit);
  if (!s.ok()) return s;
  ApplyToVersion({}, {}, new_count);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// The flush executor (Sec 4.2.1 / 5.1): shared by memtable flushes, node
// flushes and combines.  Drains `source` (already visibility-filtered,
// internal-key order) into the targets at version index `tlevel`; the
// parent node's own removal is handled by the caller.

Status AmtEngine::FlushOneTarget(const NodePtr& target,
                                 const RecordBuffer& records, int tlevel,
                                 bool is_leaf, WriteReason append_reason,
                                 SequenceNumber smallest_snapshot,
                                 FlushDelta* frag) {
  const Options& options = db_->options();
  const uint64_t capacity = NodeCapacity();
  const int paper_level = tlevel + 1;
  const bool lsa = options.amt.policy == AmtPolicy::kLsa;
  const MixedLevelChoice mixed = mixed_level();
  const int k = mixed.k;

  // Policy (Sec 5.1): merge a full leaf child; IAM merges below m and at
  // m once a child holds k sequences; everything else appends.
  bool do_merge = false;
  if (!target->empty()) {
    if (is_leaf && target->data_bytes >= capacity) {
      do_merge = true;
    } else if (!lsa) {
      if (paper_level > mixed.m) {
        do_merge = true;
      } else if (IsMixedLevel(paper_level) &&
                 target->seq_count >= static_cast<uint32_t>(k)) {
        do_merge = true;
      }
    }
  }

  std::string data_lo = ExtractUserKey(records.front().first).ToString();
  std::string data_hi = ExtractUserKey(records.back().first).ToString();

  if (!do_merge) {
    // ---- Append path ----
    MSTableBuildResult result;
    Status s;
    uint64_t file_number = target->file_number;
    std::shared_ptr<FileLifetime> lifetime = target->lifetime;
    if (target->file_number == 0) {
      // Empty placeholder: materialize its first file.
      {
        std::lock_guard<std::mutex> l(db_->mutex());
        file_number = db_->NewFileNumber();
      }
      MSTableWriter writer(db_->env(), options.table,
                           TableFileName(db_->dbname(), file_number));
      s = writer.Open();
      for (const auto& [ik, v] : records) {
        if (!s.ok()) break;
        s = writer.Add(ik, v);
      }
      if (s.ok()) {
        s = writer.Finish(/*sync=*/true, &result);
      } else {
        writer.Abandon();
      }
      if (!s.ok()) return s;
      lifetime = std::make_shared<FileLifetime>(
          db_->env(), TableFileName(db_->dbname(), file_number));
    } else {
      std::shared_ptr<MSTableReader> reader;
      s = target->OpenReader(db_->env(), options.table, db_->icmp(),
                             db_->dbname(), &reader);
      if (!s.ok()) return s;
      MSTableAppender appender(db_->env(), options.table,
                               TableFileName(db_->dbname(), file_number),
                               *reader);
      s = appender.Open();
      for (const auto& [ik, v] : records) {
        if (!s.ok()) break;
        s = appender.Add(ik, v);
      }
      if (s.ok()) {
        s = appender.Finish(/*sync=*/true, &result);
      } else {
        appender.Abandon();
      }
      if (!s.ok()) return s;
    }

    auto updated = std::make_shared<NodeMeta>();
    updated->node_id = target->node_id;
    updated->file_number = file_number;
    updated->meta_end = result.meta_end;
    updated->data_bytes = result.data_bytes;
    updated->num_entries = result.num_entries;
    updated->seq_count = result.seq_count;
    updated->smallest_ikey = result.smallest;
    updated->largest_ikey = result.largest;
    updated->range_lo = std::min(target->range_lo, data_lo);
    updated->range_hi = std::max(target->range_hi, data_hi);
    updated->lifetime = std::move(lifetime);

    db_->amp_stats_mutable()->RecordLevelWrite(paper_level, append_reason,
                                               result.new_data_bytes);
    db_->amp_stats_mutable()->RecordLevelWrite(
        paper_level, WriteReason::kMetadata, result.meta_bytes);

    frag->removed.emplace_back(tlevel, target->node_id);
    frag->added.emplace_back(tlevel, updated);
  } else {
    // ---- Merge path ----
    std::shared_ptr<MSTableReader> reader;
    Status s = target->OpenReader(db_->env(), options.table, db_->icmp(),
                                  db_->dbname(), &reader);
    if (!s.ok()) return s;

    std::vector<Iterator*> iters;
    iters.push_back(new VectorIterator(&records));
    iters.back()->SeekToFirst();
    ReadOptions merge_read;
    merge_read.fill_cache = false;
    merge_read.rate_limiter = db_->rate_limiter();
    reader->AddSequenceIterators(merge_read, &iters);
    Iterator* merged = NewMergingIterator(db_->icmp(), iters.data(),
                                          static_cast<int>(iters.size()));
    CompactionStream stream(merged, smallest_snapshot,
                            /*bottommost=*/is_leaf);

    // Leaf merges shatter into fresh nodes of Cts = Ct/split_factor
    // (Sec 4.2.1, Fig. 4); internal merges produce one single-sequence
    // node (Sec 5.1.1).
    const uint64_t cut_bytes =
        is_leaf ? capacity / options.amt.leaf_merge_split_factor
                : UINT64_MAX;

    std::vector<NodePtr> outputs;
    std::unique_ptr<MSTableWriter> writer;
    uint64_t out_file = 0, out_node = 0;
    uint64_t written = 0, meta_written = 0;
    auto finish_output = [&]() -> Status {
      if (writer == nullptr) return Status::OK();
      MSTableBuildResult result;
      Status fs = writer->Finish(/*sync=*/true, &result);
      if (!fs.ok()) return fs;
      auto node = std::make_shared<NodeMeta>();
      node->node_id = out_node;
      node->file_number = out_file;
      node->meta_end = result.meta_end;
      node->data_bytes = result.data_bytes;
      node->num_entries = result.num_entries;
      node->seq_count = result.seq_count;
      node->smallest_ikey = result.smallest;
      node->largest_ikey = result.largest;
      node->range_lo = ExtractUserKey(result.smallest).ToString();
      node->range_hi = ExtractUserKey(result.largest).ToString();
      node->lifetime = std::make_shared<FileLifetime>(
          db_->env(), TableFileName(db_->dbname(), out_file));
      outputs.push_back(std::move(node));
      written += result.data_bytes;
      meta_written += result.meta_bytes;
      writer.reset();
      return Status::OK();
    };

    std::string last_user_key;
    while (stream.Valid() && s.ok()) {
      Slice user_key = ExtractUserKey(stream.key());
      // Cut only at user-key boundaries so node ranges in a level stay
      // user-key-disjoint (point reads pick exactly one node per level).
      if (writer != nullptr &&
          writer->EstimatedDataBytes() >= cut_bytes &&
          user_key != Slice(last_user_key)) {
        s = finish_output();
        if (!s.ok()) break;
      }
      if (writer == nullptr) {
        {
          std::lock_guard<std::mutex> l(db_->mutex());
          out_file = db_->NewFileNumber();
          out_node = db_->NewNodeId();
        }
        writer = std::make_unique<MSTableWriter>(
            db_->env(), options.table,
            TableFileName(db_->dbname(), out_file));
        s = writer->Open();
        if (!s.ok()) break;
      }
      s = writer->Add(stream.key(), stream.value());
      if (!s.ok()) break;
      last_user_key.assign(user_key.data(), user_key.size());
      stream.Next();
    }
    if (s.ok()) s = stream.status();
    if (s.ok()) {
      s = finish_output();
    } else if (writer != nullptr) {
      writer->Abandon();
    }
    if (!s.ok()) {
      for (const auto& node : outputs) {
        if (node->lifetime) node->lifetime->MarkObsolete();
      }
      return s;
    }

    // Preserve the child's range coverage on the outer outputs.
    if (!outputs.empty()) {
      outputs.front()->range_lo =
          std::min(outputs.front()->range_lo,
                   std::min(target->range_lo, data_lo));
      outputs.back()->range_hi = std::max(
          outputs.back()->range_hi, std::max(target->range_hi, data_hi));
    }

    db_->amp_stats_mutable()->RecordLevelWrite(paper_level,
                                               WriteReason::kMerge, written);
    db_->amp_stats_mutable()->RecordLevelWrite(
        paper_level, WriteReason::kMetadata, meta_written);

    frag->removed.emplace_back(tlevel, target->node_id);
    if (target->lifetime) frag->obsolete.push_back(target->lifetime);
    for (const auto& node : outputs) {
      frag->added.emplace_back(tlevel, node);
    }
  }
  return Status::OK();
}

Status AmtEngine::FlushInto(CompactionStream* source, int tlevel,
                            const std::vector<NodePtr>& targets, bool is_leaf,
                            WriteReason append_reason, WorkLane lane,
                            FlushDelta* delta) {
  const Options& options = db_->options();

  // Partition the source into per-target buffers.  Targets are
  // range-sorted; a record goes to the last target whose range_lo is <=
  // its user key (left-biased gap assignment; see DESIGN.md).
  std::vector<RecordBuffer> partitions(targets.size());
  {
    size_t idx = 0;
    while (source->Valid()) {
      Slice user_key = ExtractUserKey(source->key());
      while (idx + 1 < targets.size() &&
             Slice(targets[idx + 1]->range_lo).compare(user_key) <= 0) {
        idx++;
      }
      // A record before the first target's range belongs to the first.
      partitions[idx].emplace_back(source->key().ToString(),
                                   source->value().ToString());
      source->Next();
    }
    Status s = source->status();
    if (!s.ok()) return s;
  }

  SequenceNumber smallest_snapshot;
  {
    std::lock_guard<std::mutex> l(db_->mutex());
    smallest_snapshot = db_->SmallestSnapshot();
  }

  // Each non-empty target is an independent subcompaction unit: the
  // partition step put every record in exactly one child, so shards touch
  // disjoint key ranges and disjoint files.  Results are collected in
  // per-target fragments and merged in child order below — the final edit
  // is byte-identical to the single-threaded execution regardless of how
  // many shards ran or how they interleaved (subcompaction_test asserts
  // this across engines).
  std::vector<FlushDelta> fragments(targets.size());
  std::vector<size_t> work;
  std::vector<uint64_t> work_bytes;
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < targets.size(); i++) {
    if (partitions[i].empty()) continue;
    uint64_t bytes = 0;
    for (const auto& [ik, v] : partitions[i]) bytes += ik.size() + v.size();
    work.push_back(i);
    work_bytes.push_back(bytes);
    total_bytes += bytes;
  }

  int fan = options.max_subcompactions > 0 ? options.max_subcompactions
                                           : options.background_threads;
  fan = std::min<int>(fan, static_cast<int>(work.size()));

  Status s;
  if (fan <= 1) {
    for (size_t i : work) {
      s = FlushOneTarget(targets[i], partitions[i], tlevel, is_leaf,
                         append_reason, smallest_snapshot, &fragments[i]);
      if (!s.ok()) break;
    }
  } else {
    // Contiguous groups balanced by partition bytes: each group is one
    // pool task, so a skewed partition doesn't serialize behind one shard.
    std::vector<std::vector<size_t>> groups;
    groups.emplace_back();
    uint64_t per_group = total_bytes / fan + 1;
    uint64_t acc = 0;
    for (size_t w = 0; w < work.size(); w++) {
      if (acc >= per_group &&
          static_cast<int>(groups.size()) < fan) {
        groups.emplace_back();
        acc = 0;
      }
      groups.back().push_back(work[w]);
      acc += work_bytes[w];
    }

    const RateLimiter::IoPriority prio = lane == WorkLane::kFlush
                                             ? RateLimiter::IoPriority::kHigh
                                             : RateLimiter::IoPriority::kLow;
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(groups.size());
    for (const auto& group : groups) {
      tasks.push_back([this, &group, &targets, &partitions, &fragments,
                       tlevel, is_leaf, append_reason, smallest_snapshot,
                       prio]() -> Status {
        // Pool helpers carry no priority scope of their own.
        RateLimiter::ScopedPriority p(prio);
        for (size_t i : group) {
          Status ts =
              FlushOneTarget(targets[i], partitions[i], tlevel, is_leaf,
                             append_reason, smallest_snapshot, &fragments[i]);
          if (!ts.ok()) return ts;
        }
        return Status::OK();
      });
    }
    db_->RecordSubcompactions(tasks.size());
    s = TaskGroup::RunAll(db_->pool(),
                          lane == WorkLane::kFlush ? ThreadPool::Lane::kHigh
                                                   : ThreadPool::Lane::kLow,
                          std::move(tasks));
  }

  if (!s.ok()) {
    // Shards that succeeded before the failure produced files that will
    // never be installed.  Merge outputs get fresh lifetimes — mark those
    // obsolete; append-path results share the target's own file (possibly
    // with trailing garbage past the recorded meta_end, which readers
    // never consult) and must be left alone.
    for (size_t i = 0; i < targets.size(); i++) {
      for (const auto& [lvl, node] : fragments[i].added) {
        (void)lvl;
        if (node->lifetime && node->lifetime != targets[i]->lifetime) {
          node->lifetime->MarkObsolete();
        }
      }
    }
    return s;
  }

  // Deterministic install order: child order, independent of shard timing.
  for (size_t i = 0; i < targets.size(); i++) {
    FlushDelta& frag = fragments[i];
    for (const auto& [lvl, node_id] : frag.removed) {
      delta->removed.emplace_back(lvl, node_id);
      delta->edit.RemoveNode(lvl, node_id);
    }
    for (const auto& [lvl, node] : frag.added) {
      delta->added.emplace_back(lvl, node);
      delta->edit.AddNode(ToEdit(*node, lvl));
    }
    for (auto& lifetime : frag.obsolete) {
      delta->obsolete.push_back(std::move(lifetime));
    }
  }
  return Status::OK();
}

Status AmtEngine::RunFlushImm(const Job& job, WorkLane lane) {
  // Mutex held on entry.
  MemTable* imm = db_->imm();
  assert(imm != nullptr);
  imm->Ref();
  SequenceNumber smallest_snapshot = db_->SmallestSnapshot();
  TreeVersionPtr version = current_version();
  int n = version->num_levels();
  const uint64_t current_log = db_->CurrentLogNumber();

  db_->mutex().unlock();

  FlushDelta delta;
  delta.new_num_levels = std::max(n, 1);
  Status s;
  if (job.targets.empty()) {
    // No L1 nodes overlap (or none exist): the memtable becomes one new L1
    // node, written exactly once — the sequential-load fast path.
    uint64_t file_number, node_id;
    {
      std::lock_guard<std::mutex> l(db_->mutex());
      file_number = db_->NewFileNumber();
      node_id = db_->NewNodeId();
    }
    MSTableWriter writer(db_->env(), db_->options().table,
                         TableFileName(db_->dbname(), file_number));
    s = writer.Open();
    MSTableBuildResult result;
    uint64_t records_added = 0;
    if (s.ok()) {
      CompactionStream stream(imm->NewIterator(), smallest_snapshot,
                              /*bottommost=*/n <= 1);
      while (stream.Valid() && s.ok()) {
        s = writer.Add(stream.key(), stream.value());
        records_added++;
        stream.Next();
      }
      if (s.ok()) s = stream.status();
      if (s.ok() && records_added == 0) {
        // Every record was a tombstone elided by the bottommost stream:
        // there is nothing to install.  Drop the file; the edit below
        // still advances the log number so the WAL can be released.
        writer.Abandon();
      } else if (s.ok()) {
        s = writer.Finish(/*sync=*/true, &result);
      } else {
        writer.Abandon();
      }
    }
    if (s.ok() && records_added > 0) {
      auto node = std::make_shared<NodeMeta>();
      node->node_id = node_id;
      node->file_number = file_number;
      node->meta_end = result.meta_end;
      node->data_bytes = result.data_bytes;
      node->num_entries = result.num_entries;
      node->seq_count = result.seq_count;
      node->smallest_ikey = result.smallest;
      node->largest_ikey = result.largest;
      node->range_lo = ExtractUserKey(result.smallest).ToString();
      node->range_hi = ExtractUserKey(result.largest).ToString();
      node->lifetime = std::make_shared<FileLifetime>(
          db_->env(), TableFileName(db_->dbname(), file_number));
      delta.added.emplace_back(0, node);
      delta.edit.AddNode(ToEdit(*node, 0));
      db_->amp_stats_mutable()->RecordLevelWrite(1, WriteReason::kFlush,
                                                 result.new_data_bytes);
      db_->amp_stats_mutable()->RecordLevelWrite(1, WriteReason::kMetadata,
                                                 result.meta_bytes);
    }
  } else {
    CompactionStream stream(imm->NewIterator(), smallest_snapshot,
                            /*bottommost=*/false);
    s = FlushInto(&stream, 0, job.targets, /*is_leaf=*/n == 1,
                  WriteReason::kFlush, lane, &delta);
  }
  imm->Unref();

  db_->mutex().lock();
  if (!s.ok()) return s;
  delta.edit.SetLogNumber(current_log);
  if (delta.new_num_levels > n) delta.edit.SetNumLevels(delta.new_num_levels);
  s = db_->LogEdit(&delta.edit);
  if (!s.ok()) return s;
  ApplyToVersion(delta.removed, delta.added,
                 std::max(delta.new_num_levels, n));
  for (const auto& lifetime : delta.obsolete) lifetime->MarkObsolete();
  db_->ImmFlushed();
  return Status::OK();
}

Status AmtEngine::RunFlushNode(const Job& job, bool destroy_parent,
                               WorkLane lane) {
  // Mutex held on entry.
  const NodePtr& node = job.node;
  const int level = job.level;
  TreeVersionPtr version = current_version();
  const int n = version->num_levels();
  SequenceNumber smallest_snapshot = db_->SmallestSnapshot();
  const bool rewrite = db_->options().amt.rewrite_on_flush;

  // An empty placeholder picked by a combine simply disappears: there is
  // no data to flush and dropping its range narrows nothing that the
  // partition rule can't reassign.
  if (node->empty()) {
    VersionEdit edit;
    edit.RemoveNode(level, node->node_id);
    Status s = db_->LogEdit(&edit);
    if (!s.ok()) return s;
    ApplyToVersion({{level, node->node_id}}, {}, n);
    return Status::OK();
  }

  // Metadata-only move: no overlapping children (Sec 4.2.1 "Without
  // children, the node is directly moved to the next level").
  if (job.targets.empty() && !rewrite) {
    VersionEdit edit;
    edit.RemoveNode(level, node->node_id);
    edit.AddNode(ToEdit(*node, level + 1));
    Status s = db_->LogEdit(&edit);
    if (!s.ok()) return s;
    ApplyToVersion({{level, node->node_id}}, {{level + 1, node}}, n);
    db_->amp_stats_mutable()->RecordLevelWrite(level + 2, WriteReason::kMove,
                                               0);
    return Status::OK();
  }

  db_->mutex().unlock();

  Status s;
  FlushDelta delta;
  delta.new_num_levels = n;
  {
    // Load the node's records: merge its sequences in memory (Sec 4.2.1).
    std::shared_ptr<MSTableReader> reader;
    s = node->OpenReader(db_->env(), db_->options().table, db_->icmp(),
                         db_->dbname(), &reader);
    if (!s.ok()) {
      db_->mutex().lock();
      return s;
    }
    std::vector<Iterator*> iters;
    ReadOptions merge_read;
    merge_read.fill_cache = false;
    merge_read.rate_limiter = db_->rate_limiter();
    reader->AddSequenceIterators(merge_read, &iters);
    Iterator* merged = NewMergingIterator(db_->icmp(), iters.data(),
                                          static_cast<int>(iters.size()));
    CompactionStream stream(merged, smallest_snapshot, /*bottommost=*/false);

    if (job.targets.empty()) {
      // FLSM emulation: rewrite the records into a fresh node one level
      // down instead of moving metadata (Sec 6.8's comparison).
      uint64_t file_number, node_id;
      {
        std::lock_guard<std::mutex> l(db_->mutex());
        file_number = db_->NewFileNumber();
        node_id = db_->NewNodeId();
      }
      MSTableWriter writer(db_->env(), db_->options().table,
                           TableFileName(db_->dbname(), file_number));
      s = writer.Open();
      MSTableBuildResult result;
      while (stream.Valid() && s.ok()) {
        s = writer.Add(stream.key(), stream.value());
        stream.Next();
      }
      if (s.ok()) s = stream.status();
      if (s.ok()) {
        s = writer.Finish(/*sync=*/true, &result);
      } else {
        writer.Abandon();
      }
      if (s.ok()) {
        auto out = std::make_shared<NodeMeta>();
        out->node_id = node_id;
        out->file_number = file_number;
        out->meta_end = result.meta_end;
        out->data_bytes = result.data_bytes;
        out->num_entries = result.num_entries;
        out->seq_count = result.seq_count;
        out->smallest_ikey = result.smallest;
        out->largest_ikey = result.largest;
        out->range_lo = std::min(node->range_lo,
                                 ExtractUserKey(result.smallest).ToString());
        out->range_hi = std::max(node->range_hi,
                                 ExtractUserKey(result.largest).ToString());
        out->lifetime = std::make_shared<FileLifetime>(
            db_->env(), TableFileName(db_->dbname(), file_number));
        delta.added.emplace_back(level + 1, out);
        delta.edit.AddNode(ToEdit(*out, level + 1));
        db_->amp_stats_mutable()->RecordLevelWrite(
            level + 2, WriteReason::kMerge, result.data_bytes);
      }
      destroy_parent = true;  // the rewrite replaces the move
    } else {
      s = FlushInto(&stream, level + 1, job.targets,
                    /*is_leaf=*/(level + 1) == n - 1, WriteReason::kAppend,
                    lane, &delta);
    }
  }

  db_->mutex().lock();
  if (!s.ok()) return s;

  // The parent's data moved out.
  delta.edit.RemoveNode(level, node->node_id);
  delta.removed.emplace_back(level, node->node_id);
  if (node->lifetime) delta.obsolete.push_back(node->lifetime);
  if (!destroy_parent) {
    // Keep the node as an empty range placeholder (flushes preserve the
    // level's node count and range coverage; Sec 4.2.1).
    NodePtr placeholder =
        MakeEmptyNode(node->node_id, node->range_lo, node->range_hi);
    delta.added.emplace_back(level, placeholder);
    delta.edit.AddNode(ToEdit(*placeholder, level));
  }

  s = db_->LogEdit(&delta.edit);
  if (!s.ok()) return s;
  ApplyToVersion(delta.removed, delta.added, delta.new_num_levels);
  for (const auto& lifetime : delta.obsolete) lifetime->MarkObsolete();
  return Status::OK();
}

Status AmtEngine::RunSplit(const Job& job) {
  // Mutex held on entry.  Split the full node's records at the range_lo of
  // its middle child (Sec 4.2.2).
  const NodePtr& node = job.node;
  const int level = job.level;
  TreeVersionPtr version = current_version();
  const int n = version->num_levels();
  SequenceNumber smallest_snapshot = db_->SmallestSnapshot();
  assert(job.targets.size() >= 2);
  std::string boundary = job.targets[job.targets.size() / 2]->range_lo;

  db_->mutex().unlock();

  std::shared_ptr<MSTableReader> reader;
  Status s = node->OpenReader(db_->env(), db_->options().table, db_->icmp(),
                              db_->dbname(), &reader);
  FlushDelta delta;
  uint64_t written = 0, meta_written = 0;
  if (s.ok()) {
    std::vector<Iterator*> iters;
    ReadOptions merge_read;
    merge_read.fill_cache = false;
    merge_read.rate_limiter = db_->rate_limiter();
    reader->AddSequenceIterators(merge_read, &iters);
    Iterator* merged = NewMergingIterator(db_->icmp(), iters.data(),
                                          static_cast<int>(iters.size()));
    CompactionStream stream(merged, smallest_snapshot, /*bottommost=*/false);

    for (int side = 0; side < 2 && s.ok(); side++) {
      std::unique_ptr<MSTableWriter> writer;
      uint64_t out_file = 0, out_node = 0;
      MSTableBuildResult result;
      bool wrote_any = false;
      while (stream.Valid() && s.ok()) {
        Slice user_key = ExtractUserKey(stream.key());
        bool left = user_key.compare(boundary) < 0;
        if (side == 0 && !left) break;  // right side starts
        if (writer == nullptr) {
          {
            std::lock_guard<std::mutex> l(db_->mutex());
            out_file = db_->NewFileNumber();
            out_node = db_->NewNodeId();
          }
          writer = std::make_unique<MSTableWriter>(
              db_->env(), db_->options().table,
              TableFileName(db_->dbname(), out_file));
          s = writer->Open();
          if (!s.ok()) break;
        }
        s = writer->Add(stream.key(), stream.value());
        wrote_any = true;
        stream.Next();
      }
      if (s.ok()) s = stream.status();
      if (s.ok() && wrote_any) {
        s = writer->Finish(/*sync=*/true, &result);
        if (s.ok()) {
          auto out = std::make_shared<NodeMeta>();
          out->node_id = out_node;
          out->file_number = out_file;
          out->meta_end = result.meta_end;
          out->data_bytes = result.data_bytes;
          out->num_entries = result.num_entries;
          out->seq_count = result.seq_count;
          out->smallest_ikey = result.smallest;
          out->largest_ikey = result.largest;
          out->range_lo = ExtractUserKey(result.smallest).ToString();
          out->range_hi = ExtractUserKey(result.largest).ToString();
          if (side == 0) {
            out->range_lo = std::min(out->range_lo, node->range_lo);
          } else {
            out->range_hi = std::max(out->range_hi, node->range_hi);
          }
          out->lifetime = std::make_shared<FileLifetime>(
              db_->env(), TableFileName(db_->dbname(), out_file));
          delta.added.emplace_back(level, out);
          delta.edit.AddNode(ToEdit(*out, level));
          written += result.data_bytes;
          meta_written += result.meta_bytes;
        }
      } else if (writer != nullptr) {
        writer->Abandon();
      }
    }
  }

  db_->mutex().lock();
  if (!s.ok()) {
    for (const auto& [lvl, out] : delta.added) {
      (void)lvl;
      if (out->lifetime) out->lifetime->MarkObsolete();
    }
    return s;
  }

  db_->amp_stats_mutable()->RecordLevelWrite(level + 1, WriteReason::kSplit,
                                             written);
  db_->amp_stats_mutable()->RecordLevelWrite(level + 1,
                                             WriteReason::kMetadata,
                                             meta_written);
  delta.edit.RemoveNode(level, node->node_id);
  delta.removed.emplace_back(level, node->node_id);
  if (node->lifetime) delta.obsolete.push_back(node->lifetime);

  s = db_->LogEdit(&delta.edit);
  if (!s.ok()) return s;
  ApplyToVersion(delta.removed, delta.added, n);
  for (const auto& lifetime : delta.obsolete) lifetime->MarkObsolete();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reads

Status AmtEngine::Get(const ReadOptions& options, const LookupKey& key,
                      std::string* value) {
  TreeVersionPtr version = current_version();
  Slice user_key = key.user_key();
  Slice ikey = key.internal_key();

  for (int level = 0; level < version->num_levels(); level++) {
    const auto& nodes = version->level(level);
    // Disjoint sorted ranges: binary search for the covering node.
    size_t lo = 0, hi = nodes.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (Slice(nodes[mid]->range_hi).compare(user_key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= nodes.size()) continue;
    const NodePtr& node = nodes[lo];
    if (Slice(node->range_lo).compare(user_key) > 0 || node->empty()) {
      continue;
    }
    std::shared_ptr<MSTableReader> reader;
    Status s = node->OpenReader(db_->env(), db_->options().table, db_->icmp(),
                                db_->dbname(), &reader);
    if (!s.ok()) return s;
    MSTableReader::GetState state;
    s = reader->Get(options, ikey, value, &state);
    if (!s.ok()) return s;
    switch (state) {
      case MSTableReader::GetState::kFound:
        return Status::OK();
      case MSTableReader::GetState::kDeleted:
        return Status::NotFound(Slice());
      case MSTableReader::GetState::kCorrupt:
        return Status::Corruption("corrupt node");
      case MSTableReader::GetState::kNotFound:
        break;
    }
  }
  return Status::NotFound(Slice());
}

void AmtEngine::MultiGet(const ReadOptions& options,
                         MultiGetRequest* const* reqs, size_t count) {
  TreeVersionPtr version = current_version();
  std::vector<MultiGetRequest*> pending(reqs, reqs + count);

  // Every AMT level holds disjoint sorted ranges (including the mixed
  // level, where a node's k appended sequences are probed inside
  // MSTableReader::MultiGet), so a run of consecutive sorted keys maps to
  // one covering node and shares its metadata and coalesced block reads.
  for (int level = 0; level < version->num_levels() && !pending.empty();
       level++) {
    const auto& nodes = version->level(level);
    if (nodes.empty()) continue;
    size_t i = 0;
    while (i < pending.size()) {
      Slice user_key = pending[i]->lkey->user_key();
      size_t lo = 0, hi = nodes.size();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (Slice(nodes[mid]->range_hi).compare(user_key) < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo >= nodes.size()) break;  // later keys are larger still
      const NodePtr& node = nodes[lo];
      if (Slice(node->range_lo).compare(user_key) > 0 || node->empty()) {
        ++i;
        continue;
      }
      std::vector<MultiGetRequest*> subset;
      size_t j = i;
      for (; j < pending.size(); ++j) {
        if (Slice(node->range_hi).compare(pending[j]->lkey->user_key()) < 0) {
          break;
        }
        subset.push_back(pending[j]);
      }
      std::shared_ptr<MSTableReader> reader;
      Status s = node->OpenReader(db_->env(), db_->options().table,
                                  db_->icmp(), db_->dbname(), &reader);
      if (!s.ok()) {
        for (MultiGetRequest* r : subset) {
          if (r->status.ok()) r->status = s;
        }
      } else {
        reader->MultiGet(options, subset.data(), subset.size());
      }
      i = j;
    }
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [](const MultiGetRequest* r) {
                                   return r->resolved();
                                 }),
                  pending.end());
  }
}

void AmtEngine::AddIterators(const ReadOptions& options,
                             std::vector<Iterator*>* iters) {
  TreeVersionPtr version = current_version();
  for (int level = 0; level < version->num_levels(); level++) {
    if (version->level(level).empty()) continue;
    auto nodes =
        std::make_shared<const std::vector<NodePtr>>(version->level(level));
    iters->push_back(NewLevelIterator(db_, version, nodes, options));
  }
}

uint64_t AmtEngine::CompactionDebtBytes() const {
  // Outstanding structural work: full internal nodes waiting to flush and
  // node-count excesses waiting to combine.
  TreeVersionPtr version = current_version();
  const uint64_t capacity = NodeCapacity();
  uint64_t debt = 0;
  const int n = version->num_levels();
  for (int level = 0; level < n; level++) {
    const auto& nodes = version->level(level);
    if (level < n - 1) {
      for (const auto& node : nodes) {
        if (node->data_bytes >= capacity) debt += node->data_bytes;
      }
    }
    uint64_t limit = LevelNodeLimit(level);
    if (nodes.size() > limit) {
      debt += (nodes.size() - limit) * (capacity / 2);
    }
  }
  return debt;
}

void AmtEngine::FillStats(DbStats* stats) const {
  MixedLevelChoice mixed = mixed_level();
  stats->mixed_level = mixed.m;
  stats->mixed_level_k = mixed.k;
  stats->mixed_level_retunes = mk_retunes_.load(std::memory_order_relaxed);
  stats->pending_debt_bytes = CompactionDebtBytes();
}

Status AmtEngine::CheckInvariants(bool quiescent) const {
  TreeVersionPtr version = current_version();
  const int n = version->num_levels();
  const uint64_t capacity = NodeCapacity();
  char msg[160];

  for (int level = 0; level < n; level++) {
    const auto& nodes = version->level(level);
    // Ranges sorted and disjoint within a level (Sec 4.1).
    for (size_t i = 0; i < nodes.size(); i++) {
      const NodePtr& node = nodes[i];
      if (node->range_lo > node->range_hi) {
        return Status::Corruption("node range inverted");
      }
      if (i > 0 && nodes[i - 1]->range_hi >= node->range_lo) {
        snprintf(msg, sizeof(msg), "L%d nodes %zu/%zu ranges overlap",
                 level + 1, i - 1, i);
        return Status::Corruption(msg);
      }
      // Data stays inside the covering range.
      if (!node->empty()) {
        if (ExtractUserKey(node->smallest_ikey).compare(node->range_lo) < 0 ||
            ExtractUserKey(node->largest_ikey).compare(node->range_hi) > 0) {
          return Status::Corruption("node data outside its range");
        }
      }
    }
    if (quiescent) {
      // Node-count thresholds: Ni <= t^i internal, < t^n leaf (Sec 4.1).
      if (nodes.size() > LevelNodeLimit(level)) {
        snprintf(msg, sizeof(msg), "L%d has %zu nodes (limit %llu)",
                 level + 1, nodes.size(),
                 static_cast<unsigned long long>(LevelNodeLimit(level)));
        return Status::Corruption(msg);
      }
      // No internal node left full at quiescence.
      if (level < n - 1) {
        for (const auto& node : nodes) {
          if (node->data_bytes >= capacity) {
            snprintf(msg, sizeof(msg), "full node left in internal L%d",
                     level + 1);
            return Status::Corruption(msg);
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace iamdb
