// AmtEngine: the Log-Structured Append-tree (LSA) and the Integrated
// Append/Merge-tree (IAM) — the paper's contribution.
//
// Structure (Sec 4.1): the memtable is L0; on-disk levels L1..Ln hold
// disjoint-range MSTable nodes, at most t^i nodes in Li (internal), fewer
// than t^n at the leaf.  A node holds up to Ct bytes across one or more
// sorted sequences.
//
// Operations (Sec 4.2):
//  * flush   — a full node's data is merged in memory, partitioned by the
//              key ranges of the overlapping children, and appended to (or
//              merged with) them; the node itself remains as an empty
//              range placeholder.  A node with no children moves down by a
//              metadata-only edit (free sequential loads).
//  * split   — a full node with >= 2t children rewrites itself into two
//              nodes with half the children each (bounds the worst write
//              case).
//  * combine — when Ni > t^i, the node with the smallest Tcn (children
//              covered by it and its two neighbours, <= 3t) flushes all its
//              data down and disappears, restoring Ni = t^i.
//
// Append-vs-merge policy (Sec 5.1):
//  * LSA: append unless the child is full (leaf children merge when full).
//  * IAM: levels above the mixed level m append; the mixed level appends
//    until a child holds k sequences, then merges; levels below m always
//    merge.  (m, k) auto-tunes to the cache budget per Eq. 1-2.
//
// Parallelism: a flush job's per-child work is independent — the partition
// step assigns each record to exactly one child — so FlushInto shards the
// non-empty children across the thread pool (partitioned subcompactions)
// and installs every shard's output in ONE VersionEdit.  Job-level
// conflicts are prevented by busy-marking node ids under the DB mutex;
// shard-level conflicts cannot exist because shards own disjoint children.
#pragma once

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/amt/amt_tuner.h"
#include "core/compaction_stream.h"
#include "core/tree_engine.h"
#include "stats/amp_stats.h"
#include "util/published_ptr.h"

namespace iamdb {

class DBImpl;

class AmtEngine final : public TreeEngine {
 public:
  explicit AmtEngine(DBImpl* db);

  Status Recover(const RecoveredState& state) override;
  bool NeedsCompaction() const override;
  int RunnableCompactions(int max) const override;
  Status BackgroundWork(WorkLane lane, bool* did_work) override;
  Status Get(const ReadOptions& options, const LookupKey& key,
             std::string* value) override;
  void MultiGet(const ReadOptions& options, MultiGetRequest* const* reqs,
                size_t count) override;
  void AddIterators(const ReadOptions& options,
                    std::vector<Iterator*>* iters) override;
  WritePressure GetWritePressure() const override;
  uint64_t CompactionDebtBytes() const override;
  void FillStats(DbStats* stats) const override;
  void OnMemoryRetune() override { RecomputeMixedLevel(); }
  TreeVersionPtr current_version() const override {
    return current_.Snapshot();
  }
  uint64_t version_stamp() const override { return current_.stamp(); }
  Status CheckInvariants(bool quiescent) const override;

  // Current mixed-level decision (recomputed when the version changes).
  MixedLevelChoice mixed_level() const {
    return mixed_.load(std::memory_order_acquire);
  }

 private:
  struct Job {
    enum class Type { kGrow, kFlushImm, kFlushNode, kSplit, kCombine } type;
    int level = -1;  // version index of `node` (paper level - 1)
    NodePtr node;
    std::vector<NodePtr> targets;  // overlapping children (next level)
  };

  // Structural changes accumulated while flushing into a target set.
  // Subcompaction shards fill per-shard deltas (removed/added/obsolete
  // only); FlushInto merges them in child order and builds the edit, so
  // the installed VersionEdit is identical however shards interleave.
  struct FlushDelta {
    std::vector<std::pair<int, uint64_t>> removed;
    std::vector<std::pair<int, NodePtr>> added;
    std::vector<std::shared_ptr<FileLifetime>> obsolete;
    VersionEdit edit;
    int new_num_levels = 0;
  };

  using RecordBuffer = std::vector<std::pair<std::string, std::string>>;

  // Paper-level (1-based) classification.
  bool IsAppendLevel(int paper_level) const;
  bool IsMixedLevel(int paper_level) const;

  int Fanout() const;
  uint64_t NodeCapacity() const;
  uint64_t LevelNodeLimit(int version_index) const;  // t^(index+1)

  // Pickers (mutex held).  Compaction lane: deepest structural violation
  // first (grow, combine, full-node flush/split), skipping jobs whose
  // nodes appear in `busy`.  Flush lane: the imm flush, or — when a full
  // internal L1 child blocks it (Sec 4.2.1 precondition) — that child's
  // flush job, run with flush priority so the stalled writer never waits
  // behind the merge queue.
  bool PickCompactionJob(const TreeVersion& version,
                         const std::set<uint64_t>& busy, Job* job) const;
  bool PickFlushJob(const TreeVersion& version, Job* job);

  static bool AnyBusy(const Job& job, const std::set<uint64_t>& busy);
  static void MarkBusyIn(const Job& job, std::set<uint64_t>* busy);
  void MarkBusy(const Job& job);
  void ClearBusy(const Job& job);

  // Children of `node` (at version index `level`) = next-level nodes whose
  // range overlaps the node's range.
  std::vector<NodePtr> Children(const TreeVersion& version, int level,
                                const NodeMeta& node) const;

  // Executors (mutex held on entry/exit, unlocked around I/O).  `lane` is
  // the scheduler lane the job runs on: it selects the fan-out lane for
  // subcompaction shards and the rate-limiter priority of the job's I/O.
  Status RunGrow();
  Status RunFlushImm(const Job& job, WorkLane lane);
  Status RunFlushNode(const Job& job, bool destroy_parent, WorkLane lane);
  Status RunSplit(const Job& job);

  // Drains a visibility-filtered record stream into the range-sorted
  // targets at version index `tlevel`, appending or merging per policy.
  // Shards non-empty targets across the pool when max_subcompactions
  // allows.  Mutex NOT held.
  Status FlushInto(CompactionStream* source, int tlevel,
                   const std::vector<NodePtr>& targets, bool is_leaf,
                   WriteReason append_reason, WorkLane lane,
                   FlushDelta* delta);

  // One target's append-or-merge step (one subcompaction unit).  Runs on
  // pool helpers or the job thread; touches only its own target/records/
  // fragment, allocates file/node numbers under short mutex sections.
  Status FlushOneTarget(const NodePtr& target, const RecordBuffer& records,
                        int tlevel, bool is_leaf, WriteReason append_reason,
                        SequenceNumber smallest_snapshot, FlushDelta* frag);

  // Apply a structural delta to the latest version and publish.
  void ApplyToVersion(
      const std::vector<std::pair<int, uint64_t>>& removed,
      const std::vector<std::pair<int, NodePtr>>& added, int new_num_levels);

  void RecomputeMixedLevel();

  NodeEdit ToEdit(const NodeMeta& node, int level) const;
  NodePtr MakeEmptyNode(uint64_t node_id, const std::string& lo,
                        const std::string& hi) const;

  DBImpl* db_;
  // Stores happen at open time or under the DB mutex (ApplyToVersion) —
  // the serialization PublishedPtr requires.  Reads take an epoch guard.
  PublishedPtr<const TreeVersion> current_;
  std::set<uint64_t> busy_nodes_;  // node ids owned by running jobs
  bool imm_flush_running_ = false;
  // Written under the DB mutex; read lock-free from reads/stats/flushes.
  std::atomic<MixedLevelChoice> mixed_{MixedLevelChoice{}};
  // Times the stored (m,k) changed after open — tree growth or an arbiter
  // re-division moving the tuner's budget.  Recover zeroes it so the
  // initial computation over recovered state does not count.
  std::atomic<uint64_t> mk_retunes_{0};
};

}  // namespace iamdb
