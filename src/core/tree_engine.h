// TreeEngine: the on-disk organisation behind one DBImpl.  The write path,
// WAL, memtables, snapshots and group commit are shared (DBImpl); engines
// own structure, compaction policy and the disk read path:
//   LeveledEngine — classic leveled LSM (the paper's LevelDB/RocksDB
//                   baseline, with overflow/stall behaviour knobs), and
//   AmtEngine     — the LSA/IAM append-merge tree (the contribution).
#pragma once

#include <vector>

#include "core/dbformat.h"
#include "core/manifest.h"
#include "core/multiget.h"
#include "core/options.h"
#include "core/version.h"
#include "table/iterator.h"
#include "util/status.h"

namespace iamdb {

struct DbStats;
class DBImpl;

class TreeEngine {
 public:
  enum class WritePressure { kNone, kSlowdown, kStop };

  // Which scheduler lane a background worker serves.  kFlush work is what
  // the write path hard-stalls on (imm flushes, plus any structural job
  // that must run first to unblock one); kCompaction is everything else.
  // DBImpl keeps one dedicated kFlush worker so a flush never queues
  // behind merges (docs/CONCURRENCY.md, "Two-lane background scheduling").
  enum class WorkLane { kFlush, kCompaction };

  virtual ~TreeEngine() = default;

  // Build the in-memory tree from recovered manifest state (open time; no
  // locking concerns).
  virtual Status Recover(const RecoveredState& state) = 0;

  // Whether background work beyond an immutable-memtable flush is pending.
  // Called with the DB mutex held.
  virtual bool NeedsCompaction() const = 0;

  // How many compaction-lane jobs could run RIGHT NOW without conflicting
  // with each other or with running jobs (busy-marking simulated), capped
  // at `max`.  DBImpl schedules exactly this many compaction workers
  // instead of blindly filling the pool.  DB mutex held.
  virtual int RunnableCompactions(int max) const = 0;

  // Perform one unit of background work on the given lane: kFlush runs an
  // imm flush (or a prerequisite that unblocks one), kCompaction runs one
  // compaction step.  Called with the DB mutex HELD; the implementation
  // unlocks around I/O.  *did_work=false when there was nothing runnable
  // on that lane (everything pending is busy on other threads).
  virtual Status BackgroundWork(WorkLane lane, bool* did_work) = 0;

  // Lock-free read path (no DB mutex): reads a published tree version.
  virtual Status Get(const ReadOptions& options, const LookupKey& key,
                     std::string* value) = 0;

  // Batched lock-free read: `reqs` are still-pending requests sorted by
  // internal key, all at one snapshot sequence.  Keys are grouped by
  // covering node per level so each table's bloom/index is consulted once
  // per group and cache-missing data blocks coalesce into vectored device
  // reads.  Outcomes land in each request's state/status; keys absent
  // everywhere stay pending (the caller maps those to NotFound).
  // Byte-equivalent to calling Get() per key.
  virtual void MultiGet(const ReadOptions& options,
                        MultiGetRequest* const* reqs, size_t count) = 0;

  // Appends internal-key iterators covering the whole tree (no DB mutex).
  // Iterators pin the version they read.
  virtual void AddIterators(const ReadOptions& options,
                            std::vector<Iterator*>* iters) = 0;

  // Write-throttling decision (DB mutex held).
  virtual WritePressure GetWritePressure() const = 0;

  // Bytes of merge work the published version owes before the tree is back
  // within its shape thresholds (over-limit level bytes, full nodes).  The
  // adaptive pacer's feedback signal, and DbStats.pending_debt_bytes.
  // Lock-free: reads the published version, so callers may hold the DB
  // mutex or nothing at all.
  virtual uint64_t CompactionDebtBytes() const = 0;

  // Engine-specific statistics (no DB mutex; reads the published version).
  virtual void FillStats(DbStats* stats) const = 0;

  // Called after the memory arbiter re-divides the budget (DB mutex
  // held): re-derive any cached decisions that depend on memory
  // capacities.  The AMT engine re-runs the (m,k) tuner against the new
  // cache capacity; the changed mixed level takes effect at the next
  // flush/merge boundary.  Default: nothing is capacity-dependent.
  virtual void OnMemoryRetune() {}

  // Current published tree version (lock-free).
  virtual TreeVersionPtr current_version() const = 0;

  // Monotone counter bumped BEFORE each version publication (lock-free).
  // The read path's optimistic validation handle: a reader samples it
  // before loading its snapshot sequence and re-checks after an engine
  // probe comes back empty.  An unchanged stamp proves every version the
  // probe could have seen was installed before the sequence load, whose
  // compactions therefore only dropped entries shadowed at or below that
  // sequence — so the NotFound is genuine (docs/CONCURRENCY.md, "Reads vs
  // compaction garbage collection").
  virtual uint64_t version_stamp() const = 0;

  // Validates structural invariants of the published version (range
  // disjointness, node-count thresholds, node size budgets).  Counts are
  // only guaranteed at quiescence; `quiescent` enables those checks.
  virtual Status CheckInvariants(bool quiescent) const = 0;
};

}  // namespace iamdb
