#include "core/manifest.h"

#include <algorithm>

#include "core/filename.h"
#include "util/coding.h"
#include "util/sync_point.h"
#include "wal/log_reader.h"

namespace iamdb {

namespace {
// Edit record field tags.
enum Tag : uint32_t {
  kLogNumber = 1,
  kNextFileNumber = 2,
  kNextNodeId = 3,
  kLastSequence = 4,
  kNumLevels = 5,
  kAddedNode = 6,
  kRemovedNode = 7,
};
}  // namespace

void NodeEdit::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(level));
  PutVarint64(dst, node_id);
  PutVarint64(dst, file_number);
  PutVarint64(dst, meta_end);
  PutVarint64(dst, data_bytes);
  PutVarint64(dst, num_entries);
  PutVarint32(dst, seq_count);
  PutLengthPrefixedSlice(dst, range_lo);
  PutLengthPrefixedSlice(dst, range_hi);
  PutLengthPrefixedSlice(dst, smallest_ikey);
  PutLengthPrefixedSlice(dst, largest_ikey);
}

bool NodeEdit::DecodeFrom(Slice* input) {
  uint32_t lvl;
  Slice lo, hi, small, large;
  if (!GetVarint32(input, &lvl) || !GetVarint64(input, &node_id) ||
      !GetVarint64(input, &file_number) || !GetVarint64(input, &meta_end) ||
      !GetVarint64(input, &data_bytes) || !GetVarint64(input, &num_entries) ||
      !GetVarint32(input, &seq_count) ||
      !GetLengthPrefixedSlice(input, &lo) ||
      !GetLengthPrefixedSlice(input, &hi) ||
      !GetLengthPrefixedSlice(input, &small) ||
      !GetLengthPrefixedSlice(input, &large)) {
    return false;
  }
  level = static_cast<int>(lvl);
  range_lo = lo.ToString();
  range_hi = hi.ToString();
  smallest_ikey = small.ToString();
  largest_ikey = large.ToString();
  return true;
}

void VersionEdit::EncodeTo(std::string* dst) const {
  if (log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, *log_number_);
  }
  if (next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, *next_file_number_);
  }
  if (next_node_id_) {
    PutVarint32(dst, kNextNodeId);
    PutVarint64(dst, *next_node_id_);
  }
  if (last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, *last_sequence_);
  }
  if (num_levels_) {
    PutVarint32(dst, kNumLevels);
    PutVarint32(dst, static_cast<uint32_t>(*num_levels_));
  }
  for (const auto& [level, node_id] : removed_) {
    PutVarint32(dst, kRemovedNode);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, node_id);
  }
  for (const auto& node : added_) {
    PutVarint32(dst, kAddedNode);
    node.EncodeTo(dst);
  }
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  Slice input = src;
  uint32_t tag;
  while (GetVarint32(&input, &tag)) {
    switch (tag) {
      case kLogNumber: {
        uint64_t v;
        if (!GetVarint64(&input, &v)) {
          return Status::Corruption("manifest: log number");
        }
        log_number_ = v;
        break;
      }
      case kNextFileNumber: {
        uint64_t v;
        if (!GetVarint64(&input, &v)) {
          return Status::Corruption("manifest: next file number");
        }
        next_file_number_ = v;
        break;
      }
      case kNextNodeId: {
        uint64_t v;
        if (!GetVarint64(&input, &v)) {
          return Status::Corruption("manifest: next node id");
        }
        next_node_id_ = v;
        break;
      }
      case kLastSequence: {
        uint64_t v;
        if (!GetVarint64(&input, &v)) {
          return Status::Corruption("manifest: last sequence");
        }
        last_sequence_ = v;
        break;
      }
      case kNumLevels: {
        uint32_t v;
        if (!GetVarint32(&input, &v)) {
          return Status::Corruption("manifest: num levels");
        }
        num_levels_ = static_cast<int>(v);
        break;
      }
      case kRemovedNode: {
        uint32_t level;
        uint64_t node_id;
        if (!GetVarint32(&input, &level) || !GetVarint64(&input, &node_id)) {
          return Status::Corruption("manifest: removed node");
        }
        removed_.emplace_back(static_cast<int>(level), node_id);
        break;
      }
      case kAddedNode: {
        NodeEdit node;
        if (!node.DecodeFrom(&input)) {
          return Status::Corruption("manifest: added node");
        }
        added_.push_back(std::move(node));
        break;
      }
      default:
        return Status::Corruption("manifest: unknown tag");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------

ManifestWriter::ManifestWriter(Env* env, std::string dbname)
    : env_(env), dbname_(std::move(dbname)) {}

Status ManifestWriter::Create(uint64_t manifest_number,
                              const VersionEdit& base) {
  manifest_number_ = manifest_number;
  Status s = env_->NewWritableFile(ManifestFileName(dbname_, manifest_number),
                                   &file_);
  if (!s.ok()) return s;
  log_ = std::make_unique<log::Writer>(file_.get());
  s = Append(base, true);
  if (!s.ok()) return s;
  IAMDB_SYNC_POINT("ManifestWriter::Create:AfterBase");
  s = SetCurrentFile(env_, dbname_, manifest_number);
  IAMDB_SYNC_POINT("ManifestWriter::Create:AfterCurrent");
  return s;
}

Status ManifestWriter::Append(const VersionEdit& edit, bool sync) {
  std::string record;
  edit.EncodeTo(&record);
  Status s = log_->AddRecord(record);
  IAMDB_SYNC_POINT("ManifestWriter::Append:AfterRecord");
  if (s.ok() && sync) s = file_->Sync();
  bytes_written_ += record.size();
  return s;
}

// ---------------------------------------------------------------------------

namespace {
struct LogReporter : public log::Reader::Reporter {
  Status* status;
  void Corruption(size_t, const Status& s) override {
    if (status->ok()) *status = s;
  }
};
}  // namespace

Status RecoverManifest(Env* env, const std::string& dbname,
                       RecoveredState* state) {
  std::string current;
  Status s = ReadFileToString(env, CurrentFileName(dbname), &current);
  if (!s.ok()) return s;
  if (current.empty() || current.back() != '\n') {
    return Status::Corruption("CURRENT file malformed");
  }
  current.resize(current.size() - 1);

  std::unique_ptr<SequentialFile> file;
  s = env->NewSequentialFile(dbname + "/" + current, &file);
  if (!s.ok()) return s;

  Status log_status;
  LogReporter reporter;
  reporter.status = &log_status;
  log::Reader reader(file.get(), &reporter, true);

  // node_id -> (level, NodeEdit): replay removes/adds.
  std::map<uint64_t, NodeEdit> live;

  Slice record;
  std::string scratch;
  while (reader.ReadRecord(&record, &scratch)) {
    VersionEdit edit;
    s = edit.DecodeFrom(record);
    if (!s.ok()) return s;
    if (edit.log_number()) state->log_number = *edit.log_number();
    if (edit.next_file_number()) {
      state->next_file_number = *edit.next_file_number();
    }
    if (edit.next_node_id()) state->next_node_id = *edit.next_node_id();
    if (edit.last_sequence()) state->last_sequence = *edit.last_sequence();
    if (edit.num_levels()) state->num_levels = *edit.num_levels();
    for (const auto& [level, node_id] : edit.removed()) {
      (void)level;
      live.erase(node_id);
    }
    for (const auto& node : edit.added()) {
      live[node.node_id] = node;
    }
  }
  if (!log_status.ok()) return log_status;

  int max_level = state->num_levels;
  for (const auto& [id, node] : live) {
    max_level = std::max(max_level, node.level + 1);
  }
  state->num_levels = max_level;
  state->nodes.assign(max_level, {});
  for (auto& [id, node] : live) {
    state->nodes[node.level].push_back(std::move(node));
  }
  for (auto& level_nodes : state->nodes) {
    std::sort(level_nodes.begin(), level_nodes.end(),
              [](const NodeEdit& a, const NodeEdit& b) {
                if (a.range_lo != b.range_lo) return a.range_lo < b.range_lo;
                return a.node_id < b.node_id;
              });
  }
  return Status::OK();
}

}  // namespace iamdb
