#include "core/version.h"

#include "core/filename.h"

namespace iamdb {

Status NodeMeta::OpenReader(Env* env, const TableOptions& options,
                            const InternalKeyComparator* cmp,
                            const std::string& dbname,
                            std::shared_ptr<MSTableReader>* out) const {
  if (empty()) {
    out->reset();
    return Status::InvalidArgument("node is empty");
  }
  std::lock_guard<std::mutex> l(reader_mu_);
  if (reader_ == nullptr) {
    Status s = MSTableReader::Open(env, options, cmp,
                                   TableFileName(dbname, file_number),
                                   file_number, meta_end, &reader_);
    if (!s.ok()) return s;
  }
  *out = reader_;
  return Status::OK();
}

}  // namespace iamdb
