#include "core/db_impl.h"

#include <algorithm>
#include <cassert>

#include "core/amt/amt_engine.h"
#include "core/db_iter.h"
#include "core/filename.h"
#include "core/leveled/leveled_engine.h"
#include "table/merging_iterator.h"
#include "util/crc32c.h"
#include "util/sync_point.h"
#include "wal/log_reader.h"

namespace iamdb {

ReadView::ReadView(MemTable* m, MemTable* i, SequenceNumber seq)
    : mem(m), imm(i), last_sequence(seq) {
  mem->Ref();
  if (imm != nullptr) imm->Ref();
}

ReadView::~ReadView() {
  mem->Unref();
  if (imm != nullptr) imm->Unref();
}

// Group-commit queue entry.
struct WriterItem {
  Status status;
  WriteBatch* batch = nullptr;
  bool sync = false;
  bool done = false;
  std::condition_variable cv;
};

// ---------------------------------------------------------------------------
// Construction / destruction / open

DBImpl::DBImpl(const Options& options, const std::string& dbname)
    : options_(options), dbname_(dbname) {
  counting_env_ = std::make_unique<CountingEnv>(options.env, &io_stats_);
  // With a pooled budget the arbiter decides the initial cache sizes; the
  // configured capacities only set the uncompressed:compressed ratio.
  if (options.memory_budget_bytes > 0) {
    arbiter_ = std::make_unique<MemoryArbiter>(options_);
  }
  uint64_t block_cache_bytes = arbiter_ != nullptr
                                   ? arbiter_->uncompressed_target()
                                   : options.block_cache_capacity;
  block_cache_ = std::make_unique<LruCache>(block_cache_bytes);
  options_.table.block_cache = block_cache_.get();
  if (options.compressed_cache_capacity > 0) {
    compressed_block_cache_ = std::make_unique<LruCache>(
        arbiter_ != nullptr ? arbiter_->compressed_target()
                            : options.compressed_cache_capacity);
    options_.table.compressed_block_cache = compressed_block_cache_.get();
  }
  if (arbiter_ != nullptr) {
    arbiter_->AttachCaches(block_cache_.get(), compressed_block_cache_.get());
  }
  options_.table.compression_stats = &compression_stats_;
  pool_ = std::make_unique<ThreadPool>(std::max(1, options.background_threads));
  if (options.pacing.adaptive) {
    // Adaptive pacing owns the budget: start with the bucket open (the
    // unpaced behaviour) and let the controller pace it down as it learns
    // the workload — converging down from max is a couple of retune
    // intervals, whereas ramping up from the floor would throttle the
    // first seconds of a write burst behind an unwarmed estimate.
    rate_limiter_ =
        std::make_unique<RateLimiter>(options.pacing.max_bytes_per_sec);
    pacer_ = std::make_unique<CompactionPacer>(options.pacing,
                                               rate_limiter_.get());
    options_.table.rate_limiter = rate_limiter_.get();
  } else if (options.compaction_rate_limit > 0) {
    rate_limiter_ = std::make_unique<RateLimiter>(options.compaction_rate_limit);
    // Table builds during flush/merge pace their block writes; user writes
    // go through the WAL + memtable and are never paced.
    options_.table.rate_limiter = rate_limiter_.get();
  }
}

DBImpl::~DBImpl() {
  {
    std::unique_lock<std::mutex> l(mutex_);
    shutting_down_.store(true, std::memory_order_release);
    while (ScheduledWorkers() > 0) bg_cv_.wait(l);
  }
  pool_.reset();  // joins workers
  if (mem_ != nullptr) mem_->Unref();
  if (imm_ != nullptr) imm_->Unref();
}

namespace {

// Reject configurations that cannot work rather than failing obscurely
// later (I.29-style precondition checking at the API boundary).
Status ValidateOptions(const Options& options) {
  if (options.env == nullptr) {
    return Status::InvalidArgument("Options::env is required");
  }
  if (options.node_capacity < (4u << 10)) {
    return Status::InvalidArgument(
        "Options::node_capacity must be at least 4KB");
  }
  if (options.table.block_size < 128 || options.table.block_size > (4u << 20)) {
    return Status::InvalidArgument(
        "Options::table.block_size must be in [128B, 4MB]");
  }
  if (options.table.bloom_bits_per_key < 0 ||
      options.table.bloom_bits_per_key > 64) {
    return Status::InvalidArgument("bloom_bits_per_key must be in [0, 64]");
  }
  if (options.background_threads < 1 || options.background_threads > 64) {
    return Status::InvalidArgument("background_threads must be in [1, 64]");
  }
  if (options.max_subcompactions < 0 || options.max_subcompactions > 64) {
    return Status::InvalidArgument("max_subcompactions must be in [0, 64]");
  }
  if (options.table.compression_max_stored_fraction <= 0 ||
      options.table.compression_max_stored_fraction > 1.0) {
    return Status::InvalidArgument(
        "table.compression_max_stored_fraction must be in (0, 1]");
  }
  if (options.pacing.adaptive) {
    const PacingOptions& p = options.pacing;
    if (p.min_bytes_per_sec == 0 || p.max_bytes_per_sec < p.min_bytes_per_sec) {
      return Status::InvalidArgument(
          "pacing requires 0 < min_bytes_per_sec <= max_bytes_per_sec");
    }
    if (p.debt_low_bytes >= p.debt_high_bytes) {
      return Status::InvalidArgument(
          "pacing.debt_low_bytes must be below debt_high_bytes");
    }
    if (p.retune_interval_micros == 0) {
      return Status::InvalidArgument(
          "pacing.retune_interval_micros must be positive");
    }
    if (p.headroom < 1.0) {
      return Status::InvalidArgument("pacing.headroom must be at least 1");
    }
  }
  if (options.memory_budget_bytes > 0) {
    const uint64_t floor = MemoryArbiter::MinBudgetBytes(options);
    if (options.memory_budget_bytes < floor) {
      return Status::InvalidArgument(
          "memory_budget_bytes below minimum (one memtable at node_capacity "
          "plus 1MB per cache tier)");
    }
    const ArbiterOptions& a = options.arbiter;
    if (a.initial_write_fraction <= 0 || a.initial_write_fraction >= 1.0) {
      return Status::InvalidArgument(
          "arbiter.initial_write_fraction must be in (0, 1)");
    }
    if (a.step_fraction <= 0 || a.step_fraction >= 1.0) {
      return Status::InvalidArgument(
          "arbiter.step_fraction must be in (0, 1)");
    }
    if (a.retune_interval_micros == 0) {
      return Status::InvalidArgument(
          "arbiter.retune_interval_micros must be positive");
    }
  }
  if (options.engine == EngineType::kAmt) {
    if (options.amt.fanout < 2) {
      return Status::InvalidArgument("amt.fanout (t) must be at least 2");
    }
    if (options.amt.memory_budget_fraction <= 0 ||
        options.amt.memory_budget_fraction > 1.0) {
      return Status::InvalidArgument(
          "amt.memory_budget_fraction must be in (0, 1]");
    }
    if (options.amt.k < 1) {
      return Status::InvalidArgument("amt.k must be at least 1");
    }
    if (options.amt.leaf_merge_split_factor < 1) {
      return Status::InvalidArgument(
          "amt.leaf_merge_split_factor must be at least 1");
    }
    if (options.amt.split_child_factor <= 1.0) {
      return Status::InvalidArgument(
          "amt.split_child_factor must exceed 1 (children per node)");
    }
  } else {
    if (options.leveled.target_file_size < (1u << 10)) {
      return Status::InvalidArgument("leveled.target_file_size too small");
    }
    if (options.leveled.level_multiplier < 2) {
      return Status::InvalidArgument("leveled.level_multiplier must be >= 2");
    }
    if (options.leveled.l0_compaction_trigger < 1) {
      return Status::InvalidArgument("l0_compaction_trigger must be >= 1");
    }
  }
  return Status::OK();
}

}  // namespace

Status DB::Open(const Options& options, const std::string& name,
                std::unique_ptr<DB>* dbptr) {
  dbptr->reset();
  Status validation = ValidateOptions(options);
  if (!validation.ok()) return validation;
  auto impl = std::make_unique<DBImpl>(options, name);
  Status s = impl->Initialize();
  if (!s.ok()) return s;
  *dbptr = std::move(impl);
  return Status::OK();
}

Status DBImpl::Initialize() {
  Env* env = counting_env_.get();
  env->CreateDir(dbname_);

  Status s = Recover();
  if (!s.ok()) return s;

  // Construct the engine over the recovered node sets.
  switch (options_.engine) {
    case EngineType::kLeveled:
      engine_ = std::make_unique<LeveledEngine>(this);
      break;
    case EngineType::kAmt:
      engine_ = std::make_unique<AmtEngine>(this);
      break;
  }
  s = engine_->Recover(recovered_);
  if (!s.ok()) return s;
  recovered_ = RecoveredState();  // release staging memory

  // Fresh WAL + fresh manifest snapshot; then GC leftovers.  Replayed WALs
  // stay in old_log_numbers_ until the recovered memtable flushes.
  std::unique_lock<std::mutex> l(mutex_);
  s = SwitchMemTable();
  if (!s.ok()) return s;
  s = WriteSnapshotManifest();
  if (!s.ok()) return s;
  RemoveObsoleteFiles();
  MaybeScheduleBackgroundWork();
  return Status::OK();
}

Status DBImpl::Recover() {
  Env* env = counting_env_.get();
  const std::string current = CurrentFileName(dbname_);

  if (!env->FileExists(current)) {
    if (!options_.create_if_missing) {
      return Status::InvalidArgument(dbname_, "does not exist");
    }
    // Fresh database: empty state.
    recovered_ = RecoveredState();
    mem_ = new MemTable();
    mem_->Ref();
    return Status::OK();
  }
  if (options_.error_if_exists) {
    return Status::InvalidArgument(dbname_, "exists (error_if_exists)");
  }

  Status s = RecoverManifest(env, dbname_, &recovered_);
  if (!s.ok()) return s;
  next_file_number_ = recovered_.next_file_number;
  next_node_id_ = recovered_.next_node_id;
  last_sequence_.store(recovered_.last_sequence, std::memory_order_relaxed);

  // Replay WALs at or after the recorded log number, oldest first.
  std::vector<std::string> children;
  env->GetChildren(dbname_, &children);
  std::vector<uint64_t> logs;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) && type == FileType::kLogFile &&
        number >= recovered_.log_number) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());

  mem_ = new MemTable();
  mem_->Ref();
  SequenceNumber max_sequence = last_sequence_.load(std::memory_order_relaxed);
  for (uint64_t log_number : logs) {
    s = ReplayWal(log_number, &max_sequence);
    if (!s.ok()) return s;
    next_file_number_ = std::max(next_file_number_, log_number + 1);
    // Keep replayed WALs until the recovered data is flushed.
    old_log_numbers_.insert(log_number);
  }
  if (max_sequence > last_sequence_.load(std::memory_order_relaxed)) {
    last_sequence_.store(max_sequence, std::memory_order_relaxed);
  }
  return Status::OK();
}

namespace {
struct WalRecoveryReporter : public log::Reader::Reporter {
  Status* status;
  bool paranoid;
  void Corruption(size_t, const Status& s) override {
    if (paranoid && status->ok()) *status = s;
  }
};
}  // namespace

Status DBImpl::ReplayWal(uint64_t log_number, SequenceNumber* max_sequence) {
  Env* env = counting_env_.get();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(LogFileName(dbname_, log_number), &file);
  if (!s.ok()) return s;

  Status wal_status;
  WalRecoveryReporter reporter;
  reporter.status = &wal_status;
  reporter.paranoid = options_.paranoid_checks;
  log::Reader reader(file.get(), &reporter, true);

  Slice record;
  std::string scratch;
  WriteBatch batch;
  while (reader.ReadRecord(&record, &scratch)) {
    if (record.size() < 12) continue;  // malformed header
    WriteBatchInternal::SetContents(&batch, record);
    s = WriteBatchInternal::InsertInto(&batch, mem_);
    if (!s.ok()) return s;
    SequenceNumber last = WriteBatchInternal::Sequence(&batch) +
                          WriteBatchInternal::Count(&batch) - 1;
    *max_sequence = std::max(*max_sequence, last);
  }
  return wal_status;
}

Status DBImpl::WriteSnapshotManifest() {
  // Full-state base edit from the engine's current version.  The recorded
  // log number is the OLDEST log still carrying unflushed data.
  VersionEdit base;
  uint64_t oldest_live_log =
      old_log_numbers_.empty() ? log_number_ : *old_log_numbers_.begin();
  base.SetLogNumber(oldest_live_log);
  base.SetNextFileNumber(next_file_number_ + 1);  // reserve manifest number
  base.SetNextNodeId(next_node_id_);
  base.SetLastSequence(last_sequence_.load(std::memory_order_relaxed));
  TreeVersionPtr version = engine_->current_version();
  base.SetNumLevels(version->num_levels());
  for (int level = 0; level < version->num_levels(); level++) {
    for (const auto& node : version->level(level)) {
      NodeEdit ne;
      ne.level = level;
      ne.node_id = node->node_id;
      ne.file_number = node->file_number;
      ne.meta_end = node->meta_end;
      ne.data_bytes = node->data_bytes;
      ne.num_entries = node->num_entries;
      ne.seq_count = node->seq_count;
      ne.range_lo = node->range_lo;
      ne.range_hi = node->range_hi;
      ne.smallest_ikey = node->smallest_ikey;
      ne.largest_ikey = node->largest_ikey;
      base.AddNode(ne);
    }
  }
  uint64_t manifest_number = next_file_number_++;
  IAMDB_SYNC_POINT("DBImpl::WriteSnapshotManifest:BeforeCreate");
  manifest_ = std::make_unique<ManifestWriter>(counting_env_.get(), dbname_);
  return manifest_->Create(manifest_number, base);
}

void DBImpl::RemoveObsoleteFiles() {
  IAMDB_SYNC_POINT("DBImpl::RemoveObsoleteFiles:Start");
  // Live set: current log(s), current manifest, files referenced by the
  // engine's current version or pinned by FileLifetime refs elsewhere.
  std::set<uint64_t> live_tables;
  TreeVersionPtr version = engine_->current_version();
  for (int level = 0; level < version->num_levels(); level++) {
    for (const auto& node : version->level(level)) {
      if (node->file_number != 0) live_tables.insert(node->file_number);
    }
  }

  std::vector<std::string> children;
  counting_env_->GetChildren(dbname_, &children);
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    bool keep = true;
    switch (type) {
      case FileType::kLogFile:
        keep = (number >= log_number_) ||
               (old_log_numbers_.count(number) > 0);
        break;
      case FileType::kManifestFile:
        keep = (manifest_ != nullptr && number == manifest_->manifest_number());
        break;
      case FileType::kTableFile:
        keep = live_tables.count(number) > 0;
        break;
      case FileType::kTempFile:
        keep = false;
        break;
      case FileType::kCurrentFile:
      case FileType::kUnknown:
        keep = true;
        break;
    }
    if (!keep) {
      counting_env_->RemoveFile(dbname_ + "/" + child);
    }
  }
}

Status DestroyDB(const std::string& name, const Options& options) {
  Env* env = options.env;
  std::vector<std::string> children;
  Status s = env->GetChildren(name, &children);
  if (!s.ok()) return Status::OK();  // nothing to destroy
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type)) {
      env->RemoveFile(name + "/" + child);
    }
  }
  env->RemoveDir(name);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Write path

Status DB::Put(const WriteOptions& options, const Slice& key,
               const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DB::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::SwitchMemTable() {
  // Seal the outgoing WAL.  Every non-current WAL must be fully durable:
  // otherwise a later sync-acknowledged write in the new WAL could survive
  // a crash while earlier unsynced records in the old one are lost,
  // leaving a hole in the recovered history.
  if (log_file_ != nullptr) {
    Status sync_status = log_file_->Sync();
    if (!sync_status.ok()) return sync_status;
  }
  IAMDB_SYNC_POINT("DBImpl::SwitchMemTable:AfterOldWalSeal");
  uint64_t new_log_number = next_file_number_++;
  std::unique_ptr<WritableFile> lfile;
  Status s = counting_env_->NewWritableFile(
      LogFileName(dbname_, new_log_number), &lfile);
  if (!s.ok()) return s;
  IAMDB_SYNC_POINT("DBImpl::SwitchMemTable:AfterNewWal");

  if (log_number_ != 0) old_log_numbers_.insert(log_number_);
  log_file_ = std::move(lfile);
  log_ = std::make_unique<log::Writer>(log_file_.get());
  log_number_ = new_log_number;

  if (mem_ != nullptr) {
    if (mem_->num_entries() > 0) {
      assert(imm_ == nullptr);
      imm_ = mem_;
    } else {
      mem_->Unref();  // nothing to flush; don't cycle an empty imm
    }
  }
  mem_ = new MemTable();
  mem_->Ref();
  PublishReadView();
  return Status::OK();
}

void DBImpl::PublishReadView() {
  // mutex_ held (which is what serializes PublishedPtr::Store callers).
  // The release pointer swap inside Store makes the new memtable pointers
  // visible to any reader whose Acquire observes this view; superseded
  // views are reclaimed by epoch, never under a reader.
  read_view_.Store(std::make_shared<const ReadView>(
      mem_, imm_, last_sequence_.load(std::memory_order_relaxed)));
}

Status DBImpl::MakeRoomForWrite(std::unique_lock<std::mutex>& lock) {
  bool allow_delay = true;
  while (true) {
    if (!bg_error_.ok()) return bg_error_;

    TreeEngine::WritePressure pressure = engine_->GetWritePressure();
    if (allow_delay && pressure == TreeEngine::WritePressure::kSlowdown) {
      // Shed 1ms to give compaction a chance (LevelDB's soft limit).
      lock.unlock();
      uint64_t t0 = counting_env_->NowMicros();
      options_.env->SleepForMicroseconds(1000);
      uint64_t waited = counting_env_->NowMicros() - t0;
      stall_micros_.fetch_add(waited, std::memory_order_relaxed);
      OpIoScope::RecordStall(waited);
      allow_delay = false;
      lock.lock();
      continue;
    }

    // Rotation threshold: the arbiter's write quota when a pooled budget is
    // configured (re-read every iteration — a rebalance may move it while
    // this writer stalls), otherwise the static node capacity.
    const uint64_t write_quota =
        arbiter_ != nullptr ? arbiter_->write_quota() : options_.node_capacity;
    if (mem_->data_bytes() < write_quota) {
      return Status::OK();
    }

    if (imm_ != nullptr || pressure == TreeEngine::WritePressure::kStop) {
      // Hard stall: wait for background progress.
      MaybeScheduleBackgroundWork();
      uint64_t t0 = counting_env_->NowMicros();
      bg_cv_.wait(lock);
      uint64_t waited = counting_env_->NowMicros() - t0;
      stall_micros_.fetch_add(waited, std::memory_order_relaxed);
      OpIoScope::RecordStall(waited);
      continue;
    }

    Status s = SwitchMemTable();
    if (!s.ok()) return s;
    MaybeScheduleBackgroundWork();
  }
}

WriteBatch* DBImpl::BuildBatchGroup(WriterItem** last_writer) {
  assert(!writers_.empty());
  WriterItem* first = writers_.front();
  WriteBatch* result = first->batch;
  size_t size = WriteBatchInternal::ByteSize(first->batch);

  // Cap group size; small writes get a smaller cap to bound their latency.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) max_size = size + (128 << 10);
  // Under a pooled budget, never build a group larger than the write quota:
  // a group that overshoots a small quota would blow the memtable well past
  // the arbiter's division before the next rotation check.
  if (arbiter_ != nullptr) {
    max_size = std::min<size_t>(max_size, arbiter_->write_quota());
  }

  *last_writer = first;
  auto iter = writers_.begin();
  ++iter;
  for (; iter != writers_.end(); ++iter) {
    WriterItem* w = *iter;
    if (w->sync && !first->sync) break;  // don't promote to sync
    if (w->batch == nullptr) continue;
    size += WriteBatchInternal::ByteSize(w->batch);
    if (size > max_size) break;
    if (result == first->batch) {
      result = &group_batch_;
      assert(WriteBatchInternal::Count(result) == 0);
      WriteBatchInternal::Append(result, first->batch);
    }
    WriteBatchInternal::Append(result, w->batch);
    *last_writer = w;
  }
  return result;
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  WriterItem w;
  w.batch = updates;
  w.sync = options.sync || options_.sync_wal;

  std::unique_lock<std::mutex> l(mutex_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.wait(l);
  }
  if (w.done) return w.status;

  Status status = MakeRoomForWrite(l);
  // Only the front writer (under mutex_) mutates last_sequence_, so a
  // relaxed load here sees the latest value.
  SequenceNumber last_sequence =
      last_sequence_.load(std::memory_order_relaxed);
  WriterItem* last_writer = &w;
  if (status.ok()) {
    WriteBatch* write_batch = BuildBatchGroup(&last_writer);
    WriteBatchInternal::SetSequence(write_batch, last_sequence + 1);
    last_sequence += WriteBatchInternal::Count(write_batch);

    {
      // The front writer owns the log and memtable while unlocked; later
      // writers queue behind it.
      l.unlock();
      Slice contents = WriteBatchInternal::Contents(write_batch);
      IAMDB_SYNC_POINT("DBImpl::Write:BeforeWalAppend");
      status = log_->AddRecord(contents);
      IAMDB_SYNC_POINT("DBImpl::Write:AfterWalAppend");
      if (status.ok() && w.sync) {
        status = log_file_->Sync();
        IAMDB_SYNC_POINT("DBImpl::Write:AfterWalSync");
      }
      if (status.ok()) {
        status = WriteBatchInternal::InsertInto(write_batch, mem_);
      }
      amp_stats_.RecordUserWrite(WriteBatchInternal::UserBytes(write_batch));
      if (pacer_ != nullptr) {
        pacer_->RecordIngest(WriteBatchInternal::UserBytes(write_batch));
      }
      amp_stats_.RecordWal(contents.size());
      l.lock();
    }
    if (write_batch == &group_batch_) group_batch_.Clear();
    // Release-publish AFTER the memtable insert: a reader that acquires a
    // sequence S from last_sequence_ is guaranteed to find every entry at
    // or below S in the (view's) memtables or the engine.
    last_sequence_.store(last_sequence, std::memory_order_release);
  }

  while (true) {
    WriterItem* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();
  }
  return status;
}

// ---------------------------------------------------------------------------
// Read path

// Lock-free: acquires no lock the write path takes.  Ordering contract
// (docs/CONCURRENCY.md): load the snapshot sequence FIRST, the view second.
// Data only ever moves "down" (mem -> imm -> engine version), and each stage
// is installed before the previous one is retired, so consulting stages in
// the order mem, imm, engine — each loaded at or after the sequence load —
// can never miss an entry at or below the loaded sequence.
Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  Status s;
  for (;;) {
    // Optimistic validation against compaction GC: a compaction that STARTS
    // after our sequence load may capture a larger smallest-snapshot and
    // drop the newest entry at or below our sequence (its shadower being
    // above it).  Versions installed before the sequence load can never do
    // that, so an unchanged stamp proves a NotFound genuine; a moved stamp
    // forces one more pass at a fresh sequence.  Registered snapshots are
    // honoured by SmallestSnapshot() and never need the loop.
    const uint64_t stamp =
        options.snapshot == nullptr ? engine_->version_stamp() : 0;
    const SequenceNumber snapshot =
        options.snapshot != nullptr
            ? static_cast<const SnapshotImpl*>(options.snapshot)->sequence()
            : last_sequence_.load(std::memory_order_acquire);

    LookupKey lkey(key, snapshot);
    bool found;
    {
      // Epoch guard, not a refcount: the view (and the memtable references
      // it pins) stays alive while the guard is held.  Dropped before the
      // engine probe so block I/O never delays view reclamation.
      auto view = read_view_.Acquire();
      found = view->mem->Get(lkey, value, &s) ||
              (view->imm != nullptr && view->imm->Get(lkey, value, &s));
    }
    if (!found) s = engine_->Get(options, lkey, value);
    if (found || options.snapshot != nullptr || !s.IsNotFound() ||
        engine_->version_stamp() == stamp) {
      break;
    }
  }
  // Arbiter heartbeat for read-dominated workloads (one clock read when
  // due-check fails; try-lock when due, so the hot path never blocks).
  if (arbiter_ != nullptr && arbiter_->RetuneDue()) {
    MaybeRebalanceMemoryFromRead();
  }
  return s;
}

void DB::MultiGet(const ReadOptions& options, size_t count, const Slice* keys,
                  std::string* values, Status* statuses) {
  for (size_t i = 0; i < count; ++i) {
    statuses[i] = Get(options, keys[i], &values[i]);
  }
}

// Native batched read: the snapshot sequence is loaded once, the read view
// is acquired once for the whole batch's mem/imm probes, and the engine
// sees the survivors sorted so per-table metadata and block I/O coalesce.
// Per key the visit order (mem, imm, engine levels newest-first) and the
// ordering contract are exactly Get's, so the results are byte-equivalent
// to N sequential Gets at the same snapshot.
void DBImpl::MultiGet(const ReadOptions& options, size_t count,
                      const Slice* keys, std::string* values,
                      Status* statuses) {
  multiget_batches_.fetch_add(1, std::memory_order_relaxed);
  multiget_keys_.fetch_add(count, std::memory_order_relaxed);

  // Batch indices still being probed.  Starts as everything; after a pass
  // it shrinks to the keys the engine found NOTHING for (state kPending)
  // when the version stamp moved mid-pass — the compaction-GC hazard Get's
  // retry loop guards against (see Get above).  Found values and observed
  // tombstones are always genuine and never re-probed.
  std::vector<size_t> todo(count);
  for (size_t i = 0; i < count; ++i) todo[i] = i;

  while (!todo.empty()) {
    const uint64_t stamp =
        options.snapshot == nullptr ? engine_->version_stamp() : 0;
    const SequenceNumber snapshot =
        options.snapshot != nullptr
            ? static_cast<const SnapshotImpl*>(options.snapshot)->sequence()
            : last_sequence_.load(std::memory_order_acquire);

    std::deque<LookupKey> lkeys;  // deque: LookupKey is not movable
    std::vector<MultiGetRequest> reqs(todo.size());
    std::vector<MultiGetRequest*> pending;
    pending.reserve(todo.size());
    for (size_t j = 0; j < todo.size(); ++j) {
      lkeys.emplace_back(keys[todo[j]], snapshot);
      reqs[j].lkey = &lkeys.back();
      reqs[j].value = &values[todo[j]];
    }

    {
      // One epoch guard covers every mem/imm probe; dropped before engine
      // block I/O, same as Get.
      auto view = read_view_.Acquire();
      for (size_t j = 0; j < todo.size(); ++j) {
        Status s;
        if (view->mem->Get(*reqs[j].lkey, reqs[j].value, &s) ||
            (view->imm != nullptr &&
             view->imm->Get(*reqs[j].lkey, reqs[j].value, &s))) {
          statuses[todo[j]] = s;
          reqs[j].state = MultiGetRequest::State::kFound;  // resolved
        } else {
          pending.push_back(&reqs[j]);
        }
      }
    }

    if (!pending.empty()) {
      // Engine contract: requests sorted by internal key.  Every key
      // carries the same snapshot sequence, so user-key order suffices
      // (and keeps duplicate keys adjacent).
      std::sort(pending.begin(), pending.end(),
                [](const MultiGetRequest* a, const MultiGetRequest* b) {
                  return a->lkey->user_key().compare(b->lkey->user_key()) < 0;
                });
      MultiGetContext batch;
      ReadOptions batch_options = options;
      batch_options.batch = &batch;
      engine_->MultiGet(batch_options, pending.data(), pending.size());
      multiget_coalesced_reads_.fetch_add(batch.coalesced_reads,
                                          std::memory_order_relaxed);
      multiget_coalesced_blocks_.fetch_add(batch.coalesced_blocks,
                                           std::memory_order_relaxed);
      for (MultiGetRequest* r : pending) {
        const size_t i = todo[static_cast<size_t>(r - reqs.data())];
        if (!r->status.ok()) {
          statuses[i] = r->status;
        } else if (r->state == MultiGetRequest::State::kFound) {
          statuses[i] = Status::OK();
        } else {
          // kDeleted, kCorrupt-with-OK-status (impossible) and
          // still-pending all map to NotFound, matching the engine Get
          // returns.
          statuses[i] = Status::NotFound(Slice());
        }
      }
    }

    if (options.snapshot != nullptr ||
        engine_->version_stamp() == stamp) {
      break;
    }
    std::vector<size_t> unresolved;
    for (size_t j = 0; j < todo.size(); ++j) {
      if (reqs[j].state == MultiGetRequest::State::kPending &&
          reqs[j].status.ok()) {
        unresolved.push_back(todo[j]);
      }
    }
    todo = std::move(unresolved);
  }

  if (arbiter_ != nullptr && arbiter_->RetuneDue()) {
    MaybeRebalanceMemoryFromRead();
  }
}

Iterator* DBImpl::NewInternalIterator(const ReadOptions& options,
                                      SequenceNumber* latest_snapshot) {
  // Same ordering as Get: sequence before view (see above).
  *latest_snapshot = last_sequence_.load(std::memory_order_acquire);
  std::vector<Iterator*> iters;
  {
    // The guard only needs to outlive iterator construction: each
    // MemTableIterator takes its own reference on the table.
    auto view = read_view_.Acquire();
    iters.push_back(view->mem->NewIterator());
    if (view->imm != nullptr) {
      iters.push_back(view->imm->NewIterator());
    }
  }
  engine_->AddIterators(options, &iters);
  return NewMergingIterator(&icmp_, iters.data(),
                            static_cast<int>(iters.size()));
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  // Same compaction-GC hazard as Get: a version installed between the
  // sequence load and AddIterators may already have dropped entries at or
  // below that sequence.  Once assembled under an unchanged stamp the
  // iterator pins its version, so the hazard is construction-only.
  for (;;) {
    const uint64_t stamp =
        options.snapshot == nullptr ? engine_->version_stamp() : 0;
    SequenceNumber latest_snapshot;
    Iterator* internal_iter = NewInternalIterator(options, &latest_snapshot);
    if (options.snapshot != nullptr) {
      return NewDBIterator(
          internal_iter,
          static_cast<const SnapshotImpl*>(options.snapshot)->sequence());
    }
    if (engine_->version_stamp() == stamp) {
      return NewDBIterator(internal_iter, latest_snapshot);
    }
    delete internal_iter;
  }
}

const Snapshot* DBImpl::GetSnapshot() {
  // snapshots_mu_ only: snapshot creation/release never contends with the
  // writer queue.  The sequence is loaded inside the lock so concurrent
  // GetSnapshot calls insert in monotone order (SnapshotList requires it).
  std::lock_guard<std::mutex> l(snapshots_mu_);
  return snapshots_.New(last_sequence_.load(std::memory_order_acquire));
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  std::lock_guard<std::mutex> l(snapshots_mu_);
  snapshots_.Delete(static_cast<const SnapshotImpl*>(snapshot));
}

// ---------------------------------------------------------------------------
// Background work

void DBImpl::MaybeScheduleBackgroundWork() {
  if (shutting_down_.load(std::memory_order_acquire) || !bg_error_.ok()) {
    return;
  }
  // Adaptive pacing: every scheduling pass is a chance to retune — this is
  // where debt changes (rotations, job completions).  RetuneDue() keeps the
  // off-interval cost to one clock read; MaybeRetune is non-blocking (the
  // limiter mutex is a leaf lock), so holding mutex_ here is fine.
  if (pacer_ != nullptr && pacer_->RetuneDue()) {
    pacer_->MaybeRetune(engine_->CompactionDebtBytes());
  }
  // Memory arbiter rides the same piggyback: scheduling passes happen on
  // every write-side event that could move its signals (rotations, stalls,
  // job completions).  Cache SetCapacity only takes shard (leaf) locks.
  MaybeRebalanceMemory();
  // Flush lane: one dedicated high-lane worker whenever an imm is pending.
  // Flushes serialize on the single imm slot, so one worker is always
  // enough — and the high lane guarantees it never queues behind merges.
  if (imm_ != nullptr && !flush_scheduled_) {
    flush_scheduled_ = true;
    if (!pool_->Schedule(ThreadPool::Lane::kHigh, [this] {
          BackgroundCall(TreeEngine::WorkLane::kFlush);
        })) {
      // Pool already shutting down (DB teardown): drop the slot; the
      // destructor drains outstanding work itself.
      flush_scheduled_ = false;
      return;
    }
  }
  // Compaction lane: exactly one worker per job the engine could start
  // right now given what is already running (busy-marking simulated by
  // RunnableCompactions) — not one per pool slot, which used to wake
  // workers that immediately found every job conflicted and exited.
  int slots = pool_->num_threads() - compactions_scheduled_;
  if (slots <= 0) return;
  int runnable = engine_->RunnableCompactions(slots);
  for (int i = 0; i < runnable; i++) {
    compactions_scheduled_++;
    if (!pool_->Schedule(ThreadPool::Lane::kLow, [this] {
          BackgroundCall(TreeEngine::WorkLane::kCompaction);
        })) {
      compactions_scheduled_--;
      break;
    }
  }
}

void DBImpl::MaybeRebalanceMemory() {
  // mutex_ held.  OnMemoryRetune only fires when the division actually
  // moved — the AMT tuner re-run reads the new cache capacity.
  if (arbiter_ == nullptr || !arbiter_->RetuneDue()) return;
  if (arbiter_->MaybeRebalance(stall_micros_.load(std::memory_order_relaxed),
                               engine_->CompactionDebtBytes())) {
    engine_->OnMemoryRetune();
  }
}

void DBImpl::MaybeRebalanceMemoryFromRead() {
  // Read-only workloads never enter MaybeScheduleBackgroundWork, so the
  // read path gives the arbiter a heartbeat.  Get stays lock-free: this is
  // only called after a cheap RetuneDue clock check, and backs off rather
  // than blocking when writers hold the mutex (they will retune anyway).
  std::unique_lock<std::mutex> l(mutex_, std::try_to_lock);
  if (!l.owns_lock()) return;
  MaybeRebalanceMemory();
}

bool DBImpl::ForceMemoryStep(MemoryArbiter::Shift direction) {
  if (arbiter_ == nullptr) return false;
  std::lock_guard<std::mutex> l(mutex_);
  bool moved = arbiter_->ForceStep(direction);
  if (moved) engine_->OnMemoryRetune();
  return moved;
}

void DBImpl::BackgroundCall(TreeEngine::WorkLane lane) {
  std::unique_lock<std::mutex> l(mutex_);
  while (!shutting_down_.load(std::memory_order_acquire) && bg_error_.ok()) {
    bool did_work = false;
    Status s = engine_->BackgroundWork(lane, &did_work);
    if (!s.ok()) {
      bg_error_ = s;
      break;
    }
    if (!did_work) break;
    bg_cv_.notify_all();
    // One flush per wakeup: the next imm (if any) gets a fresh worker from
    // the rescheduling pass below, keeping the accounting one-to-one.
    if (lane == TreeEngine::WorkLane::kFlush) break;
  }
  if (lane == TreeEngine::WorkLane::kFlush) {
    flush_scheduled_ = false;
  } else {
    compactions_scheduled_--;
  }
  // Defense in depth: if runnable work appeared while this worker was
  // deciding to exit (e.g. it skipped jobs that were busy on another
  // thread), hand it to a fresh worker rather than waiting for the next
  // write to schedule one.
  if (!shutting_down_.load(std::memory_order_acquire) && bg_error_.ok()) {
    MaybeScheduleBackgroundWork();
  }
  bg_cv_.notify_all();
}

void DBImpl::ImmFlushed() {
  // Mutex held by caller (engine).  The engine has already installed the
  // tree version containing the imm's data, so the view published here
  // (without the imm) still lets readers find everything: a reader that
  // sees the new view synchronizes with this thread and therefore also
  // sees the new engine version.
  if (imm_ != nullptr) {
    imm_->Unref();
    imm_ = nullptr;
  }
  PublishReadView();
  IAMDB_SYNC_POINT("DBImpl::ImmFlushed:BeforeWalRemove");
  // WALs older than the current log are covered by flushed data.
  for (uint64_t old : old_log_numbers_) {
    counting_env_->RemoveFile(LogFileName(dbname_, old));
  }
  old_log_numbers_.clear();
  bg_cv_.notify_all();
}

Status DBImpl::LogEdit(VersionEdit* edit) {
  edit->SetNextFileNumber(next_file_number_);
  edit->SetNextNodeId(next_node_id_);
  edit->SetLastSequence(last_sequence_.load(std::memory_order_relaxed));
  IAMDB_SYNC_POINT("DBImpl::LogEdit:BeforeManifestAppend");
  // Always synced: edits gate the deletion of the WALs and input tables
  // that carry the same data, so an unsynced edit could lose acknowledged
  // writes across a crash (sync_wal only governs per-write WAL syncs).
  Status s = manifest_->Append(*edit, true);
  IAMDB_SYNC_POINT("DBImpl::LogEdit:AfterManifestAppend");
  return s;
}

Status DBImpl::WaitForQuiescence() {
  std::unique_lock<std::mutex> l(mutex_);
  while (bg_error_.ok() && (imm_ != nullptr || engine_->NeedsCompaction() ||
                            ScheduledWorkers() > 0)) {
    MaybeScheduleBackgroundWork();
    bg_cv_.wait(l);
  }
  return bg_error_;
}

Status DBImpl::FlushAll() {
  {
    std::unique_lock<std::mutex> l(mutex_);
    if (mem_->num_entries() > 0) {
      while (imm_ != nullptr && bg_error_.ok()) {
        MaybeScheduleBackgroundWork();
        bg_cv_.wait(l);
      }
      if (!bg_error_.ok()) return bg_error_;
      Status s = SwitchMemTable();
      if (!s.ok()) return s;
      MaybeScheduleBackgroundWork();
    }
  }
  return WaitForQuiescence();
}

// ---------------------------------------------------------------------------
// Stats

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  char buf[160];
  if (property == Slice("iamdb.stats")) {
    *value = amp_stats_.ToString();
    DbStats stats = GetStats();
    std::snprintf(buf, sizeof(buf),
                  "space=%.1fMB cache=%.1f/%.1fMB hit-rate=%.1f%% "
                  "stalls=%.1fs\n",
                  stats.space_used_bytes / 1048576.0,
                  stats.cache_usage / 1048576.0,
                  options_.block_cache_capacity / 1048576.0,
                  100.0 * stats.cache_hits /
                      std::max<uint64_t>(1, stats.cache_hits +
                                                stats.cache_misses),
                  stats.stall_micros / 1e6);
    value->append(buf);
    if (stats.arbiter_budget_bytes > 0) {
      std::snprintf(buf, sizeof(buf),
                    "arbiter budget=%.1fMB write=%.1fMB read=%.1fMB "
                    "retunes=%llu shifts=%llu\n",
                    stats.arbiter_budget_bytes / 1048576.0,
                    stats.arbiter_write_bytes / 1048576.0,
                    stats.arbiter_read_bytes / 1048576.0,
                    static_cast<unsigned long long>(stats.arbiter_retunes),
                    static_cast<unsigned long long>(stats.arbiter_shifts));
      value->append(buf);
    }
    if (stats.compress_input_bytes > 0) {
      std::snprintf(buf, sizeof(buf),
                    "compression=%s ratio=%.2fx stored=%.1fMB "
                    "(columnar=%llu lz=%llu raw=%llu blocks)\n",
                    CompressionTypeName(options_.table.compression),
                    static_cast<double>(stats.compress_input_bytes) /
                        std::max<uint64_t>(1, stats.compress_stored_bytes),
                    stats.compress_stored_bytes / 1048576.0,
                    static_cast<unsigned long long>(
                        stats.compress_columnar_blocks),
                    static_cast<unsigned long long>(stats.compress_lz_blocks),
                    static_cast<unsigned long long>(
                        stats.compress_raw_fallback_blocks));
      value->append(buf);
    }
    return true;
  }
  if (property == Slice("iamdb.levels")) {
    TreeVersionPtr version = engine_->current_version();
    for (int level = 0; level < version->num_levels(); level++) {
      uint64_t sequences = 0, bytes = 0;
      for (const auto& node : version->level(level)) {
        sequences += node->seq_count;
        bytes += node->data_bytes;
      }
      std::snprintf(buf, sizeof(buf), "L%d: %zu nodes %.1fMB %llu sequences\n",
                    level + (options_.engine == EngineType::kAmt ? 1 : 0),
                    version->level(level).size(), bytes / 1048576.0,
                    static_cast<unsigned long long>(sequences));
      value->append(buf);
    }
    DbStats stats = GetStats();
    if (stats.mixed_level > 0) {
      std::snprintf(buf, sizeof(buf), "mixed level m=%d k=%d\n",
                    stats.mixed_level, stats.mixed_level_k);
      value->append(buf);
    }
    return true;
  }
  if (property == Slice("iamdb.tree-digest")) {
    // Deterministic content digest of the published tree, independent of
    // node ids, file numbers and file layout: per node, its shape and a
    // CRC of its merged record stream; per level, a CRC of the level's
    // concatenated record stream (in node order).  subcompaction_test
    // compares digests across different max_subcompactions settings —
    // node-level lines for the AMT engine (sharding preserves node
    // boundaries), "stream" lines for the leveled engine (sharding only
    // moves file cuts).
    TreeVersionPtr version = engine_->current_version();
    ReadOptions digest_read;
    digest_read.fill_cache = false;
    for (int level = 0; level < version->num_levels(); level++) {
      uint32_t level_crc = 0;
      uint64_t level_entries = 0;
      for (const auto& node : version->level(level)) {
        uint32_t node_crc = 0;
        uint64_t node_entries = 0;
        if (!node->empty()) {
          std::shared_ptr<MSTableReader> reader;
          Status s = node->OpenReader(counting_env_.get(), options_.table,
                                      &icmp_, dbname_, &reader);
          if (!s.ok()) return false;
          std::vector<Iterator*> iters;
          reader->AddSequenceIterators(digest_read, &iters);
          std::unique_ptr<Iterator> merged(NewMergingIterator(
              &icmp_, iters.data(), static_cast<int>(iters.size())));
          for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
            node_crc = crc32c::Extend(node_crc, merged->key().data(),
                                      merged->key().size());
            node_crc = crc32c::Extend(node_crc, merged->value().data(),
                                      merged->value().size());
            level_crc = crc32c::Extend(level_crc, merged->key().data(),
                                       merged->key().size());
            level_crc = crc32c::Extend(level_crc, merged->value().data(),
                                       merged->value().size());
            node_entries++;
          }
          if (!merged->status().ok()) return false;
        }
        std::snprintf(buf, sizeof(buf),
                      "L%d node lo=%s hi=%s entries=%llu seqs=%u crc=%08x\n",
                      level, node->range_lo.c_str(), node->range_hi.c_str(),
                      static_cast<unsigned long long>(node_entries),
                      node->seq_count, node_crc);
        value->append(buf);
        level_entries += node_entries;
      }
      std::snprintf(buf, sizeof(buf), "L%d stream entries=%llu crc=%08x\n",
                    level, static_cast<unsigned long long>(level_entries),
                    level_crc);
      value->append(buf);
    }
    return true;
  }
  if (property == Slice("iamdb.approximate-memory-usage")) {
    uint64_t total = block_cache_->usage();
    if (compressed_block_cache_ != nullptr) {
      total += compressed_block_cache_->usage();
    }
    {
      auto view = read_view_.Acquire();
      total += view->mem->ApproximateMemoryUsage();
      if (view->imm != nullptr) total += view->imm->ApproximateMemoryUsage();
    }
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(total));
    *value = buf;
    return true;
  }
  return false;
}

DbStats DBImpl::GetStats() {
  DbStats stats;
  stats.total_write_amp = amp_stats_.TotalWriteAmp();
  stats.user_bytes = amp_stats_.user_bytes();
  int max_level = amp_stats_.MaxRecordedLevel();
  for (int i = 0; i <= max_level; i++) {
    stats.level_write_amp.push_back(amp_stats_.LevelWriteAmp(i));
  }

  TreeVersionPtr version = engine_->current_version();
  uint64_t space = 0;
  for (int level = 0; level < version->num_levels(); level++) {
    stats.level_bytes.push_back(version->LevelBytes(level));
    stats.level_node_counts.push_back(
        static_cast<int>(version->level(level).size()));
    for (const auto& node : version->level(level)) {
      // Physical footprint: the whole valid file including dead zones.
      space += node->meta_end;
    }
  }
  stats.space_used_bytes = space;
  stats.cache_usage = block_cache_->usage();
  stats.cache_hits = block_cache_->hits();
  stats.cache_misses = block_cache_->misses();
  stats.compress_input_bytes =
      compression_stats_.input_bytes.load(std::memory_order_relaxed);
  stats.compress_stored_bytes =
      compression_stats_.stored_bytes.load(std::memory_order_relaxed);
  stats.compress_columnar_blocks =
      compression_stats_.columnar_blocks.load(std::memory_order_relaxed);
  stats.compress_lz_blocks =
      compression_stats_.lz_blocks.load(std::memory_order_relaxed);
  stats.compress_raw_fallback_blocks =
      compression_stats_.raw_fallback_blocks.load(std::memory_order_relaxed);
  stats.decompressed_blocks =
      compression_stats_.decompressed_blocks.load(std::memory_order_relaxed);
  stats.decompress_micros =
      compression_stats_.decompress_micros.load(std::memory_order_relaxed);
  if (compressed_block_cache_ != nullptr) {
    stats.compressed_cache_usage = compressed_block_cache_->usage();
    stats.compressed_cache_hits = compressed_block_cache_->hits();
    stats.compressed_cache_misses = compressed_block_cache_->misses();
  }
  stats.stall_micros = stall_micros_.load(std::memory_order_relaxed);
  stats.io = io_stats_.Snapshot();
  stats.flush_queue_depth = pool_->QueueDepth(ThreadPool::Lane::kHigh);
  stats.compact_queue_depth = pool_->QueueDepth(ThreadPool::Lane::kLow);
  stats.subcompactions_run = subcompactions_.load(std::memory_order_relaxed);
  if (rate_limiter_ != nullptr) {
    stats.rate_limiter_wait_micros = rate_limiter_->total_wait_micros();
    stats.rate_limiter_paced_wall_micros =
        rate_limiter_->total_paced_wall_micros();
    stats.pacer_rate_bytes_per_sec = rate_limiter_->bytes_per_second();
  }
  if (pacer_ != nullptr) {
    stats.pacer_ingest_bytes_per_sec = pacer_->ingest_rate();
    stats.pacer_retunes = pacer_->retunes();
  }
  if (arbiter_ != nullptr) {
    stats.arbiter_budget_bytes = arbiter_->budget();
    stats.arbiter_write_bytes = arbiter_->write_quota();
    stats.arbiter_read_bytes = arbiter_->read_target();
    stats.arbiter_retunes = arbiter_->retunes();
    stats.arbiter_shifts = arbiter_->shifts();
  }
  stats.multiget_batches = multiget_batches_.load(std::memory_order_relaxed);
  stats.multiget_keys = multiget_keys_.load(std::memory_order_relaxed);
  stats.multiget_coalesced_reads =
      multiget_coalesced_reads_.load(std::memory_order_relaxed);
  stats.multiget_coalesced_blocks =
      multiget_coalesced_blocks_.load(std::memory_order_relaxed);
  engine_->FillStats(&stats);
  return stats;
}

}  // namespace iamdb
