// DbStats aggregation.  ShardedDB::GetStats folds per-shard snapshots with
// this operator; tests/db_stats_test.cc walks every wire tag and fails if
// a newly added field is missing here or in the codec.
#include <algorithm>
#include <cstdint>

#include "core/db.h"

namespace iamdb {

namespace {

// Write amp is a ratio (bytes written / user bytes); combining two
// instances must weight each side by its denominator so the result equals
// the amp a single instance with the union of their traffic would report.
double CombineAmps(double lhs_amp, uint64_t lhs_user, double rhs_amp,
                   uint64_t rhs_user) {
  const double total_user =
      static_cast<double>(lhs_user) + static_cast<double>(rhs_user);
  if (total_user <= 0) return 0;
  return (lhs_amp * static_cast<double>(lhs_user) +
          rhs_amp * static_cast<double>(rhs_user)) /
         total_user;
}

template <typename T>
void PadAndAdd(std::vector<T>* lhs, const std::vector<T>& rhs) {
  if (lhs->size() < rhs.size()) lhs->resize(rhs.size(), T{});
  for (size_t i = 0; i < rhs.size(); i++) (*lhs)[i] += rhs[i];
}

}  // namespace

DbStats& operator+=(DbStats& lhs, const DbStats& rhs) {
  // Amps first: they read user_bytes before it is summed.  A self-add
  // (x += x) still works because rhs's fields are read before lhs mutates
  // the ones they depend on.
  lhs.total_write_amp = CombineAmps(lhs.total_write_amp, lhs.user_bytes,
                                    rhs.total_write_amp, rhs.user_bytes);
  if (lhs.level_write_amp.size() < rhs.level_write_amp.size()) {
    lhs.level_write_amp.resize(rhs.level_write_amp.size(), 0);
  }
  for (size_t i = 0; i < rhs.level_write_amp.size(); i++) {
    lhs.level_write_amp[i] = CombineAmps(lhs.level_write_amp[i],
                                         lhs.user_bytes,
                                         rhs.level_write_amp[i],
                                         rhs.user_bytes);
  }

  PadAndAdd(&lhs.level_bytes, rhs.level_bytes);
  PadAndAdd(&lhs.level_node_counts, rhs.level_node_counts);

  lhs.user_bytes += rhs.user_bytes;
  lhs.space_used_bytes += rhs.space_used_bytes;
  lhs.cache_usage += rhs.cache_usage;
  lhs.cache_hits += rhs.cache_hits;
  lhs.cache_misses += rhs.cache_misses;
  lhs.mixed_level = std::max(lhs.mixed_level, rhs.mixed_level);
  lhs.mixed_level_k = std::max(lhs.mixed_level_k, rhs.mixed_level_k);
  lhs.pending_debt_bytes += rhs.pending_debt_bytes;
  lhs.stall_micros += rhs.stall_micros;
  lhs.io.bytes_written += rhs.io.bytes_written;
  lhs.io.bytes_read += rhs.io.bytes_read;
  lhs.io.write_ops += rhs.io.write_ops;
  lhs.io.read_ops += rhs.io.read_ops;
  lhs.io.fsyncs += rhs.io.fsyncs;
  lhs.flush_queue_depth += rhs.flush_queue_depth;
  lhs.compact_queue_depth += rhs.compact_queue_depth;
  lhs.subcompactions_run += rhs.subcompactions_run;
  lhs.rate_limiter_wait_micros += rhs.rate_limiter_wait_micros;
  lhs.rate_limiter_paced_wall_micros += rhs.rate_limiter_paced_wall_micros;
  // Budgets and ingest rates sum: the aggregate is the cluster-wide
  // bytes/sec.  Retunes are a plain counter.
  lhs.pacer_rate_bytes_per_sec += rhs.pacer_rate_bytes_per_sec;
  lhs.pacer_ingest_bytes_per_sec += rhs.pacer_ingest_bytes_per_sec;
  lhs.pacer_retunes += rhs.pacer_retunes;
  lhs.server_loop_iterations += rhs.server_loop_iterations;
  lhs.server_writev_calls += rhs.server_writev_calls;
  lhs.server_responses_written += rhs.server_responses_written;
  lhs.server_output_buffer_hwm =
      std::max(lhs.server_output_buffer_hwm, rhs.server_output_buffer_hwm);
  lhs.server_backpressure_stalls += rhs.server_backpressure_stalls;
  lhs.server_accept_errors += rhs.server_accept_errors;
  lhs.compress_input_bytes += rhs.compress_input_bytes;
  lhs.compress_stored_bytes += rhs.compress_stored_bytes;
  lhs.compress_columnar_blocks += rhs.compress_columnar_blocks;
  lhs.compress_lz_blocks += rhs.compress_lz_blocks;
  lhs.compress_raw_fallback_blocks += rhs.compress_raw_fallback_blocks;
  lhs.decompressed_blocks += rhs.decompressed_blocks;
  lhs.decompress_micros += rhs.decompress_micros;
  lhs.compressed_cache_usage += rhs.compressed_cache_usage;
  lhs.compressed_cache_hits += rhs.compressed_cache_hits;
  lhs.compressed_cache_misses += rhs.compressed_cache_misses;
  // Arbiter budgets/divisions sum like the pacer rates: the aggregate is
  // the cluster-wide memory pool and its current split.
  lhs.arbiter_budget_bytes += rhs.arbiter_budget_bytes;
  lhs.arbiter_write_bytes += rhs.arbiter_write_bytes;
  lhs.arbiter_read_bytes += rhs.arbiter_read_bytes;
  lhs.arbiter_retunes += rhs.arbiter_retunes;
  lhs.arbiter_shifts += rhs.arbiter_shifts;
  lhs.mixed_level_retunes += rhs.mixed_level_retunes;
  lhs.multiget_batches += rhs.multiget_batches;
  lhs.multiget_keys += rhs.multiget_keys;
  lhs.multiget_coalesced_reads += rhs.multiget_coalesced_reads;
  lhs.multiget_coalesced_blocks += rhs.multiget_coalesced_blocks;
  return lhs;
}

}  // namespace iamdb
