#include "core/memory_arbiter.h"

#include <algorithm>

namespace iamdb {

namespace {

uint64_t Clamp(uint64_t v, uint64_t lo, uint64_t hi) {
  return std::max(lo, std::min(hi, v));
}

}  // namespace

MemoryArbiter::MemoryArbiter(const Options& options, RateClock* clock)
    : opts_(options.arbiter),
      budget_(options.memory_budget_bytes),
      write_floor_(options.node_capacity),
      write_ceiling_(budget_ -
                     (options.compressed_cache_capacity > 0 ? 2 : 1) *
                         MinReadBytesPerTier()),
      step_bytes_(std::max<uint64_t>(
          1, static_cast<uint64_t>(budget_ * opts_.step_fraction))),
      debt_high_bytes_(options.pacing.debt_high_bytes),
      uncompressed_weight_(options.block_cache_capacity),
      compressed_weight_(options.compressed_cache_capacity),
      clock_(clock),
      write_quota_(Clamp(
          static_cast<uint64_t>(budget_ * opts_.initial_write_fraction),
          write_floor_, write_ceiling_)),
      last_retune_micros_(clock->NowMicros()) {}

void MemoryArbiter::AttachCaches(LruCache* block_cache, LruCache* compressed) {
  block_cache_ = block_cache;
  compressed_cache_ = compressed;
}

uint64_t MemoryArbiter::uncompressed_target() const {
  uint64_t read = read_target();
  if (compressed_weight_ == 0) return read;
  uint64_t denom = uncompressed_weight_ + compressed_weight_;
  // Guard each tier at the minimum allotment so a lopsided configured
  // ratio cannot zero a tier out.
  uint64_t share = denom > 0 ? read / denom * uncompressed_weight_ +
                                   read % denom * uncompressed_weight_ / denom
                             : read / 2;
  return Clamp(share, MinReadBytesPerTier(), read - MinReadBytesPerTier());
}

uint64_t MemoryArbiter::compressed_target() const {
  if (compressed_weight_ == 0) return 0;
  return read_target() - uncompressed_target();
}

bool MemoryArbiter::RetuneDue() const {
  return clock_->NowMicros() >=
         last_retune_micros_.load(std::memory_order_relaxed) +
             opts_.retune_interval_micros;
}

MemoryArbiter::Shift MemoryArbiter::Decide(uint64_t stall_per_mille,
                                           uint64_t miss_per_mille,
                                           uint64_t debt_bytes) const {
  if (stall_per_mille >= opts_.stall_shift_per_mille) {
    // Writes are stalling on memtable rotation.  But if the tree owes more
    // compaction than the pacing high watermark, the stall is downstream
    // of merge bandwidth, not memtable capacity — growing the memtable
    // would only delay the same stall and starve the caches meanwhile.
    return debt_bytes >= debt_high_bytes_ ? Shift::kNone : Shift::kToWrite;
  }
  if (miss_per_mille >= opts_.miss_shift_per_mille) {
    return Shift::kToRead;
  }
  return Shift::kNone;
}

bool MemoryArbiter::MaybeRebalance(uint64_t stall_micros_total,
                                   uint64_t debt_bytes) {
  uint64_t now = clock_->NowMicros();
  uint64_t last = last_retune_micros_.load(std::memory_order_relaxed);
  if (now < last + opts_.retune_interval_micros) return false;
  last_retune_micros_.store(now, std::memory_order_relaxed);
  retunes_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t interval = std::max<uint64_t>(1, now - last);

  // Stall share of the interval, per mille (capped: several writers can
  // stall concurrently, summing past wall time).
  uint64_t last_stall = last_stall_micros_.exchange(stall_micros_total,
                                                    std::memory_order_relaxed);
  uint64_t stall_delta =
      std::min(stall_micros_total - std::min(stall_micros_total, last_stall),
               interval);
  uint64_t stall_pm = stall_delta * 1000 / interval;
  uint64_t ewma_stall =
      (ewma_stall_pm_.load(std::memory_order_relaxed) + stall_pm) / 2;
  ewma_stall_pm_.store(ewma_stall, std::memory_order_relaxed);

  // Miss rate over both tiers.  A hit in either tier avoided device I/O,
  // so the compressed tier's hits count as hits here.
  uint64_t hits = block_cache_->hits();
  uint64_t misses = block_cache_->misses();
  if (compressed_cache_ != nullptr) {
    hits += compressed_cache_->hits();
    // An uncompressed-tier miss that hits the compressed tier would be
    // double-counted as a miss; only the compressed tier's misses (which
    // are the probes that actually fell through to the device) add.
    misses = block_cache_->misses() - std::min(block_cache_->misses(),
                                               compressed_cache_->hits()) +
             compressed_cache_->misses();
  }
  uint64_t last_h = last_hits_.exchange(hits, std::memory_order_relaxed);
  uint64_t last_m = last_misses_.exchange(misses, std::memory_order_relaxed);
  uint64_t hit_delta = hits - std::min(hits, last_h);
  uint64_t miss_delta = misses - std::min(misses, last_m);
  uint64_t lookups = hit_delta + miss_delta;
  uint64_t ewma_miss = ewma_miss_pm_.load(std::memory_order_relaxed);
  if (lookups >= opts_.min_lookups_per_interval) {
    uint64_t miss_pm = miss_delta * 1000 / lookups;
    ewma_miss = (ewma_miss + miss_pm) / 2;
    ewma_miss_pm_.store(ewma_miss, std::memory_order_relaxed);
  }
  // else: no read traffic, no read signal; the EWMA holds.

  Shift shift = Decide(ewma_stall, ewma_miss, debt_bytes);
  if (shift == Shift::kNone) return false;
  return ForceStep(shift);
}

bool MemoryArbiter::ForceStep(Shift direction) {
  if (direction == Shift::kNone) return false;
  uint64_t quota = write_quota_.load(std::memory_order_relaxed);
  uint64_t target =
      direction == Shift::kToWrite
          ? quota + step_bytes_
          : quota - std::min(quota, step_bytes_);
  target = Clamp(target, write_floor_, write_ceiling_);
  if (target == quota) return false;
  write_quota_.store(target, std::memory_order_relaxed);
  shifts_.fetch_add(1, std::memory_order_relaxed);
  ApplyReadTargets();
  return true;
}

void MemoryArbiter::ApplyReadTargets() {
  // SetCapacity re-divides the per-shard budgets and evicts down to the
  // new target under each shard lock (leaf locks), so a shrink takes
  // effect immediately rather than waiting for insert-time eviction.
  if (block_cache_ != nullptr) {
    block_cache_->SetCapacity(uncompressed_target());
  }
  if (compressed_cache_ != nullptr) {
    compressed_cache_->SetCapacity(compressed_target());
  }
}

}  // namespace iamdb
