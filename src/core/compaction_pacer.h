// Adaptive compaction pacing: a feedback controller between the write path
// and the background RateLimiter.
//
// The static compaction_rate_limit trades an order of magnitude of
// throughput for smoothness (BENCH_compaction_scaling.json): a budget low
// enough to keep merges from saturating the device is also low enough that
// debt piles up and the write path stalls.  The pacer closes the loop
// instead: every retune interval it measures (EWMA, alpha = 1/2)
//
//   ingest  - user bytes written (RecordIngest from the write path), and
//   demand  - bytes compaction/flush actually offered to the limiter
//             (RateLimiter::total_bytes deltas),
//
// takes load = max(ingest, demand), and with the engine's outstanding
// compaction debt sets the token bucket to
//
//   debt <= debt_low_bytes:   max(min_rate, load * headroom)   ("smooth")
//   debt >= debt_high_bytes:  max_rate                         ("open")
//   in between:               linear interpolation
//
// Demand matters because compaction bandwidth is ingest times write
// amplification: pacing merges at ingest * headroom alone under-budgets by
// the amplification factor, writes stall behind the starved merges, the
// measured ingest falls, and the controller spirals to min_rate.  Demand
// (which includes the amplified bytes) breaks that loop.  Demand is
// itself throttled by the current budget — which is fine while the tree
// is healthy (that is what pacing means), but once debt crosses the low
// watermark AND the limiter was saturated for most of the interval
// (paced-wall time, RateLimiter::total_paced_wall_micros), the budget is
// genuinely starving merges and the pacer escalates multiplicatively —
// doubling — until compaction stops being limiter-bound; the law then
// settles it just over the true demand.  Idle intervals (no ingest, no
// demand, low debt) carry no signal and leave the budget and EWMAs
// untouched, so pacing survives lulls without re-converging.  DBImpl
// starts the bucket fully open for the same reason: converging down from
// max takes a couple of intervals, while ramping up from the floor would
// throttle the first seconds of a burst behind an unwarmed estimate.
//
// Threading: RecordIngest() is called lock-free from the write path.
// MaybeRetune() is called from DBImpl::MaybeScheduleBackgroundWork with the
// DB mutex held — it is cheap (a couple of atomics plus one non-blocking
// RateLimiter::SetBytesPerSecond, whose mutex is a leaf lock) and is
// serialized by the DB mutex.  RetuneDue() lets callers skip the debt
// computation between intervals.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/options.h"
#include "util/rate_limiter.h"

namespace iamdb {

class CompactionPacer {
 public:
  // `limiter` must outlive the pacer; `clock` defaults to the steady clock
  // (tests inject a simulated one shared with the limiter).
  CompactionPacer(const PacingOptions& options, RateLimiter* limiter,
                  RateClock* clock = RateClock::Default());

  CompactionPacer(const CompactionPacer&) = delete;
  CompactionPacer& operator=(const CompactionPacer&) = delete;

  // Accumulates user bytes written; any thread, no locks.
  void RecordIngest(uint64_t bytes);

  // True once retune_interval_micros have elapsed since the last retune.
  bool RetuneDue() const;

  // Folds the elapsed interval's ingest and limiter demand into the EWMAs
  // and retunes the limiter toward TargetRate(max(ingest, demand), debt),
  // doubling instead while the limiter is saturated.  No-op between
  // intervals.
  void MaybeRetune(uint64_t debt_bytes);

  // The control law itself, pure; exposed for deterministic unit tests.
  uint64_t TargetRate(uint64_t load_bytes_per_sec,
                      uint64_t debt_bytes) const;

  // Gauges (exported through DbStats).
  uint64_t current_rate() const { return limiter_->bytes_per_second(); }
  uint64_t ingest_rate() const {
    return smoothed_ingest_.load(std::memory_order_relaxed);
  }
  uint64_t demand_rate() const {
    return smoothed_demand_.load(std::memory_order_relaxed);
  }
  uint64_t retunes() const {
    return retunes_.load(std::memory_order_relaxed);
  }

 private:
  const PacingOptions opts_;
  RateLimiter* const limiter_;
  RateClock* const clock_;

  std::atomic<uint64_t> ingest_bytes_{0};       // since last retune
  std::atomic<uint64_t> last_retune_micros_;
  std::atomic<uint64_t> smoothed_ingest_{0};    // EWMA bytes/sec
  std::atomic<uint64_t> smoothed_demand_{0};    // EWMA bytes/sec
  std::atomic<uint64_t> last_total_bytes_{0};   // limiter gauge snapshots
  std::atomic<uint64_t> last_paced_wall_{0};
  std::atomic<uint64_t> retunes_{0};
};

}  // namespace iamdb
