// Database file naming: <dbname>/CURRENT, MANIFEST-<n>, <n>.log, <n>.mst.
#pragma once

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace iamdb {

enum class FileType {
  kLogFile,
  kTableFile,
  kManifestFile,
  kCurrentFile,
  kTempFile,
  kUnknown,
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);

// Parses a bare filename (no directory); returns false if unrecognized.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

// Atomically points CURRENT at MANIFEST-<manifest_number>.
class Env;
class Status;
Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t manifest_number);

}  // namespace iamdb
