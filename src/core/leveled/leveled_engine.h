// LeveledEngine: classic leveled LSM compaction — the paper's baseline.
//
// L0 holds whole-memtable files with overlapping ranges; L1..L6 hold
// disjoint single-sequence nodes.  Compaction picks the level with the
// highest fullness score and merges one file (all files for L0) with the
// overlapping files one level down.
//
// Two behaviour profiles, per the paper's evaluation:
//  * LevelDB-flavour (strict_level_limits=false): stalls only on L0 file
//    count, so deeper levels overflow under write-heavy load (Sec 6.2's
//    "serious data overflows" and long tuning phases).
//  * RocksDB-flavour (strict_level_limits=true): adds pending-compaction-
//    debt slowdown/stop thresholds, preventing overflow at the price of
//    write stalls; combine with background_threads > 1 for "R-4t".
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/tree_engine.h"
#include "util/published_ptr.h"

namespace iamdb {

class DBImpl;

class LeveledEngine final : public TreeEngine {
 public:
  static constexpr int kNumLevels = 7;

  explicit LeveledEngine(DBImpl* db);

  Status Recover(const RecoveredState& state) override;
  bool NeedsCompaction() const override;
  int RunnableCompactions(int max) const override;
  Status BackgroundWork(WorkLane lane, bool* did_work) override;
  Status Get(const ReadOptions& options, const LookupKey& key,
             std::string* value) override;
  void MultiGet(const ReadOptions& options, MultiGetRequest* const* reqs,
                size_t count) override;
  void AddIterators(const ReadOptions& options,
                    std::vector<Iterator*>* iters) override;
  WritePressure GetWritePressure() const override;
  uint64_t CompactionDebtBytes() const override;
  void FillStats(DbStats* stats) const override;
  TreeVersionPtr current_version() const override {
    return current_.Snapshot();
  }
  uint64_t version_stamp() const override { return current_.stamp(); }
  Status CheckInvariants(bool quiescent) const override;

 private:
  uint64_t MaxBytesForLevel(int level) const;
  // Debt a compaction of `level` would retire: L0 excess files (in
  // target_file_size units), L1+ bytes over the level limit.  0 when the
  // level is within shape.
  uint64_t LevelDebtBytes(const TreeVersion& version, int level) const;
  // Compactable level whose input+output levels are not in `busy`; -1 if
  // none qualifies.  Greedy mode (options.greedy_compaction) picks the
  // level owing the most debt bytes; classic mode the best fullness ratio.
  int PickCompactionLevel(const std::set<int>& busy) const;
  uint64_t PendingCompactionDebt() const;

  // I/O steps; called with the DB mutex held, unlock around file writes.
  Status FlushImm();
  Status CompactLevel(int level);

  // One key-range shard of a partitioned compaction: merges all of
  // `inputs0` with `inputs1_group` over the user-key span
  // [*start, *stop) — null bounds mean open-ended — cutting outputs at
  // target_file_size.  Runs on pool helpers; appends to *outputs and the
  // byte counters only (the caller owns the VersionEdit).  Mutex NOT held.
  Status CompactSubrange(const std::vector<NodePtr>& inputs0,
                         const std::vector<NodePtr>& inputs1_group,
                         const std::string* start, const std::string* stop,
                         SequenceNumber smallest_snapshot, bool bottommost,
                         std::vector<NodePtr>* outputs,
                         uint64_t* written_bytes, uint64_t* meta_bytes);

  // Mutex held: apply removed/added to the current version and publish.
  void ApplyToVersion(const std::vector<NodePtr>& removed,
                      const std::vector<NodePtr>& added, int add_level);

  std::vector<NodePtr> OverlappingInputs(const TreeVersion& version, int level,
                                         const Slice& lo_user,
                                         const Slice& hi_user) const;
  bool RangeCovered(const NodePtr& node, const Slice& user_key) const;
  NodeEdit ToEdit(const NodeMeta& node, int level) const;

  DBImpl* db_;
  // Stores happen at open time or under the DB mutex (ApplyToVersion) —
  // the serialization PublishedPtr requires.  Reads take an epoch guard.
  PublishedPtr<const TreeVersion> current_;
  std::set<int> busy_levels_;       // input+output levels of running jobs
  bool imm_flush_running_ = false;
  std::vector<std::string> compact_pointer_;  // round-robin cursor per level
};

}  // namespace iamdb
