#include "core/leveled/leveled_engine.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "core/compaction_stream.h"
#include "core/db_impl.h"
#include "core/filename.h"
#include "core/level_iters.h"
#include "table/merging_iterator.h"
#include "util/rate_limiter.h"
#include "util/task_group.h"

namespace iamdb {

namespace {

// Sort orders: L0 by age (node_id), deeper levels by key range.
void SortLevel(std::vector<NodePtr>* nodes, int level) {
  if (level == 0) {
    std::sort(nodes->begin(), nodes->end(),
              [](const NodePtr& a, const NodePtr& b) {
                return a->node_id < b->node_id;
              });
  } else {
    std::sort(nodes->begin(), nodes->end(),
              [](const NodePtr& a, const NodePtr& b) {
                return a->range_lo < b->range_lo;
              });
  }
}

NodePtr NodeFromEdit(const NodeEdit& e, Env* env, const std::string& dbname) {
  auto node = std::make_shared<NodeMeta>();
  node->node_id = e.node_id;
  node->file_number = e.file_number;
  node->meta_end = e.meta_end;
  node->data_bytes = e.data_bytes;
  node->num_entries = e.num_entries;
  node->seq_count = e.seq_count;
  node->range_lo = e.range_lo;
  node->range_hi = e.range_hi;
  node->smallest_ikey = e.smallest_ikey;
  node->largest_ikey = e.largest_ikey;
  if (e.file_number != 0) {
    node->lifetime = std::make_shared<FileLifetime>(
        env, TableFileName(dbname, e.file_number));
  }
  return node;
}

}  // namespace

LeveledEngine::LeveledEngine(DBImpl* db)
    : db_(db), compact_pointer_(kNumLevels) {
  current_.Store(std::make_shared<const TreeVersion>(
      std::vector<std::vector<NodePtr>>(kNumLevels)));
}

Status LeveledEngine::Recover(const RecoveredState& state) {
  std::vector<std::vector<NodePtr>> levels(kNumLevels);
  for (int level = 0; level < static_cast<int>(state.nodes.size()); level++) {
    if (level >= kNumLevels) {
      return Status::Corruption("leveled manifest has too many levels");
    }
    for (const NodeEdit& e : state.nodes[level]) {
      levels[level].push_back(NodeFromEdit(e, db_->env(), db_->dbname()));
    }
    SortLevel(&levels[level], level);
  }
  current_.Store(std::make_shared<const TreeVersion>(std::move(levels)));
  return Status::OK();
}

uint64_t LeveledEngine::MaxBytesForLevel(int level) const {
  const LeveledOptions& opts = db_->options().leveled;
  double bytes = static_cast<double>(opts.max_bytes_level1);
  for (int i = 1; i < level; i++) bytes *= opts.level_multiplier;
  return static_cast<uint64_t>(bytes);
}

uint64_t LeveledEngine::LevelDebtBytes(const TreeVersion& version,
                                       int level) const {
  const LeveledOptions& opts = db_->options().leveled;
  if (level == 0) {
    size_t files = version.level(0).size();
    if (files < static_cast<size_t>(opts.l0_compaction_trigger)) return 0;
    // L0 files overlap, so bytes-over-limit does not apply; price the
    // excess (inclusive of the triggering file) in output-file units.
    return (files - opts.l0_compaction_trigger + 1) * opts.target_file_size;
  }
  uint64_t bytes = version.LevelBytes(level);
  uint64_t limit = MaxBytesForLevel(level);
  return bytes > limit ? bytes - limit : 0;
}

int LeveledEngine::PickCompactionLevel(const std::set<int>& busy) const {
  TreeVersionPtr version = current_version();
  const LeveledOptions& opts = db_->options().leveled;
  if (db_->options().greedy_compaction) {
    // Greedy debt scheduling: take the level owing the most bytes, not the
    // first or best-ratio one.  A level is eligible exactly when its debt
    // is positive, so the two modes agree on *whether* to compact and
    // differ only in pick order.  Ties break toward L0 — its buildup is
    // what stalls the write path.
    uint64_t best_debt = 0;
    int best_level = -1;
    for (int level = 0; level < kNumLevels - 1; level++) {
      if (busy.count(level) || busy.count(level + 1)) continue;
      uint64_t debt = LevelDebtBytes(*version, level);
      if (debt > best_debt) {
        best_debt = debt;
        best_level = level;
      }
    }
    return best_level;
  }
  double best_score = 1.0;
  int best_level = -1;
  // L0 score: file count.
  if (busy.count(0) == 0 && busy.count(1) == 0) {
    double score = version->level(0).size() /
                   static_cast<double>(opts.l0_compaction_trigger);
    if (score >= best_score) {
      best_score = score;
      best_level = 0;
    }
  }
  for (int level = 1; level < kNumLevels - 1; level++) {
    if (busy.count(level) || busy.count(level + 1)) continue;
    double score = static_cast<double>(version->LevelBytes(level)) /
                   MaxBytesForLevel(level);
    if (score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  return best_level;
}

uint64_t LeveledEngine::PendingCompactionDebt() const {
  TreeVersionPtr version = current_version();
  uint64_t debt = 0;
  for (int level = 1; level < kNumLevels; level++) {
    uint64_t bytes = version->LevelBytes(level);
    uint64_t limit = MaxBytesForLevel(level);
    if (bytes > limit) debt += bytes - limit;
  }
  return debt;
}

bool LeveledEngine::NeedsCompaction() const {
  return PickCompactionLevel(busy_levels_) >= 0;
}

int LeveledEngine::RunnableCompactions(int max) const {
  if (max <= 0) return 0;
  // Simulate the scheduler: each pick occupies its input and output
  // levels, so concurrent compactions operate on disjoint level pairs.
  std::set<int> busy = busy_levels_;
  int count = 0;
  while (count < max) {
    int level = PickCompactionLevel(busy);
    if (level < 0) break;
    busy.insert(level);
    busy.insert(level + 1);
    count++;
  }
  return count;
}

TreeEngine::WritePressure LeveledEngine::GetWritePressure() const {
  const LeveledOptions& opts = db_->options().leveled;
  TreeVersionPtr version = current_version();
  size_t l0_files = version->level(0).size();
  if (l0_files >= static_cast<size_t>(opts.l0_stop_trigger)) {
    return WritePressure::kStop;
  }
  if (opts.strict_level_limits) {
    uint64_t debt = PendingCompactionDebt();
    if (debt >= opts.hard_pending_bytes) return WritePressure::kStop;
    if (debt >= opts.soft_pending_bytes) return WritePressure::kSlowdown;
  }
  if (l0_files >= static_cast<size_t>(opts.l0_slowdown_trigger)) {
    return WritePressure::kSlowdown;
  }
  return WritePressure::kNone;
}

Status LeveledEngine::BackgroundWork(WorkLane lane, bool* did_work) {
  *did_work = false;
  if (lane == WorkLane::kFlush) {
    if (db_->imm() == nullptr || imm_flush_running_) return Status::OK();
    RateLimiter::ScopedPriority prio(RateLimiter::IoPriority::kHigh);
    imm_flush_running_ = true;
    Status s = FlushImm();
    imm_flush_running_ = false;
    *did_work = true;
    return s;
  }
  int level = PickCompactionLevel(busy_levels_);
  if (level < 0) return Status::OK();
  *did_work = true;
  RateLimiter::ScopedPriority prio(RateLimiter::IoPriority::kLow);
  busy_levels_.insert(level);
  busy_levels_.insert(level + 1);
  Status s = CompactLevel(level);
  busy_levels_.erase(level);
  busy_levels_.erase(level + 1);
  return s;
}

NodeEdit LeveledEngine::ToEdit(const NodeMeta& node, int level) const {
  NodeEdit e;
  e.level = level;
  e.node_id = node.node_id;
  e.file_number = node.file_number;
  e.meta_end = node.meta_end;
  e.data_bytes = node.data_bytes;
  e.num_entries = node.num_entries;
  e.seq_count = node.seq_count;
  e.range_lo = node.range_lo;
  e.range_hi = node.range_hi;
  e.smallest_ikey = node.smallest_ikey;
  e.largest_ikey = node.largest_ikey;
  return e;
}

void LeveledEngine::ApplyToVersion(const std::vector<NodePtr>& removed,
                                   const std::vector<NodePtr>& added,
                                   int add_level) {
  TreeVersionPtr base = current_version();
  std::vector<std::vector<NodePtr>> levels = base->levels();
  for (const auto& victim : removed) {
    for (auto& level_nodes : levels) {
      level_nodes.erase(
          std::remove_if(level_nodes.begin(), level_nodes.end(),
                         [&](const NodePtr& n) {
                           return n->node_id == victim->node_id;
                         }),
          level_nodes.end());
    }
  }
  for (const auto& node : added) {
    levels[add_level].push_back(node);
  }
  SortLevel(&levels[add_level], add_level);
  current_.Store(std::make_shared<const TreeVersion>(std::move(levels)));
}

Status LeveledEngine::FlushImm() {
  // Mutex held on entry.
  MemTable* imm = db_->imm();
  assert(imm != nullptr);
  imm->Ref();
  SequenceNumber smallest_snapshot = db_->SmallestSnapshot();
  uint64_t file_number = db_->NewFileNumber();
  uint64_t node_id = db_->NewNodeId();

  db_->mutex().unlock();
  // Build one L0 table from the whole memtable.
  MSTableWriter writer(db_->env(), db_->options().table,
                       TableFileName(db_->dbname(), file_number));
  Status s = writer.Open();
  MSTableBuildResult result;
  if (s.ok()) {
    CompactionStream stream(imm->NewIterator(), smallest_snapshot,
                            /*bottommost=*/false);
    while (stream.Valid() && s.ok()) {
      s = writer.Add(stream.key(), stream.value());
      stream.Next();
    }
    if (s.ok()) s = stream.status();
    if (s.ok()) {
      s = writer.Finish(/*sync=*/true, &result);
    } else {
      writer.Abandon();
    }
  }
  imm->Unref();
  db_->mutex().lock();
  if (!s.ok()) return s;

  auto node = std::make_shared<NodeMeta>();
  node->node_id = node_id;
  node->file_number = file_number;
  node->meta_end = result.meta_end;
  node->data_bytes = result.data_bytes;
  node->num_entries = result.num_entries;
  node->seq_count = result.seq_count;
  node->smallest_ikey = result.smallest;
  node->largest_ikey = result.largest;
  node->range_lo = ExtractUserKey(result.smallest).ToString();
  node->range_hi = ExtractUserKey(result.largest).ToString();
  node->lifetime = std::make_shared<FileLifetime>(
      db_->env(), TableFileName(db_->dbname(), file_number));

  db_->amp_stats_mutable()->RecordLevelWrite(0, WriteReason::kFlush,
                                             result.new_data_bytes);
  db_->amp_stats_mutable()->RecordLevelWrite(0, WriteReason::kMetadata,
                                             result.meta_bytes);

  VersionEdit edit;
  edit.AddNode(ToEdit(*node, 0));
  edit.SetLogNumber(db_->CurrentLogNumber());
  s = db_->LogEdit(&edit);
  if (!s.ok()) return s;
  ApplyToVersion({}, {node}, 0);
  db_->ImmFlushed();
  return Status::OK();
}

std::vector<NodePtr> LeveledEngine::OverlappingInputs(
    const TreeVersion& version, int level, const Slice& lo_user,
    const Slice& hi_user) const {
  std::vector<NodePtr> result;
  for (const auto& node : version.level(level)) {
    if (Slice(node->range_hi).compare(lo_user) < 0) continue;
    if (Slice(node->range_lo).compare(hi_user) > 0) continue;
    result.push_back(node);
  }
  return result;
}

Status LeveledEngine::CompactSubrange(
    const std::vector<NodePtr>& inputs0,
    const std::vector<NodePtr>& inputs1_group, const std::string* start,
    const std::string* stop, SequenceNumber smallest_snapshot, bool bottommost,
    std::vector<NodePtr>* outputs, uint64_t* written_bytes,
    uint64_t* meta_bytes) {
  const Options& options = db_->options();

  Status s;
  std::vector<Iterator*> input_iters;
  ReadOptions read_options;
  read_options.fill_cache = false;
  read_options.rate_limiter = db_->rate_limiter();
  for (const auto* inputs : {&inputs0, &inputs1_group}) {
    for (const auto& node : *inputs) {
      std::shared_ptr<MSTableReader> reader;
      s = node->OpenReader(db_->env(), options.table, db_->icmp(),
                           db_->dbname(), &reader);
      if (!s.ok()) break;
      reader->AddSequenceIterators(read_options, &input_iters);
    }
    if (!s.ok()) break;
  }
  if (!s.ok()) {
    for (Iterator* iter : input_iters) delete iter;
    return s;
  }

  Iterator* merged = NewMergingIterator(db_->icmp(), input_iters.data(),
                                        static_cast<int>(input_iters.size()));
  std::unique_ptr<CompactionStream> stream;
  if (start != nullptr) {
    stream = std::make_unique<CompactionStream>(merged, smallest_snapshot,
                                                bottommost, Slice(*start));
  } else {
    stream = std::make_unique<CompactionStream>(merged, smallest_snapshot,
                                                bottommost);
  }

  std::unique_ptr<MSTableWriter> writer;
  uint64_t out_file_number = 0, out_node_id = 0;
  MSTableBuildResult result;
  auto finish_output = [&]() -> Status {
    if (writer == nullptr) return Status::OK();
    Status fs = writer->Finish(/*sync=*/true, &result);
    if (!fs.ok()) return fs;
    auto node = std::make_shared<NodeMeta>();
    node->node_id = out_node_id;
    node->file_number = out_file_number;
    node->meta_end = result.meta_end;
    node->data_bytes = result.data_bytes;
    node->num_entries = result.num_entries;
    node->seq_count = result.seq_count;
    node->smallest_ikey = result.smallest;
    node->largest_ikey = result.largest;
    node->range_lo = ExtractUserKey(result.smallest).ToString();
    node->range_hi = ExtractUserKey(result.largest).ToString();
    node->lifetime = std::make_shared<FileLifetime>(
        db_->env(), TableFileName(db_->dbname(), out_file_number));
    outputs->push_back(std::move(node));
    *written_bytes += result.data_bytes;
    *meta_bytes += result.meta_bytes;
    writer.reset();
    return Status::OK();
  };

  std::string last_user_key;
  while (stream->Valid() && s.ok()) {
    Slice user_key = ExtractUserKey(stream->key());
    // The boundary key itself belongs to the next shard (its stream seeks
    // to the key's newest version, so no record is emitted twice).
    if (stop != nullptr && user_key.compare(Slice(*stop)) >= 0) break;
    // Cut outputs only at user-key boundaries: all versions of a key
    // stay in one file, keeping level ranges user-key-disjoint (the
    // invariant the point-read binary search relies on).
    if (writer != nullptr &&
        writer->EstimatedDataBytes() >= options.leveled.target_file_size &&
        user_key != Slice(last_user_key)) {
      s = finish_output();
      if (!s.ok()) break;
    }
    if (writer == nullptr) {
      {
        std::lock_guard<std::mutex> l(db_->mutex());
        out_file_number = db_->NewFileNumber();
        out_node_id = db_->NewNodeId();
      }
      writer = std::make_unique<MSTableWriter>(
          db_->env(), options.table,
          TableFileName(db_->dbname(), out_file_number));
      s = writer->Open();
      if (!s.ok()) break;
    }
    s = writer->Add(stream->key(), stream->value());
    if (!s.ok()) break;
    last_user_key.assign(user_key.data(), user_key.size());
    stream->Next();
  }
  if (s.ok()) s = stream->status();
  if (s.ok()) {
    s = finish_output();
  } else if (writer != nullptr) {
    writer->Abandon();
  }
  return s;
}

Status LeveledEngine::CompactLevel(int level) {
  // Mutex held on entry.
  TreeVersionPtr version = current_version();
  const Options& options = db_->options();

  std::vector<NodePtr> inputs0;
  if (level == 0) {
    // Start from the oldest L0 file and expand by range overlap to a
    // fixpoint (newer overlapping files must join or their versions would
    // be buried below older ones).  Non-overlapping files — sequential
    // loads — stay single-input and become trivial moves.
    inputs0.push_back(version->level(0).front());
    std::string lo = inputs0[0]->range_lo, hi = inputs0[0]->range_hi;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const auto& node : version->level(0)) {
        bool already = false;
        for (const auto& input : inputs0) {
          if (input->node_id == node->node_id) {
            already = true;
            break;
          }
        }
        if (already) continue;
        if (node->range_hi < lo || node->range_lo > hi) continue;
        inputs0.push_back(node);
        lo = std::min(lo, node->range_lo);
        hi = std::max(hi, node->range_hi);
        grew = true;
      }
    }
  } else {
    const auto& nodes = version->level(level);
    if (nodes.empty()) return Status::OK();
    NodePtr picked;
    if (options.greedy_compaction) {
      // Greedy: the node with the cheapest write cost per debt byte
      // retired — most of the merge's output should be this node's own
      // bytes, not rewritten next-level overlap.
      double best_ratio = -1.0;
      for (const auto& node : nodes) {
        uint64_t overlap = 0;
        for (const auto& below : OverlappingInputs(
                 *version, level + 1, node->range_lo, node->range_hi)) {
          overlap += below->data_bytes;
        }
        double ratio = static_cast<double>(node->data_bytes) /
                       static_cast<double>(node->data_bytes + overlap);
        if (ratio > best_ratio) {
          best_ratio = ratio;
          picked = node;
        }
      }
    } else {
      // Round-robin: first node with range_lo > compact_pointer_[level].
      for (const auto& node : nodes) {
        if (compact_pointer_[level].empty() ||
            node->range_lo > compact_pointer_[level]) {
          picked = node;
          break;
        }
      }
      if (picked == nullptr) picked = nodes.front();  // wrap around
      compact_pointer_[level] = picked->range_lo;
    }
    inputs0.push_back(picked);
  }
  if (inputs0.empty()) return Status::OK();

  std::string lo = inputs0[0]->range_lo, hi = inputs0[0]->range_hi;
  for (const auto& node : inputs0) {
    lo = std::min(lo, node->range_lo);
    hi = std::max(hi, node->range_hi);
  }
  std::vector<NodePtr> inputs1 =
      OverlappingInputs(*version, level + 1, lo, hi);

  // Trivial move: single input, nothing to merge with.
  if (inputs1.empty() && inputs0.size() == 1) {
    NodePtr moved = inputs0[0];
    VersionEdit edit;
    edit.RemoveNode(level, moved->node_id);
    edit.AddNode(ToEdit(*moved, level + 1));
    Status s = db_->LogEdit(&edit);
    if (!s.ok()) return s;
    ApplyToVersion({moved}, {moved}, level + 1);
    db_->amp_stats_mutable()->RecordLevelWrite(level + 1, WriteReason::kMove,
                                               0);
    return Status::OK();
  }

  SequenceNumber smallest_snapshot = db_->SmallestSnapshot();
  // Bottommost if every deeper level has no overlap with the output range.
  bool bottommost = true;
  for (int deeper = level + 2; deeper < kNumLevels; deeper++) {
    if (!OverlappingInputs(*version, deeper, lo, hi).empty()) {
      bottommost = false;
      break;
    }
  }

  db_->mutex().unlock();

  // Partitioned subcompaction: with several next-level inputs the merge
  // splits into contiguous key-range shards along inputs1 node boundaries.
  // Each shard merges ALL of inputs0 (bounded by the shard's range) with
  // its own slice of inputs1 — inputs1 nodes are user-key-disjoint, so
  // each belongs to exactly one shard and shards write disjoint outputs.
  int fan = options.max_subcompactions > 0 ? options.max_subcompactions
                                           : options.background_threads;
  fan = std::min<int>(fan, static_cast<int>(inputs1.size()));

  Status s;
  std::vector<NodePtr> outputs;
  uint64_t written_bytes = 0, meta_bytes = 0;

  if (fan <= 1) {
    s = CompactSubrange(inputs0, inputs1, nullptr, nullptr, smallest_snapshot,
                        bottommost, &outputs, &written_bytes, &meta_bytes);
  } else {
    // Contiguous groups of inputs1 balanced by data bytes.
    uint64_t total = 0;
    for (const auto& node : inputs1) total += node->data_bytes;
    std::vector<std::vector<NodePtr>> groups;
    groups.emplace_back();
    uint64_t per_group = total / fan + 1;
    uint64_t acc = 0;
    for (const auto& node : inputs1) {
      if (acc >= per_group && static_cast<int>(groups.size()) < fan) {
        groups.emplace_back();
        acc = 0;
      }
      groups.back().push_back(node);
      acc += node->data_bytes;
    }
    const size_t num_groups = groups.size();
    // Shard boundaries: each non-first group starts at its first node's
    // range_lo.  inputs0 records below the first boundary go to shard 0,
    // and each record lands in exactly one shard.
    std::vector<std::string> starts(num_groups);
    for (size_t g = 1; g < num_groups; g++) {
      starts[g] = groups[g].front()->range_lo;
    }
    std::vector<std::vector<NodePtr>> shard_outputs(num_groups);
    std::vector<uint64_t> shard_written(num_groups, 0);
    std::vector<uint64_t> shard_meta(num_groups, 0);

    std::vector<std::function<Status()>> tasks;
    tasks.reserve(num_groups);
    for (size_t g = 0; g < num_groups; g++) {
      tasks.push_back([&, g]() -> Status {
        // Pool helpers carry no priority scope of their own.
        RateLimiter::ScopedPriority p(RateLimiter::IoPriority::kLow);
        const std::string* start = g == 0 ? nullptr : &starts[g];
        const std::string* stop = g + 1 < num_groups ? &starts[g + 1] : nullptr;
        return CompactSubrange(inputs0, groups[g], start, stop,
                               smallest_snapshot, bottommost,
                               &shard_outputs[g], &shard_written[g],
                               &shard_meta[g]);
      });
    }
    db_->RecordSubcompactions(tasks.size());
    s = TaskGroup::RunAll(db_->pool(), ThreadPool::Lane::kLow,
                          std::move(tasks));
    // Concatenate in shard order (shards cover increasing disjoint ranges,
    // so this is also range order); collect even on failure so every
    // written file gets obsoleted below.
    for (size_t g = 0; g < num_groups; g++) {
      for (auto& node : shard_outputs[g]) outputs.push_back(std::move(node));
      written_bytes += shard_written[g];
      meta_bytes += shard_meta[g];
    }
  }

  db_->mutex().lock();
  if (!s.ok()) {
    for (const auto& node : outputs) {
      if (node->lifetime) node->lifetime->MarkObsolete();
    }
    return s;
  }

  db_->amp_stats_mutable()->RecordLevelWrite(level + 1, WriteReason::kMerge,
                                             written_bytes);
  db_->amp_stats_mutable()->RecordLevelWrite(level + 1, WriteReason::kMetadata,
                                             meta_bytes);

  VersionEdit edit;
  std::vector<NodePtr> removed;
  for (const auto& node : inputs0) {
    edit.RemoveNode(level, node->node_id);
    removed.push_back(node);
  }
  for (const auto& node : inputs1) {
    edit.RemoveNode(level + 1, node->node_id);
    removed.push_back(node);
  }
  for (const auto& node : outputs) {
    edit.AddNode(ToEdit(*node, level + 1));
  }
  s = db_->LogEdit(&edit);
  if (!s.ok()) return s;
  ApplyToVersion(removed, outputs, level + 1);
  // Physical files die when the last version/iterator referencing them
  // lets go.
  for (const auto& node : removed) {
    if (node->lifetime) node->lifetime->MarkObsolete();
  }
  return Status::OK();
}

Status LeveledEngine::Get(const ReadOptions& options, const LookupKey& key,
                          std::string* value) {
  TreeVersionPtr version = current_version();
  Slice user_key = key.user_key();
  Slice ikey = key.internal_key();

  auto check_node = [&](const NodePtr& node, bool* done,
                        Status* result) -> bool {
    if (node->empty()) return false;
    std::shared_ptr<MSTableReader> reader;
    Status s = node->OpenReader(db_->env(), db_->options().table, db_->icmp(),
                                db_->dbname(), &reader);
    if (!s.ok()) {
      *result = s;
      *done = true;
      return true;
    }
    MSTableReader::GetState state;
    s = reader->Get(options, ikey, value, &state);
    if (!s.ok()) {
      *result = s;
      *done = true;
      return true;
    }
    switch (state) {
      case MSTableReader::GetState::kFound:
        *result = Status::OK();
        *done = true;
        return true;
      case MSTableReader::GetState::kDeleted:
        *result = Status::NotFound(Slice());
        *done = true;
        return true;
      default:
        return false;
    }
  };

  bool done = false;
  Status result = Status::NotFound(Slice());

  // L0: newest file first.
  const auto& l0 = version->level(0);
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    const NodePtr& node = *it;
    if (!RangeCovered(node, user_key)) continue;
    if (check_node(node, &done, &result)) return result;
  }

  // Deeper levels: at most one node covers the key.
  for (int level = 1; level < version->num_levels(); level++) {
    const auto& nodes = version->level(level);
    // Binary search: first node with range_hi >= user_key.
    size_t lo = 0, hi_idx = nodes.size();
    while (lo < hi_idx) {
      size_t mid = (lo + hi_idx) / 2;
      if (Slice(nodes[mid]->range_hi).compare(user_key) < 0) {
        lo = mid + 1;
      } else {
        hi_idx = mid;
      }
    }
    if (lo < nodes.size() && RangeCovered(nodes[lo], user_key)) {
      if (check_node(nodes[lo], &done, &result)) return result;
    }
  }
  return Status::NotFound(Slice());
}

void LeveledEngine::MultiGet(const ReadOptions& options,
                             MultiGetRequest* const* reqs, size_t count) {
  TreeVersionPtr version = current_version();
  std::vector<MultiGetRequest*> pending(reqs, reqs + count);

  // Probes `node` with `subset` (pending keys its range covers).  Reader
  // open errors become per-key statuses, mirroring Get's error return.
  auto check_node = [&](const NodePtr& node,
                        std::vector<MultiGetRequest*>& subset) {
    if (subset.empty()) return;
    std::shared_ptr<MSTableReader> reader;
    Status s = node->OpenReader(db_->env(), db_->options().table, db_->icmp(),
                                db_->dbname(), &reader);
    if (!s.ok()) {
      for (MultiGetRequest* r : subset) {
        if (r->status.ok()) r->status = s;
      }
      return;
    }
    reader->MultiGet(options, subset.data(), subset.size());
  };

  auto drop_resolved = [&pending]() {
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [](const MultiGetRequest* r) {
                                   return r->resolved();
                                 }),
                  pending.end());
  };

  // L0: newest file first, each probed with the pending keys it covers —
  // the same per-key file visit order as Get.
  const auto& l0 = version->level(0);
  for (auto it = l0.rbegin(); it != l0.rend() && !pending.empty(); ++it) {
    const NodePtr& node = *it;
    if (node->empty()) continue;
    std::vector<MultiGetRequest*> subset;
    for (MultiGetRequest* r : pending) {
      if (RangeCovered(node, r->lkey->user_key())) subset.push_back(r);
    }
    check_node(node, subset);
    drop_resolved();
  }

  // Deeper levels: disjoint sorted ranges, so a run of consecutive sorted
  // keys maps to one covering node and shares its bloom/index/blocks.
  for (int level = 1; level < version->num_levels() && !pending.empty();
       level++) {
    const auto& nodes = version->level(level);
    if (nodes.empty()) continue;
    size_t i = 0;
    while (i < pending.size()) {
      Slice user_key = pending[i]->lkey->user_key();
      // Binary search: first node with range_hi >= user_key.
      size_t lo = 0, hi_idx = nodes.size();
      while (lo < hi_idx) {
        size_t mid = (lo + hi_idx) / 2;
        if (Slice(nodes[mid]->range_hi).compare(user_key) < 0) {
          lo = mid + 1;
        } else {
          hi_idx = mid;
        }
      }
      if (lo >= nodes.size()) break;  // later keys are larger still
      const NodePtr& node = nodes[lo];
      if (!RangeCovered(node, user_key) || node->empty()) {
        ++i;
        continue;
      }
      // Keys after i that fall at or below this node's range_hi land in the
      // same node (they are >= user_key >= range_lo).
      std::vector<MultiGetRequest*> subset;
      size_t j = i;
      for (; j < pending.size(); ++j) {
        if (Slice(node->range_hi).compare(pending[j]->lkey->user_key()) < 0) {
          break;
        }
        subset.push_back(pending[j]);
      }
      check_node(node, subset);
      i = j;
    }
    drop_resolved();
  }
}

bool LeveledEngine::RangeCovered(const NodePtr& node,
                                 const Slice& user_key) const {
  return Slice(node->range_lo).compare(user_key) <= 0 &&
         Slice(node->range_hi).compare(user_key) >= 0;
}

void LeveledEngine::AddIterators(const ReadOptions& options,
                                 std::vector<Iterator*>* iters) {
  TreeVersionPtr version = current_version();

  // L0: one iterator per file (overlapping ranges).
  for (const auto& node : version->level(0)) {
    std::shared_ptr<MSTableReader> reader;
    Status s = node->OpenReader(db_->env(), db_->options().table, db_->icmp(),
                                db_->dbname(), &reader);
    if (!s.ok()) {
      iters->push_back(NewErrorIterator(s));
      continue;
    }
    Iterator* iter = reader->NewIterator(options);
    iter->RegisterCleanup([version, reader]() mutable {
      reader.reset();
    });
    iters->push_back(iter);
  }

  // L1+: concatenated node iterators per level.
  for (int level = 1; level < version->num_levels(); level++) {
    if (version->level(level).empty()) continue;
    auto nodes =
        std::make_shared<const std::vector<NodePtr>>(version->level(level));
    iters->push_back(NewLevelIterator(db_, version, nodes, options));
  }
}

uint64_t LeveledEngine::CompactionDebtBytes() const {
  TreeVersionPtr version = current_version();
  const LeveledOptions& opts = db_->options().leveled;
  uint64_t debt = PendingCompactionDebt();
  size_t l0 = version->level(0).size();
  if (l0 > static_cast<size_t>(opts.l0_compaction_trigger)) {
    debt += (l0 - opts.l0_compaction_trigger) * opts.target_file_size;
  }
  return debt;
}

void LeveledEngine::FillStats(DbStats* stats) const {
  stats->mixed_level = 0;
  stats->mixed_level_k = 0;
  stats->pending_debt_bytes = CompactionDebtBytes();
}

Status LeveledEngine::CheckInvariants(bool quiescent) const {
  TreeVersionPtr version = current_version();
  for (int level = 1; level < version->num_levels(); level++) {
    const auto& nodes = version->level(level);
    for (size_t i = 1; i < nodes.size(); i++) {
      if (nodes[i - 1]->range_hi >= nodes[i]->range_lo) {
        return Status::Corruption("leveled L1+ ranges overlap");
      }
    }
  }
  if (quiescent) {
    // After settling, L0 must be below the compaction trigger.
    if (version->level(0).size() >=
        static_cast<size_t>(db_->options().leveled.l0_compaction_trigger)) {
      return Status::Corruption("L0 still over trigger at quiescence");
    }
  }
  return Status::OK();
}

}  // namespace iamdb
