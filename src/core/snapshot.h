// Snapshots pin a sequence number; reads through a snapshot see the newest
// version of each key at or below it.  Kept in an intrusive doubly-linked
// list so the oldest live snapshot (the GC horizon for compactions) is O(1).
//
// SnapshotList is not internally synchronized: DBImpl guards it with its
// dedicated snapshots_mu_ (NOT the write mutex), so snapshot churn never
// contends with writers — see docs/CONCURRENCY.md.
#pragma once

#include <cassert>

#include "core/dbformat.h"

namespace iamdb {

// Opaque public handle.
class Snapshot {
 protected:
  virtual ~Snapshot() = default;
  friend class SnapshotImpl;
  friend class SnapshotList;
};

class SnapshotImpl final : public Snapshot {
 public:
  explicit SnapshotImpl(SequenceNumber sequence) : sequence_(sequence) {}
  ~SnapshotImpl() override = default;

  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class SnapshotList;

  const SequenceNumber sequence_;
  SnapshotImpl* prev_ = nullptr;
  SnapshotImpl* next_ = nullptr;
};

class SnapshotList {
 public:
  SnapshotList() : head_(0) {
    head_.prev_ = &head_;
    head_.next_ = &head_;
  }

  bool empty() const { return head_.next_ == &head_; }
  SnapshotImpl* oldest() const {
    assert(!empty());
    return head_.next_;
  }
  SnapshotImpl* newest() const {
    assert(!empty());
    return head_.prev_;
  }

  SnapshotImpl* New(SequenceNumber sequence) {
    assert(empty() || newest()->sequence_ <= sequence);
    SnapshotImpl* snapshot = new SnapshotImpl(sequence);
    snapshot->next_ = &head_;
    snapshot->prev_ = head_.prev_;
    snapshot->prev_->next_ = snapshot;
    snapshot->next_->prev_ = snapshot;
    return snapshot;
  }

  void Delete(const SnapshotImpl* snapshot) {
    snapshot->prev_->next_ = snapshot->next_;
    snapshot->next_->prev_ = snapshot->prev_;
    delete snapshot;
  }

 private:
  SnapshotImpl head_;
};

}  // namespace iamdb
