// Public API of IamDB — a persistent, crash-recovering, MVCC key-value
// store whose on-disk organisation is selected by Options::engine:
// a leveled LSM (the paper's LevelDB/RocksDB baseline), the LSA-tree, or
// the IAM-tree.
//
//   iamdb::Options options;
//   options.env = iamdb::Env::Default();
//   options.engine = iamdb::EngineType::kAmt;      // IAM by default
//   std::unique_ptr<iamdb::DB> db;
//   auto s = iamdb::DB::Open(options, "/tmp/mydb", &db);
//   db->Put({}, "key", "value");
//   std::string v;
//   db->Get({}, "key", &v);
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/options.h"
#include "memtable/write_batch.h"
#include "stats/amp_stats.h"
#include "stats/io_stats.h"
#include "table/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace iamdb {

class Snapshot;

// Point-in-time statistics a benchmark can sample.
struct DbStats {
  double total_write_amp = 0;           // excludes WAL (paper convention)
  std::vector<double> level_write_amp;  // [0] = first on-disk level
  std::vector<uint64_t> level_bytes;
  std::vector<int> level_node_counts;
  uint64_t user_bytes = 0;
  uint64_t space_used_bytes = 0;  // live table file footprint
  uint64_t cache_usage = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  int mixed_level = 0;  // AMT engines: current m (0 = none/unknown)
  int mixed_level_k = 0;
  // Estimated bytes of outstanding compaction work (engine-specific).
  uint64_t pending_debt_bytes = 0;
  uint64_t stall_micros = 0;
  IoStatsSnapshot io;
  // Two-lane background scheduler: tasks waiting in each pool lane.
  uint64_t flush_queue_depth = 0;
  uint64_t compact_queue_depth = 0;
  // Key-range shards fanned out by partitioned subcompactions (cumulative).
  uint64_t subcompactions_run = 0;
  // Total time background I/O spent blocked in the rate limiter, SUMMED
  // PER THREAD — with several threads blocked concurrently this exceeds
  // wall-clock run time (cumulative; 0 when pacing is off).
  uint64_t rate_limiter_wait_micros = 0;
  // Wall-clock time during which at least one background thread sat
  // blocked in the limiter (overlapping waits counted once) — "how long
  // was pacing the bottleneck".  Wire tag 32.
  uint64_t rate_limiter_paced_wall_micros = 0;
  // Adaptive pacing gauges (wire tags 29-31; 0 when pacing.adaptive is
  // off).  Rates sum across shards — the aggregate is the cluster-wide
  // background I/O budget / ingest estimate.
  uint64_t pacer_rate_bytes_per_sec = 0;
  uint64_t pacer_ingest_bytes_per_sec = 0;
  uint64_t pacer_retunes = 0;
  // Serving-layer reactor counters (wire tags 23-28).  Filled only by the
  // server's INFO path so remote stats consumers see the reactor alongside
  // the engine; always zero in an embedded DB::GetStats().
  uint64_t server_loop_iterations = 0;
  uint64_t server_writev_calls = 0;
  uint64_t server_responses_written = 0;
  uint64_t server_output_buffer_hwm = 0;
  uint64_t server_backpressure_stalls = 0;
  uint64_t server_accept_errors = 0;
  // Per-block compression gauges (wire tags 33-42; all zero with
  // compression off and no compressed tables read).  input/stored bytes
  // compare the uncompressed size of built data blocks against what was
  // written; block counts split per codec, with raw_fallback counting
  // blocks the codec declined or that missed the ratio threshold.
  uint64_t compress_input_bytes = 0;
  uint64_t compress_stored_bytes = 0;
  uint64_t compress_columnar_blocks = 0;
  uint64_t compress_lz_blocks = 0;
  uint64_t compress_raw_fallback_blocks = 0;
  uint64_t decompressed_blocks = 0;
  uint64_t decompress_micros = 0;
  // Compressed-block cache tier (second LruCache; see
  // Options::compressed_cache_capacity).
  uint64_t compressed_cache_usage = 0;
  uint64_t compressed_cache_hits = 0;
  uint64_t compressed_cache_misses = 0;
  // Unified memory arbiter (all zero when memory_budget_bytes == 0).
  // budget = the pooled budget; write/read = the current division;
  // retunes = rebalance passes evaluated; shifts = passes that moved the
  // split.  mixed_level_retunes counts (m,k) changes after open — tree
  // growth or an arbiter re-division moving the tuner's budget.
  uint64_t arbiter_budget_bytes = 0;
  uint64_t arbiter_write_bytes = 0;
  uint64_t arbiter_read_bytes = 0;
  uint64_t arbiter_retunes = 0;
  uint64_t arbiter_shifts = 0;
  uint64_t mixed_level_retunes = 0;
  // Batched MultiGet gauges (wire tags 49-52; all zero until the first
  // MultiGet).  coalesced_reads counts vectored device reads that covered
  // 2+ adjacent blocks; coalesced_blocks the blocks they fetched — so
  // blocks-per-read = coalesced_blocks / coalesced_reads.
  uint64_t multiget_batches = 0;
  uint64_t multiget_keys = 0;
  uint64_t multiget_coalesced_reads = 0;
  uint64_t multiget_coalesced_blocks = 0;
};

// Aggregation across DB instances (ShardedDB sums its shards' stats).
// Counters and byte totals add; per-level vectors pad-and-add; the write
// amps combine weighted by each side's user_bytes (so the result is
// total-bytes-written / total-user-bytes, not an average of ratios);
// mixed_level / mixed_level_k take the max — they are structural
// per-instance values, the per-shard breakdown lives under the
// "iamdb.shard-stats" property.  Every DbStats field must be handled here
// and in the wire codec; tests/db_stats_test.cc fails if either misses a
// field.
DbStats& operator+=(DbStats& lhs, const DbStats& rhs);

class DB {
 public:
  // Opens (creating if allowed) the database at `name`.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  DB() = default;
  virtual ~DB() = default;

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value);
  virtual Status Delete(const WriteOptions& options, const Slice& key);
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  // NotFound if the key is absent (or deleted) at the read point.
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  // Batched point lookup: fills statuses[i]/values[i] for keys[i], each
  // exactly what Get(options, keys[i], &values[i]) would return at the
  // same read point.  All keys are read at ONE snapshot (options.snapshot
  // if set, else the committed state when the batch starts).  DBImpl and
  // ShardedDB override this with a native implementation that acquires the
  // read view once and coalesces table I/O across the batch; the base
  // implementation loops over Get.
  virtual void MultiGet(const ReadOptions& options, size_t count,
                        const Slice* keys, std::string* values,
                        Status* statuses);

  // Bidirectional iterator over user keys (forward range scans are the
  // paper's workloads; reverse iteration is supported too).  Caller
  // deletes the iterator before the DB is closed.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  // Blocks until all pending flushes/compactions are complete (benchmark
  // settling; the paper's "stable performance" measurements).
  virtual Status WaitForQuiescence() = 0;

  // Forces the immutable memtable (if any) plus current memtable contents
  // to be flushed and compactions drained.
  virtual Status FlushAll() = 0;

  virtual DbStats GetStats() = 0;
  virtual const AmpStats& amp_stats() const = 0;

  // Human-readable introspection (LevelDB-style).  Supported properties:
  //   "iamdb.stats"   — amplification summary (per level / per reason)
  //   "iamdb.levels"  — node count, bytes and sequences per level
  //   "iamdb.approximate-memory-usage" — memtable + cache bytes
  // Returns false for unknown properties.
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;

  // Validates the engine's structural invariants (testing hook).  Pass
  // quiescent=true only after WaitForQuiescence.
  virtual Status CheckInvariants(bool quiescent) = 0;

  // ---- sharding surface (ShardedDB overrides; docs/SHARDING.md) ----
  // Hash-partition fan-out of this instance: 1 for a plain DBImpl, N for a
  // ShardedDB.  Shard-scoped SCAN requests on the wire use these so a
  // cluster-aware client can stream one shard at a time and merge
  // client-side.
  virtual int NumShards() const { return 1; }
  // Iterator over just one shard's keys (shard in [0, NumShards())).
  // For an unsharded DB, shard 0 is the whole keyspace.
  virtual Iterator* NewShardIterator(const ReadOptions& options, int shard) {
    if (shard != 0) {
      return NewErrorIterator(Status::InvalidArgument("shard out of range"));
    }
    return NewIterator(options);
  }
};

// Deletes all files of the named database.
Status DestroyDB(const std::string& name, const Options& options);

}  // namespace iamdb
