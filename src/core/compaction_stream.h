// CompactionStream: wraps a merged (internal-key-ordered) input and emits
// only the records that must survive a rewrite:
//  * for each user key, the newest version is always kept;
//  * older versions are kept only while they are the newest visible version
//    for some live snapshot (<= smallest_snapshot rule);
//  * deletion tombstones are additionally dropped when the output is the
//    bottommost data for the key (nothing deeper could be shadowed).
//
// This is the "merges eliminate outdated records" machinery (paper Secs 2,
// 5.3.3).  Appends bypass it entirely — which is exactly why append trees
// carry space amplification.
#pragma once

#include <memory>

#include "core/dbformat.h"
#include "table/iterator.h"

namespace iamdb {

class CompactionStream {
 public:
  // Takes ownership of `input`, which must yield internal keys in
  // increasing order (a MergingIterator output).
  CompactionStream(Iterator* input, SequenceNumber smallest_snapshot,
                   bool bottommost)
      : input_(input),
        smallest_snapshot_(smallest_snapshot),
        bottommost_(bottommost) {
    input_->SeekToFirst();
    Advance();
  }

  // Starts the stream at the first record whose user key is >=
  // `start_user_key` instead of at the beginning.  The seek lands on the
  // NEWEST version of the boundary key (kMaxSequenceNumber sorts first),
  // so the per-key shadowing state begins exactly as a full scan would
  // when reaching that key — subrange outputs concatenate to the full
  // output (partitioned subcompactions rely on this).
  CompactionStream(Iterator* input, SequenceNumber smallest_snapshot,
                   bool bottommost, const Slice& start_user_key)
      : input_(input),
        smallest_snapshot_(smallest_snapshot),
        bottommost_(bottommost) {
    std::string seek_key;
    AppendInternalKey(&seek_key, ParsedInternalKey(start_user_key,
                                                   kMaxSequenceNumber,
                                                   kValueTypeForSeek));
    input_->Seek(Slice(seek_key));
    Advance();
  }

  bool Valid() const { return valid_; }
  Slice key() const { return Slice(current_key_); }
  Slice value() const { return Slice(current_value_); }
  void Next() { Advance(); }
  Status status() const { return input_->status(); }

  uint64_t entries_dropped() const { return dropped_; }

 private:
  void Advance();

  std::unique_ptr<Iterator> input_;
  const SequenceNumber smallest_snapshot_;
  const bool bottommost_;

  bool valid_ = false;
  std::string current_key_;
  std::string current_value_;
  std::string last_user_key_;
  bool has_last_user_key_ = false;
  // Sequence of the last emitted-or-dropped entry <= smallest_snapshot for
  // last_user_key_ (kMaxSequenceNumber when none seen yet).
  SequenceNumber last_sequence_for_key_ = kMaxSequenceNumber;
  uint64_t dropped_ = 0;
};

}  // namespace iamdb
