// Batched point-lookup plumbing shared by DBImpl, the engines and the
// table layer.  DBImpl::MultiGet builds one MultiGetRequest per key, probes
// mem/imm, then hands the still-pending requests — sorted by internal key —
// to TreeEngine::MultiGet.  Each layer resolves what it can and leaves the
// rest pending for the next-older data; a request whose state leaves
// kPending (or whose status turns non-OK) is final and must be skipped by
// everything below.
#pragma once

#include <string>

#include "core/dbformat.h"
#include "util/status.h"

namespace iamdb {

struct MultiGetRequest {
  enum class State { kPending, kFound, kDeleted, kCorrupt };

  // Inputs, set once by DBImpl.  The LookupKey carries the batch's snapshot
  // sequence, so internal-key order over a batch equals user-key order.
  const LookupKey* lkey = nullptr;
  std::string* value = nullptr;

  // Resolution.
  State state = State::kPending;
  Status status;

  bool resolved() const { return state != State::kPending || !status.ok(); }
};

}  // namespace iamdb
