// Internal key format and comparators.  Every record is stored under an
// *internal key*:  user_key | tag(8B)  where tag = (sequence << 8) | type.
// Sequence numbers give MVCC: higher sequence = newer version; snapshots pin
// a sequence and see the newest version at or below it.
#pragma once

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace iamdb {

using SequenceNumber = uint64_t;

// Leaves room for the 8-bit type tag below it.
static constexpr SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};
// When seeking, we want the *newest* entry <= a sequence, and entries for a
// user key sort by decreasing sequence; kTypeValue (1) sorts ahead of
// kTypeDeletion (0) within a sequence, so seek tags use kTypeValue.
static constexpr ValueType kValueTypeForSeek = kTypeValue;

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;

  ParsedInternalKey() = default;
  ParsedInternalKey(const Slice& u, SequenceNumber seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

inline void AppendInternalKey(std::string* result,
                              const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

// Returns false for malformed keys (too short / unknown type).
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8) >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  return static_cast<ValueType>(
      DecodeFixed64(internal_key.data() + internal_key.size() - 8) & 0xff);
}

// Orders internal keys by user key ascending, then sequence descending,
// then type descending — so the newest version of a key comes first.
class InternalKeyComparator {
 public:
  int Compare(const Slice& a, const Slice& b) const;
  const char* Name() const { return "iamdb.InternalKeyComparator"; }

  // Shortens *start toward limit for index-key compression; both are
  // internal keys and the result still sorts >= all keys before it.
  void FindShortestSeparator(std::string* start, const Slice& limit) const;
  void FindShortSuccessor(std::string* key) const;
};

// Owning internal key, convenient for metadata (node ranges etc).
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool Valid() const {
    ParsedInternalKey parsed;
    return ParseInternalKey(rep_, &parsed);
  }

  void DecodeFrom(const Slice& s) { rep_.assign(s.data(), s.size()); }
  Slice Encode() const { return rep_; }
  Slice user_key() const { return ExtractUserKey(rep_); }
  bool empty() const { return rep_.empty(); }
  void Clear() { rep_.clear(); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

 private:
  std::string rep_;
};

// Key format handed to MemTable::Get and engine Get: holds
//   varint32(internal_key_len) | user_key | tag
// so the memtable (length-prefixed entries) and table layers (raw internal
// keys) can both use it without re-encoding.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  ~LookupKey();

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  Slice memtable_key() const { return Slice(start_, end_ - start_); }
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // avoids allocation for short keys
};

}  // namespace iamdb
