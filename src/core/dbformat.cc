#include "core/dbformat.h"

#include <cstring>

namespace iamdb {

bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result) {
  if (internal_key.size() < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  uint8_t c = num & 0xff;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  return c <= static_cast<uint8_t>(kTypeValue);
}

int InternalKeyComparator::Compare(const Slice& akey, const Slice& bkey) const {
  int r = ExtractUserKey(akey).compare(ExtractUserKey(bkey));
  if (r == 0) {
    const uint64_t anum = DecodeFixed64(akey.data() + akey.size() - 8);
    const uint64_t bnum = DecodeFixed64(bkey.data() + bkey.size() - 8);
    if (anum > bnum) {
      r = -1;  // higher sequence sorts first
    } else if (anum < bnum) {
      r = +1;
    }
  }
  return r;
}

void InternalKeyComparator::FindShortestSeparator(std::string* start,
                                                  const Slice& limit) const {
  // Shorten the user-key portion if possible.
  Slice user_start = ExtractUserKey(*start);
  Slice user_limit = ExtractUserKey(limit);
  std::string tmp(user_start.data(), user_start.size());

  // Bytewise shortest separator on user keys.
  size_t min_length = std::min(tmp.size(), user_limit.size());
  size_t diff_index = 0;
  while (diff_index < min_length &&
         tmp[diff_index] == user_limit[diff_index]) {
    diff_index++;
  }
  if (diff_index < min_length) {
    uint8_t diff_byte = static_cast<uint8_t>(tmp[diff_index]);
    if (diff_byte < 0xff &&
        diff_byte + 1 < static_cast<uint8_t>(user_limit[diff_index])) {
      tmp[diff_index]++;
      tmp.resize(diff_index + 1);
    }
  }

  if (tmp.size() < user_start.size() &&
      Slice(user_start).compare(Slice(tmp)) < 0) {
    // Shortened physically; append a maximal tag so it stays >= any internal
    // key with this user key.
    PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber,
                                         kValueTypeForSeek));
    start->swap(tmp);
  }
}

void InternalKeyComparator::FindShortSuccessor(std::string* key) const {
  Slice user_key = ExtractUserKey(*key);
  std::string tmp(user_key.data(), user_key.size());
  for (size_t i = 0; i < tmp.size(); i++) {
    const uint8_t byte = static_cast<uint8_t>(tmp[i]);
    if (byte != 0xff) {
      tmp[i] = byte + 1;
      tmp.resize(i + 1);
      PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber,
                                           kValueTypeForSeek));
      key->swap(tmp);
      return;
    }
  }
  // All 0xff: leave unchanged.
}

LookupKey::LookupKey(const Slice& user_key, SequenceNumber s) {
  size_t usize = user_key.size();
  size_t needed = usize + 13;  // conservative
  char* dst;
  if (needed <= sizeof(space_)) {
    dst = space_;
  } else {
    dst = new char[needed];
  }
  start_ = dst;
  dst = EncodeVarint32(dst, static_cast<uint32_t>(usize + 8));
  kstart_ = dst;
  std::memcpy(dst, user_key.data(), usize);
  dst += usize;
  EncodeFixed64(dst, PackSequenceAndType(s, kValueTypeForSeek));
  dst += 8;
  end_ = dst;
}

LookupKey::~LookupKey() {
  if (start_ != space_) delete[] start_;
}

}  // namespace iamdb
