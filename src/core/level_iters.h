// Iterator plumbing shared by both engines: a concatenating iterator over
// the disjoint-range nodes of one level, resolving each node lazily into
// its (possibly multi-sequence) merged iterator.
#pragma once

#include <memory>
#include <vector>

#include "core/options.h"
#include "core/version.h"
#include "table/iterator.h"

namespace iamdb {

class DBImpl;

// Iterator over a level's node list: key() = the node's largest internal
// key, value() = node index (fixed64).  Nodes must be range-sorted.
Iterator* NewNodeListIterator(
    std::shared_ptr<const std::vector<NodePtr>> nodes);

// Two-level iterator over one range-sorted level.  Pins `version` for its
// lifetime.  Empty nodes yield empty iterators.
Iterator* NewLevelIterator(DBImpl* db, TreeVersionPtr version,
                           std::shared_ptr<const std::vector<NodePtr>> nodes,
                           const ReadOptions& options);

// Single node -> merged iterator over its sequences (empty node -> empty).
Iterator* NewNodeIterator(DBImpl* db, const NodePtr& node,
                          const ReadOptions& options);

}  // namespace iamdb
