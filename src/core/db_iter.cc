#include "core/db_iter.h"

#include <memory>
#include <string>

namespace iamdb {

namespace {

// Bidirectional user-facing iterator over the merged internal stream.
//
// Forward mode: iter_ sits ON the entry being exposed; key()/value() read
// through.  Reverse mode: iter_ sits BEFORE all entries of the exposed user
// key and the exposed pair lives in saved_key_/saved_value_ — the classic
// LevelDB arrangement, which makes direction switches cheap.
class DBIter final : public Iterator {
 public:
  DBIter(Iterator* internal_iter, SequenceNumber sequence)
      : iter_(internal_iter), sequence_(sequence) {}

  bool Valid() const override { return valid_; }

  Slice key() const override {
    assert(valid_);
    return direction_ == kForward ? ExtractUserKey(iter_->key())
                                  : Slice(saved_key_);
  }
  Slice value() const override {
    assert(valid_);
    return direction_ == kForward ? iter_->value() : Slice(saved_value_);
  }
  Status status() const override {
    if (!status_.ok()) return status_;
    return iter_->status();
  }

  void Seek(const Slice& target) override {
    direction_ = kForward;
    ClearSaved();
    saved_key_.clear();
    AppendInternalKey(&saved_key_,
                      ParsedInternalKey(target, sequence_, kValueTypeForSeek));
    iter_->Seek(saved_key_);
    saved_key_.clear();
    if (iter_->Valid()) {
      FindNextUserEntry(false /* not skipping */);
    } else {
      valid_ = false;
    }
  }

  void SeekToFirst() override {
    direction_ = kForward;
    ClearSaved();
    iter_->SeekToFirst();
    if (iter_->Valid()) {
      FindNextUserEntry(false);
    } else {
      valid_ = false;
    }
  }

  void SeekToLast() override {
    direction_ = kReverse;
    ClearSaved();
    iter_->SeekToLast();
    FindPrevUserEntry();
  }

  void Next() override {
    assert(valid_);
    if (direction_ == kReverse) {
      // iter_ is before saved_key_'s entries; move to the first entry at
      // or past it, then skip the current user key.
      direction_ = kForward;
      if (!iter_->Valid()) {
        iter_->SeekToFirst();
      } else {
        iter_->Next();
      }
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        return;
      }
      // saved_key_ holds the just-exposed user key: skip all its versions.
    } else {
      SaveKey(ExtractUserKey(iter_->key()));
      iter_->Next();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        return;
      }
    }
    FindNextUserEntry(true /* skip saved_key_ */);
  }

  void Prev() override {
    assert(valid_);
    if (direction_ == kForward) {
      // iter_ is ON the current entry.  Walk back past every entry whose
      // user key is >= the current one.
      SaveKey(ExtractUserKey(iter_->key()));
      while (true) {
        iter_->Prev();
        if (!iter_->Valid()) {
          valid_ = false;
          saved_key_.clear();
          ClearSaved();
          return;
        }
        if (ExtractUserKey(iter_->key()).compare(Slice(saved_key_)) < 0) {
          break;
        }
      }
      direction_ = kReverse;
    }
    FindPrevUserEntry();
  }

 private:
  enum Direction { kForward, kReverse };

  void SaveKey(const Slice& k) { saved_key_.assign(k.data(), k.size()); }
  void ClearSaved() {
    saved_value_.clear();
    saved_value_.shrink_to_fit();
  }

  bool ParseKey(ParsedInternalKey* ikey) {
    if (!ParseInternalKey(iter_->key(), ikey)) {
      status_ = Status::Corruption("malformed internal key");
      return false;
    }
    return true;
  }

  // Forward scan to the newest visible, non-deleted entry; when `skipping`,
  // also skip everything <= saved_key_ (the user key just consumed).
  void FindNextUserEntry(bool skipping) {
    assert(direction_ == kForward);
    do {
      ParsedInternalKey ikey;
      if (!ParseKey(&ikey)) {
        valid_ = false;
        return;
      }
      if (ikey.sequence <= sequence_) {
        switch (ikey.type) {
          case kTypeDeletion:
            // Hide all older versions of this key.
            SaveKey(ikey.user_key);
            skipping = true;
            break;
          case kTypeValue:
            if (skipping &&
                ikey.user_key.compare(Slice(saved_key_)) <= 0) {
              break;  // shadowed by a tombstone or already emitted
            }
            valid_ = true;
            saved_key_.clear();
            return;
        }
      }
      iter_->Next();
    } while (iter_->Valid());
    saved_key_.clear();
    valid_ = false;
  }

  // Backward scan: leaves iter_ before the entries of the emitted key and
  // the newest visible pair in saved_key_/saved_value_.
  void FindPrevUserEntry() {
    assert(direction_ == kReverse);
    ValueType value_type = kTypeDeletion;
    if (iter_->Valid()) {
      do {
        ParsedInternalKey ikey;
        if (!ParseKey(&ikey)) {
          valid_ = false;
          return;
        }
        if (ikey.sequence <= sequence_) {
          if (value_type != kTypeDeletion &&
              ikey.user_key.compare(Slice(saved_key_)) < 0) {
            break;  // a complete, visible value for saved_key_ is in hand
          }
          value_type = ikey.type;
          if (value_type == kTypeDeletion) {
            saved_key_.clear();
            ClearSaved();
          } else {
            SaveKey(ikey.user_key);
            saved_value_.assign(iter_->value().data(), iter_->value().size());
          }
        }
        iter_->Prev();
      } while (iter_->Valid());
    }
    if (value_type == kTypeDeletion) {
      // Ran off the beginning.
      valid_ = false;
      saved_key_.clear();
      ClearSaved();
      direction_ = kForward;
    } else {
      valid_ = true;
    }
  }

  std::unique_ptr<Iterator> iter_;
  const SequenceNumber sequence_;
  Status status_;
  std::string saved_key_;    // == current key in reverse; skip target forward
  std::string saved_value_;  // == current value in reverse
  Direction direction_ = kForward;
  bool valid_ = false;
};

}  // namespace

Iterator* NewDBIterator(Iterator* internal_iter, SequenceNumber sequence) {
  return new DBIter(internal_iter, sequence);
}

}  // namespace iamdb
