#include "core/compaction_pacer.h"

#include <algorithm>

namespace iamdb {

CompactionPacer::CompactionPacer(const PacingOptions& options,
                                 RateLimiter* limiter, RateClock* clock)
    : opts_(options),
      limiter_(limiter),
      clock_(clock),
      last_retune_micros_(clock->NowMicros()) {}

void CompactionPacer::RecordIngest(uint64_t bytes) {
  ingest_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

bool CompactionPacer::RetuneDue() const {
  return clock_->NowMicros() -
             last_retune_micros_.load(std::memory_order_relaxed) >=
         opts_.retune_interval_micros;
}

uint64_t CompactionPacer::TargetRate(uint64_t load_bytes_per_sec,
                                     uint64_t debt_bytes) const {
  // Low-debt budget: just above the sustained load so steady-state merges
  // drain slightly faster than the work arrives, clamped to the range.
  uint64_t smooth = std::max(
      opts_.min_bytes_per_sec,
      static_cast<uint64_t>(static_cast<double>(load_bytes_per_sec) *
                            opts_.headroom));
  smooth = std::min(smooth, opts_.max_bytes_per_sec);
  if (debt_bytes <= opts_.debt_low_bytes) return smooth;
  if (debt_bytes >= opts_.debt_high_bytes) return opts_.max_bytes_per_sec;
  const double frac =
      static_cast<double>(debt_bytes - opts_.debt_low_bytes) /
      static_cast<double>(opts_.debt_high_bytes - opts_.debt_low_bytes);
  return smooth + static_cast<uint64_t>(
                      frac * static_cast<double>(opts_.max_bytes_per_sec -
                                                 smooth));
}

void CompactionPacer::MaybeRetune(uint64_t debt_bytes) {
  const uint64_t now = clock_->NowMicros();
  const uint64_t last = last_retune_micros_.load(std::memory_order_relaxed);
  if (now - last < opts_.retune_interval_micros) return;
  last_retune_micros_.store(now, std::memory_order_relaxed);

  const uint64_t window = now - last;
  const uint64_t ingested = ingest_bytes_.exchange(0, std::memory_order_relaxed);
  // Demand: bytes compaction/flush offered to the limiter this window.
  // Counted at Request() entry, so it sees the write-amplified bytes that
  // user ingest alone cannot.
  const uint64_t total = limiter_->total_bytes();
  const uint64_t offered =
      total - last_total_bytes_.exchange(total, std::memory_order_relaxed);
  const uint64_t paced = limiter_->total_paced_wall_micros();
  const uint64_t paced_delta =
      paced - last_paced_wall_.exchange(paced, std::memory_order_relaxed);

  if (ingested == 0 && offered == 0 &&
      debt_bytes <= opts_.debt_low_bytes) {
    // Idle window: nothing to pace, so there is no signal in it.  Keep the
    // learned budget and EWMAs rather than decaying them, so pacing does
    // not have to re-converge after every lull.
    return;
  }

  // EWMA with alpha = 1/2: smooth enough to ride out batch jitter, fast
  // enough to track a workload shift within a few intervals.
  const uint64_t ingest_rate = ingested * 1000000 / window;
  const uint64_t smoothed_ingest =
      (smoothed_ingest_.load(std::memory_order_relaxed) + ingest_rate) / 2;
  smoothed_ingest_.store(smoothed_ingest, std::memory_order_relaxed);

  const uint64_t demand_rate = offered * 1000000 / window;
  const uint64_t smoothed_demand =
      (smoothed_demand_.load(std::memory_order_relaxed) + demand_rate) / 2;
  smoothed_demand_.store(smoothed_demand, std::memory_order_relaxed);

  uint64_t target =
      TargetRate(std::max(smoothed_ingest, smoothed_demand), debt_bytes);

  // Demand is itself throttled by the current budget, so measured demand
  // understates the true need whenever the limiter is the bottleneck.
  // While the tree is healthy that is exactly what pacing means — but if
  // debt has climbed past the low watermark AND threads sat blocked in
  // the limiter for most of the window (wall-clock), the budget is
  // genuinely starving merges: escalate multiplicatively (x1.5 per
  // interval — fast enough to outrun debt growth, gentle enough not to
  // slam the budget open and bring back unpaced burstiness) until
  // compaction stops being limiter-bound; the law settles it afterwards.
  if (paced_delta * 2 >= window && debt_bytes > opts_.debt_low_bytes) {
    const uint64_t rate = limiter_->bytes_per_second();
    target = std::max(target,
                      std::min(rate + rate / 2, opts_.max_bytes_per_sec));
  }

  if (target != limiter_->bytes_per_second()) {
    limiter_->SetBytesPerSecond(target);
    retunes_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace iamdb
