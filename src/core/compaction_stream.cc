#include "core/compaction_stream.h"

namespace iamdb {

void CompactionStream::Advance() {
  valid_ = false;
  while (input_->Valid()) {
    Slice key = input_->key();
    ParsedInternalKey ikey;
    bool drop = false;

    if (!ParseInternalKey(key, &ikey)) {
      // Unparsable key: emit verbatim so corruption is preserved, visible
      // and debuggable rather than silently dropped.
      has_last_user_key_ = false;
      last_sequence_for_key_ = kMaxSequenceNumber;
    } else {
      if (!has_last_user_key_ || ikey.user_key != Slice(last_user_key_)) {
        // First occurrence (newest version) of this user key.
        last_user_key_.assign(ikey.user_key.data(), ikey.user_key.size());
        has_last_user_key_ = true;
        last_sequence_for_key_ = kMaxSequenceNumber;
      }

      if (last_sequence_for_key_ <= smallest_snapshot_) {
        // A newer version visible to every snapshot exists: shadowed.
        drop = true;
      } else if (ikey.type == kTypeDeletion &&
                 ikey.sequence <= smallest_snapshot_ && bottommost_) {
        // Tombstone with nothing deeper to shadow and invisible to no one.
        drop = true;
      }
      last_sequence_for_key_ = ikey.sequence;
    }

    if (drop) {
      dropped_++;
      input_->Next();
      continue;
    }
    current_key_.assign(key.data(), key.size());
    current_value_.assign(input_->value().data(), input_->value().size());
    valid_ = true;
    input_->Next();
    return;
  }
}

}  // namespace iamdb
