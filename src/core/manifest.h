// Manifest: the durable log of tree-structure changes.  Both engines record
// the same edit vocabulary — node added / node removed / level-count change
// plus the bookkeeping counters — so recovery is engine-agnostic: replay
// edits into a node map, then hand the levels to the engine.
//
// An in-place node update (an MSTable append, a range widening) is encoded
// as remove+add of the same node_id.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "core/version.h"
#include "env/env.h"
#include "wal/log_writer.h"

namespace iamdb {

// Serializable image of a NodeMeta (everything but runtime handles).
struct NodeEdit {
  int level = 0;
  uint64_t node_id = 0;
  uint64_t file_number = 0;
  uint64_t meta_end = 0;
  uint64_t data_bytes = 0;
  uint64_t num_entries = 0;
  uint32_t seq_count = 0;
  std::string range_lo, range_hi;
  std::string smallest_ikey, largest_ikey;

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice* input);
};

class VersionEdit {
 public:
  void SetLogNumber(uint64_t num) { log_number_ = num; }
  void SetNextFileNumber(uint64_t num) { next_file_number_ = num; }
  void SetNextNodeId(uint64_t id) { next_node_id_ = id; }
  void SetLastSequence(SequenceNumber seq) { last_sequence_ = seq; }
  void SetNumLevels(int n) { num_levels_ = n; }

  void AddNode(const NodeEdit& node) { added_.push_back(node); }
  void RemoveNode(int level, uint64_t node_id) {
    removed_.emplace_back(level, node_id);
  }

  const std::vector<NodeEdit>& added() const { return added_; }
  const std::vector<std::pair<int, uint64_t>>& removed() const {
    return removed_;
  }
  const std::optional<uint64_t>& log_number() const { return log_number_; }
  const std::optional<uint64_t>& next_file_number() const {
    return next_file_number_;
  }
  const std::optional<uint64_t>& next_node_id() const { return next_node_id_; }
  const std::optional<SequenceNumber>& last_sequence() const {
    return last_sequence_;
  }
  const std::optional<int>& num_levels() const { return num_levels_; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

 private:
  std::optional<uint64_t> log_number_;
  std::optional<uint64_t> next_file_number_;
  std::optional<uint64_t> next_node_id_;
  std::optional<SequenceNumber> last_sequence_;
  std::optional<int> num_levels_;
  std::vector<NodeEdit> added_;
  std::vector<std::pair<int, uint64_t>> removed_;
};

// Aggregate state recovered from a manifest replay.
struct RecoveredState {
  uint64_t log_number = 0;
  uint64_t next_file_number = 2;
  uint64_t next_node_id = 1;
  SequenceNumber last_sequence = 0;
  int num_levels = 0;
  // nodes[level] sorted by range_lo (as replayed; engines re-sort).
  std::vector<std::vector<NodeEdit>> nodes;
};

// Owns the MANIFEST file; appends edits durably.
class ManifestWriter {
 public:
  ManifestWriter(Env* env, std::string dbname);

  // Creates a fresh MANIFEST-<number> seeded with `base` (a full snapshot
  // edit) and points CURRENT at it.
  Status Create(uint64_t manifest_number, const VersionEdit& base);

  // Appends one edit record; syncs if `sync`.
  Status Append(const VersionEdit& edit, bool sync);

  uint64_t manifest_number() const { return manifest_number_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Env* env_;
  std::string dbname_;
  uint64_t manifest_number_ = 0;
  uint64_t bytes_written_ = 0;
  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<log::Writer> log_;
};

// Replays the manifest referenced by CURRENT.
Status RecoverManifest(Env* env, const std::string& dbname,
                       RecoveredState* state);

}  // namespace iamdb
