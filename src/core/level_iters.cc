#include "core/level_iters.h"

#include "core/db_impl.h"
#include "table/two_level_iterator.h"
#include "util/coding.h"

namespace iamdb {

namespace {

class NodeListIterator final : public Iterator {
 public:
  explicit NodeListIterator(std::shared_ptr<const std::vector<NodePtr>> nodes)
      : nodes_(std::move(nodes)), index_(nodes_->size()) {}

  bool Valid() const override { return index_ < nodes_->size(); }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = nodes_->empty() ? 0 : nodes_->size() - 1;
  }
  void Seek(const Slice& target) override {
    // First node whose range_hi >= the target's user key.  Ranges can be
    // wider than data, which only makes the scan inspect an extra node.
    Slice target_user = ExtractUserKey(target);
    size_t lo = 0, hi = nodes_->size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (Slice((*nodes_)[mid]->range_hi).compare(target_user) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    index_ = lo;
  }
  void Next() override {
    assert(Valid());
    index_++;
  }
  void Prev() override {
    assert(Valid());
    if (index_ == 0) {
      index_ = nodes_->size();
    } else {
      index_--;
    }
  }
  Slice key() const override {
    const NodePtr& node = (*nodes_)[index_];
    if (!node->largest_ikey.empty()) return Slice(node->largest_ikey);
    // Empty node: synthesize a key from its range so ordering holds.
    synth_key_.clear();
    AppendInternalKey(&synth_key_,
                      ParsedInternalKey(node->range_hi, 0, kTypeValue));
    return Slice(synth_key_);
  }
  Slice value() const override {
    EncodeFixed64(buf_, index_);
    return Slice(buf_, 8);
  }
  Status status() const override { return Status::OK(); }

 private:
  std::shared_ptr<const std::vector<NodePtr>> nodes_;
  size_t index_;
  mutable char buf_[8];
  mutable std::string synth_key_;
};

}  // namespace

Iterator* NewNodeListIterator(
    std::shared_ptr<const std::vector<NodePtr>> nodes) {
  return new NodeListIterator(std::move(nodes));
}

Iterator* NewNodeIterator(DBImpl* db, const NodePtr& node,
                          const ReadOptions& options) {
  if (node->empty()) return NewEmptyIterator();
  std::shared_ptr<MSTableReader> reader;
  Status s = node->OpenReader(db->env(), db->options().table, db->icmp(),
                              db->dbname(), &reader);
  if (!s.ok()) return NewErrorIterator(s);
  Iterator* iter = reader->NewIterator(options);
  iter->RegisterCleanup([reader]() mutable { reader.reset(); });
  return iter;
}

Iterator* NewLevelIterator(DBImpl* db, TreeVersionPtr version,
                           std::shared_ptr<const std::vector<NodePtr>> nodes,
                           const ReadOptions& options) {
  Iterator* index_iter = NewNodeListIterator(nodes);
  ReadOptions opts = options;
  Iterator* level_iter = NewTwoLevelIterator(
      index_iter, [db, nodes, opts](const Slice& index_value) -> Iterator* {
        uint64_t index = DecodeFixed64(index_value.data());
        return NewNodeIterator(db, (*nodes)[index], opts);
      });
  level_iter->RegisterCleanup([version]() mutable { version.reset(); });
  return level_iter;
}

}  // namespace iamdb
