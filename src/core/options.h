// User-facing configuration.  One Options struct drives all three policies:
//   engine = kLeveled                    -> LevelDB/RocksDB-style LSM baseline
//   engine = kAmt, amt.policy = kLsa     -> the LSA-tree (appends only)
//   engine = kAmt, amt.policy = kIam     -> the IAM-tree (appends + merges)
// With amt.k = 1 and amt.fixed_mixed_level = 1, the AMT engine degenerates
// into merge-always behaviour (paper Sec 1: "IAM degenerates into LSM").
#pragma once

#include <cstddef>
#include <cstdint>
#include <thread>

#include "table/table_options.h"

namespace iamdb {

class Env;
class LruCache;
class RateLimiter;
class Snapshot;

// Background pool sized from the machine: single-core stays single-threaded,
// multi-core gets at least two workers (one can always take a flush while
// the others merge) capped at 8 — background work rarely scales past that
// and the pool should not crowd out foreground threads.
inline int DefaultBackgroundThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 1;
  return static_cast<int>(hw < 2 ? 2 : (hw > 8 ? 8 : hw));
}

enum class EngineType {
  kLeveled,  // classic leveled LSM (the paper's LevelDB/RocksDB baseline)
  kAmt,      // append/merge tree (LSA or IAM by AmtOptions::policy)
};

enum class AmtPolicy {
  kLsa,  // append whenever the child is not full (merge only full children)
  kIam,  // appending levels above m, k-sequence mixed level, merging below
};

struct AmtOptions {
  AmtPolicy policy = AmtPolicy::kIam;

  // Fan-out t: threshold number of nodes in L1 is t, L2 is t^2, ...
  // (paper default 10).  A node splits when its children reach 2t.
  int fanout = 10;

  // Max sequences per node in the mixed level (paper Table 3 sweeps 1..3).
  int k = 3;

  // Mixed level selection.  auto_tune_mk picks the largest (m, k) satisfying
  // paper Eq. 2 against memory_budget_bytes; otherwise fixed_mixed_level is
  // used (<= 0 means "no mixed level": every on-disk level appends, i.e.
  // pure LSA behaviour regardless of policy).
  bool auto_tune_mk = true;
  int fixed_mixed_level = 0;

  // Memory available for caching appended sequences (the "M" of Eq. 2).
  // Defaults to the block-cache capacity when 0.
  uint64_t memory_budget_bytes = 0;

  // Fraction of M usable by the tuner (paper suggests M/2 so merge-generated
  // sequences keep some cache).
  double memory_budget_fraction = 0.5;

  // Initial size of merge-output nodes at the leaf level, as a divisor of
  // node_capacity ("Cts, Ct/5 by default" — paper Sec 4.2.1).
  int leaf_merge_split_factor = 5;

  // FLSM-emulation for Sec 6.8: rewrite records on every flush instead of
  // metadata-moving nodes with no children.
  bool rewrite_on_flush = false;

  // --- ablation knobs (defaults = the paper's design) ---
  // A full node splits when its child count reaches this multiple of t
  // (paper: 2).
  double split_child_factor = 2.0;
  // Combine candidate selection: smallest Tcn with two adjacent siblings
  // (paper Sec 4.2.3) vs naively taking the first combinable node.
  bool combine_min_tcn = true;
};

struct LeveledOptions {
  // Number of L0 files that triggers a compaction (LevelDB default 4).
  int l0_compaction_trigger = 4;
  // L0 file counts for slowdown / stop (LevelDB defaults 8 / 12).
  int l0_slowdown_trigger = 8;
  int l0_stop_trigger = 12;
  // Max bytes for L1; each deeper level is 10x (paper Sec 6.1 uses 640MB).
  uint64_t max_bytes_level1 = 64ull << 20;
  double level_multiplier = 10.0;
  // Output file size (paper: 64MB files, half the 128MB node threshold).
  uint64_t target_file_size = 2ull << 20;
  // RocksDB-flavour: compact the most over-full level first and apply
  // pending-bytes stalls, preventing overflow accumulation.  LevelDB-flavour
  // (false) compacts lazily and lets levels overflow (paper Sec 6.2).
  bool strict_level_limits = false;
  // Pending compaction debt thresholds for slowdown/stop when strict.
  uint64_t soft_pending_bytes = 256ull << 20;
  uint64_t hard_pending_bytes = 512ull << 20;
};

// Unified memory arbiter (see core/memory_arbiter.h).  Behaviour knobs for
// the Options::memory_budget_bytes pool: the arbiter starts from
// initial_write_fraction, then once per retune interval folds the observed
// write-stall time and cache miss rate into EWMAs and moves the split one
// step toward whichever side is starved.  The write share never drops
// below one memtable (node_capacity) and the read share never drops below
// the minimum cache allotment, so neither side can be starved out
// entirely.
struct ArbiterOptions {
  // Starting write-side share of the pool (clamped to the floors above).
  double initial_write_fraction = 0.25;

  // Fraction of the pool moved per rebalance step.
  double step_fraction = 1.0 / 16;

  // Controller cadence; rebalances are rate-limited to one per interval.
  uint64_t retune_interval_micros = 50 * 1000;

  // Write-side pressure: smoothed memtable-full stall time above this
  // share of the interval (per mille) pulls budget toward the memtable —
  // unless compaction debt is past pacing.debt_high_bytes, in which case
  // the stalls are compaction-bound and a bigger memtable would not help.
  uint64_t stall_shift_per_mille = 50;

  // Read-side pressure: smoothed block-cache miss rate above this
  // (per mille), with stalls quiet, pushes budget toward the caches.
  uint64_t miss_shift_per_mille = 200;

  // Intervals with fewer cache lookups than this carry no read signal
  // (the miss-rate EWMA holds its value instead of folding noise).
  uint64_t min_lookups_per_interval = 64;
};

// Adaptive compaction pacing (see core/compaction_pacer.h).  When enabled
// the fixed compaction_rate_limit is replaced by a controller that measures
// the sustained ingest/compaction load and the engine's outstanding
// compaction debt and retunes the token bucket: at low debt merges are
// paced just above the measured load (smooth, no device saturation); as
// debt climbs toward debt_high_bytes the budget opens linearly up to
// max_bytes_per_sec so debt stays bounded instead of snowballing into
// write stalls.
struct PacingOptions {
  bool adaptive = false;

  // Clamp range for the adaptive budget.  The bucket starts at max (the
  // unpaced behaviour) and is paced down as the controller learns.
  uint64_t min_bytes_per_sec = 8ull << 20;
  uint64_t max_bytes_per_sec = 1ull << 30;

  // Debt watermarks: at or below low the budget tracks the measured load;
  // at or above high it is fully open; linear in between.  Sized so the
  // budget is wide open well before the engines' own pending-debt write
  // stalls (soft 256MB / hard 512MB) engage: transient debt from one big
  // merge should ride on the smooth load-tracking budget, not slam it
  // open.
  uint64_t debt_low_bytes = 64ull << 20;
  uint64_t debt_high_bytes = 256ull << 20;

  // Controller cadence; retunes are rate-limited to one per interval.
  uint64_t retune_interval_micros = 50 * 1000;

  // Multiplier applied to the smoothed load for the low-debt budget, so
  // merges run slightly hot and drain rather than track debt exactly.
  double headroom = 1.25;
};

struct Options {
  // -- shared --
  Env* env = nullptr;  // required
  bool create_if_missing = true;
  bool error_if_exists = false;
  bool paranoid_checks = false;

  EngineType engine = EngineType::kAmt;

  // Node capacity Ct (paper: 128MB; scaled default 4MB).  Also the
  // memtable flush threshold: the memtable is LSA's L0.
  uint64_t node_capacity = 4ull << 20;

  // Background compaction threads ("-nt" in the paper's evaluation).
  // Defaults to the core count (clamped to [2, 8]; 1 on single-core).
  int background_threads = DefaultBackgroundThreads();

  // Max key-range shards a single merge job may fan out into (partitioned
  // subcompactions).  0 means "same as background_threads"; 1 disables
  // sharding.  Sharding never changes results — the equivalence is asserted
  // by subcompaction_test across all three engines.
  int max_subcompactions = 0;

  // Background (compaction + flush) I/O budget in bytes/sec; 0 = unpaced.
  // Flush I/O has priority over merge I/O inside the budget (see
  // util/rate_limiter.h).  Ignored when pacing.adaptive is set — the pacer
  // owns the budget then.
  uint64_t compaction_rate_limit = 0;

  // Adaptive replacement for compaction_rate_limit (see PacingOptions).
  PacingOptions pacing;

  // Background job selection: pick the compaction that retires the most
  // debt bytes first (greedy) instead of fixed scan/round-robin order.
  // Applies to all engines; see docs/CONCURRENCY.md.
  bool greedy_compaction = true;

  // One pooled memory budget across the memtable and both block-cache
  // tiers (core/memory_arbiter.h).  When > 0, block_cache_capacity and
  // compressed_cache_capacity stop being absolute sizes — they only set
  // the ratio in which the read share is divided between the tiers (and
  // whether the compressed tier exists at all) — and the memtable
  // rotation threshold becomes the arbiter's write quota instead of
  // node_capacity.  Must be at least one memtable plus the minimum cache
  // allotment (Open returns InvalidArgument otherwise).  0 = fixed sizing.
  uint64_t memory_budget_bytes = 0;

  // Arbiter behaviour knobs (used only when memory_budget_bytes > 0).
  ArbiterOptions arbiter;

  // Block cache capacity; models the memory available for data blocks.
  // Entries are charged at uncompressed (resident) size.
  uint64_t block_cache_capacity = 64ull << 20;

  // Capacity of the compressed-block cache tier (0 = tier off).  Holds
  // still-compressed block bytes (charged at stored size) so an
  // uncompressed-tier miss decompresses from memory instead of re-reading
  // the device.  Only useful when table.compression is enabled.
  uint64_t compressed_cache_capacity = 0;

  // WAL fsync on every write batch (benchmarks follow the paper and leave
  // this off; crash tests turn it on).
  bool sync_wal = false;

  TableOptions table;
  AmtOptions amt;
  LeveledOptions leveled;
};

// I/O accounting for one MultiGet batch.  DBImpl::MultiGet points
// ReadOptions::batch at a stack instance; the table layer adds every
// vectored device read that covered more than one block, and DBImpl folds
// the totals into DbStats when the batch completes.
struct MultiGetContext {
  uint64_t coalesced_reads = 0;   // contiguous device runs covering 2+ blocks
  uint64_t coalesced_blocks = 0;  // blocks fetched by those runs
};

struct ReadOptions {
  bool verify_checksums = false;
  bool fill_cache = true;
  // nullptr means "read the latest committed state".
  const Snapshot* snapshot = nullptr;
  // Paces cache-miss block reads when non-null (engines set this on their
  // compaction-input reads so merge reads share the background I/O budget).
  // Not owned.
  RateLimiter* rate_limiter = nullptr;
  // Non-null while serving a MultiGet batch (set by DBImpl::MultiGet, not
  // by callers).  Not owned.
  MultiGetContext* batch = nullptr;
};

struct WriteOptions {
  bool sync = false;
};

}  // namespace iamdb
