// DBImpl: the shared half of the database — WAL + group commit, memtable
// rotation, snapshots, stall control, background scheduling, recovery and
// file garbage collection.  The on-disk half is a TreeEngine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "core/compaction_pacer.h"
#include "core/db.h"
#include "core/memory_arbiter.h"
#include "core/dbformat.h"
#include "core/manifest.h"
#include "core/snapshot.h"
#include "core/tree_engine.h"
#include "env/counting_env.h"
#include "memtable/memtable.h"
#include "table/cache.h"
#include "table/compressor.h"
#include "util/published_ptr.h"
#include "util/rate_limiter.h"
#include "util/thread_pool.h"
#include "wal/log_writer.h"

namespace iamdb {

struct WriterItem;

// Immutable snapshot of the in-memory read state, swapped atomically so the
// read hot path never touches the write mutex (mirrors how engines publish
// TreeVersionPtr).  Holds memtable references for its whole lifetime, so a
// reader that loaded a view can keep using `mem`/`imm` after rotation or
// flush retires them.  `last_sequence` is the newest sequence that was
// visible when the view was installed — readers use the fresher atomic
// DBImpl counter for their snapshot, the field is a floor for diagnostics.
struct ReadView {
  ReadView(MemTable* m, MemTable* i, SequenceNumber seq);
  ~ReadView();

  ReadView(const ReadView&) = delete;
  ReadView& operator=(const ReadView&) = delete;

  MemTable* const mem;
  MemTable* const imm;  // may be null
  const SequenceNumber last_sequence;
};

class DBImpl final : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);
  ~DBImpl() override;

  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  void MultiGet(const ReadOptions& options, size_t count, const Slice* keys,
                std::string* values, Status* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status WaitForQuiescence() override;
  Status FlushAll() override;
  DbStats GetStats() override;
  const AmpStats& amp_stats() const override { return amp_stats_; }
  Status CheckInvariants(bool quiescent) override {
    return engine_->CheckInvariants(quiescent);
  }
  bool GetProperty(const Slice& property, std::string* value) override;

  // ---- Engine-facing surface (engines run under mutex_ unless noted) ----

  Env* env() { return counting_env_.get(); }
  const Options& options() const { return options_; }
  const std::string& dbname() const { return dbname_; }
  const InternalKeyComparator* icmp() const { return &icmp_; }
  AmpStats* amp_stats_mutable() { return &amp_stats_; }
  LruCache* block_cache() { return block_cache_.get(); }
  // Compressed-block tier; nullptr when compressed_cache_capacity == 0.
  LruCache* compressed_block_cache() { return compressed_block_cache_.get(); }

  std::mutex& mutex() { return mutex_; }
  MemTable* imm() { return imm_; }

  uint64_t NewFileNumber() { return next_file_number_++; }   // mutex held
  uint64_t NewNodeId() { return next_node_id_++; }           // mutex held

  // Oldest sequence any live snapshot can observe.  Takes snapshots_mu_
  // internally; callers hold mutex_ (engines), never snapshots_mu_.
  SequenceNumber SmallestSnapshot() const {
    std::lock_guard<std::mutex> l(snapshots_mu_);
    return snapshots_.empty()
               ? last_sequence_.load(std::memory_order_acquire)
               : snapshots_.oldest()->sequence();
  }

  // Durably apply an edit (mutex held).  Counters are stamped in.
  Status LogEdit(VersionEdit* edit);

  // Called by the engine after the imm flush edit is applied (mutex held):
  // releases the immutable memtable and obsolete WAL files.
  void ImmFlushed();

  uint64_t CurrentLogNumber() const { return log_number_; }  // mutex held

  // Shared background pool (engines fan subcompaction shards out on it; see
  // util/task_group.h for why that can't deadlock) and the background I/O
  // budget (null when compaction_rate_limit == 0).  No mutex needed.
  ThreadPool* pool() { return pool_.get(); }
  RateLimiter* rate_limiter() { return rate_limiter_.get(); }

  // Counts subcompaction shards fanned out by engines (no mutex).
  void RecordSubcompactions(uint64_t n) {
    subcompactions_.fetch_add(n, std::memory_order_relaxed);
  }

  // Unified memory arbiter; nullptr when memory_budget_bytes == 0.
  MemoryArbiter* memory_arbiter() { return arbiter_.get(); }

  // Applies one arbiter step immediately (ops/test hook; takes the
  // mutex and re-runs the engine's memory-dependent decisions).  Returns
  // false when the arbiter is off or the step was already clamped.
  bool ForceMemoryStep(MemoryArbiter::Shift direction);

 private:
  friend class DB;

  Status Recover();
  Status Initialize();  // Recover + engine construction; called by Open
  Status WriteSnapshotManifest();  // fresh MANIFEST with full state
  Status ReplayWal(uint64_t log_number, SequenceNumber* max_sequence);
  Status SwitchMemTable();  // mutex held
  void PublishReadView();   // mutex held; release-installs {mem_, imm_}
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock);
  WriteBatch* BuildBatchGroup(WriterItem** last_writer);
  void MaybeScheduleBackgroundWork();  // mutex held
  void MaybeRebalanceMemory();         // mutex held
  void MaybeRebalanceMemoryFromRead();  // no mutex; try-locks
  void BackgroundCall(TreeEngine::WorkLane lane);
  void RemoveObsoleteFiles();  // mutex held (open/flush time)
  Iterator* NewInternalIterator(const ReadOptions& options,
                                SequenceNumber* latest_snapshot);

  Options options_;
  std::string dbname_;
  IoStats io_stats_;
  std::unique_ptr<CountingEnv> counting_env_;
  AmpStats amp_stats_;
  std::unique_ptr<LruCache> block_cache_;
  std::unique_ptr<LruCache> compressed_block_cache_;  // tier 2; may be null
  CompressionStats compression_stats_;
  InternalKeyComparator icmp_;

  // mutex_ serializes the WRITE side only: the writer queue, memtable
  // rotation, background scheduling, and manifest edits.  The read hot path
  // (Get / NewIterator) never acquires it — readers load read_view_ and
  // last_sequence_ with acquire semantics (docs/CONCURRENCY.md).
  std::mutex mutex_;
  std::condition_variable bg_cv_;
  std::atomic<bool> shutting_down_{false};

  MemTable* mem_ = nullptr;   // mutated under mutex_; readers use read_view_
  MemTable* imm_ = nullptr;
  std::unique_ptr<WritableFile> log_file_;
  std::unique_ptr<log::Writer> log_;
  uint64_t log_number_ = 0;
  std::set<uint64_t> old_log_numbers_;  // released once imm flushes

  // Lock-free read-path state.  read_view_ is installed under mutex_ (by
  // rotation and imm release) and read without any lock via epoch guards
  // (PublishedPtr, util/published_ptr.h); last_sequence_ is
  // release-published by the front writer after the memtable insert, so an
  // acquire load observes every entry at or below the loaded sequence.
  PublishedPtr<const ReadView> read_view_;
  std::atomic<SequenceNumber> last_sequence_{0};

  uint64_t next_file_number_ = 2;
  uint64_t next_node_id_ = 1;

  std::deque<WriterItem*> writers_;
  WriteBatch group_batch_;

  // Snapshot bookkeeping has its own small lock so GetSnapshot /
  // ReleaseSnapshot (and server SCAN setup) never contend with writers.
  // Lock order: mutex_ before snapshots_mu_ (SmallestSnapshot is called by
  // engines holding mutex_); never the reverse.
  mutable std::mutex snapshots_mu_;
  SnapshotList snapshots_;

  std::unique_ptr<ManifestWriter> manifest_;
  std::unique_ptr<TreeEngine> engine_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<RateLimiter> rate_limiter_;
  // Non-null iff options.pacing.adaptive: retunes rate_limiter_ from the
  // measured ingest rate and the engine's compaction debt (see
  // core/compaction_pacer.h).
  std::unique_ptr<CompactionPacer> pacer_;
  // Non-null iff options.memory_budget_bytes > 0: re-divides the pooled
  // budget between the memtable quota and the cache tiers (see
  // core/memory_arbiter.h).  Constructed before the caches, which are
  // sized from its initial division.
  std::unique_ptr<MemoryArbiter> arbiter_;
  // Two-lane scheduling accounting (mutex_): at most one flush worker —
  // flushes serialize on the single imm anyway — plus one compaction
  // worker per job the engine says is runnable right now.
  bool flush_scheduled_ = false;
  int compactions_scheduled_ = 0;
  int ScheduledWorkers() const {  // mutex held
    return (flush_scheduled_ ? 1 : 0) + compactions_scheduled_;
  }
  Status bg_error_;
  std::atomic<uint64_t> stall_micros_{0};
  std::atomic<uint64_t> subcompactions_{0};
  // Batched-read accounting (DbStats multiget gauges; no mutex).
  std::atomic<uint64_t> multiget_batches_{0};
  std::atomic<uint64_t> multiget_keys_{0};
  std::atomic<uint64_t> multiget_coalesced_reads_{0};
  std::atomic<uint64_t> multiget_coalesced_blocks_{0};
  RecoveredState recovered_;  // staging between Recover and engine init
};

}  // namespace iamdb
