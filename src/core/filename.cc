#include "core/filename.h"

#include <cstdio>

#include "env/env.h"
#include "util/status.h"

namespace iamdb {

static std::string MakeFileName(const std::string& dbname, uint64_t number,
                                const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

std::string LogFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "mst");
}

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string TempFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "dbtmp");
}

bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  Slice rest(filename);
  if (rest == "CURRENT") {
    *number = 0;
    *type = FileType::kCurrentFile;
    return true;
  }
  if (rest.starts_with("MANIFEST-")) {
    rest.remove_prefix(strlen("MANIFEST-"));
    uint64_t num = 0;
    if (rest.empty()) return false;
    for (size_t i = 0; i < rest.size(); i++) {
      if (rest[i] < '0' || rest[i] > '9') return false;
      num = num * 10 + (rest[i] - '0');
    }
    *number = num;
    *type = FileType::kManifestFile;
    return true;
  }
  // <number>.<suffix>
  size_t dot = filename.find('.');
  if (dot == std::string::npos || dot == 0) return false;
  uint64_t num = 0;
  for (size_t i = 0; i < dot; i++) {
    if (filename[i] < '0' || filename[i] > '9') return false;
    num = num * 10 + (filename[i] - '0');
  }
  std::string suffix = filename.substr(dot + 1);
  if (suffix == "log") {
    *type = FileType::kLogFile;
  } else if (suffix == "mst") {
    *type = FileType::kTableFile;
  } else if (suffix == "dbtmp") {
    *type = FileType::kTempFile;
  } else {
    return false;
  }
  *number = num;
  return true;
}

Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t manifest_number) {
  std::string manifest = ManifestFileName(dbname, manifest_number);
  Slice contents(manifest);
  contents.remove_prefix(dbname.size() + 1);  // bare name
  std::string tmp = TempFileName(dbname, manifest_number);
  Status s =
      WriteStringToFile(env, contents.ToString() + "\n", tmp, true);
  if (s.ok()) {
    s = env->RenameFile(tmp, CurrentFileName(dbname));
  }
  if (!s.ok()) {
    env->RemoveFile(tmp);
  }
  return s;
}

}  // namespace iamdb
