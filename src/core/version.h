// Tree metadata shared by both engines.
//
//  * FileLifetime  — RAII owner of an on-disk table file; the physical file
//    is unlinked when the last reference drops AND it was marked obsolete,
//    so live iterators/readers on old versions never lose their data.
//  * NodeMeta      — one node: key range, data stats, lazily-opened reader.
//    Immutable once published (appends produce a NEW NodeMeta for the same
//    file at a larger meta_end).
//  * TreeVersion   — immutable snapshot of the whole tree (levels of nodes).
//    Reads grab a shared_ptr under the DB mutex and then run lock-free.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "core/options.h"
#include "env/env.h"
#include "table/mstable.h"
#include "table/table_options.h"

namespace iamdb {

class FileLifetime {
 public:
  FileLifetime(Env* env, std::string path) : env_(env), path_(std::move(path)) {}
  ~FileLifetime() {
    if (obsolete_.load(std::memory_order_acquire)) {
      env_->RemoveFile(path_);
    }
  }

  FileLifetime(const FileLifetime&) = delete;
  FileLifetime& operator=(const FileLifetime&) = delete;

  void MarkObsolete() { obsolete_.store(true, std::memory_order_release); }
  const std::string& path() const { return path_; }

 private:
  Env* env_;
  std::string path_;
  std::atomic<bool> obsolete_{false};
};

struct NodeMeta {
  // Stable identity across appends/emptiness (file_number changes when an
  // empty node gets its first file).
  uint64_t node_id = 0;

  // 0 means the node is empty (a range placeholder with no file).
  uint64_t file_number = 0;
  uint64_t meta_end = 0;      // valid size: offset just past the trailer
  uint64_t data_bytes = 0;    // live data across all sequences
  uint64_t num_entries = 0;
  uint32_t seq_count = 0;

  // Covering key range (user keys, inclusive).  May extend beyond the
  // stored data: ranges persist while a node is empty and widen on appends.
  std::string range_lo;
  std::string range_hi;

  // Data extremes as internal keys (empty when the node is empty).
  std::string smallest_ikey;
  std::string largest_ikey;

  std::shared_ptr<FileLifetime> lifetime;

  bool empty() const { return file_number == 0 || data_bytes == 0; }

  // Lazily open (and memoize) the table reader.  Thread-safe.
  Status OpenReader(Env* env, const TableOptions& options,
                    const InternalKeyComparator* cmp,
                    const std::string& dbname,
                    std::shared_ptr<MSTableReader>* out) const;

 private:
  mutable std::mutex reader_mu_;
  mutable std::shared_ptr<MSTableReader> reader_;
};

using NodePtr = std::shared_ptr<NodeMeta>;

// An immutable picture of the tree.  levels()[0] is the first ON-DISK level
// (L1 in the paper for AMT; L0 for the leveled engine).
class TreeVersion {
 public:
  explicit TreeVersion(std::vector<std::vector<NodePtr>> levels)
      : levels_(std::move(levels)) {}

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const std::vector<NodePtr>& level(int i) const { return levels_[i]; }
  const std::vector<std::vector<NodePtr>>& levels() const { return levels_; }

  uint64_t LevelBytes(int i) const {
    uint64_t total = 0;
    for (const auto& n : levels_[i]) total += n->data_bytes;
    return total;
  }

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (int i = 0; i < num_levels(); i++) total += LevelBytes(i);
    return total;
  }

  uint64_t TotalEntries() const {
    uint64_t total = 0;
    for (const auto& lvl : levels_)
      for (const auto& n : lvl) total += n->num_entries;
    return total;
  }

 private:
  std::vector<std::vector<NodePtr>> levels_;
};

using TreeVersionPtr = std::shared_ptr<const TreeVersion>;

}  // namespace iamdb
