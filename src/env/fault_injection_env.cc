#include "env/fault_injection_env.h"

#include <algorithm>
#include <vector>

namespace iamdb {

// Forwards writes to the target file, reporting sizes back to the env so
// it can track the unsynced tail, and consulting the env's fault state
// before every mutating call.
class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(std::string fname,
                             std::unique_ptr<WritableFile> target,
                             FaultInjectionEnv* env)
      : fname_(std::move(fname)), target_(std::move(target)), env_(env) {}

  Status Append(const Slice& data) override {
    Status s = env_->MaybeInject(kFaultWrite, fname_);
    if (!s.ok()) return s;
    s = target_->Append(data);
    if (s.ok()) env_->RecordAppend(fname_, data.size());
    return s;
  }

  Status Close() override { return target_->Close(); }
  Status Flush() override { return target_->Flush(); }

  Status Sync() override {
    Status s = env_->MaybeInject(kFaultSync, fname_);
    if (!s.ok()) return s;
    s = target_->Sync();
    if (s.ok()) env_->RecordSync(fname_);
    return s;
  }

 private:
  const std::string fname_;
  std::unique_ptr<WritableFile> target_;
  FaultInjectionEnv* env_;
};

// Read-side wrapper: consults the env's error schedule before every device
// read.  ReadV draws the schedule once per segment so a vectored batch
// replays identically to the equivalent loop of Read() calls; segments that
// draw a fault fail individually and the survivors are still issued.
class FaultInjectionRandomAccessFile final : public RandomAccessFile {
 public:
  FaultInjectionRandomAccessFile(std::string fname,
                                 std::unique_ptr<RandomAccessFile> target,
                                 FaultInjectionEnv* env)
      : fname_(std::move(fname)), target_(std::move(target)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = env_->MaybeInjectRead(fname_);
    if (!s.ok()) return s;
    return target_->Read(offset, n, result, scratch);
  }

  Status ReadV(ReadRequest* reqs, size_t count) const override {
    Status first;
    std::vector<size_t> pass;
    std::vector<ReadRequest> sub;
    pass.reserve(count);
    sub.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      Status s = env_->MaybeInjectRead(fname_);
      if (!s.ok()) {
        reqs[i].status = s;
        reqs[i].result = Slice();
        if (first.ok()) first = s;
      } else {
        pass.push_back(i);
        sub.push_back(reqs[i]);
      }
    }
    if (!sub.empty()) {
      Status s = target_->ReadV(sub.data(), sub.size());
      if (!s.ok() && first.ok()) first = s;
      for (size_t i = 0; i < sub.size(); ++i) {
        reqs[pass[i]].result = sub[i].result;
        reqs[pass[i]].status = sub[i].status;
      }
    }
    return first;
  }

 private:
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> target_;
  FaultInjectionEnv* env_;
};

void FaultInjectionEnv::SetFilesystemActive(bool active) {
  std::lock_guard<std::mutex> l(mu_);
  active_ = active;
}

bool FaultInjectionEnv::IsFilesystemActive() const {
  std::lock_guard<std::mutex> l(mu_);
  return active_;
}

Status FaultInjectionEnv::DropUnsyncedFileData() {
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [fname, state] : files_) {
    if (state.size > state.synced_size) {
      Status s = target()->Truncate(fname, state.synced_size);
      if (!s.ok()) return s;
      state.size = state.synced_size;
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::DropRandomUnsyncedFileData(Random64* rng) {
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [fname, state] : files_) {
    if (state.size > state.synced_size) {
      uint64_t keep =
          state.synced_size + rng->Uniform(state.size - state.synced_size + 1);
      Status s = target()->Truncate(fname, keep);
      if (!s.ok()) return s;
      state.size = keep;
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::DeleteFilesCreatedAfterLastDirSync() {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<std::string> doomed;
  for (const auto& [fname, state] : files_) {
    // A successful Sync() persists the directory entry too (journaled-fs
    // model); only never-synced creations are lost.
    if (state.created_since_dir_sync && state.synced_size == 0) {
      doomed.push_back(fname);
    }
  }
  for (const auto& fname : doomed) {
    Status s = target()->RemoveFile(fname);
    if (!s.ok() && !s.IsNotFound()) return s;
    files_.erase(fname);
  }
  return Status::OK();
}

void FaultInjectionEnv::MarkDirSynced() {
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [fname, state] : files_) {
    state.created_since_dir_sync = false;
  }
}

void FaultInjectionEnv::SetErrorSchedule(uint32_t mask, uint64_t seed,
                                         uint32_t one_in,
                                         uint64_t max_failures) {
  std::lock_guard<std::mutex> l(mu_);
  schedule_mask_ = mask;
  schedule_one_in_ = one_in;
  schedule_rng_ = Random64(seed);
  schedule_bounded_ = max_failures > 0;
  schedule_failures_left_ = max_failures;
}

void FaultInjectionEnv::ClearErrorSchedule() {
  std::lock_guard<std::mutex> l(mu_);
  schedule_mask_ = 0;
  schedule_one_in_ = 0;
}

void FaultInjectionEnv::SetWriteBudget(int64_t budget) {
  std::lock_guard<std::mutex> l(mu_);
  budget_ = budget;
}

void FaultInjectionEnv::Heal() {
  std::lock_guard<std::mutex> l(mu_);
  active_ = true;
  budget_ = -1;
  schedule_mask_ = 0;
  schedule_one_in_ = 0;
}

uint64_t FaultInjectionEnv::UnsyncedBytes() const {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t total = 0;
  for (const auto& [fname, state] : files_) {
    total += state.size - state.synced_size;
  }
  return total;
}

Status FaultInjectionEnv::MaybeInject(FaultOp op, const std::string& ctx) {
  std::lock_guard<std::mutex> l(mu_);
  if (!active_) return Status::IOError("injected: filesystem inactive", ctx);
  if (budget_ >= 0) {
    // The budget charges the whole write path, matching the historical
    // FaultyEnv: create/append-open/write/sync each consume one unit.
    if (op != kFaultRename) {
      if (budget_ == 0) return Status::IOError("injected: budget", ctx);
      budget_--;
    }
  }
  if (schedule_one_in_ != 0 && (schedule_mask_ & op) != 0 &&
      (!schedule_bounded_ || schedule_failures_left_ > 0)) {
    if (schedule_rng_.Uniform(schedule_one_in_) == 0) {
      if (schedule_bounded_) schedule_failures_left_--;
      return Status::IOError("injected: scheduled fault", ctx);
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::MaybeInjectRead(const std::string& ctx) {
  std::lock_guard<std::mutex> l(mu_);
  if (schedule_one_in_ != 0 && (schedule_mask_ & kFaultRead) != 0 &&
      (!schedule_bounded_ || schedule_failures_left_ > 0)) {
    if (schedule_rng_.Uniform(schedule_one_in_) == 0) {
      if (schedule_bounded_) schedule_failures_left_--;
      return Status::IOError("injected: scheduled fault", ctx);
    }
  }
  return Status::OK();
}

void FaultInjectionEnv::RecordAppend(const std::string& fname, uint64_t n) {
  std::lock_guard<std::mutex> l(mu_);
  files_[fname].size += n;
}

void FaultInjectionEnv::RecordSync(const std::string& fname) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(fname);
  if (it != files_.end()) it->second.synced_size = it->second.size;
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  Status s = EnvWrapper::NewRandomAccessFile(fname, result);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultInjectionRandomAccessFile>(
      fname, std::move(*result), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = MaybeInject(kFaultAllocate, fname);
  if (!s.ok()) return s;
  s = EnvWrapper::NewWritableFile(fname, result);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> l(mu_);
    FileState state;  // created empty: everything from here is unsynced
    state.created_since_dir_sync = true;
    files_[fname] = state;
  }
  *result = std::make_unique<FaultInjectionWritableFile>(
      fname, std::move(*result), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = MaybeInject(kFaultAllocate, fname);
  if (!s.ok()) return s;
  s = EnvWrapper::NewAppendableFile(fname, result);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      // Pre-existing file opened for append (or the file is new): its
      // current contents predate this env, so treat them as durable.
      uint64_t size = 0;
      target()->GetFileSize(fname, &size);
      FileState state;
      state.size = size;
      state.synced_size = size;
      state.created_since_dir_sync = (size == 0);
      files_[fname] = state;
    }
  }
  *result = std::make_unique<FaultInjectionWritableFile>(
      fname, std::move(*result), this);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!active_) {
      return Status::IOError("injected: filesystem inactive", fname);
    }
  }
  Status s = EnvWrapper::RemoveFile(fname);
  if (s.ok()) {
    std::lock_guard<std::mutex> l(mu_);
    files_.erase(fname);
  }
  return s;
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target_name) {
  Status s = MaybeInject(kFaultRename, src);
  if (!s.ok()) return s;
  s = EnvWrapper::RenameFile(src, target_name);
  if (s.ok()) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      files_[target_name] = it->second;
      files_.erase(it);
    }
  }
  return s;
}

Status FaultInjectionEnv::CreateDir(const std::string& dirname) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!active_) {
      return Status::IOError("injected: filesystem inactive", dirname);
    }
  }
  return EnvWrapper::CreateDir(dirname);
}

Status FaultInjectionEnv::RemoveDir(const std::string& dirname) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!active_) {
      return Status::IOError("injected: filesystem inactive", dirname);
    }
  }
  return EnvWrapper::RemoveDir(dirname);
}

Status FaultInjectionEnv::Truncate(const std::string& fname, uint64_t size) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!active_) {
      return Status::IOError("injected: filesystem inactive", fname);
    }
  }
  Status s = EnvWrapper::Truncate(fname, size);
  if (s.ok()) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(fname);
    if (it != files_.end()) {
      it->second.size = std::min(it->second.size, size);
      it->second.synced_size = std::min(it->second.synced_size, size);
    }
  }
  return s;
}

}  // namespace iamdb
