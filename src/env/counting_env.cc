#include "env/counting_env.h"

namespace iamdb {

namespace {

class CountingSequentialFile final : public SequentialFile {
 public:
  CountingSequentialFile(std::unique_ptr<SequentialFile> target,
                         IoStats* stats)
      : target_(std::move(target)), stats_(stats) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = target_->Read(n, result, scratch);
    if (s.ok() && !result->empty()) {
      stats_->RecordRead(result->size());
      OpIoScope::RecordRead(result->size());
    }
    return s;
  }

  Status Skip(uint64_t n) override { return target_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> target_;
  IoStats* stats_;
};

class CountingRandomAccessFile final : public RandomAccessFile {
 public:
  CountingRandomAccessFile(std::unique_ptr<RandomAccessFile> target,
                           IoStats* stats)
      : target_(std::move(target)), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = target_->Read(offset, n, result, scratch);
    if (s.ok()) {
      stats_->RecordRead(result->size());
      OpIoScope::RecordRead(result->size());
    }
    return s;
  }

  // Charges one "seek" per contiguous run of segments, so coalesced batch
  // reads show up as fewer read_ops than the same blocks read one by one.
  Status ReadV(ReadRequest* reqs, size_t count) const override {
    Status s = target_->ReadV(reqs, count);
    uint64_t bytes = 0;
    uint64_t seeks = 0;
    for (size_t i = 0; i < count; ++i) {
      if (!reqs[i].status.ok()) continue;
      bytes += reqs[i].result.size();
      if (i == 0 || !reqs[i - 1].status.ok() ||
          reqs[i].offset != reqs[i - 1].offset + reqs[i - 1].n) {
        ++seeks;
      }
    }
    if (seeks > 0) {
      stats_->RecordReadV(bytes, seeks);
      OpIoScope::RecordReadV(bytes, seeks);
    }
    return s;
  }

 private:
  std::unique_ptr<RandomAccessFile> target_;
  IoStats* stats_;
};

class CountingWritableFile final : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> target, IoStats* stats)
      : target_(std::move(target)), stats_(stats) {}

  Status Append(const Slice& data) override {
    Status s = target_->Append(data);
    if (s.ok()) {
      stats_->RecordWrite(data.size());
      OpIoScope::RecordWrite(data.size());
    }
    return s;
  }
  Status Close() override { return target_->Close(); }
  Status Flush() override { return target_->Flush(); }
  Status Sync() override {
    stats_->RecordSync();
    return target_->Sync();
  }

 private:
  std::unique_ptr<WritableFile> target_;
  IoStats* stats_;
};

}  // namespace

Status CountingEnv::NewSequentialFile(const std::string& fname,
                                      std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> inner;
  Status s = target()->NewSequentialFile(fname, &inner);
  if (s.ok()) {
    *result =
        std::make_unique<CountingSequentialFile>(std::move(inner), stats_);
  }
  return s;
}

Status CountingEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> inner;
  Status s = target()->NewRandomAccessFile(fname, &inner);
  if (s.ok()) {
    *result =
        std::make_unique<CountingRandomAccessFile>(std::move(inner), stats_);
  }
  return s;
}

Status CountingEnv::NewWritableFile(const std::string& fname,
                                    std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> inner;
  Status s = target()->NewWritableFile(fname, &inner);
  if (s.ok()) {
    *result = std::make_unique<CountingWritableFile>(std::move(inner), stats_);
  }
  return s;
}

Status CountingEnv::NewAppendableFile(const std::string& fname,
                                      std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> inner;
  Status s = target()->NewAppendableFile(fname, &inner);
  if (s.ok()) {
    *result = std::make_unique<CountingWritableFile>(std::move(inner), stats_);
  }
  return s;
}

}  // namespace iamdb
