#include "env/throttled_env.h"

namespace iamdb {

void ThrottledEnv::Charge(double modeled_micros) {
  charged_micros_.fetch_add(static_cast<uint64_t>(modeled_micros),
                            std::memory_order_relaxed);
  const uint64_t cost = static_cast<uint64_t>(modeled_micros * scale_);
  Env* wall = Env::Default();
  uint64_t now = wall->NowMicros();
  uint64_t done;
  {
    std::lock_guard<std::mutex> l(queue_mu_);
    uint64_t start = std::max(now, device_free_at_);
    done = start + cost;
    device_free_at_ = done;
  }
  // Sleep until this request's scaled completion; skip sub-granularity
  // waits (they still advanced the queue, so later requests pay them).
  if (done > now + 100) {
    wall->SleepForMicroseconds(static_cast<int>(done - now));
  }
}

namespace {

class ThrottledSequentialFile final : public SequentialFile {
 public:
  ThrottledSequentialFile(std::unique_ptr<SequentialFile> target,
                          ThrottledEnv* env, const DeviceModel& model)
      : target_(std::move(target)), env_(env), model_(model) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = target_->Read(n, result, scratch);
    if (s.ok() && !result->empty()) {
      // Sequential: bandwidth only (the dispatch seek amortizes away).
      env_->Charge(model_.ReadMicros(0, result->size()));
    }
    return s;
  }
  Status Skip(uint64_t n) override { return target_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> target_;
  ThrottledEnv* env_;
  const DeviceModel& model_;
};

class ThrottledRandomAccessFile final : public RandomAccessFile {
 public:
  ThrottledRandomAccessFile(std::unique_ptr<RandomAccessFile> target,
                            ThrottledEnv* env, const DeviceModel& model)
      : target_(std::move(target)), env_(env), model_(model) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = target_->Read(offset, n, result, scratch);
    if (s.ok()) {
      env_->Charge(model_.ReadMicros(1, result->size()));
    }
    return s;
  }

 private:
  std::unique_ptr<RandomAccessFile> target_;
  ThrottledEnv* env_;
  const DeviceModel& model_;
};

class ThrottledWritableFile final : public WritableFile {
 public:
  ThrottledWritableFile(std::unique_ptr<WritableFile> target,
                        ThrottledEnv* env, const DeviceModel& model)
      : target_(std::move(target)), env_(env), model_(model) {}

  Status Append(const Slice& data) override {
    Status s = target_->Append(data);
    if (s.ok()) {
      env_->Charge(model_.WriteMicros(1, data.size()));
    }
    return s;
  }
  Status Close() override { return target_->Close(); }
  Status Flush() override { return target_->Flush(); }
  Status Sync() override {
    // A sync is a device round trip: charge one dispatch.
    env_->Charge(model_.profile().seek_latency_us);
    return target_->Sync();
  }

 private:
  std::unique_ptr<WritableFile> target_;
  ThrottledEnv* env_;
  const DeviceModel& model_;
};

}  // namespace

Status ThrottledEnv::NewSequentialFile(const std::string& fname,
                                       std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> inner;
  Status s = target()->NewSequentialFile(fname, &inner);
  if (s.ok()) {
    *result = std::make_unique<ThrottledSequentialFile>(std::move(inner), this,
                                                        model_);
  }
  return s;
}

Status ThrottledEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> inner;
  Status s = target()->NewRandomAccessFile(fname, &inner);
  if (s.ok()) {
    *result = std::make_unique<ThrottledRandomAccessFile>(std::move(inner),
                                                          this, model_);
  }
  return s;
}

Status ThrottledEnv::NewWritableFile(const std::string& fname,
                                     std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> inner;
  Status s = target()->NewWritableFile(fname, &inner);
  if (s.ok()) {
    *result =
        std::make_unique<ThrottledWritableFile>(std::move(inner), this, model_);
  }
  return s;
}

Status ThrottledEnv::NewAppendableFile(const std::string& fname,
                                       std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> inner;
  Status s = target()->NewAppendableFile(fname, &inner);
  if (s.ok()) {
    *result =
        std::make_unique<ThrottledWritableFile>(std::move(inner), this, model_);
  }
  return s;
}

}  // namespace iamdb
