// In-memory filesystem Env.  Deterministic and fast; the default substrate
// for unit tests and for benchmarks whose timing comes from the device model
// rather than real disks.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"

namespace iamdb {

class MemEnv final : public Env {
 public:
  MemEnv() = default;
  ~MemEnv() override = default;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  uint64_t NowMicros() override;
  void SleepForMicroseconds(int micros) override;

  // Truncate a file to `size` bytes; simulates a crash that tore the tail
  // off a log (failure-injection tests).
  Status Truncate(const std::string& fname, uint64_t size) override;

  // Total bytes currently stored across all files (space-usage accounting).
  uint64_t TotalBytes();

 private:
  struct FileState {
    std::mutex mu;
    std::string contents;
  };
  using FileRef = std::shared_ptr<FileState>;

  friend class MemSequentialFile;
  friend class MemRandomAccessFile;
  friend class MemWritableFile;

  std::mutex mu_;
  std::map<std::string, FileRef> files_;
};

}  // namespace iamdb
