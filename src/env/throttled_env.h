// ThrottledEnv: couples modeled device time to wall time.  Every read and
// write sleeps for its DeviceModel cost scaled by `time_scale`, so the
// writer, readers and background compactions genuinely contend for a
// device that moves at a bounded rate — the dynamic a pure
// price-the-IO-afterwards model cannot express (write stalls, compaction
// debt that persists into a measurement window, the paper's "tuning
// phase").
//
// time_scale = 0.01 runs a simulated HDD 100x faster than real time while
// preserving every ratio between operations.  Sub-sleep-granularity costs
// accumulate per thread and are paid in batches.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "env/env.h"
#include "stats/device_model.h"

namespace iamdb {

class ThrottledEnv final : public EnvWrapper {
 public:
  ThrottledEnv(Env* target, DeviceProfile profile, double time_scale)
      : EnvWrapper(target), model_(std::move(profile)), scale_(time_scale) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;

  // Total modeled device-busy microseconds charged so far (unscaled).
  uint64_t charged_micros() const {
    return charged_micros_.load(std::memory_order_relaxed);
  }

  // Charge `modeled_micros` of device time: the device is a single server,
  // so the request queues behind all previously charged I/O (from any
  // thread) and the caller sleeps until its scaled completion time.  This
  // is what makes background compaction traffic visibly steal bandwidth
  // from foreground operations.
  void Charge(double modeled_micros);

 private:
  DeviceModel model_;
  double scale_;
  std::atomic<uint64_t> charged_micros_{0};
  std::mutex queue_mu_;
  uint64_t device_free_at_ = 0;  // wall micros when the device frees up
};

}  // namespace iamdb
