// Real-filesystem Env on POSIX.  Used by examples and disk-backed benches;
// unit tests mostly run on MemEnv for speed and determinism.
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "env/env.h"

namespace iamdb {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) return Status::NotFound(context, strerror(err));
  return Status::IOError(context, strerror(err));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, r);
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, n, SEEK_CUR) == static_cast<off_t>(-1)) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, r);
    return Status::OK();
  }

  // Segments that are contiguous on disk share one preadv; a short read
  // inside a run leaves the tail segments with short/empty results, matching
  // pread's past-EOF behavior.
  Status ReadV(ReadRequest* reqs, size_t count) const override {
    Status first;
    size_t run_start = 0;
    while (run_start < count) {
      size_t run_end = run_start + 1;
      while (run_end < count &&
             reqs[run_end].offset ==
                 reqs[run_end - 1].offset + reqs[run_end - 1].n) {
        ++run_end;
      }
      Status s = ReadRun(reqs + run_start, run_end - run_start);
      if (!s.ok() && first.ok()) first = s;
      run_start = run_end;
    }
    return first;
  }

 private:
  static constexpr size_t kMaxIov = 64;  // well under IOV_MAX everywhere

  Status ReadRun(ReadRequest* reqs, size_t count) const {
    Status first;
    size_t i = 0;
    while (i < count) {
      size_t batch = std::min(count - i, kMaxIov);
      struct iovec iov[kMaxIov];
      size_t total = 0;
      for (size_t j = 0; j < batch; ++j) {
        iov[j].iov_base = reqs[i + j].scratch;
        iov[j].iov_len = reqs[i + j].n;
        total += reqs[i + j].n;
      }
      ssize_t r = ::preadv(fd_, iov, static_cast<int>(batch),
                           static_cast<off_t>(reqs[i].offset));
      if (r < 0) {
        Status err = PosixError(fname_, errno);
        for (size_t j = 0; j < batch; ++j) reqs[i + j].status = err;
        if (first.ok()) first = err;
        i += batch;
        continue;
      }
      size_t got = static_cast<size_t>(r);
      for (size_t j = 0; j < batch; ++j) {
        size_t len = std::min(got, reqs[i + j].n);
        reqs[i + j].result = Slice(reqs[i + j].scratch, len);
        reqs[i + j].status = Status::OK();
        got -= len;
      }
      if (static_cast<size_t>(r) < total) {
        // Short read (EOF): remaining segments in this run are empty.
        for (size_t j = i + batch; j < count; ++j) {
          reqs[j].result = Slice();
          reqs[j].status = Status::OK();
        }
        break;
      }
      i += batch;
    }
    return first;
  }

  const std::string fname_;
  const int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) Close();
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t n = data.size();
    while (n > 0) {
      ssize_t r = ::write(fd_, p, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += r;
      n -= r;
    }
    return Status::OK();
  }

  Status Close() override {
    Status s;
    if (fd_ >= 0 && ::close(fd_) < 0) s = PosixError(fname_, errno);
    fd_ = -1;
    return s;
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    if (::fdatasync(fd_) < 0) return PosixError(fname_, errno);
    return Status::OK();
  }

 private:
  const std::string fname_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixRandomAccessFile>(fname, fd);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    return OpenWritable(fname, O_TRUNC, result);
  }

  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override {
    return OpenWritable(fname, O_APPEND, result);
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    ::DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return PosixError(dir, errno);
    struct ::dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      if (strcmp(entry->d_name, ".") == 0 || strcmp(entry->d_name, "..") == 0)
        continue;
      result->emplace_back(entry->d_name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) return PosixError(dirname, errno);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct ::stat st;
    if (::stat(fname.c_str(), &st) != 0) {
      *size = 0;
      return PosixError(fname, errno);
    }
    *size = st.st_size;
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }

  Status Truncate(const std::string& fname, uint64_t size) override {
    struct ::stat st;
    if (::stat(fname.c_str(), &st) != 0) return PosixError(fname, errno);
    if (static_cast<uint64_t>(st.st_size) <= size) return Status::OK();
    if (::truncate(fname.c_str(), static_cast<off_t>(size)) != 0) {
      return PosixError(fname, errno);
    }
    return Status::OK();
  }

  uint64_t NowMicros() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepForMicroseconds(int micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }

 private:
  static Status OpenWritable(const std::string& fname, int extra_flags,
                             std::unique_ptr<WritableFile>* result) {
    int fd = ::open(fname.c_str(),
                    O_WRONLY | O_CREAT | O_CLOEXEC | extra_flags, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // intentionally leaked singleton
  return env;
}

}  // namespace iamdb
