#include "env/mem_env.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace iamdb {

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(std::shared_ptr<MemEnv::FileState> file)
      : file_(std::move(file)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    std::lock_guard<std::mutex> l(file_->mu);
    if (pos_ >= file_->contents.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t avail = file_->contents.size() - pos_;
    size_t len = std::min(n, avail);
    std::memcpy(scratch, file_->contents.data() + pos_, len);
    pos_ += len;
    *result = Slice(scratch, len);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    std::lock_guard<std::mutex> l(file_->mu);
    pos_ = std::min<uint64_t>(pos_ + n, file_->contents.size());
    return Status::OK();
  }

 private:
  std::shared_ptr<MemEnv::FileState> file_;
  uint64_t pos_ = 0;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<MemEnv::FileState> file)
      : file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    std::lock_guard<std::mutex> l(file_->mu);
    if (offset >= file_->contents.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t len = std::min<size_t>(n, file_->contents.size() - offset);
    std::memcpy(scratch, file_->contents.data() + offset, len);
    *result = Slice(scratch, len);
    return Status::OK();
  }

 private:
  std::shared_ptr<MemEnv::FileState> file_;
};

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<MemEnv::FileState> file)
      : file_(std::move(file)) {}

  Status Append(const Slice& data) override {
    std::lock_guard<std::mutex> l(file_->mu);
    file_->contents.append(data.data(), data.size());
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }

 private:
  std::shared_ptr<MemEnv::FileState> file_;
};

Status MemEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  *result = std::make_unique<MemSequentialFile>(it->second);
  return Status::OK();
}

Status MemEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  *result = std::make_unique<MemRandomAccessFile>(it->second);
  return Status::OK();
}

Status MemEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  std::lock_guard<std::mutex> l(mu_);
  auto file = std::make_shared<FileState>();
  files_[fname] = file;
  *result = std::make_unique<MemWritableFile>(std::move(file));
  return Status::OK();
}

Status MemEnv::NewAppendableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(fname);
  FileRef file;
  if (it == files_.end()) {
    file = std::make_shared<FileState>();
    files_[fname] = file;
  } else {
    file = it->second;
  }
  *result = std::make_unique<MemWritableFile>(std::move(file));
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& fname) {
  std::lock_guard<std::mutex> l(mu_);
  return files_.count(fname) > 0;
}

Status MemEnv::GetChildren(const std::string& dir,
                           std::vector<std::string>* result) {
  result->clear();
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [name, _] : files_) {
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.find('/', prefix.size()) == std::string::npos) {
      result->push_back(name.substr(prefix.size()));
    }
  }
  return Status::OK();
}

Status MemEnv::RemoveFile(const std::string& fname) {
  std::lock_guard<std::mutex> l(mu_);
  if (files_.erase(fname) == 0) return Status::NotFound(fname);
  return Status::OK();
}

Status MemEnv::CreateDir(const std::string&) { return Status::OK(); }
Status MemEnv::RemoveDir(const std::string&) { return Status::OK(); }

Status MemEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) {
    *size = 0;
    return Status::NotFound(fname);
  }
  std::lock_guard<std::mutex> fl(it->second->mu);
  *size = it->second->contents.size();
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& target) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound(src);
  files_[target] = it->second;
  files_.erase(it);
  return Status::OK();
}

uint64_t MemEnv::NowMicros() { return Env::Default()->NowMicros(); }

// Sleeps are elided: MemEnv exists for fast deterministic tests/benches;
// timing comes from the device model, not the wall clock.
void MemEnv::SleepForMicroseconds(int) {}

uint64_t MemEnv::TotalBytes() {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t total = 0;
  for (const auto& [_, file] : files_) {
    std::lock_guard<std::mutex> fl(file->mu);
    total += file->contents.size();
  }
  return total;
}

Status MemEnv::Truncate(const std::string& fname, uint64_t size) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  std::lock_guard<std::mutex> fl(it->second->mu);
  if (size < it->second->contents.size()) it->second->contents.resize(size);
  return Status::OK();
}

}  // namespace iamdb
