// Env: the operating-system boundary.  All file and clock access goes through
// this interface so the engines can run on a real filesystem (PosixEnv), an
// in-memory filesystem for fast deterministic tests (MemEnv), or an
// I/O-accounting wrapper (CountingEnv) that feeds the device model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace iamdb {

// Sequential read of a whole file (WAL/manifest recovery).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  // Read up to n bytes; *result points into scratch (or internal storage).
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

// One segment of a vectored positional read (RandomAccessFile::ReadV).
// offset/n/scratch are inputs; result/status are filled per segment.
struct ReadRequest {
  uint64_t offset = 0;
  size_t n = 0;
  char* scratch = nullptr;  // destination, at least n bytes
  Slice result;             // points into scratch; may be short at EOF
  Status status;
};

// Positional reads (table blocks).  Must be usable from multiple threads
// concurrently.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;

  // Vectored positional read.  Every segment is attempted and gets its own
  // result/status; the return value is the first non-OK segment status (or
  // OK).  The default loops over Read() so every Env and wrapper composes;
  // implementations may override to issue fewer device operations for
  // segments that are contiguous on disk (PosixEnv uses preadv).
  virtual Status ReadV(ReadRequest* reqs, size_t count) const;
};

// Append-only writer (WAL, table builds, MSTable appends).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  // Open for append, creating if missing (MSTable growth).
  virtual Status NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;
  // Shrink a file to at most `size` bytes (no-op if already smaller).
  // Models a crash tearing the tail off a log; used by failure injection.
  virtual Status Truncate(const std::string& fname, uint64_t size) = 0;

  virtual uint64_t NowMicros() = 0;
  virtual void SleepForMicroseconds(int micros) = 0;

  // Process-wide real filesystem Env; never deleted.
  static Env* Default();
};

// Convenience helpers built on the interface.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname,
                         bool sync);
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

// Forward-everything wrapper; subclasses override what they instrument.
class EnvWrapper : public Env {
 public:
  explicit EnvWrapper(Env* t) : target_(t) {}

  Status NewSequentialFile(const std::string& f,
                           std::unique_ptr<SequentialFile>* r) override {
    return target_->NewSequentialFile(f, r);
  }
  Status NewRandomAccessFile(const std::string& f,
                             std::unique_ptr<RandomAccessFile>* r) override {
    return target_->NewRandomAccessFile(f, r);
  }
  Status NewWritableFile(const std::string& f,
                         std::unique_ptr<WritableFile>* r) override {
    return target_->NewWritableFile(f, r);
  }
  Status NewAppendableFile(const std::string& f,
                           std::unique_ptr<WritableFile>* r) override {
    return target_->NewAppendableFile(f, r);
  }
  bool FileExists(const std::string& f) override {
    return target_->FileExists(f);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* r) override {
    return target_->GetChildren(dir, r);
  }
  Status RemoveFile(const std::string& f) override {
    return target_->RemoveFile(f);
  }
  Status CreateDir(const std::string& d) override {
    return target_->CreateDir(d);
  }
  Status RemoveDir(const std::string& d) override {
    return target_->RemoveDir(d);
  }
  Status GetFileSize(const std::string& f, uint64_t* s) override {
    return target_->GetFileSize(f, s);
  }
  Status RenameFile(const std::string& s, const std::string& t) override {
    return target_->RenameFile(s, t);
  }
  Status Truncate(const std::string& f, uint64_t size) override {
    return target_->Truncate(f, size);
  }
  uint64_t NowMicros() override { return target_->NowMicros(); }
  void SleepForMicroseconds(int micros) override {
    target_->SleepForMicroseconds(micros);
  }

  Env* target() const { return target_; }

 private:
  Env* target_;
};

}  // namespace iamdb
