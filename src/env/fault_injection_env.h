// Crash- and fault-injection Env.  Wraps any target Env and tracks, per
// file, how many bytes have been written but not yet Sync()ed, so a test
// can simulate the two halves of a crash:
//
//   1. SetFilesystemActive(false)        — the instant of the crash: every
//      mutating operation starts failing (reads keep working so in-flight
//      background work drains with errors instead of hanging);
//   2. DropUnsyncedFileData() / DropRandomUnsyncedFileData() /
//      DeleteFilesCreatedAfterLastDirSync() — the state the disk is left
//      in: unsynced tails truncated away (exactly, or to a seeded random
//      tear point), and files whose creation was never made durable
//      removed entirely.
//
// The durability model matches a journaled POSIX filesystem: a successful
// WritableFile::Sync() persists both the file's bytes and its directory
// entry; a rename of a synced file is durable.  Files created since the
// last MarkDirSynced() that were never synced are lost by a crash.
//
// Independent of crash simulation, deterministic per-op error schedules
// (write/sync/rename/allocate) and a write-budget countdown let tests
// exercise error-path handling with seed-exact replay.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "env/env.h"
#include "util/random.h"

namespace iamdb {

// Operation classes an error schedule can target (bitmask).
enum FaultOp : uint32_t {
  kFaultWrite = 1u << 0,     // WritableFile::Append
  kFaultSync = 1u << 1,      // WritableFile::Sync
  kFaultRename = 1u << 2,    // Env::RenameFile
  kFaultAllocate = 1u << 3,  // NewWritableFile / NewAppendableFile
  kFaultRead = 1u << 4,      // RandomAccessFile::Read / ReadV (per segment)
};

class FaultInjectionEnv : public EnvWrapper {
 public:
  explicit FaultInjectionEnv(Env* target) : EnvWrapper(target) {}

  // ---- crash simulation ----

  void SetFilesystemActive(bool active);
  bool IsFilesystemActive() const;

  // Truncates every tracked file back to its last synced size.
  Status DropUnsyncedFileData();

  // Truncates each tracked file to a seeded random point within its
  // unsynced tail (a torn write: some prefix of the unsynced bytes made it
  // to the platter).
  Status DropRandomUnsyncedFileData(Random64* rng);

  // Removes files created since the last MarkDirSynced() whose directory
  // entry was never made durable (no successful Sync() yet).
  Status DeleteFilesCreatedAfterLastDirSync();

  // Declares the directory durable as-is (call after a clean DB::Open).
  void MarkDirSynced();

  // ---- deterministic error schedules ----

  // Ops in `mask` fail with probability 1/one_in, driven by `seed` for
  // exact replay.  max_failures bounds the total injected failures
  // (0 = unlimited).  one_in == 0 disables the schedule.
  void SetErrorSchedule(uint32_t mask, uint64_t seed, uint32_t one_in,
                        uint64_t max_failures = 0);
  void ClearErrorSchedule();

  // Write-path budget: allocate/write/sync operations succeed until
  // `budget` of them have been charged, then all fail until Heal().
  void SetWriteBudget(int64_t budget);

  // Clears the budget and error schedule and reactivates the filesystem.
  void Heal();

  // Bytes currently written-but-unsynced across all tracked files.
  uint64_t UnsyncedBytes() const;

  // ---- Env overrides ----

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status Truncate(const std::string& fname, uint64_t size) override;

 private:
  friend class FaultInjectionWritableFile;
  friend class FaultInjectionRandomAccessFile;

  struct FileState {
    uint64_t size = 0;         // bytes appended so far
    uint64_t synced_size = 0;  // durable prefix
    bool created_since_dir_sync = false;
  };

  // Returns the injected error for `op` on `ctx`, or OK.  Charges the
  // budget and advances the schedule RNG (so replay is exact).
  Status MaybeInject(FaultOp op, const std::string& ctx);

  // Read-path injection: consults only the error schedule (reads keep
  // working across crash simulation and never charge the write budget).
  // One schedule draw per segment, so a ReadV of N segments replays
  // identically to N Read() calls.
  Status MaybeInjectRead(const std::string& ctx);

  void RecordAppend(const std::string& fname, uint64_t n);
  void RecordSync(const std::string& fname);

  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;
  bool active_ = true;
  int64_t budget_ = -1;  // <0: no budget armed
  uint32_t schedule_mask_ = 0;
  uint32_t schedule_one_in_ = 0;
  uint64_t schedule_failures_left_ = 0;  // 0 with mask set = unlimited
  bool schedule_bounded_ = false;
  Random64 schedule_rng_{0};
};

}  // namespace iamdb
