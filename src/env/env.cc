#include "env/env.h"

namespace iamdb {

Status RandomAccessFile::ReadV(ReadRequest* reqs, size_t count) const {
  Status first;
  for (size_t i = 0; i < count; ++i) {
    ReadRequest& r = reqs[i];
    r.status = Read(r.offset, r.n, &r.result, r.scratch);
    if (!r.status.ok() && first.ok()) first = r.status;
  }
  return first;
}

Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname,
                         bool sync) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(data);
  if (s.ok() && sync) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) env->RemoveFile(fname);
  return s;
}

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  static const int kBufferSize = 8192;
  auto space = std::make_unique<char[]>(kBufferSize);
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, space.get());
    if (!s.ok()) break;
    data->append(fragment.data(), fragment.size());
    if (fragment.empty()) break;
  }
  return s;
}

}  // namespace iamdb
