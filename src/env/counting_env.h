// CountingEnv: wraps any Env and records every byte and every positional
// read into an IoStats sink plus the calling thread's OpIoContext.  This is
// how write amplification, read amplification and modeled device time are
// measured without touching engine code.
#pragma once

#include "env/env.h"
#include "stats/io_stats.h"

namespace iamdb {

class CountingEnv final : public EnvWrapper {
 public:
  CountingEnv(Env* target, IoStats* stats)
      : EnvWrapper(target), stats_(stats) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;

  IoStats* stats() const { return stats_; }

 private:
  IoStats* stats_;
};

}  // namespace iamdb
