// The tuning phase, measured on a wall-coupled simulated device
// (ThrottledEnv): the simulated HDD is a single server shared by
// foreground reads and background compaction, so leftover compaction work
// visibly steals read bandwidth right after a load (paper Sec 6.4: "it
// takes time for the system to become stable").
//
// Reported: read-only throughput in consecutive time slices after an
// unsettled hash load, normalized to each system's own final (stable)
// slice.  A slow climb to 1.0 = a long tuning phase.
//
// Honest finding (see EXPERIMENTS.md): every engine exhibits a tuning
// phase of similar depth here.  The paper's LevelDB-specific penalty came
// from multi-level overflow accumulated during their loads; with the
// writer device-coupled, compaction keeps pace during the load and that
// overflow never forms.  The transient itself — reads recovering as debt
// drains — is what this bench demonstrates.
#include <cstdio>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "env/throttled_env.h"
#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.15);
  ScaleConfig config = ScaleConfig::Gb100();
  config.num_records = Scaled(config.num_records, scale);

  // 1/300 of real HDD time: a 100GB-scale load's minutes of device time
  // compress to seconds while every inter-operation ratio is preserved.
  const double kTimeScale = 1.0 / 300.0;
  const int kSlices = 6;
  const uint64_t kReadsPerSlice = 600;

  std::printf(
      "=== Tuning phase on a wall-coupled simulated HDD (scale %.2f) ===\n",
      scale);
  std::printf("rows: reads/s per slice after load, normalized to the final "
              "(stable) slice\n\n");

  struct Row {
    const char* name;
    std::vector<double> slices;
  };
  std::vector<Row> rows;

  for (SystemId id : {SystemId::kL, SystemId::kA1, SystemId::kI1}) {
    MemEnv mem;
    ThrottledEnv device(&mem, DeviceProfile::HDD(), kTimeScale);
    Options options = MakeOptions(id, config, &device);
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, "/tp", &db);
    if (!s.ok()) {
      std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return 1;
    }

    // Unsettled load: the device-coupled writer is throttled naturally
    // (flush stalls), and whatever debt remains is the tuning phase.
    for (uint64_t i = 0; i < config.num_records; i++) {
      db->Put(WriteOptions(), HashedKey(i),
              MakeValue(i, config.value_size));
    }

    // Read-only slices, back to back, while compaction drains behind.
    Row row{SystemName(id), {}};
    ScrambledZipfianGenerator zipf(config.num_records, 7);
    for (int slice = 0; slice < kSlices; slice++) {
      uint64_t t0 = Env::Default()->NowMicros();
      for (uint64_t i = 0; i < kReadsPerSlice; i++) {
        std::string value;
        db->Get(ReadOptions(), HashedKey(zipf.Next()), &value);
      }
      double seconds = (Env::Default()->NowMicros() - t0) / 1e6;
      row.slices.push_back(kReadsPerSlice / seconds);
      if (slice == kSlices - 2) {
        // Give the last slice a truly stable baseline.
        db->WaitForQuiescence();
      }
    }
    rows.push_back(row);
    std::printf("  [%s done]\n", SystemName(id));
  }

  std::printf("\n  %-6s", "slice");
  for (const Row& row : rows) std::printf(" %8s", row.name);
  std::printf("\n");
  for (int slice = 0; slice < kSlices; slice++) {
    std::printf("  %-6d", slice);
    for (const Row& row : rows) {
      std::printf(" %8.2f", row.slices[slice] / row.slices.back());
    }
    std::printf("\n");
  }
  std::printf(
      "\nEvery engine's early slices sit below 1.0 while its leftover "
      "compaction drains — the tuning-phase transient itself.\n");
  return 0;
}
