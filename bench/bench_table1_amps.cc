// Table 1: the qualitative amplification matrix of LSM vs LSA vs IAM,
// measured.  Write amp from a hash load; scan read-amp as the number of
// positional disk reads ("seeks") per scanned node level with a cold
// cache; space amp as bytes-on-disk / live-bytes after an overwrite pass.
#include <cstdio>
#include <vector>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.4);
  ScaleConfig config = ScaleConfig::Gb100();
  config.num_records = Scaled(config.num_records, scale);
  // Small block cache => scans actually hit the "device" and the read-amp
  // difference (multi-sequence nodes) becomes visible.  The IAM tuner's
  // memory budget stays at the normal level (the "M" of Eq. 2 models
  // available memory, which we shrink only for the cache behaviour).
  config.tuner_budget_bytes = config.cache_bytes;
  config.cache_bytes = 4 << 20;
  const uint64_t n = config.num_records;

  std::printf("=== Table 1: measured amplification matrix ===\n");
  std::printf("  %-8s %10s %12s %10s\n", "system", "write-amp",
              "scan-seeks/op", "space-amp");

  for (SystemId id : {SystemId::kL, SystemId::kA1, SystemId::kI1}) {
    BenchDb bench(id, config);
    // Write amp: hash load + an overwrite pass (updates create garbage).
    Load(&bench, n / 2, /*ordered=*/false);
    Overwrite(&bench, n, /*random_order=*/true, 23);
    bench.db()->WaitForQuiescence();
    DbStats stats = bench.db()->GetStats();
    double write_amp = stats.total_write_amp;

    // Scan read amp: average positional reads per 100-record scan.
    WorkloadSpec scans;
    scans.scan = 1.0;
    scans.max_scan_len = 100;
    IoStatsSnapshot before = stats.io;
    RunResult r = RunWorkload(&bench, scans, 300, 31);
    IoStatsSnapshot delta = r.stats_after.io - before;
    double seeks_per_scan = static_cast<double>(delta.read_ops) / r.ops;

    // Space amp: physical footprint / live data.
    uint64_t live = bench.record_count() / 2 * (config.value_size + 20);
    double space_amp =
        static_cast<double>(r.stats_after.space_used_bytes) / live;

    std::printf("  %-8s %10.2f %12.1f %10.2f\n", SystemName(id), write_amp,
                seeks_per_scan, space_amp);
  }
  std::printf(
      "\nExpected ordering (paper Table 1): write LSA<IAM<LSM; scan "
      "LSM~IAM<<LSA; space LSM~IAM<LSA.\n");
  return 0;
}
