// Table 4: per-level write amplification after hash-loading the "1TB"
// dataset, for L, R-1t, R-4t, A-1t, A-4t, I-1t and I-4t.  The paper's key
// qualitative facts to reproduce: LSA levels all ~1; IAM ~1 above the
// mixed level, between 1 and t/2+1 at it, ~t/2+1 below; leveled engines
// several x per level; the leaf level mostly metadata moves for A/I.
#include <cstdio>
#include <vector>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.5);
  ScaleConfig config = ScaleConfig::Tb1();
  config.num_records = Scaled(config.num_records, scale);
  std::printf("=== Table 4: per-level write amp, hash load %llu records ===\n",
              static_cast<unsigned long long>(config.num_records));

  std::vector<std::pair<std::string, DbStats>> rows;
  for (SystemId id : {SystemId::kL, SystemId::kR1, SystemId::kR4,
                      SystemId::kA1, SystemId::kA4, SystemId::kI1,
                      SystemId::kI4}) {
    BenchDb bench(id, config);
    RunResult r = Load(&bench, config.num_records, /*ordered=*/false);
    rows.emplace_back(SystemName(id), r.stats_after);
    std::printf("  [%s done: m=%d k=%d]\n", SystemName(id),
                r.stats_after.mixed_level, r.stats_after.mixed_level_k);
  }
  // Leveled engines report L0..Ln at indices 0..n; AMT engines report the
  // paper's L1..Ln at indices 1..n (index 0 prints 0.00, the paper's "-").
  PrintLevelWriteAmps("\nTable 4 (rows = level index):", rows);
  return 0;
}
