// Table 2: the characteristics of trees with appends —
//   worst write case avoided | good sequential writes | scan support.
// LSM-trie fails the last two, FLSM the first two; LSA/IAM satisfy all
// three.  Measured here for LSA/IAM (plus the FLSM-style mode's
// sequential-write failure, cf. bench_flsm_seqwrite):
//
//  1. worst write case avoided: under a heavily skewed insert stream the
//     maximum fan-out (children of any node) stays < 2t — splits engage;
//  2. good sequential writes: ordered loads reach the tree with write
//     amplification ~1 (metadata moves, no rewrites);
//  3. scan support: range scans return every key in order (hash-based
//     LSM-trie cannot scan at all).
#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/db.h"
#include "core/manifest.h"
#include "env/mem_env.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

namespace {

// Maximum fan-out across all internal nodes, computed offline from the
// recovered manifest: children = next-level nodes overlapping the range.
int MaxFanout(Env* env, const std::string& dbdir) {
  RecoveredState state;
  if (!RecoverManifest(env, dbdir, &state).ok()) return -1;
  int max_children = 0;
  for (size_t level = 0; level + 1 < state.nodes.size(); level++) {
    for (const NodeEdit& node : state.nodes[level]) {
      int children = 0;
      for (const NodeEdit& child : state.nodes[level + 1]) {
        if (child.range_hi < node.range_lo || child.range_lo > node.range_hi)
          continue;
        children++;
      }
      max_children = std::max(max_children, children);
    }
  }
  return max_children;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.3);
  const int t = 10;
  uint64_t records = Scaled(120000, scale);

  std::printf("=== Table 2: append-tree characteristics, measured ===\n");
  std::printf("  %-8s %18s %16s %12s\n", "policy", "max fan-out (<2t?)",
              "fillseq wamp(~1?)", "scan ok?");

  for (AmtPolicy policy : {AmtPolicy::kLsa, AmtPolicy::kIam}) {
    const char* name = policy == AmtPolicy::kLsa ? "LSA" : "IAM";

    // 1. Worst write case: a skewed stream hammering two narrow key bands
    //    tries to pile children under few parents; splits must cap it.
    MemEnv env1;
    Options options;
    options.env = &env1;
    options.engine = EngineType::kAmt;
    options.amt.policy = policy;
    options.amt.fanout = t;
    options.node_capacity = 256 << 10;
    {
      std::unique_ptr<DB> db;
      if (!DB::Open(options, "/t2a", &db).ok()) return 1;
      Random64 rnd(7);
      std::string value(256, 'v');
      char key[40];
      for (uint64_t i = 0; i < records; i++) {
        // 90% of inserts in 2 narrow bands of a wide key space.
        uint64_t band = rnd.Next() % 10;
        uint64_t k = band < 9 ? (band % 2) * 900000000ull + rnd.Next() % 500000
                              : rnd.Next() % 1000000000ull;
        snprintf(key, sizeof(key), "user%012llu",
                 static_cast<unsigned long long>(k));
        db->Put(WriteOptions(), key, value);
      }
      db->WaitForQuiescence();
      db->FlushAll();
    }
    int max_fanout = MaxFanout(&env1, "/t2a");

    // 2. Sequential writes.
    MemEnv env2;
    options.env = &env2;
    double fillseq_wamp;
    {
      std::unique_ptr<DB> db;
      if (!DB::Open(options, "/t2b", &db).ok()) return 1;
      std::string value(256, 'v');
      for (uint64_t i = 0; i < records; i++) {
        db->Put(WriteOptions(), OrderedKey(i), value);
      }
      db->WaitForQuiescence();
      fillseq_wamp = db->GetStats().total_write_amp;

      // 3. Scan support: full ordered scan returns every key.
      std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
      uint64_t count = 0;
      std::string prev;
      bool ordered = true;
      for (iter->SeekToFirst(); iter->Valid(); iter->Next(), count++) {
        std::string cur = iter->key().ToString();
        if (!prev.empty() && prev >= cur) ordered = false;
        prev = cur;
      }
      bool scan_ok = ordered && count == records && iter->status().ok();

      std::printf("  %-8s %12d (2t=%d) %16.2f %12s\n", name, max_fanout,
                  2 * t, fillseq_wamp, scan_ok ? "yes" : "NO");
    }
  }
  std::printf(
      "\nPaper Table 2: LSM-trie fails sequential writes and scans; FLSM "
      "fails the worst write case and sequential writes (see "
      "bench_flsm_seqwrite); LSA/IAM satisfy all three.\n");
  return 0;
}
