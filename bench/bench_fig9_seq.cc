// Figure 9: sequential load (db_bench fillseq) and sequential read
// (readseq, a full-database long-range scan) on SSD and HDD.  Expected
// shape (paper Sec 6.6): fillseq near-equal for L/A/I (every system writes
// each record twice: log + one table write; LSA/IAM sink nodes by metadata
// moves) with RocksDB ~25% down from stalls; readseq best on IAM.
#include <cstdio>
#include <vector>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.5);
  ScaleConfig config = ScaleConfig::Gb100();
  config.num_records = Scaled(config.num_records, scale);

  std::printf("=== Figure 9: fillseq / readseq (scale %.2f) ===\n", scale);
  std::vector<SystemId> systems = {SystemId::kL, SystemId::kR1, SystemId::kA1,
                                   SystemId::kI1};

  std::vector<std::pair<std::string, double>> fill_ssd, fill_hdd;
  std::vector<std::pair<std::string, double>> read_ssd, read_hdd;
  std::vector<std::pair<std::string, double>> fill_wamp;

  for (SystemId id : systems) {
    BenchDb bench(id, config);
    RunResult fill = Load(&bench, config.num_records, /*ordered=*/true,
                          SettleMode::kSettleOutside,
                          /*pace_debt_bytes=*/3 << 20);
    fill_ssd.emplace_back(SystemName(id), fill.Throughput("SSD"));
    fill_hdd.emplace_back(SystemName(id), fill.Throughput("HDD"));
    fill_wamp.emplace_back(SystemName(id),
                           bench.db()->GetStats().total_write_amp);

    std::printf("  [%s fillseq wamp=%.2f]\n", SystemName(id),
                bench.db()->GetStats().total_write_amp);
    RunResult read = ReadSeq(&bench);
    // readseq throughput in records/s: each recorded op covers 100 records.
    read_ssd.emplace_back(SystemName(id), 100 * read.Throughput("SSD"));
    read_hdd.emplace_back(SystemName(id), 100 * read.Throughput("HDD"));
  }

  PrintNormalized("\nFig9 fillseq-SSD (normalized to L):", fill_ssd);
  PrintNormalized("\nFig9 fillseq-HDD (normalized to L):", fill_hdd);
  PrintNormalized("\nFig9 readseq-SSD (records/s, normalized to L):",
                  read_ssd);
  PrintNormalized("\nFig9 readseq-HDD (records/s, normalized to L):",
                  read_hdd);
  std::printf("\nfillseq write amp (log excluded; ~1.0 = written once):\n");
  for (const auto& [name, wamp] : fill_wamp) {
    std::printf("  %-6s %6.2f\n", name.c_str(), wamp);
  }
  return 0;
}
