// Table 3: write amplification of each level after hash-loading with the
// mixed level pinned and k swept over 1, 2, 3.  The paper's facts: total
// write amp decreases as k grows (6.18 -> 4.70 -> 4.17 at full scale), and
// only the mixed level's own amplification changes materially.
#include <cstdio>
#include <vector>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.5);
  ScaleConfig config = ScaleConfig::Gb100();
  config.num_records = Scaled(config.num_records, scale);

  // Pin the mixed level where the dataset ends up having both appending
  // levels above and a merging level below (L3 of 4 at this scale, like
  // the paper's L3 of 4 for 100GB).
  const int pinned_m = 2;
  std::printf(
      "=== Table 3: per-level write amp vs k (mixed level pinned at L%d) "
      "===\n",
      pinned_m);

  std::vector<std::pair<std::string, DbStats>> rows;
  for (int k = 1; k <= 3; k++) {
    ScaleConfig c = config;
    // A dedicated DB with the mixed level pinned (auto-tune off).
    MemEnv env;
    Options options = MakeOptions(SystemId::kI1, c, &env);
    options.amt.auto_tune_mk = false;
    options.amt.fixed_mixed_level = pinned_m;
    options.amt.k = k;
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, "/t3", &db);
    if (!s.ok()) {
      std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return 1;
    }
    for (uint64_t i = 0; i < c.num_records; i++) {
      db->Put(WriteOptions(), HashedKey(i), MakeValue(i, c.value_size));
    }
    db->WaitForQuiescence();
    DbStats stats = db->GetStats();
    rows.emplace_back("k=" + std::to_string(k), stats);
    std::printf("  [k=%d: total wamp %.2f]\n", k, stats.total_write_amp);
  }
  PrintLevelWriteAmps("\nTable 3 (rows = level index):", rows);
  return 0;
}
