// Analytic-model validation: measured write amplification vs the paper's
// closed forms (Sec 5.3.1):
//   W_lsa = W_sp + n                                   (Eq. 3)
//   W_iam = W_sp + n + t/2k + (n - m) * t/2            (Eq. 4)
//   W_sp  = 2 * sum_{j=1..n-1} (2/t)^j                 (Eq. 5)
// The measured totals should track the predictions within the slack the
// paper itself exhibits (moves at the leaf, partial bottom level).
#include <cmath>
#include <cstdio>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

namespace {

double SplitAmp(int t, int n) {
  double sum = 0;
  for (int j = 1; j <= n - 1; j++) sum += std::pow(2.0 / t, j);
  return 2 * sum;
}

double PredictLsa(int t, int n) { return SplitAmp(t, n) + n; }

double PredictIam(int t, int n, int m, int k) {
  double w = SplitAmp(t, n) + n;
  if (m <= n) {
    w += t / (2.0 * k);
    w += (n - m) * (t / 2.0);
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.4);

  std::printf("=== Ablation: measured write amp vs Eq. 3-5 ===\n");
  std::printf("  %-28s %8s %8s %8s\n", "configuration", "measured",
              "predicted", "ratio");

  // LSA across fanouts.
  for (int t : {4, 10}) {
    ScaleConfig config = ScaleConfig::Gb100();
    config.num_records = Scaled(config.num_records, scale);
    config.fanout = t;
    BenchDb bench(SystemId::kA1, config);
    RunResult r = Load(&bench, config.num_records, /*ordered=*/false);
    int n = static_cast<int>(r.stats_after.level_node_counts.size());
    // The leaf level is typically part-filled and fed by moves; the
    // effective depth that pays append cost is what the totals track.
    double measured = r.stats_after.total_write_amp;
    double predicted = PredictLsa(t, n);
    std::printf("  LSA t=%-2d n=%-2d               %8.2f %8.2f %8.2f\n", t, n,
                measured, predicted, measured / predicted);
  }

  // IAM across k with a pinned mixed level.
  for (int k : {1, 2, 3}) {
    ScaleConfig config = ScaleConfig::Gb100();
    config.num_records = Scaled(config.num_records, scale);
    MemEnv env;
    Options options = MakeOptions(SystemId::kI1, config, &env);
    options.amt.auto_tune_mk = false;
    options.amt.fixed_mixed_level = 2;
    options.amt.k = k;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/abl", &db).ok()) return 1;
    for (uint64_t i = 0; i < config.num_records; i++) {
      db->Put(WriteOptions(), HashedKey(i),
              MakeValue(i, config.value_size));
    }
    db->WaitForQuiescence();
    DbStats stats = db->GetStats();
    int n = static_cast<int>(stats.level_node_counts.size());
    double measured = stats.total_write_amp;
    double predicted = PredictIam(config.fanout, n, 2, k);
    std::printf("  IAM t=10 m=2 k=%d n=%-2d        %8.2f %8.2f %8.2f\n", k, n,
                measured, predicted, measured / predicted);
  }

  std::printf(
      "\nRatios well below 1 are expected: the leaf level is part-filled "
      "and fed by moves, so it pays less than a full append+merge level.\n");
  return 0;
}
