// Figure 10: space usage after fillseq, hash load, fillrandom (random-order
// inserts with collisions = many updates) and overwrite (updates only).
// Expected shape (paper Sec 6.7): fillseq == hash load for everyone (no
// updates to reclaim); IAM smallest (no overflow debt); LevelDB/RocksDB
// slightly larger; LSA far larger on fillrandom (+~26%) and overwrite
// (~2.3x) because appends never reclaim outdated records.
#include <cstdio>
#include <vector>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.4);
  ScaleConfig config = ScaleConfig::Gb100();
  config.num_records = Scaled(config.num_records, scale);
  const uint64_t n = config.num_records;

  std::printf("=== Figure 10: space usage (MB) after write tests ===\n");
  std::vector<SystemId> systems = {SystemId::kL, SystemId::kR1, SystemId::kA1,
                                   SystemId::kI1};

  struct Test {
    const char* name;
    int mode;  // 0=fillseq 1=hash 2=fillrandom 3=overwrite
  };
  const std::vector<Test> tests = {
      {"fillseq", 0}, {"hash-load", 1}, {"fillrandom", 2}, {"overwrite", 3}};

  std::printf("  %-11s", "test");
  for (SystemId id : systems) std::printf(" %8s", SystemName(id));
  std::printf("\n");

  for (const Test& test : tests) {
    std::printf("  %-11s", test.name);
    std::fflush(stdout);
    for (SystemId id : systems) {
      BenchDb bench(id, config);
      switch (test.mode) {
        case 0:
          Load(&bench, n, /*ordered=*/true);
          break;
        case 1:
          Load(&bench, n, /*ordered=*/false);
          break;
        case 2:
          // Random inserts with collisions: draw n keys from a space of
          // n/2 distinct keys -> ~half the writes are updates.
          Load(&bench, n / 2, /*ordered=*/false);
          Overwrite(&bench, n / 2, /*random_order=*/true, 11);
          break;
        case 3:
          // Load once, then overwrite everything once in random order.
          Load(&bench, n / 2, /*ordered=*/false);
          Overwrite(&bench, n, /*random_order=*/true, 13);
          break;
      }
      bench.db()->WaitForQuiescence();
      DbStats stats = bench.db()->GetStats();
      std::printf(" %8.1f", stats.space_used_bytes / 1048576.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
