// Figure 10: space usage after fillseq, hash load, fillrandom (random-order
// inserts with collisions = many updates) and overwrite (updates only).
// Expected shape (paper Sec 6.7): fillseq == hash load for everyone (no
// updates to reclaim); IAM smallest (no overflow debt); LevelDB/RocksDB
// slightly larger; LSA far larger on fillrandom (+~26%) and overwrite
// (~2.3x) because appends never reclaim outdated records.
//
// --compression=<none|columnar|lz> runs one codec; --compression=sweep runs
// all three so the codec's footprint win can be read off against the raw
// baseline in one run.  Logical accounting keeps the tree shape (and hence
// the systems' relative ordering) identical across codecs — compression only
// shrinks the physical bytes.
//
// One JSON line per (test, system, compression) cell:
//   {"bench":"fig10_space","test":"fillseq","system":"I-1t",
//    "compression":"columnar","records":51200,"value_size":1024,
//    "space_mb":31.2,"compress_ratio":2.04,"raw_fallback_blocks":0}
// compress_ratio is builder input bytes / stored bytes (1.0 when the codec
// is off or everything fell back to raw).
#include <cstdio>
#include <cstring>
#include <vector>

#include "table/compressor.h"
#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.4);
  ScaleConfig config = ScaleConfig::Gb100();
  config.num_records = Scaled(config.num_records, scale);
  const uint64_t n = config.num_records;

  bool sweep = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--compression=sweep") == 0) sweep = true;
  }
  std::vector<CompressionType> codecs;
  if (sweep) {
    codecs = {CompressionType::kNone, CompressionType::kColumnar,
              CompressionType::kLz};
  } else {
    codecs = {ParseCompression(argc, argv)};
  }

  std::vector<SystemId> systems = {SystemId::kL, SystemId::kR1, SystemId::kA1,
                                   SystemId::kI1};

  struct Test {
    const char* name;
    int mode;  // 0=fillseq 1=hash 2=fillrandom 3=overwrite
  };
  const std::vector<Test> tests = {
      {"fillseq", 0}, {"hash-load", 1}, {"fillrandom", 2}, {"overwrite", 3}};

  for (CompressionType codec : codecs) {
    config.compression = codec;
    std::printf("=== Figure 10: space usage (MB) after write tests"
                " [compression=%s] ===\n",
                CompressionTypeName(codec));
    std::printf("  %-11s", "test");
    for (SystemId id : systems) std::printf(" %8s", SystemName(id));
    std::printf("\n");

    for (const Test& test : tests) {
      std::printf("  %-11s", test.name);
      std::fflush(stdout);
      std::string json_lines;
      for (SystemId id : systems) {
        BenchDb bench(id, config);
        switch (test.mode) {
          case 0:
            Load(&bench, n, /*ordered=*/true);
            break;
          case 1:
            Load(&bench, n, /*ordered=*/false);
            break;
          case 2:
            // Random inserts with collisions: draw n keys from a space of
            // n/2 distinct keys -> ~half the writes are updates.
            Load(&bench, n / 2, /*ordered=*/false);
            Overwrite(&bench, n / 2, /*random_order=*/true, 11);
            break;
          case 3:
            // Load once, then overwrite everything once in random order.
            Load(&bench, n / 2, /*ordered=*/false);
            Overwrite(&bench, n, /*random_order=*/true, 13);
            break;
        }
        bench.db()->WaitForQuiescence();
        DbStats stats = bench.db()->GetStats();
        std::printf(" %8.1f", stats.space_used_bytes / 1048576.0);
        std::fflush(stdout);

        double ratio = stats.compress_stored_bytes > 0
                           ? static_cast<double>(stats.compress_input_bytes) /
                                 static_cast<double>(stats.compress_stored_bytes)
                           : 1.0;
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "{\"bench\":\"fig10_space\",\"test\":\"%s\",\"system\":\"%s\","
            "\"compression\":\"%s\",\"records\":%llu,\"value_size\":%zu,"
            "\"space_mb\":%.1f,\"compress_ratio\":%.2f,"
            "\"raw_fallback_blocks\":%llu}\n",
            test.name, SystemName(id), CompressionTypeName(codec),
            static_cast<unsigned long long>(n), config.value_size,
            stats.space_used_bytes / 1048576.0, ratio,
            static_cast<unsigned long long>(stats.compress_raw_fallback_blocks));
        json_lines += buf;
      }
      std::printf("\n%s", json_lines.c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
