// Sec 6.8: sequential-write comparison against an FLSM-style append tree.
// FLSM rewrites records whenever they are compacted to a level (write amp
// 6.42 and 6.7x lower throughput at paper scale); LSA/IAM move ordered
// nodes down by metadata-only edits (write amp ~1).
#include <cstdio>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.5);
  ScaleConfig config = ScaleConfig::Gb100();
  config.num_records = Scaled(config.num_records, scale);

  std::printf("=== Sec 6.8: sequential write, LSA/IAM vs FLSM-style ===\n");

  struct Row {
    const char* name;
    bool rewrite_on_flush;
  };
  for (const Row& row : {Row{"LSA (move-down)", false},
                         Row{"FLSM-style (rewrite)", true}}) {
    MemEnv env;
    Options options = MakeOptions(SystemId::kA1, config, &env);
    options.amt.rewrite_on_flush = row.rewrite_on_flush;
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, "/flsm", &db);
    if (!s.ok()) return 1;
    uint64_t t0 = Env::Default()->NowMicros();
    for (uint64_t i = 0; i < config.num_records; i++) {
      db->Put(WriteOptions(), OrderedKey(i),
              MakeValue(i, config.value_size));
    }
    db->WaitForQuiescence();
    double wall = (Env::Default()->NowMicros() - t0) / 1e6;
    DbStats stats = db->GetStats();
    std::printf("  %-22s write-amp %5.2f   wall %5.1fs   table-bytes %.1fMB\n",
                row.name, stats.total_write_amp, wall,
                stats.space_used_bytes / 1048576.0);
  }
  std::printf("\nExpected: rewrite mode multiplies write amp by ~the level "
              "count while move-down stays ~1 (paper: 6.42 vs ~1).\n");
  return 0;
}
