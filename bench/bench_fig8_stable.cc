// Figure 8: *stable* throughputs for the query-intensive workloads (B, C,
// D, E, G) on SSD-100G.  "Stable" = after the tuning phase: the database is
// fully settled (WaitForQuiescence) before measuring, which favours the
// LSMs (paper Sec 6.4).  Expected shape: B/C/D near-equal across systems,
// LSA ~2.9x worse on E and ~11% down on G, IAM equal to LevelDB on both.
#include <cstdio>
#include <vector>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.35);
  ScaleConfig config = ScaleConfig::Gb100();
  config.num_records = Scaled(config.num_records, scale);

  std::printf("=== Figure 8: stable query throughput, SSD-100G ===\n");
  const std::string workloads = "BCDEG";
  std::vector<SystemId> systems = {SystemId::kL, SystemId::kR1, SystemId::kA1,
                                   SystemId::kI1};

  std::vector<std::vector<double>> table(workloads.size());
  for (SystemId id : systems) {
    BenchDb bench(id, config);
    Load(&bench, config.num_records, /*ordered=*/false,
         SettleMode::kSettleOutside);
    const uint64_t ops = std::max<uint64_t>(2000, config.num_records / 16);
    for (size_t wi = 0; wi < workloads.size(); wi++) {
      char w = workloads[wi];
      // "Stable": fully settled before every measurement window, so no
      // phase inherits another's compaction traffic.
      bench.db()->WaitForQuiescence();
      uint64_t run_ops = ops;
      // Write-heavy mixes need enough volume that deferred-compaction
      // batching (e.g. the L0 trigger) amortizes inside the window.
      if (w == 'A' || w == 'F') run_ops = ops * 6;
      if (w == 'E') run_ops = std::max<uint64_t>(400, ops / 10);
      if (w == 'G') run_ops = std::max<uint64_t>(60, ops / 64);
      RunResult r =
          RunWorkload(&bench, WorkloadSpec::Ycsb(w), run_ops, 7000 + w,
                      /*settle_in_window=*/true);
      table[wi].push_back(r.Throughput("SSD"));
    }
    std::printf("  [%s done]\n", SystemName(id));
  }

  std::printf("\nFig8 SSD-100G stable (normalized to L):\n  %-4s", "WL");
  for (SystemId id : systems) std::printf(" %8s", SystemName(id));
  std::printf("\n");
  for (size_t wi = 0; wi < workloads.size(); wi++) {
    std::printf("  %-4c", workloads[wi]);
    for (double v : table[wi]) {
      std::printf(" %8.2f", table[wi][0] > 0 ? v / table[wi][0] : 0);
    }
    std::printf("\n");
  }
  return 0;
}
