// Loopback throughput/latency for the network serving layer: PUT and GET
// ops/sec + p50/p99/p999 at 1, 4 and 16 client connections against an
// in-process iamdb Server, then the event-driven axes: pipelined GETs at
// depth 1/8/64 and MGET at batch 1/8/64, both at 16 connections.  Unlike
// the paper benches (modeled device time), this measures real wall-clock
// through the full wire path:
// encode -> TCP -> decode -> dispatch -> DB -> respond.
//
// One JSON line per cell, e.g.:
//   {"bench":"server_throughput","op":"put","connections":4,"ops":40000,
//    "ops_per_sec":123456.7,"p50_us":30.1,"p99_us":210.9,...,"cpus":1}
//   {"bench":"server_async","op":"pipelined_get","connections":16,
//    "depth":8,...}
//
// --db_shards=N serves a hash-partitioned ShardedDB instead of a single
// instance; --shard_sweep replaces the standard suite with a PUT/GET/MGET
// sweep over db_shards in {1,2,4,8} ("bench":"sharding" JSON lines, MGET
// through the client-side shard-routing path); --mget_sweep replaces it
// with a looped-GET vs batched-MGET comparison, cold and warm cache, per
// engine ("bench":"mget_sweep" JSON lines).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "server/client.h"
#include "server/server.h"
#include "shard/sharded_db.h"
#include "util/histogram.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace iamdb;

namespace {

constexpr int kValueSize = 100;

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CellResult {
  uint64_t ops = 0;
  double ops_per_sec = 0;
  Histogram latency_us;
};

// Runs `ops_per_conn` ops on each of `connections` client threads.
CellResult RunCell(int port, int connections, uint64_t ops_per_conn,
                   uint64_t key_space, bool do_put) {
  std::vector<Histogram> histograms(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const double start = NowMicros();
  for (int c = 0; c < connections; c++) {
    threads.emplace_back([&, c] {
      ClientOptions options;
      options.port = port;
      Client client(options);
      Random64 rnd(1000 + c);
      const std::string value(kValueSize, 'v');
      for (uint64_t i = 0; i < ops_per_conn; i++) {
        const std::string key = Key(rnd.Uniform(key_space));
        const double op_start = NowMicros();
        Status s;
        if (do_put) {
          s = client.Put(key, value);
        } else {
          std::string out;
          s = client.Get(key, &out);
          if (s.IsNotFound()) s = Status::OK();  // sparse preload is fine
        }
        if (!s.ok()) {
          std::fprintf(stderr, "op failed: %s\n", s.ToString().c_str());
          return;
        }
        histograms[c].Add(NowMicros() - op_start);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_us = NowMicros() - start;

  CellResult result;
  for (const Histogram& h : histograms) result.latency_us.Merge(h);
  result.ops = result.latency_us.Count();
  result.ops_per_sec = result.ops / (elapsed_us / 1e6);
  return result;
}

// Each thread keeps `depth` GETs in flight on one connection via the
// pipelined Submit/Wait API.  Latency is per request, submit to claim.
CellResult RunPipelinedGetCell(int port, int connections,
                               uint64_t ops_per_conn, uint64_t key_space,
                               int depth) {
  std::vector<Histogram> histograms(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const double start = NowMicros();
  for (int c = 0; c < connections; c++) {
    threads.emplace_back([&, c] {
      ClientOptions options;
      options.port = port;
      Client client(options);
      Random64 rnd(2000 + c);
      std::deque<std::pair<uint64_t, double>> window;  // (id, submit time)
      auto claim_front = [&] {
        auto [id, submitted] = window.front();
        window.pop_front();
        std::string out;
        Status s = client.WaitGet(id, &out);
        if (!s.ok() && !s.IsNotFound()) {
          std::fprintf(stderr, "pipelined get failed: %s\n",
                       s.ToString().c_str());
          return false;
        }
        histograms[c].Add(NowMicros() - submitted);
        return true;
      };
      for (uint64_t i = 0; i < ops_per_conn; i++) {
        if (window.size() >= static_cast<size_t>(depth) && !claim_front()) {
          return;
        }
        const std::string key = Key(rnd.Uniform(key_space));
        const double submitted = NowMicros();
        uint64_t id = client.SubmitGet(key);
        if (id == 0) {
          std::fprintf(stderr, "pipelined submit failed\n");
          return;
        }
        window.emplace_back(id, submitted);
      }
      while (!window.empty()) {
        if (!claim_front()) return;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_us = NowMicros() - start;

  CellResult result;
  for (const Histogram& h : histograms) result.latency_us.Merge(h);
  result.ops = result.latency_us.Count();
  result.ops_per_sec = result.ops / (elapsed_us / 1e6);
  return result;
}

// Each op is one MGET of `batch` random keys; latency is per batch but
// ops/ops_per_sec count keys, so cells compare directly against GET.
// client_routed = true goes through MultiGetSharded (per-shard fan-out on
// the client) instead of one server-side MGET frame.
CellResult RunMgetCell(int port, int connections, uint64_t keys_per_conn,
                       uint64_t key_space, int batch,
                       bool client_routed = false) {
  std::vector<Histogram> histograms(connections);
  std::vector<uint64_t> key_counts(connections, 0);  // joined before read
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const double start = NowMicros();
  for (int c = 0; c < connections; c++) {
    threads.emplace_back([&, c] {
      ClientOptions options;
      options.port = port;
      Client client(options);
      Random64 rnd(3000 + c);
      std::vector<std::string> keys(batch);
      uint64_t done = 0;
      while (done < keys_per_conn) {
        for (auto& key : keys) key = Key(rnd.Uniform(key_space));
        const double op_start = NowMicros();
        std::vector<std::string> values;
        std::vector<Status> statuses;
        Status s = client_routed
                       ? client.MultiGetSharded(keys, &values, &statuses)
                       : client.MultiGet(keys, &values, &statuses);
        if (!s.ok()) {
          std::fprintf(stderr, "mget failed: %s\n", s.ToString().c_str());
          return;
        }
        histograms[c].Add(NowMicros() - op_start);
        done += keys.size();
      }
      key_counts[c] = done;
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_us = NowMicros() - start;

  CellResult result;
  for (const Histogram& h : histograms) result.latency_us.Merge(h);
  for (uint64_t n : key_counts) result.ops += n;
  result.ops_per_sec = result.ops / (elapsed_us / 1e6);
  return result;
}

// PUT / GET / client-routed MGET against a fresh ShardedDB(N) per point:
// the scaling story of hash partitioning through the full wire path.
int RunShardSweep(uint64_t ops_per_cell, uint64_t key_space) {
  const int cpus = static_cast<int>(std::thread::hardware_concurrency());
  constexpr int kConnections = 8;
  constexpr int kMgetBatch = 8;
  std::printf("=== sharded server sweep (%llu ops/cell, %d connections) ===\n",
              static_cast<unsigned long long>(ops_per_cell), kConnections);
  std::printf("%-10s %9s %12s %9s %9s %9s\n", "op", "db_shards", "ops/sec",
              "p50(us)", "p99(us)", "p999(us)");
  for (int num_shards : {1, 2, 4, 8}) {
    MemEnv env;
    Options db_options;
    db_options.env = &env;
    db_options.background_threads = 2;
    std::unique_ptr<DB> db;
    Status s = ShardedDB::Open(db_options, "/bench-sharded", num_shards, &db);
    if (!s.ok()) {
      std::fprintf(stderr, "sharded open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    ServerOptions server_options;
    server_options.port = 0;
    server_options.num_workers = 8;
    Server server(db.get(), server_options);
    s = server.Start();
    if (!s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }

    {
      ClientOptions options;
      options.port = server.port();
      Client client(options);
      const std::string value(kValueSize, 'v');
      for (uint64_t i = 0; i < key_space; i++) {
        if (!client.Put(Key(i), value).ok()) {
          std::fprintf(stderr, "preload failed\n");
          return 1;
        }
      }
      db->WaitForQuiescence();
    }

    auto emit = [&](const char* op, const CellResult& r) {
      std::printf("%-10s %9d %12.0f %9.1f %9.1f %9.1f\n", op, num_shards,
                  r.ops_per_sec, r.latency_us.Percentile(50),
                  r.latency_us.Percentile(99), r.latency_us.Percentile(99.9));
      std::printf(
          "{\"bench\":\"sharding\",\"op\":\"%s\",\"db_shards\":%d,"
          "\"connections\":%d,\"ops\":%llu,\"ops_per_sec\":%.1f,"
          "\"p50_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f,\"cpus\":%d}\n",
          op, num_shards, kConnections,
          static_cast<unsigned long long>(r.ops), r.ops_per_sec,
          r.latency_us.Percentile(50), r.latency_us.Percentile(99),
          r.latency_us.Percentile(99.9), cpus);
      std::fflush(stdout);
    };
    const uint64_t per_conn =
        std::max<uint64_t>(1, ops_per_cell / kConnections);
    emit("put", RunCell(server.port(), kConnections, per_conn, key_space,
                        /*do_put=*/true));
    db->WaitForQuiescence();
    emit("get", RunCell(server.port(), kConnections, per_conn, key_space,
                        /*do_put=*/false));
    emit("mget", RunMgetCell(server.port(), kConnections, per_conn, key_space,
                             kMgetBatch, /*client_routed=*/true));
    server.Stop();
  }
  return 0;
}

// Looped-GET vs batched MGET over the same key distribution, cold and warm
// cache, 1KB values, one pass per engine.  Every cell reopens the DB (and
// server) over the persisted MemEnv files so its cache tiers start
// genuinely cold; warm cells then run one warming pass over a key slice
// sized to fit the block cache before measuring.  ops/ops_per_sec count
// KEYS for both modes, so the cells compare directly: the MGET win is
// batched dispatch plus coalesced vectored block I/O under the misses.
int RunMgetSweep(uint64_t ops_per_cell, uint64_t key_space) {
  const int cpus = static_cast<int>(std::thread::hardware_concurrency());
  constexpr int kConnections = 4;
  constexpr int kBatch = 64;
  constexpr int kSweepValueSize = 1024;
  // Warm slice: ~warm_space data blocks must fit the cache with room to
  // spare (8MB cache below vs ~4MB of 1KB values).
  const uint64_t warm_space = std::min<uint64_t>(key_space, 4000);

  struct EngineCell {
    EngineType engine;
    AmtPolicy policy;
    const char* name;
  };
  const EngineCell engines[] = {
      {EngineType::kLeveled, AmtPolicy::kLsa, "leveled"},
      {EngineType::kAmt, AmtPolicy::kLsa, "lsa"},
      {EngineType::kAmt, AmtPolicy::kIam, "iam"},
  };

  std::printf("=== looped GET vs MGET(%d) sweep (%llu keys/cell, 1KB values) ===\n",
              kBatch, static_cast<unsigned long long>(ops_per_cell));
  std::printf("%-8s %-12s %6s %12s %9s %9s %9s\n", "engine", "op", "cache",
              "keys/sec", "p50(us)", "p99(us)", "p999(us)");

  for (const EngineCell& e : engines) {
    MemEnv env;
    auto make_options = [&] {
      Options options;
      options.env = &env;
      options.engine = e.engine;
      options.amt.policy = e.policy;
      options.background_threads = 2;
      // Small enough that the cold passes stay device-bound over the
      // ~100MB data set, large enough to hold the whole warm slice.
      options.block_cache_capacity = 8ull << 20;
      return options;
    };

    {
      std::unique_ptr<DB> db;
      Status s = DB::Open(make_options(), "/bench-mget", &db);
      if (!s.ok()) {
        std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
        return 1;
      }
      const std::string value(kSweepValueSize, 'v');
      for (uint64_t i = 0; i < key_space; i++) {
        if (!db->Put(WriteOptions(), Key(i), value).ok()) {
          std::fprintf(stderr, "preload failed\n");
          return 1;
        }
      }
      db->FlushAll();
      db->WaitForQuiescence();
    }

    auto run_cell = [&](const char* op, const char* cache,
                        bool warm) -> bool {
      std::unique_ptr<DB> db;
      Status s = DB::Open(make_options(), "/bench-mget", &db);
      if (!s.ok()) {
        std::fprintf(stderr, "reopen failed: %s\n", s.ToString().c_str());
        return false;
      }
      ServerOptions server_options;
      server_options.port = 0;
      server_options.num_workers = 4;
      Server server(db.get(), server_options);
      if (!server.Start().ok()) {
        std::fprintf(stderr, "server start failed\n");
        return false;
      }
      const uint64_t space = warm ? warm_space : key_space;
      if (warm) {
        // One covering pass fills both cache tiers before measurement.
        RunMgetCell(server.port(), 1, space, space, kBatch);
      }
      const uint64_t per_conn =
          std::max<uint64_t>(1, ops_per_cell / kConnections);
      const bool mget = std::string(op) == "mget";
      CellResult r = mget ? RunMgetCell(server.port(), kConnections, per_conn,
                                        space, kBatch)
                          : RunCell(server.port(), kConnections, per_conn,
                                    space, /*do_put=*/false);
      std::printf("%-8s %-12s %6s %12.0f %9.1f %9.1f %9.1f\n", e.name, op,
                  cache, r.ops_per_sec, r.latency_us.Percentile(50),
                  r.latency_us.Percentile(99), r.latency_us.Percentile(99.9));
      std::printf(
          "{\"bench\":\"mget_sweep\",\"engine\":\"%s\",\"op\":\"%s\","
          "\"cache\":\"%s\",\"connections\":%d,\"batch\":%d,"
          "\"value_size\":%d,\"keys\":%llu,\"keys_per_sec\":%.1f,"
          "\"p50_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f,\"cpus\":%d}\n",
          e.name, op, cache, kConnections, mget ? kBatch : 1, kSweepValueSize,
          static_cast<unsigned long long>(r.ops), r.ops_per_sec,
          r.latency_us.Percentile(50), r.latency_us.Percentile(99),
          r.latency_us.Percentile(99.9), cpus);
      std::fflush(stdout);
      server.Stop();
      return true;
    };

    for (const char* op : {"looped_get", "mget"}) {
      if (!run_cell(op, "cold", /*warm=*/false)) return 1;
      if (!run_cell(op, "warm", /*warm=*/true)) return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv, 1.0);
  const uint64_t ops_per_cell = bench::Scaled(40000, scale);
  const uint64_t key_space = bench::Scaled(100000, scale);

  int db_shards = 0;
  bool shard_sweep = false;
  bool mget_sweep = false;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--db_shards=", 12) == 0) {
      db_shards = std::atoi(argv[i] + 12);
    } else if (std::strcmp(argv[i], "--shard_sweep") == 0) {
      shard_sweep = true;
    } else if (std::strcmp(argv[i], "--mget_sweep") == 0) {
      mget_sweep = true;
    }
  }
  if (shard_sweep) return RunShardSweep(ops_per_cell, key_space);
  if (mget_sweep) return RunMgetSweep(ops_per_cell, key_space);

  MemEnv env;
  Options db_options;
  db_options.env = &env;
  db_options.background_threads = 2;
  std::unique_ptr<DB> db;
  Status s = db_shards > 0
                 ? ShardedDB::Open(db_options, "/bench-server", db_shards, &db)
                 : DB::Open(db_options, "/bench-server", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  ServerOptions server_options;
  server_options.port = 0;
  server_options.num_workers = 8;
  Server server(db.get(), server_options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("=== server loopback throughput (real time, %llu ops/cell) ===\n",
              static_cast<unsigned long long>(ops_per_cell));
  const std::vector<int> connection_counts = {1, 4, 16};

  // Preload so GETs mostly hit; also warms the wire path.
  {
    ClientOptions options;
    options.port = server.port();
    Client client(options);
    const std::string value(kValueSize, 'v');
    for (uint64_t i = 0; i < key_space; i++) {
      if (!client.Put(Key(i), value).ok()) {
        std::fprintf(stderr, "preload failed\n");
        return 1;
      }
    }
    db->WaitForQuiescence();
  }

  const int cpus = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("%-14s %12s %6s %12s %9s %9s %9s\n", "op", "connections",
              "d/b", "ops/sec", "p50(us)", "p99(us)", "p999(us)");
  auto print_cell = [&](const char* bench, const char* op, int connections,
                        const char* extra_key, int extra_value,
                        const CellResult& r) {
    std::printf("%-14s %12d %6d %12.0f %9.1f %9.1f %9.1f\n", op, connections,
                extra_value, r.ops_per_sec, r.latency_us.Percentile(50),
                r.latency_us.Percentile(99), r.latency_us.Percentile(99.9));
    std::printf(
        "{\"bench\":\"%s\",\"op\":\"%s\",\"connections\":%d,"
        "\"%s\":%d,\"ops\":%llu,\"ops_per_sec\":%.1f,\"p50_us\":%.1f,"
        "\"p99_us\":%.1f,\"p999_us\":%.1f,\"cpus\":%d}\n",
        bench, op, connections, extra_key, extra_value,
        static_cast<unsigned long long>(r.ops), r.ops_per_sec,
        r.latency_us.Percentile(50), r.latency_us.Percentile(99),
        r.latency_us.Percentile(99.9), cpus);
  };

  for (const char* op : {"put", "get"}) {
    const bool do_put = std::string(op) == "put";
    for (int connections : connection_counts) {
      const uint64_t per_conn =
          std::max<uint64_t>(1, ops_per_cell / connections);
      CellResult r =
          RunCell(server.port(), connections, per_conn, key_space, do_put);
      print_cell("server_throughput", op, connections, "depth", 1, r);
      if (do_put) db->WaitForQuiescence();
    }
  }

  // The event-driven axes: on few cores raw ops/s moves little, but depth
  // amortizes the per-request round trip (this is where the reactor's
  // writev batching shows up in p99/p999 and ops/s).
  constexpr int kAsyncConnections = 16;
  for (int depth : {1, 8, 64}) {
    const uint64_t per_conn =
        std::max<uint64_t>(1, ops_per_cell / kAsyncConnections);
    CellResult r = RunPipelinedGetCell(server.port(), kAsyncConnections,
                                       per_conn, key_space, depth);
    print_cell("server_async", "pipelined_get", kAsyncConnections, "depth",
               depth, r);
  }
  for (int batch : {1, 8, 64}) {
    const uint64_t per_conn =
        std::max<uint64_t>(1, ops_per_cell / kAsyncConnections);
    CellResult r = RunMgetCell(server.port(), kAsyncConnections, per_conn,
                               key_space, batch);
    print_cell("server_async", "mget", kAsyncConnections, "batch", batch, r);
  }

  ServerStats stats = server.stats();
  std::printf(
      "{\"bench\":\"server_async\",\"op\":\"reactor_stats\",\"shards\":%d,"
      "\"writev_calls\":%llu,\"responses_written\":%llu,"
      "\"responses_per_writev\":%.2f,\"output_buffer_hwm\":%llu,"
      "\"backpressure_stalls\":%llu,\"cpus\":%d}\n",
      server.num_shards(), static_cast<unsigned long long>(stats.writev_calls),
      static_cast<unsigned long long>(stats.responses_written),
      stats.writev_calls > 0
          ? static_cast<double>(stats.responses_written) / stats.writev_calls
          : 0.0,
      static_cast<unsigned long long>(stats.output_buffer_hwm),
      static_cast<unsigned long long>(stats.backpressure_stalls), cpus);

  server.Stop();
  return 0;
}
