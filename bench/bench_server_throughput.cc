// Loopback throughput/latency for the network serving layer: PUT and GET
// ops/sec + p50/p99 at 1, 4 and 16 client connections against an
// in-process iamdb Server.  Unlike the paper benches (modeled device
// time), this measures real wall-clock through the full wire path:
// encode -> TCP -> decode -> dispatch -> DB -> respond.
//
// One JSON line per (op, connections) cell, e.g.:
//   {"bench":"server_throughput","op":"put","connections":4,"ops":40000,
//    "ops_per_sec":123456.7,"p50_us":30.1,"p99_us":210.9}
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "server/client.h"
#include "server/server.h"
#include "util/histogram.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace iamdb;

namespace {

constexpr int kValueSize = 100;

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CellResult {
  uint64_t ops = 0;
  double ops_per_sec = 0;
  Histogram latency_us;
};

// Runs `ops_per_conn` ops on each of `connections` client threads.
CellResult RunCell(int port, int connections, uint64_t ops_per_conn,
                   uint64_t key_space, bool do_put) {
  std::vector<Histogram> histograms(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const double start = NowMicros();
  for (int c = 0; c < connections; c++) {
    threads.emplace_back([&, c] {
      ClientOptions options;
      options.port = port;
      Client client(options);
      Random64 rnd(1000 + c);
      const std::string value(kValueSize, 'v');
      for (uint64_t i = 0; i < ops_per_conn; i++) {
        const std::string key = Key(rnd.Uniform(key_space));
        const double op_start = NowMicros();
        Status s;
        if (do_put) {
          s = client.Put(key, value);
        } else {
          std::string out;
          s = client.Get(key, &out);
          if (s.IsNotFound()) s = Status::OK();  // sparse preload is fine
        }
        if (!s.ok()) {
          std::fprintf(stderr, "op failed: %s\n", s.ToString().c_str());
          return;
        }
        histograms[c].Add(NowMicros() - op_start);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_us = NowMicros() - start;

  CellResult result;
  for (const Histogram& h : histograms) result.latency_us.Merge(h);
  result.ops = result.latency_us.Count();
  result.ops_per_sec = result.ops / (elapsed_us / 1e6);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv, 1.0);
  const uint64_t ops_per_cell = bench::Scaled(40000, scale);
  const uint64_t key_space = bench::Scaled(100000, scale);

  MemEnv env;
  Options db_options;
  db_options.env = &env;
  db_options.background_threads = 2;
  std::unique_ptr<DB> db;
  Status s = DB::Open(db_options, "/bench-server", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  ServerOptions server_options;
  server_options.port = 0;
  server_options.num_workers = 8;
  Server server(db.get(), server_options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("=== server loopback throughput (real time, %llu ops/cell) ===\n",
              static_cast<unsigned long long>(ops_per_cell));
  const std::vector<int> connection_counts = {1, 4, 16};

  // Preload so GETs mostly hit; also warms the wire path.
  {
    ClientOptions options;
    options.port = server.port();
    Client client(options);
    const std::string value(kValueSize, 'v');
    for (uint64_t i = 0; i < key_space; i++) {
      if (!client.Put(Key(i), value).ok()) {
        std::fprintf(stderr, "preload failed\n");
        return 1;
      }
    }
    db->WaitForQuiescence();
  }

  std::printf("%-5s %12s %12s %10s %10s\n", "op", "connections", "ops/sec",
              "p50(us)", "p99(us)");
  for (const char* op : {"put", "get"}) {
    const bool do_put = std::string(op) == "put";
    for (int connections : connection_counts) {
      const uint64_t per_conn =
          std::max<uint64_t>(1, ops_per_cell / connections);
      CellResult r =
          RunCell(server.port(), connections, per_conn, key_space, do_put);
      std::printf("%-5s %12d %12.0f %10.1f %10.1f\n", op, connections,
                  r.ops_per_sec, r.latency_us.Percentile(50),
                  r.latency_us.Percentile(99));
      std::printf(
          "{\"bench\":\"server_throughput\",\"op\":\"%s\","
          "\"connections\":%d,\"ops\":%llu,\"ops_per_sec\":%.1f,"
          "\"p50_us\":%.1f,\"p99_us\":%.1f}\n",
          op, connections, static_cast<unsigned long long>(r.ops),
          r.ops_per_sec, r.latency_us.Percentile(50),
          r.latency_us.Percentile(99));
      if (do_put) db->WaitForQuiescence();
    }
  }

  server.Stop();
  return 0;
}
