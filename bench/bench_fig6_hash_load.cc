// Figure 6: hash-load throughput for SSD-100G, HDD-100G and HDD-1T,
// normalized to single-threaded LevelDB ("L"), plus the headline write
// amplifications quoted in Sec 6.2 (8.83/8.71/14.66 for L, 3.16/3.15/4.10
// for LSA, 4.70/4.72/8.71 for IAM, 9.90/9.61/19.00 for RocksDB).
//
// One run per (system, dataset) prices the identical measured I/O under
// both device profiles, so SSD-100G and HDD-100G come from the same run.
#include <cstdio>
#include <vector>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.5);
  std::printf("=== Figure 6: hash-load throughput (scale %.2f) ===\n", scale);

  const std::vector<SystemId> systems = {
      SystemId::kL,  SystemId::kR1, SystemId::kR4, SystemId::kA1,
      SystemId::kA4, SystemId::kI1, SystemId::kI4};

  struct Dataset {
    const char* name;
    ScaleConfig config;
  };
  ScaleConfig gb100 = ScaleConfig::Gb100();
  gb100.num_records = Scaled(gb100.num_records, scale);
  ScaleConfig tb1 = ScaleConfig::Tb1();
  tb1.num_records = Scaled(tb1.num_records, scale);

  for (const Dataset& dataset :
       {Dataset{"100G", gb100}, Dataset{"1T", tb1}}) {
    std::vector<std::pair<std::string, double>> ssd_rows, hdd_rows;
    std::vector<std::pair<std::string, double>> wamp_rows;
    for (SystemId id : systems) {
      BenchDb bench(id, dataset.config);
      // Device-paced load: outstanding debt stays bounded as on a real
      // disk; the bounded leftover (LevelDB's overflow, Sec 6.2) is
      // excluded from the throughput window by kSettleOutside.
      RunResult r = Load(&bench, dataset.config.num_records, /*ordered=*/false,
                         SettleMode::kSettleOutside,
                         /*pace_debt_bytes=*/3 << 20);
      ssd_rows.emplace_back(SystemName(id), r.Throughput("SSD"));
      hdd_rows.emplace_back(SystemName(id), r.Throughput("HDD"));
      // Write amp counts everything, including the settled debt.
      double wamp = bench.db()->GetStats().total_write_amp;
      wamp_rows.emplace_back(SystemName(id), wamp);
      std::printf("  [loaded %s/%s: wamp=%.2f wall=%.1fs]\n", dataset.name,
                  SystemName(id), wamp, r.wall_seconds);
    }
    if (std::string(dataset.name) == "100G") {
      PrintNormalized("\nFig6 SSD-100G (normalized to L):", ssd_rows);
      PrintNormalized("\nFig6 HDD-100G (normalized to L):", hdd_rows);
    } else {
      PrintNormalized("\nFig6 HDD-1T (normalized to L):", hdd_rows);
    }
    std::printf("\nWrite amplification (%s, log excluded):\n", dataset.name);
    for (const auto& [name, wamp] : wamp_rows) {
      std::printf("  %-6s %6.2f\n", name.c_str(), wamp);
    }
    std::printf("\n");
  }
  return 0;
}
