// Table 5: 99th-percentile latency for the query-intensive workloads (B, C,
// D, E, G) under SSD-100G, HDD-100G and HDD-1T.  Expected shape (paper Sec
// 6.4/6.5): IamDB (I) takes first or second place everywhere; LSA wins some
// point-read mixes but collapses on scans; the LSMs pay for overflow
// compaction traffic.
#include <cstdio>
#include <vector>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.25);
  const std::string workloads = "BCDEG";
  std::vector<SystemId> systems = {SystemId::kL, SystemId::kR1, SystemId::kA1,
                                   SystemId::kI1};

  struct Dataset {
    const char* name;
    ScaleConfig config;
  };
  ScaleConfig gb100 = ScaleConfig::Gb100();
  gb100.num_records = Scaled(gb100.num_records, scale);
  ScaleConfig tb1 = ScaleConfig::Tb1();
  tb1.num_records = Scaled(tb1.num_records, scale);

  std::printf("=== Table 5: p99 latencies (ms, modeled device time) ===\n");

  for (const Dataset& dataset :
       {Dataset{"100G", gb100}, Dataset{"1T", tb1}}) {
    // p99[workload][system] = (ssd ms, hdd ms)
    std::vector<std::vector<std::pair<double, double>>> p99(
        workloads.size(), std::vector<std::pair<double, double>>());
    for (SystemId id : systems) {
      BenchDb bench(id, dataset.config);
      Load(&bench, dataset.config.num_records, /*ordered=*/false,
           SettleMode::kSettleOutside, /*pace_debt_bytes=*/3 << 20);
      const uint64_t ops =
          std::max<uint64_t>(2000, dataset.config.num_records / 24);
      for (size_t wi = 0; wi < workloads.size(); wi++) {
        char w = workloads[wi];
        bench.db()->WaitForQuiescence();
        uint64_t run_ops = ops;
        // Write-heavy mixes need enough volume that deferred-compaction
        // batching (e.g. the L0 trigger) amortizes inside the window.
        if (w == 'A' || w == 'F') run_ops = ops * 6;
        if (w == 'E') run_ops = std::max<uint64_t>(400, ops / 10);
        if (w == 'G') run_ops = std::max<uint64_t>(60, ops / 64);
        RunResult r = RunWorkload(&bench, WorkloadSpec::Ycsb(w), run_ops, 5000 + w,
                                  /*settle_in_window=*/true);
        p99[wi].emplace_back(r.ssd_latency_us.Percentile(99) / 1000.0,
                             r.hdd_latency_us.Percentile(99) / 1000.0);
      }
      std::printf("  [%s/%s done]\n", dataset.name, SystemName(id));
    }

    auto print_device = [&](const char* device, bool ssd) {
      std::printf("\nTable 5 %s-%s p99 (ms):\n  %-4s", device, dataset.name,
                  "WL");
      for (SystemId id : systems) std::printf(" %9s", SystemName(id));
      std::printf("\n");
      for (size_t wi = 0; wi < workloads.size(); wi++) {
        std::printf("  %-4c", workloads[wi]);
        for (const auto& [s, h] : p99[wi]) {
          std::printf(" %9.2f", ssd ? s : h);
        }
        std::printf("\n");
      }
    };
    if (std::string(dataset.name) == "100G") {
      print_device("SSD", true);
      print_device("HDD", false);
    } else {
      print_device("HDD", false);
    }
    std::printf("\n");
  }
  return 0;
}
