// Compaction scaling: write-heavy ingest against 1/2/4/8 background
// threads, with and without the compaction rate limiter, for the leveled
// baseline and both AMT policies.  Partitioned subcompactions plus the
// two-lane scheduler are what let extra threads translate into fewer
// write stalls; the rate limiter trades peak merge bandwidth for tail
// latency.  p99/p99.9 put latency and stall-seconds are the observables.
//
// One JSON line per (engine, bg_threads, rate_limit) cell:
//   {"bench":"compaction_scaling","engine":"iam","bg_threads":4,
//    "subcompactions":4,"rate_limit_mb":32,"cpus":8,"ops":20000,
//    "ops_per_sec":12345.6,"p99_us":210.0,"p999_us":1800.0,
//    "stall_seconds":0.35,"subcompactions_run":17,
//    "rate_limit_wait_thread_s":0.12,"rate_limit_wait_wall_s":0.08}
// "cpus" records the machine the numbers came from: thread scaling is
// only meaningful with cores to scale onto.
// rate_limit_wait_thread_s sums waits across background threads and can
// exceed wall-clock run time; rate_limit_wait_wall_s is the wall-clock
// union of intervals where at least one thread was throttled.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "util/histogram.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace iamdb;

namespace {

constexpr int kValueSize = 1024;  // paper: 1KB values

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct EngineSpec {
  const char* name;
  EngineType engine;
  AmtPolicy policy;
};

struct CellConfig {
  EngineSpec spec;
  int bg_threads;
  uint64_t rate_limit_mb;  // 0 = unlimited
};

Options MakeCellOptions(const CellConfig& cell, Env* env) {
  Options options;
  options.env = env;
  options.engine = cell.spec.engine;
  options.amt.policy = cell.spec.policy;
  options.node_capacity = 256 << 10;
  options.table.block_size = 4096;
  options.amt.fanout = 10;
  options.leveled.target_file_size = 128 << 10;
  options.leveled.max_bytes_level1 = 5 * (256 << 10);
  options.background_threads = cell.bg_threads;
  options.max_subcompactions = 4;
  options.compaction_rate_limit = cell.rate_limit_mb << 20;
  return options;
}

void RunCell(const CellConfig& cell, uint64_t ops) {
  MemEnv env;
  std::unique_ptr<DB> db;
  Status s = DB::Open(MakeCellOptions(cell, &env), "/bench", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return;
  }

  // Random overwrites over half the op count of keys: every key is
  // rewritten ~2x, so merges carry real shadowing work.
  const uint64_t key_space = ops / 2;
  Random64 rnd(42);
  const std::string value(kValueSize, 'v');
  Histogram latency_us;
  const double start = NowMicros();
  for (uint64_t i = 0; i < ops; i++) {
    const double op_start = NowMicros();
    s = db->Put(WriteOptions(), Key(rnd.Uniform(key_space)), value);
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return;
    }
    latency_us.Add(NowMicros() - op_start);
  }
  const double ingest_seconds = (NowMicros() - start) / 1e6;
  db->FlushAll();
  db->WaitForQuiescence();
  DbStats stats = db->GetStats();

  std::printf("%-8s %10d %13llu %12.0f %10.2f %10.2f %9.3f %8llu\n",
              cell.spec.name, cell.bg_threads,
              static_cast<unsigned long long>(cell.rate_limit_mb),
              ops / ingest_seconds, latency_us.Percentile(99),
              latency_us.Percentile(99.9), stats.stall_micros / 1e6,
              static_cast<unsigned long long>(stats.subcompactions_run));
  std::printf(
      "{\"bench\":\"compaction_scaling\",\"engine\":\"%s\","
      "\"bg_threads\":%d,\"subcompactions\":4,\"rate_limit_mb\":%llu,"
      "\"cpus\":%u,\"ops\":%llu,\"ops_per_sec\":%.1f,\"p99_us\":%.2f,"
      "\"p999_us\":%.2f,\"stall_seconds\":%.3f,\"subcompactions_run\":%llu,"
      "\"rate_limit_wait_thread_s\":%.3f,\"rate_limit_wait_wall_s\":%.3f}\n",
      cell.spec.name, cell.bg_threads,
      static_cast<unsigned long long>(cell.rate_limit_mb),
      std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(ops), ops / ingest_seconds,
      latency_us.Percentile(99), latency_us.Percentile(99.9),
      stats.stall_micros / 1e6,
      static_cast<unsigned long long>(stats.subcompactions_run),
      stats.rate_limiter_wait_micros / 1e6,
      stats.rate_limiter_paced_wall_micros / 1e6);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv, 1.0);
  const uint64_t ops = bench::Scaled(20000, scale);
  // --bg_threads pins the sweep to one thread count (e.g. for a quick run
  // on a small machine); default sweeps the paper's "-nt" axis.
  const int pinned = bench::ParseBgThreads(argc, argv, 0);
  const std::vector<int> thread_counts =
      pinned > 0 ? std::vector<int>{pinned} : std::vector<int>{1, 2, 4, 8};

  const EngineSpec engines[] = {
      {"leveled", EngineType::kLeveled, AmtPolicy::kLsa},
      {"lsa", EngineType::kAmt, AmtPolicy::kLsa},
      {"iam", EngineType::kAmt, AmtPolicy::kIam},
  };

  std::printf("=== compaction scaling (%llu 1KB random puts/cell) ===\n",
              static_cast<unsigned long long>(ops));
  std::printf("%-8s %10s %13s %12s %10s %10s %9s %8s\n", "engine",
              "bg_threads", "rate_limit_mb", "ops/sec", "p99(us)",
              "p99.9(us)", "stall(s)", "subcomp");
  for (const EngineSpec& spec : engines) {
    for (int threads : thread_counts) {
      for (uint64_t rate_limit_mb : {uint64_t{0}, uint64_t{32}}) {
        RunCell({spec, threads, rate_limit_mb}, ops);
      }
    }
  }
  return 0;
}
