// Component microbenchmarks (google-benchmark): the building blocks whose
// speed underlies every end-to-end number — crc, coding, bloom, blocks,
// skiplist, cache, WAL framing.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include <algorithm>

#include "core/compaction_stream.h"
#include "core/db.h"
#include "core/dbformat.h"
#include "env/mem_env.h"
#include "memtable/memtable.h"
#include "table/mstable.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/bloom.h"
#include "table/cache.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "wal/log_writer.h"

namespace iamdb {
namespace {

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_VarintEncodeDecode(benchmark::State& state) {
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    for (uint64_t v = 1; v < (1ull << 40); v <<= 3) PutVarint64(&buf, v);
    Slice input(buf);
    uint64_t out;
    while (GetVarint64(&input, &out)) benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_VarintEncodeDecode);

void BM_BloomCreate(benchmark::State& state) {
  const int n = state.range(0);
  std::vector<std::string> storage;
  storage.reserve(n);
  for (int i = 0; i < n; i++) storage.push_back("key" + std::to_string(i));
  std::vector<Slice> keys(storage.begin(), storage.end());
  BloomFilterPolicy policy(14);
  for (auto _ : state) {
    std::string filter;
    policy.CreateFilter(keys, &filter);
    benchmark::DoNotOptimize(filter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BloomCreate)->Arg(1000)->Arg(100000);

void BM_BloomQuery(benchmark::State& state) {
  const int n = 100000;
  std::vector<std::string> storage;
  for (int i = 0; i < n; i++) storage.push_back("key" + std::to_string(i));
  std::vector<Slice> keys(storage.begin(), storage.end());
  BloomFilterPolicy policy(14);
  std::string filter;
  policy.CreateFilter(keys, &filter);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.KeyMayMatch(storage[i % n], filter));
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

std::string MakeIKey(int i, SequenceNumber seq = 1) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%08d", i);
  std::string r;
  AppendInternalKey(&r, ParsedInternalKey(buf, seq, kTypeValue));
  return r;
}

void BM_BlockBuild(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 128; i++) entries.emplace_back(MakeIKey(i), "value");
  for (auto _ : state) {
    BlockBuilder builder(16);
    for (const auto& [k, v] : entries) builder.Add(k, v);
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() * entries.size());
}
BENCHMARK(BM_BlockBuild);

void BM_BlockSeek(benchmark::State& state) {
  BlockBuilder builder(16);
  for (int i = 0; i < 128; i++) builder.Add(MakeIKey(i), "value");
  Block block(builder.Finish().ToString());
  InternalKeyComparator cmp;
  Random rnd(1);
  for (auto _ : state) {
    std::unique_ptr<Iterator> iter(block.NewIterator(&cmp));
    iter->Seek(MakeIKey(rnd.Uniform(128), kMaxSequenceNumber));
    benchmark::DoNotOptimize(iter->Valid());
  }
}
BENCHMARK(BM_BlockSeek);

void BM_MemTableAdd(benchmark::State& state) {
  MemTable* mem = new MemTable();
  mem->Ref();
  SequenceNumber seq = 1;
  int i = 0;
  std::string value(state.range(0), 'v');
  for (auto _ : state) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%010d", i++);
    mem->Add(seq++, kTypeValue, buf, value);
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable();
      mem->Ref();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  mem->Unref();
}
BENCHMARK(BM_MemTableAdd)->Arg(100)->Arg(1024);

void BM_MemTableGet(benchmark::State& state) {
  MemTable* mem = new MemTable();
  mem->Ref();
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%010d", i);
    mem->Add(i + 1, kTypeValue, buf, "value");
  }
  Random rnd(7);
  for (auto _ : state) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%010d", rnd.Uniform(n));
    LookupKey lk(buf, kMaxSequenceNumber);
    std::string value;
    Status s;
    benchmark::DoNotOptimize(mem->Get(lk, &value, &s));
  }
  state.SetItemsProcessed(state.iterations());
  mem->Unref();
}
BENCHMARK(BM_MemTableGet);

void BM_CacheLookup(benchmark::State& state) {
  LruCache cache(64 << 20);
  const int n = 10000;
  for (int i = 0; i < n; i++) {
    cache.Insert(BlockCacheKey{static_cast<uint64_t>(i), 4096},
                 std::make_shared<const int>(i), 4096);
  }
  Random rnd(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Lookup(BlockCacheKey{rnd.Uniform(n), 4096}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void BM_WalAppend(benchmark::State& state) {
  MemEnv env;
  std::unique_ptr<WritableFile> file;
  env.NewWritableFile("/log", &file);
  log::Writer writer(file.get());
  std::string record(state.range(0), 'r');
  for (auto _ : state) {
    writer.AddRecord(record);
  }
  state.SetBytesProcessed(state.iterations() * record.size());
}
BENCHMARK(BM_WalAppend)->Arg(128)->Arg(4096);

void BM_MSTableBuild(benchmark::State& state) {
  const int n = state.range(0);
  MemEnv env;
  TableOptions options;
  std::string value(256, 'v');
  int file_number = 0;
  for (auto _ : state) {
    MSTableWriter writer(&env, options,
                         "/t" + std::to_string(file_number++));
    writer.Open();
    for (int i = 0; i < n; i++) {
      writer.Add(MakeIKey(i), value);
    }
    MSTableBuildResult result;
    writer.Finish(false, &result);
    benchmark::DoNotOptimize(result.meta_end);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MSTableBuild)->Arg(1000)->Arg(10000);

void BM_MSTableGet(benchmark::State& state) {
  MemEnv env;
  LruCache cache(64 << 20);
  TableOptions options;
  options.block_cache = &cache;
  const int n = 20000;
  MSTableWriter writer(&env, options, "/t");
  writer.Open();
  std::string value(256, 'v');
  for (int i = 0; i < n; i++) writer.Add(MakeIKey(i), value);
  MSTableBuildResult result;
  writer.Finish(false, &result);

  InternalKeyComparator cmp;
  std::shared_ptr<MSTableReader> reader;
  MSTableReader::Open(&env, options, &cmp, "/t", 1, result.meta_end, &reader);
  Random rnd(5);
  for (auto _ : state) {
    std::string v;
    MSTableReader::GetState gs;
    reader->Get(ReadOptions(), MakeIKey(rnd.Uniform(n), kMaxSequenceNumber),
                &v, &gs);
    benchmark::DoNotOptimize(gs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MSTableGet);

void BM_MSTableAppendSequence(benchmark::State& state) {
  // Cost of one append compaction into an existing node, including the
  // clustered-metadata rewrite (the paper's append write path).
  MemEnv env;
  TableOptions options;
  InternalKeyComparator cmp;
  std::string value(256, 'v');
  for (auto _ : state) {
    state.PauseTiming();
    env.RemoveFile("/t");
    MSTableWriter writer(&env, options, "/t");
    writer.Open();
    for (int i = 0; i < 4000; i += 2) writer.Add(MakeIKey(i), value);
    MSTableBuildResult base;
    writer.Finish(false, &base);
    std::shared_ptr<MSTableReader> reader;
    MSTableReader::Open(&env, options, &cmp, "/t", 1, base.meta_end, &reader);
    state.ResumeTiming();

    MSTableAppender appender(&env, options, "/t", *reader);
    appender.Open();
    for (int i = 1; i < 4000; i += 8) {
      appender.Add(MakeIKey(i, 2), value);
    }
    MSTableBuildResult result;
    appender.Finish(false, &result);
    benchmark::DoNotOptimize(result.seq_count);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_MSTableAppendSequence);

void BM_CompactionStream(benchmark::State& state) {
  // Visibility-filter throughput over a duplicate-heavy stream.
  std::vector<std::pair<std::string, std::string>> data;
  for (int i = 0; i < 20000; i++) {
    data.emplace_back(MakeIKey(i % 2000, 1 + i / 2000), "value");
  }
  std::sort(data.begin(), data.end(),
            [cmp = InternalKeyComparator()](const auto& a, const auto& b) {
              return cmp.Compare(Slice(a.first), Slice(b.first)) < 0;
            });
  for (auto _ : state) {
    // A local iterator over the vector (mirrors compaction input shape).
    class VecIter final : public Iterator {
     public:
      explicit VecIter(const std::vector<std::pair<std::string, std::string>>* d)
          : d_(d), i_(d->size()) {}
      bool Valid() const override { return i_ < d_->size(); }
      void SeekToFirst() override { i_ = 0; }
      void SeekToLast() override { i_ = d_->empty() ? 0 : d_->size() - 1; }
      void Seek(const Slice&) override { i_ = 0; }
      void Next() override { i_++; }
      void Prev() override { i_--; }
      Slice key() const override { return Slice((*d_)[i_].first); }
      Slice value() const override { return Slice((*d_)[i_].second); }
      Status status() const override { return Status::OK(); }

     private:
      const std::vector<std::pair<std::string, std::string>>* d_;
      size_t i_;
    };
    CompactionStream stream(new VecIter(&data), kMaxSequenceNumber, true);
    uint64_t kept = 0;
    while (stream.Valid()) {
      kept++;
      stream.Next();
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_CompactionStream);

void BM_DbPut(benchmark::State& state) {
  // End-to-end write-path cost (WAL + memtable via group commit) per
  // engine, without ever filling the memtable.
  MemEnv env;
  Options options;
  options.env = &env;
  options.engine =
      state.range(0) == 0 ? EngineType::kLeveled : EngineType::kAmt;
  options.node_capacity = 256 << 20;  // never flush
  std::unique_ptr<DB> db;
  DB::Open(options, "/bmdb", &db);
  std::string value(256, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    char key[32];
    snprintf(key, sizeof(key), "key%012llu",
             static_cast<unsigned long long>(i++));
    db->Put(WriteOptions(), key, value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbPut)->Arg(0)->Arg(1);

}  // namespace
}  // namespace iamdb
