// Memory walls: one fixed pool of memory, three ways to divide it between
// the write side (memtable) and the read side (block cache), under a
// grow-past-cache workload that needs both.
//
//   fixed-write - the pool is committed up front to a large memtable
//                 (node_capacity = 7/8 of the pool) with a sliver of cache:
//                 writes rotate rarely, but once the data set outgrows the
//                 cache almost every read misses.
//   fixed-read  - the pool is committed to the cache (memtable stays at the
//                 256KB structural node size): reads are served as well as
//                 a fixed split can, but the tiny memtable rotates
//                 constantly and write stalls pile up behind compaction.
//   arbitrated  - Options::memory_budget_bytes = the same pool; the
//                 memory arbiter (core/memory_arbiter.h) starts from a
//                 1/4 write share and re-divides online from the observed
//                 stall and miss EWMAs, re-running the (m, k) tuner on the
//                 AMT engines whenever the read share moves.
//
// The workload interleaves one insert of a NEW key with one uniform read
// over all keys inserted so far, after a small preload — the data set
// grows monotonically through and far past the pool, so neither a pure
// write-side nor a pure read-side division is right for the whole run.
// The observable is overall ops/sec plus the per-side tails (put p99, get
// p99), stall time, and the cache hit rate; the arbitrated cell also
// reports where the split ended up and how many times it moved.  The
// claim under test is modest and robust: the arbiter must beat the WORST
// fixed division on every engine — adaptivity as insurance against
// committing the pool to the wrong side.
//
// One JSON line per (engine, mode) cell:
//   {"bench":"memory_tuning","engine":"iam","mode":"arbitrated",
//    "pool_mb":8,"steps":30000,"ops":60000,"ops_per_sec":52000.0,
//    "put_p99_us":40.0,"get_p99_us":95.0,"stall_s":0.21,
//    "cache_hit_rate":0.31,"data_mb":34.1,
//    "arbiter_write_mb":1.2,"arbiter_read_mb":6.8,
//    "arbiter_retunes":120,"arbiter_shifts":14,"mixed_level_retunes":3}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "core/db.h"
#include "env/mem_env.h"
#include "util/histogram.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace iamdb;

namespace {

constexpr int kValueSize = 1024;             // paper: 1KB values
constexpr uint64_t kPoolBytes = 8ull << 20;  // the contended pool
constexpr uint64_t kNodeCapacity = 256 << 10;
constexpr uint64_t kPreloadKeys = 4000;      // targets for the first reads

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct EngineSpec {
  const char* name;
  EngineType engine;
  AmtPolicy policy;
};

enum class Mode { kFixedWrite, kFixedRead, kArbitrated };

struct ModeSpec {
  const char* name;
  Mode mode;
};

Options MakeCellOptions(const EngineSpec& spec, const ModeSpec& mode,
                        int bg_threads, Env* env) {
  Options options;
  options.env = env;
  options.engine = spec.engine;
  options.amt.policy = spec.policy;
  options.table.block_size = 4096;
  options.amt.fanout = 10;
  options.background_threads = bg_threads;
  options.max_subcompactions = 4;
  switch (mode.mode) {
    case Mode::kFixedWrite:
      // The pool hoarded by the write side: one huge memtable, 1MB cache.
      options.node_capacity = kPoolBytes - (1 << 20);
      options.block_cache_capacity = 1 << 20;
      break;
    case Mode::kFixedRead:
      // The pool hoarded by the read side: structural memtable, rest cache.
      options.node_capacity = kNodeCapacity;
      options.block_cache_capacity = kPoolBytes - kNodeCapacity;
      break;
    case Mode::kArbitrated:
      // Same pool, divided online.  block_cache_capacity is only a tier
      // ratio under the arbiter (single tier here), node_capacity is the
      // write-side floor.
      options.node_capacity = kNodeCapacity;
      options.memory_budget_bytes = kPoolBytes;
      break;
  }
  // Keep the leveled tree's ratios tied to the flush size, as elsewhere.
  options.leveled.target_file_size = options.node_capacity / 2;
  options.leveled.max_bytes_level1 = 5 * options.node_capacity;
  return options;
}

void RunCell(const EngineSpec& spec, const ModeSpec& mode, int bg_threads,
             uint64_t steps) {
  MemEnv env;
  std::unique_ptr<DB> db;
  Status s =
      DB::Open(MakeCellOptions(spec, mode, bg_threads, &env), "/bench", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return;
  }

  Random64 rnd(42);
  const std::string value(kValueSize, 'v');
  std::string out;

  uint64_t next_key = 0;
  for (; next_key < kPreloadKeys; next_key++) {
    s = db->Put(WriteOptions(), Key(next_key), value);
    if (!s.ok()) {
      std::fprintf(stderr, "preload put failed: %s\n", s.ToString().c_str());
      return;
    }
  }

  Histogram put_us;
  Histogram get_us;
  const double start = NowMicros();
  for (uint64_t i = 0; i < steps; i++) {
    double t0 = NowMicros();
    s = db->Put(WriteOptions(), Key(next_key), value);
    double t1 = NowMicros();
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return;
    }
    put_us.Add(t1 - t0);
    next_key++;

    const std::string key = Key(rnd.Uniform(next_key));
    t0 = NowMicros();
    s = db->Get(ReadOptions(), key, &out);
    t1 = NowMicros();
    if (!s.ok()) {
      std::fprintf(stderr, "get failed (%s): %s\n", key.c_str(),
                   s.ToString().c_str());
      return;
    }
    get_us.Add(t1 - t0);
  }
  const double elapsed_s = (NowMicros() - start) / 1e6;
  const uint64_t ops = 2 * steps;

  DbStats stats = db->GetStats();
  const uint64_t probes = stats.cache_hits + stats.cache_misses;
  const double hit_rate =
      probes > 0 ? static_cast<double>(stats.cache_hits) / probes : 0.0;
  const double data_mb = next_key * static_cast<double>(kValueSize) / 1048576.0;

  std::printf("%-8s %-12s %10.0f %10.2f %10.2f %8.3f %8.3f %8llu %8llu\n",
              spec.name, mode.name, ops / elapsed_s, put_us.Percentile(99),
              get_us.Percentile(99), hit_rate, stats.stall_micros / 1e6,
              static_cast<unsigned long long>(stats.arbiter_shifts),
              static_cast<unsigned long long>(stats.mixed_level_retunes));

  std::printf(
      "{\"bench\":\"memory_tuning\",\"engine\":\"%s\",\"mode\":\"%s\","
      "\"bg_threads\":%d,\"cpus\":%u,\"pool_mb\":%llu,\"steps\":%llu,"
      "\"ops\":%llu,\"ops_per_sec\":%.1f,\"put_p99_us\":%.2f,"
      "\"get_p99_us\":%.2f,\"stall_s\":%.3f,\"cache_hit_rate\":%.4f,"
      "\"data_mb\":%.1f,\"arbiter_write_mb\":%.2f,\"arbiter_read_mb\":%.2f,"
      "\"arbiter_retunes\":%llu,\"arbiter_shifts\":%llu,"
      "\"mixed_level_retunes\":%llu}\n",
      spec.name, mode.name, bg_threads, std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(kPoolBytes >> 20),
      static_cast<unsigned long long>(steps),
      static_cast<unsigned long long>(ops), ops / elapsed_s,
      put_us.Percentile(99), get_us.Percentile(99), stats.stall_micros / 1e6,
      hit_rate, data_mb, stats.arbiter_write_bytes / 1048576.0,
      stats.arbiter_read_bytes / 1048576.0,
      static_cast<unsigned long long>(stats.arbiter_retunes),
      static_cast<unsigned long long>(stats.arbiter_shifts),
      static_cast<unsigned long long>(stats.mixed_level_retunes));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv, 1.0);
  // 30k steps = 30k new keys + 30k uniform reads: the live set ends near
  // 34MB, about 4x the 8MB pool, so every division of the pool is under
  // pressure on both sides by the end of the run.
  const uint64_t steps = std::max<uint64_t>(2000, bench::Scaled(30000, scale));
  const int bg_threads = bench::ParseBgThreads(argc, argv, 2);

  const EngineSpec engines[] = {
      {"leveled", EngineType::kLeveled, AmtPolicy::kLsa},
      {"lsa", EngineType::kAmt, AmtPolicy::kLsa},
      {"iam", EngineType::kAmt, AmtPolicy::kIam},
  };
  const ModeSpec modes[] = {
      {"fixed-write", Mode::kFixedWrite},
      {"fixed-read", Mode::kFixedRead},
      {"arbitrated", Mode::kArbitrated},
  };

  std::printf(
      "=== memory_tuning (%lluMB pool, %llu insert+read steps, 1KB values, "
      "%d bg) ===\n",
      static_cast<unsigned long long>(kPoolBytes >> 20),
      static_cast<unsigned long long>(steps), bg_threads);
  std::printf("%-8s %-12s %10s %10s %10s %8s %8s %8s %8s\n", "engine", "mode",
              "ops/sec", "put_p99", "get_p99", "hit_rate", "stall(s)",
              "shifts", "mk_ret");
  for (const EngineSpec& spec : engines) {
    for (const ModeSpec& mode : modes) {
      RunCell(spec, mode, bg_threads, steps);
    }
  }
  return 0;
}
