// Stability: fixed-duration write-heavy ingest bucketed into 1-second
// windows, for the leveled baseline and both AMT policies, under three
// pacing regimes:
//
//   unpaced  - no compaction rate limit (merges burst at full speed)
//   static   - fixed 32MB/s token bucket (BENCH_compaction_scaling's knee:
//              smooth but ~10x slower)
//   adaptive - debt/ingest feedback controller (core/compaction_pacer.h)
//
// Each cell first loads the whole key space and waits for compactions to
// settle (warm-up), then runs a fixed-duration random-overwrite phase;
// each window records its put count and p99 latency, and cross-window
// throughput variance (stddev and coefficient of variation over the
// complete windows) is the stability observable: a paced run should trade
// a little peak throughput for materially flatter windows.  Runs are
// fixed-duration rather than fixed-ops so every cell yields the same
// number of comparable windows regardless of how fast its mode is.
//
// One JSON line per (engine, mode) cell:
//   {"bench":"stability","engine":"iam","mode":"adaptive","bg_threads":2,
//    "cpus":1,"duration_s":8.0,"window_s":1,"ops":123456,
//    "ops_per_sec":15432.0,"p99_us":210.0,"p999_us":1800.0,
//    "windows":[{"ops":15000,"p99_us":200.0},...],
//    "window_ops_mean":15000.0,"window_ops_stddev":300.0,"window_cv":0.02,
//    "stall_s":0.35,"rate_limit_wait_thread_s":0.12,
//    "rate_limit_wait_wall_s":0.08,"pacer_rate_mb_s":80.0,
//    "pacer_ingest_mb_s":60.1,"pacer_retunes":74,"final_debt_bytes":0}
//
// rate_limit_wait_thread_s is summed across background threads and can
// exceed wall-clock; rate_limit_wait_wall_s is the wall-clock union of
// paced intervals (see DbStats).  Both are reported, labelled.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "util/histogram.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace iamdb;

namespace {

constexpr int kValueSize = 1024;      // paper: 1KB values
constexpr double kWindowMicros = 1e6; // 1-second windows

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct EngineSpec {
  const char* name;
  EngineType engine;
  AmtPolicy policy;
};

struct ModeSpec {
  const char* name;
  uint64_t rate_limit_mb;  // static token bucket; 0 = none
  bool adaptive;
};

struct WindowStat {
  uint64_t ops = 0;
  double p99_us = 0;
};

Options MakeCellOptions(const EngineSpec& spec, const ModeSpec& mode,
                        int bg_threads, Env* env) {
  Options options;
  options.env = env;
  options.engine = spec.engine;
  options.amt.policy = spec.policy;
  options.node_capacity = 256 << 10;
  options.table.block_size = 4096;
  options.amt.fanout = 10;
  options.leveled.target_file_size = 128 << 10;
  options.leveled.max_bytes_level1 = 5 * (256 << 10);
  options.background_threads = bg_threads;
  options.max_subcompactions = 4;
  options.compaction_rate_limit = mode.rate_limit_mb << 20;
  options.pacing.adaptive = mode.adaptive;
  return options;
}

void RunCell(const EngineSpec& spec, const ModeSpec& mode, int bg_threads,
             double duration_s, uint64_t key_space) {
  MemEnv env;
  std::unique_ptr<DB> db;
  Status s =
      DB::Open(MakeCellOptions(spec, mode, bg_threads, &env), "/bench", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return;
  }

  Random64 rnd(42);
  const std::string value(kValueSize, 'v');

  // Warm-up: load the whole key space and let compactions settle, so the
  // timed windows measure steady-state overwrite behaviour rather than
  // the empty-tree transient (fast for every mode, and a monotone trend
  // that would swamp the cross-window variance this bench compares).
  // Cumulative counters are reported as deltas past this point.
  for (uint64_t i = 0; i < key_space; i++) {
    s = db->Put(WriteOptions(), Key(i), value);
    if (!s.ok()) {
      std::fprintf(stderr, "warm-up put failed: %s\n", s.ToString().c_str());
      return;
    }
  }
  db->FlushAll();
  db->WaitForQuiescence();
  // One second of untimed overwrites so every mode (and the adaptive
  // controller in particular) is already in its steady overwrite regime
  // when the first window opens.
  const double lead_deadline = NowMicros() + 1e6;
  while (NowMicros() < lead_deadline) {
    s = db->Put(WriteOptions(), Key(rnd.Uniform(key_space)), value);
    if (!s.ok()) {
      std::fprintf(stderr, "lead-in put failed: %s\n", s.ToString().c_str());
      return;
    }
  }
  const DbStats warm = db->GetStats();
  Histogram overall_us;
  Histogram window_us;
  std::vector<WindowStat> windows;
  uint64_t window_ops = 0;
  size_t cur_window = 0;
  uint64_t total_ops = 0;

  const double start = NowMicros();
  const double deadline = start + duration_s * 1e6;
  double now = start;
  while (now < deadline) {
    const double op_start = now;
    s = db->Put(WriteOptions(), Key(rnd.Uniform(key_space)), value);
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return;
    }
    now = NowMicros();
    // A put that stalls across a boundary lands in the window where it
    // completed; intervening windows stay at zero ops -- that IS the
    // stall showing up in the window series.
    const size_t idx = static_cast<size_t>((now - start) / kWindowMicros);
    while (cur_window < idx) {
      windows.push_back({window_ops, window_us.Percentile(99)});
      window_ops = 0;
      window_us.Clear();
      cur_window++;
    }
    overall_us.Add(now - op_start);
    window_us.Add(now - op_start);
    window_ops++;
    total_ops++;
  }
  const double ingest_seconds = (now - start) / 1e6;
  // The final partial window is dropped: it covers less than a second, so
  // its op count is not comparable to the complete windows'.

  db->FlushAll();
  db->WaitForQuiescence();
  DbStats stats = db->GetStats();
  stats.stall_micros -= warm.stall_micros;
  stats.rate_limiter_wait_micros -= warm.rate_limiter_wait_micros;
  stats.rate_limiter_paced_wall_micros -= warm.rate_limiter_paced_wall_micros;

  double mean = 0, stddev = 0;
  if (!windows.empty()) {
    for (const WindowStat& w : windows) mean += static_cast<double>(w.ops);
    mean /= static_cast<double>(windows.size());
    for (const WindowStat& w : windows) {
      const double d = static_cast<double>(w.ops) - mean;
      stddev += d * d;
    }
    stddev = std::sqrt(stddev / static_cast<double>(windows.size()));
  }
  const double cv = mean > 0 ? stddev / mean : 0;

  std::printf("%-8s %-8s %10.0f %10.2f %10.2f %8zu %10.0f %8.3f %8.3f\n",
              spec.name, mode.name, total_ops / ingest_seconds,
              overall_us.Percentile(99), overall_us.Percentile(99.9),
              windows.size(), mean, cv, stats.stall_micros / 1e6);

  std::string window_json;
  for (const WindowStat& w : windows) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s{\"ops\":%llu,\"p99_us\":%.2f}",
                  window_json.empty() ? "" : ",",
                  static_cast<unsigned long long>(w.ops), w.p99_us);
    window_json += buf;
  }
  std::printf(
      "{\"bench\":\"stability\",\"engine\":\"%s\",\"mode\":\"%s\","
      "\"bg_threads\":%d,\"cpus\":%u,\"duration_s\":%.1f,\"window_s\":1,"
      "\"key_space\":%llu,\"ops\":%llu,\"ops_per_sec\":%.1f,\"p99_us\":%.2f,\"p999_us\":%.2f,"
      "\"windows\":[%s],\"window_ops_mean\":%.1f,\"window_ops_stddev\":%.1f,"
      "\"window_cv\":%.4f,\"stall_s\":%.3f,"
      "\"rate_limit_wait_thread_s\":%.3f,\"rate_limit_wait_wall_s\":%.3f,"
      "\"pacer_rate_mb_s\":%.1f,\"pacer_ingest_mb_s\":%.1f,"
      "\"pacer_retunes\":%llu,\"final_debt_bytes\":%llu}\n",
      spec.name, mode.name, bg_threads, std::thread::hardware_concurrency(),
      duration_s, static_cast<unsigned long long>(key_space),
      static_cast<unsigned long long>(total_ops),
      total_ops / ingest_seconds, overall_us.Percentile(99),
      overall_us.Percentile(99.9), window_json.c_str(), mean, stddev, cv,
      stats.stall_micros / 1e6, stats.rate_limiter_wait_micros / 1e6,
      stats.rate_limiter_paced_wall_micros / 1e6,
      stats.pacer_rate_bytes_per_sec / 1048576.0,
      stats.pacer_ingest_bytes_per_sec / 1048576.0,
      static_cast<unsigned long long>(stats.pacer_retunes),
      static_cast<unsigned long long>(stats.pending_debt_bytes));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv, 1.0);
  // 60 one-second windows per cell: cross-window CV carries ~1/sqrt(2N)
  // sampling error, so 60 windows resolves CV differences of a few
  // hundredths that 10-20 windows cannot.
  const double duration_s = 60.0 * scale;
  // ~40MB live set at full scale: big enough to keep multi-level merges
  // running, small enough that the MemEnv footprint stays bounded under a
  // duration-driven op count.
  const uint64_t key_space =
      std::max<uint64_t>(2000, bench::Scaled(40000, scale));
  const int bg_threads = bench::ParseBgThreads(argc, argv, 2);

  const EngineSpec engines[] = {
      {"leveled", EngineType::kLeveled, AmtPolicy::kLsa},
      {"lsa", EngineType::kAmt, AmtPolicy::kLsa},
      {"iam", EngineType::kAmt, AmtPolicy::kIam},
  };
  const ModeSpec modes[] = {
      {"unpaced", 0, false},
      {"static", 32, false},
      {"adaptive", 0, true},
  };

  std::printf(
      "=== stability (%.1fs of 1KB random overwrites/cell over %llu keys, "
      "%d bg) ===\n",
      duration_s, static_cast<unsigned long long>(key_space), bg_threads);
  std::printf("%-8s %-8s %10s %10s %10s %8s %10s %8s %8s\n", "engine", "mode",
              "ops/sec", "p99(us)", "p99.9(us)", "windows", "win_mean",
              "win_cv", "stall(s)");
  for (const EngineSpec& spec : engines) {
    for (const ModeSpec& mode : modes) {
      RunCell(spec, mode, bg_threads, duration_s, key_space);
    }
  }
  return 0;
}
