// Read-path scaling: point-read and 95/5 (get/put) mixed throughput plus
// p50/p99 latency at 1, 2, 4, 8 and 16 threads, measured two ways:
//   mode=db     — threads call DB::Get / DB::Put directly (no wire), so
//                 this isolates the in-process read path: with the
//                 lock-free ReadView, Get shares no lock with writers.
//   mode=server — the same workload through the network serving layer
//                 (encode -> TCP -> decode -> dispatch -> DB -> respond),
//                 one connection per thread.
// The working set is preloaded and quiesced so point reads run against a
// cached tree: any scaling loss is contention, not I/O.
//
// One JSON line per (mode, op, threads) cell, same shape as
// bench_server_throughput:
//   {"bench":"read_scaling","mode":"db","op":"get","threads":4,"cpus":8,
//    "ops":100000,"ops_per_sec":123456.7,"p50_us":3.0,"p99_us":11.2}
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "server/client.h"
#include "server/server.h"
#include "util/histogram.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace iamdb;

namespace {

constexpr int kValueSize = 100;

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CellResult {
  uint64_t ops = 0;
  double ops_per_sec = 0;
  Histogram latency_us;
};

// One operation: a point read, or (for the mixed cell) a put on 5% of ops.
// `put_percent` of 0 gives the pure point-read cell.
struct Workload {
  uint64_t key_space;
  int put_percent;  // 0 or 5
};

CellResult RunDbCell(DB* db, const Workload& w, int threads,
                     uint64_t ops_per_thread) {
  std::vector<Histogram> histograms(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const double start = NowMicros();
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      Random64 rnd(2000 + t);
      const std::string value(kValueSize, 'v');
      std::string out;
      for (uint64_t i = 0; i < ops_per_thread; i++) {
        const std::string key = Key(rnd.Uniform(w.key_space));
        const bool do_put =
            w.put_percent > 0 &&
            rnd.Uniform(100) < static_cast<uint64_t>(w.put_percent);
        const double op_start = NowMicros();
        Status s = do_put ? db->Put(WriteOptions(), key, value)
                          : db->Get(ReadOptions(), key, &out);
        if (s.IsNotFound()) s = Status::OK();
        if (!s.ok()) {
          std::fprintf(stderr, "op failed: %s\n", s.ToString().c_str());
          return;
        }
        histograms[t].Add(NowMicros() - op_start);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed_us = NowMicros() - start;

  CellResult result;
  for (const Histogram& h : histograms) result.latency_us.Merge(h);
  result.ops = result.latency_us.Count();
  result.ops_per_sec = result.ops / (elapsed_us / 1e6);
  return result;
}

CellResult RunServerCell(int port, const Workload& w, int threads,
                         uint64_t ops_per_thread) {
  std::vector<Histogram> histograms(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const double start = NowMicros();
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      ClientOptions options;
      options.port = port;
      Client client(options);
      Random64 rnd(3000 + t);
      const std::string value(kValueSize, 'v');
      std::string out;
      for (uint64_t i = 0; i < ops_per_thread; i++) {
        const std::string key = Key(rnd.Uniform(w.key_space));
        const bool do_put =
            w.put_percent > 0 &&
            rnd.Uniform(100) < static_cast<uint64_t>(w.put_percent);
        const double op_start = NowMicros();
        Status s = do_put ? client.Put(key, value) : client.Get(key, &out);
        if (s.IsNotFound()) s = Status::OK();
        if (!s.ok()) {
          std::fprintf(stderr, "op failed: %s\n", s.ToString().c_str());
          return;
        }
        histograms[t].Add(NowMicros() - op_start);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed_us = NowMicros() - start;

  CellResult result;
  for (const Histogram& h : histograms) result.latency_us.Merge(h);
  result.ops = result.latency_us.Count();
  result.ops_per_sec = result.ops / (elapsed_us / 1e6);
  return result;
}

void Report(const char* mode, const char* op, int threads,
            const CellResult& r) {
  std::printf("%-7s %-9s %8d %12.0f %10.2f %10.2f\n", mode, op, threads,
              r.ops_per_sec, r.latency_us.Percentile(50),
              r.latency_us.Percentile(99));
  std::printf(
      "{\"bench\":\"read_scaling\",\"mode\":\"%s\",\"op\":\"%s\","
      "\"threads\":%d,\"cpus\":%u,\"ops\":%llu,\"ops_per_sec\":%.1f,"
      "\"p50_us\":%.2f,\"p99_us\":%.2f}\n",
      mode, op, threads, std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(r.ops), r.ops_per_sec,
      r.latency_us.Percentile(50), r.latency_us.Percentile(99));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv, 1.0);
  const uint64_t ops_per_cell = bench::Scaled(100000, scale);
  const uint64_t key_space = bench::Scaled(50000, scale);

  MemEnv env;
  Options db_options;
  db_options.env = &env;
  db_options.background_threads = 2;
  // Cache sized well above the data set so the point-read cells run fully
  // cached — scaling is then a pure concurrency measurement.
  db_options.block_cache_capacity = 256ull << 20;
  std::unique_ptr<DB> db;
  Status s = DB::Open(db_options, "/bench-read-scaling", &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Preload and settle, then touch every key once to warm the block cache.
  {
    const std::string value(kValueSize, 'v');
    for (uint64_t i = 0; i < key_space; i++) {
      if (!db->Put(WriteOptions(), Key(i), value).ok()) {
        std::fprintf(stderr, "preload failed\n");
        return 1;
      }
    }
    if (!db->FlushAll().ok()) {
      std::fprintf(stderr, "settle failed\n");
      return 1;
    }
    std::string out;
    for (uint64_t i = 0; i < key_space; i++) {
      if (!db->Get(ReadOptions(), Key(i), &out).ok()) {
        std::fprintf(stderr, "warmup read failed\n");
        return 1;
      }
    }
  }

  ServerOptions server_options;
  server_options.port = 0;
  server_options.num_workers = 16;
  Server server(db.get(), server_options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf(
      "=== read scaling (cached working set, %llu keys, %llu ops/cell) ===\n",
      static_cast<unsigned long long>(key_space),
      static_cast<unsigned long long>(ops_per_cell));
  std::printf("%-7s %-9s %8s %12s %10s %10s\n", "mode", "op", "threads",
              "ops/sec", "p50(us)", "p99(us)");

  const std::vector<int> thread_counts = {1, 2, 4, 8, 16};
  const Workload kPointRead{key_space, 0};
  const Workload kMixed{key_space, 5};

  for (int threads : thread_counts) {
    const uint64_t per_thread = std::max<uint64_t>(1, ops_per_cell / threads);
    Report("db", "get", threads,
           RunDbCell(db.get(), kPointRead, threads, per_thread));
  }
  for (int threads : thread_counts) {
    const uint64_t per_thread = std::max<uint64_t>(1, ops_per_cell / threads);
    Report("db", "mixed_95_5", threads,
           RunDbCell(db.get(), kMixed, threads, per_thread));
    db->WaitForQuiescence();
  }
  for (int threads : thread_counts) {
    const uint64_t per_thread = std::max<uint64_t>(1, ops_per_cell / threads);
    Report("server", "get", threads,
           RunServerCell(server.port(), kPointRead, threads, per_thread));
  }
  for (int threads : thread_counts) {
    const uint64_t per_thread = std::max<uint64_t>(1, ops_per_cell / threads);
    Report("server", "mixed_95_5", threads,
           RunServerCell(server.port(), kMixed, threads, per_thread));
    db->WaitForQuiescence();
  }

  server.Stop();
  return 0;
}
