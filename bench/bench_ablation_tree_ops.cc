// Ablation of the LSA tree-maintenance design choices (Sec 4.2):
//  * split threshold (2t by default): without splits bounded fan-out is
//    lost; with a lower threshold splits happen more often and cost more
//    write amplification;
//  * combine candidate selection (min-Tcn vs naive first-node): the paper
//    argues min-Tcn avoids cascading splits.
// Knobs: AmtOptions::split_child_factor and combine_min_tcn.
#include <cstdio>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

namespace {

struct Variant {
  const char* name;
  double split_child_factor;
  bool combine_min_tcn;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.4);
  ScaleConfig config = ScaleConfig::Gb100();
  config.num_records = Scaled(config.num_records, scale);

  std::printf("=== Ablation: split threshold & combine selection ===\n");
  std::printf("  %-26s %9s %10s %10s\n", "variant", "write-amp",
              "split-MB", "merge-MB");

  for (const Variant& v :
       {Variant{"baseline (2t, min-Tcn)", 2.0, true},
        Variant{"aggressive splits (1.25t)", 1.25, true},
        Variant{"naive combine (first)", 2.0, false}}) {
    MemEnv env;
    Options options = MakeOptions(SystemId::kA1, config, &env);
    options.amt.split_child_factor = v.split_child_factor;
    options.amt.combine_min_tcn = v.combine_min_tcn;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/abl2", &db).ok()) return 1;
    for (uint64_t i = 0; i < config.num_records; i++) {
      db->Put(WriteOptions(), HashedKey(i), MakeValue(i, config.value_size));
    }
    db->WaitForQuiescence();
    const AmpStats& amps = db->amp_stats();
    std::printf("  %-26s %9.2f %10.1f %10.1f\n", v.name,
                amps.TotalWriteAmp(),
                amps.reason_bytes(WriteReason::kSplit) / 1048576.0,
                amps.reason_bytes(WriteReason::kMerge) / 1048576.0);
  }
  std::printf("\nExpected: aggressive splits raise split traffic; naive "
              "combine raises split traffic indirectly via range skew.\n");
  return 0;
}
