#include "workload/harness.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "stats/io_stats.h"
#include "table/compressor.h"

namespace iamdb::bench {

const char* SystemName(SystemId id) {
  switch (id) {
    case SystemId::kL: return "L";
    case SystemId::kR1: return "R-1t";
    case SystemId::kR4: return "R-4t";
    case SystemId::kA1: return "A-1t";
    case SystemId::kA4: return "A-4t";
    case SystemId::kI1: return "I-1t";
    case SystemId::kI4: return "I-4t";
  }
  return "?";
}

ScaleConfig ScaleConfig::Gb100() {
  ScaleConfig c;
  c.num_records = 128 * 1024;        // ~128MB of user data
  c.node_capacity = 1 << 20;         // Ct = 1MB
  c.cache_bytes = 20 << 20;          // 16GB/100GB ratio
  return c;
}

ScaleConfig ScaleConfig::Tb1() {
  ScaleConfig c;
  c.num_records = 448 * 1024;        // ~460MB of user data
  c.node_capacity = 1 << 20;
  c.cache_bytes = 28 << 20;          // 64GB/1TB ratio
  return c;
}

ScaleConfig ScaleConfig::Smoke() {
  ScaleConfig c;
  c.num_records = 12 * 1024;
  c.value_size = 512;
  c.node_capacity = 256 << 10;
  c.cache_bytes = 2 << 20;
  return c;
}

Options MakeOptions(SystemId id, const ScaleConfig& scale, Env* env) {
  Options options;
  options.env = env;
  options.node_capacity = scale.node_capacity;
  options.block_cache_capacity = scale.cache_bytes;
  options.amt.memory_budget_bytes = scale.tuner_budget_bytes;
  options.table.bloom_bits_per_key = 14;  // Sec 6.1
  options.table.block_size = 4096;
  options.amt.fanout = scale.fanout;

  // Leveled thresholds follow the paper's LevelDB/RocksDB tuning scaled by
  // the same factor as Ct: memtable = Ct, file = Ct/2, L1 = 10 files.
  options.leveled.target_file_size = scale.node_capacity / 2;
  options.leveled.max_bytes_level1 = 5 * scale.node_capacity;
  options.leveled.level_multiplier = scale.fanout;

  switch (id) {
    case SystemId::kL:
      options.engine = EngineType::kLeveled;
      options.background_threads = 1;
      break;
    case SystemId::kR1:
    case SystemId::kR4:
      options.engine = EngineType::kLeveled;
      options.leveled.strict_level_limits = true;
      options.leveled.soft_pending_bytes = 4 * scale.node_capacity;
      options.leveled.hard_pending_bytes = 16 * scale.node_capacity;
      options.background_threads = id == SystemId::kR4 ? 4 : 1;
      break;
    case SystemId::kA1:
    case SystemId::kA4:
      options.engine = EngineType::kAmt;
      options.amt.policy = AmtPolicy::kLsa;
      options.background_threads = id == SystemId::kA4 ? 4 : 1;
      break;
    case SystemId::kI1:
    case SystemId::kI4:
      options.engine = EngineType::kAmt;
      options.amt.policy = AmtPolicy::kIam;
      options.amt.k = 3;
      options.background_threads = id == SystemId::kI4 ? 4 : 1;
      break;
  }
  if (scale.background_threads > 0) {
    options.background_threads = scale.background_threads;
  }
  options.table.compression = scale.compression;
  options.compressed_cache_capacity = scale.compressed_cache_bytes;
  return options;
}

BenchDb::BenchDb(SystemId id, const ScaleConfig& scale)
    : id_(id), scale_(scale), env_(std::make_unique<MemEnv>()) {
  Options options = MakeOptions(id, scale, env_.get());
  Status s = DB::Open(options, "/bench", &db_);
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: open %s: %s\n", SystemName(id),
                 s.ToString().c_str());
    std::abort();
  }
}

BenchDb::~BenchDb() = default;

namespace {

struct OpSample {
  float ssd_us;
  float hdd_us;
  float stall_us;
};

class PhaseRecorder {
 public:
  explicit PhaseRecorder(BenchDb* bench)
      : bench_(bench),
        ssd_(DeviceProfile::SSD()),
        hdd_(DeviceProfile::HDD()),
        io_before_(bench->db()->GetStats().io),
        stalls_before_(bench->db()->GetStats().stall_micros),
        wall_before_(Env::Default()->NowMicros()) {}

  // Wrap each user operation.
  template <typename Fn>
  void Op(Fn&& fn) {
    OpIoScope scope;
    fn();
    const OpIoContext& ctx = scope.context();
    samples_.push_back(OpSample{
        static_cast<float>(ssd_.OpMicros(ctx) - ctx.stall_micros),
        static_cast<float>(hdd_.OpMicros(ctx) - ctx.stall_micros),
        static_cast<float>(ctx.stall_micros)});
  }

  RunResult Finish() {
    RunResult result;
    result.ops = samples_.size();
    result.stats_after = bench_->db()->GetStats();
    uint64_t wall = Env::Default()->NowMicros() - wall_before_;
    result.wall_seconds = wall / 1e6;
    IoStatsSnapshot delta = result.stats_after.io - io_before_;
    result.ssd_seconds = ssd_.TotalMicros(delta) / 1e6;
    result.hdd_seconds = hdd_.TotalMicros(delta) / 1e6;

    // Stall dilation: wall-clock waits on background work are re-priced in
    // modeled device time by the run's overall dilation factor, so a write
    // stall "costs" what the blocking compaction I/O costs on that device.
    double ssd_dilation = wall > 0 ? (ssd_.TotalMicros(delta) / wall) : 0;
    double hdd_dilation = wall > 0 ? (hdd_.TotalMicros(delta) / wall) : 0;
    for (const OpSample& s : samples_) {
      result.ssd_latency_us.Add(s.ssd_us + s.stall_us * ssd_dilation + 1.0);
      result.hdd_latency_us.Add(s.hdd_us + s.stall_us * hdd_dilation + 1.0);
    }
    return result;
  }

 private:
  BenchDb* bench_;
  DeviceModel ssd_, hdd_;
  IoStatsSnapshot io_before_;
  uint64_t stalls_before_;
  uint64_t wall_before_;
  std::vector<OpSample> samples_;
};

}  // namespace

RunResult Load(BenchDb* bench, uint64_t n, bool ordered, SettleMode settle,
               uint64_t pace_debt_bytes) {
  PhaseRecorder recorder(bench);
  DB* db = bench->db();
  const size_t value_size = bench->scale().value_size;
  for (uint64_t i = 0; i < n; i++) {
    recorder.Op([&] {
      std::string key = ordered ? OrderedKey(i) : HashedKey(i);
      Status s = db->Put(WriteOptions(), key, MakeValue(i, value_size));
      if (!s.ok()) std::abort();
    });
    if (pace_debt_bytes > 0 && (i & 31) == 31) {
      // Yield real time to the background until the debt is bounded.
      int spins = 0;
      while (db->GetStats().pending_debt_bytes > pace_debt_bytes &&
             spins++ < 20000) {
        Env::Default()->SleepForMicroseconds(200);
      }
    }
  }
  bench->set_record_count(n);
  if (settle == SettleMode::kSettleInWindow) db->WaitForQuiescence();
  RunResult result = recorder.Finish();
  if (settle == SettleMode::kSettleOutside) db->WaitForQuiescence();
  return result;
}

RunResult Overwrite(BenchDb* bench, uint64_t ops, bool random_order,
                    uint64_t seed) {
  PhaseRecorder recorder(bench);
  DB* db = bench->db();
  const uint64_t n = bench->record_count();
  const size_t value_size = bench->scale().value_size;
  Random64 rnd(seed);
  for (uint64_t i = 0; i < ops; i++) {
    recorder.Op([&] {
      uint64_t index = random_order ? rnd.Next() % n : i % n;
      Status s = db->Put(WriteOptions(), HashedKey(index),
                         MakeValue(index + ops, value_size));
      if (!s.ok()) std::abort();
    });
  }
  db->WaitForQuiescence();
  return recorder.Finish();
}

WorkloadSpec WorkloadSpec::Ycsb(char which) {
  WorkloadSpec spec;
  switch (which) {
    case 'A':  // update heavy: 50/50 read/update, zipfian
      spec.read = 0.5;
      spec.update = 0.5;
      break;
    case 'B':  // read heavy: 95/5
      spec.read = 0.95;
      spec.update = 0.05;
      break;
    case 'C':  // read only
      spec.read = 1.0;
      break;
    case 'D':  // read latest: 95 read / 5 insert
      spec.read = 0.95;
      spec.insert = 0.05;
      spec.dist = Dist::kLatest;
      break;
    case 'E':  // short scans: 95 scan / 5 insert, 0-100 records
      spec.scan = 0.95;
      spec.insert = 0.05;
      spec.max_scan_len = 100;
      break;
    case 'F':  // read-modify-write: 50 read / 50 rmw
      spec.read = 0.5;
      spec.rmw = 0.5;
      break;
    case 'G':  // paper's long-scan mix: 95 scan / 5 write, 0-10000 records
      spec.scan = 0.95;
      spec.update = 0.05;
      spec.max_scan_len = 10000;
      break;
    default:
      std::abort();
  }
  return spec;
}

RunResult RunWorkload(BenchDb* bench, const WorkloadSpec& spec, uint64_t ops,
                      uint64_t seed, bool settle_in_window) {
  DB* db = bench->db();
  const size_t value_size = bench->scale().value_size;
  uint64_t n = bench->record_count();

  ScrambledZipfianGenerator zipf(n, seed);
  LatestGenerator latest(n, seed ^ 0x9e3779b9);
  Random64 rnd(seed + 1);
  uint64_t inserted = n;

  auto next_index = [&]() -> uint64_t {
    switch (spec.dist) {
      case WorkloadSpec::Dist::kLatest:
        return latest.Next();
      case WorkloadSpec::Dist::kUniform:
        return rnd.Next() % inserted;
      case WorkloadSpec::Dist::kZipfian:
      default:
        return zipf.Next();
    }
  };

  PhaseRecorder recorder(bench);
  std::string value_scratch;
  for (uint64_t i = 0; i < ops; i++) {
    double p = rnd.NextDouble();
    recorder.Op([&] {
      if (p < spec.read) {
        uint64_t index = next_index();
        std::string value;
        db->Get(ReadOptions(), HashedKey(index), &value);
      } else if (p < spec.read + spec.update) {
        uint64_t index = next_index();
        db->Put(WriteOptions(), HashedKey(index),
                MakeValue(index + i, value_size));
      } else if (p < spec.read + spec.update + spec.insert) {
        uint64_t index = inserted++;
        db->Put(WriteOptions(), HashedKey(index),
                MakeValue(index, value_size));
        latest.SetN(inserted);
      } else if (p < spec.read + spec.update + spec.insert + spec.scan) {
        uint64_t index = next_index();
        int len = static_cast<int>(rnd.Next() % (spec.max_scan_len + 1));
        std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
        iter->Seek(HashedKey(index));
        for (int j = 0; j < len && iter->Valid(); j++) {
          value_scratch.assign(iter->value().data(), iter->value().size());
          iter->Next();
        }
      } else {  // read-modify-write
        uint64_t index = next_index();
        std::string value;
        db->Get(ReadOptions(), HashedKey(index), &value);
        db->Put(WriteOptions(), HashedKey(index),
                MakeValue(index + i + 1, value_size));
      }
    });
  }
  bench->set_record_count(inserted);
  if (settle_in_window) bench->db()->WaitForQuiescence();
  return recorder.Finish();
}

RunResult ReadSeq(BenchDb* bench) {
  PhaseRecorder recorder(bench);
  DB* db = bench->db();
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  std::string scratch;
  while (iter->Valid()) {
    // One "op" per 100 records so the sample vector stays small while the
    // whole database is read.
    recorder.Op([&] {
      for (int j = 0; j < 100 && iter->Valid(); j++) {
        scratch.assign(iter->value().data(), iter->value().size());
        iter->Next();
      }
    });
  }
  return recorder.Finish();
}

void PrintNormalized(const std::string& title,
                     const std::vector<std::pair<std::string, double>>& rows) {
  std::printf("%s\n", title.c_str());
  if (rows.empty()) return;
  double base = rows[0].second;
  for (const auto& [name, value] : rows) {
    std::printf("  %-6s %10.1f ops/s   normalized %.2fx\n", name.c_str(),
                value, base > 0 ? value / base : 0);
  }
}

void PrintLevelWriteAmps(
    const std::string& title,
    const std::vector<std::pair<std::string, DbStats>>& rows) {
  std::printf("%s\n", title.c_str());
  size_t max_levels = 0;
  for (const auto& [_, stats] : rows) {
    max_levels = std::max(max_levels, stats.level_write_amp.size());
  }
  std::printf("  %-6s", "Level");
  for (const auto& [name, _] : rows) std::printf(" %8s", name.c_str());
  std::printf("\n");
  for (size_t level = 0; level < max_levels; level++) {
    std::printf("  %-6zu", level);
    for (const auto& [_, stats] : rows) {
      if (level < stats.level_write_amp.size()) {
        std::printf(" %8.2f", stats.level_write_amp[level]);
      } else {
        std::printf(" %8s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf("  %-6s", "Sum");
  for (const auto& [_, stats] : rows) {
    std::printf(" %8.2f", stats.total_write_amp);
  }
  std::printf("\n");
}

double ParseScale(int argc, char** argv, double def) {
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      return std::atof(argv[i] + 8);
    }
  }
  const char* env = std::getenv("IAMDB_BENCH_SCALE");
  if (env != nullptr) return std::atof(env);
  return def;
}

int ParseBgThreads(int argc, char** argv, int def) {
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--bg_threads=", 13) == 0) {
      return std::atoi(argv[i] + 13);
    }
  }
  const char* env = std::getenv("IAMDB_BENCH_BG_THREADS");
  if (env != nullptr) return std::atoi(env);
  return def;
}

CompressionType ParseCompression(int argc, char** argv, CompressionType def) {
  std::string name;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--compression=", 14) == 0) {
      name = argv[i] + 14;
    }
  }
  if (name.empty()) {
    const char* env = std::getenv("IAMDB_BENCH_COMPRESSION");
    if (env != nullptr) name = env;
  }
  CompressionType type = def;
  if (!name.empty()) ParseCompressionType(name, &type);
  return type;
}

}  // namespace iamdb::bench
