// Benchmark harness: the paper's evaluated systems (L, R-nt, A-nt, I-nt) at
// laptop scale, plus run/measure/report plumbing.
//
// Amplifications (write/read/space) are measured exactly.  Throughput and
// latency are reported in *modeled device time*: every I/O the run issues
// is priced by the DeviceModel's SSD/HDD profiles (seek latency +
// bandwidth), which substitutes for the paper's physical disks — see
// DESIGN.md.  Normalized throughputs (the paper's figures) divide out the
// remaining constants.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "stats/device_model.h"
#include "util/histogram.h"
#include "workload/generators.h"

namespace iamdb::bench {

// The seven systems of the paper's evaluation (Sec 6.1).
enum class SystemId { kL, kR1, kR4, kA1, kA4, kI1, kI4 };

const char* SystemName(SystemId id);

// Scaled stand-ins for the paper's datasets.  All ratios (fanout t=10,
// file:node 1:2, level ratio 10x, memory:data) follow Sec 6.1.
struct ScaleConfig {
  uint64_t num_records;
  size_t value_size = 1024;     // paper: 1KB values
  uint64_t node_capacity;       // Ct (paper: 128MB)
  uint64_t cache_bytes;         // available memory stand-in
  // The (m,k) tuner's memory budget; 0 = same as cache_bytes.  Lets a
  // bench shrink the block cache without degrading the IAM policy.
  uint64_t tuner_budget_bytes = 0;
  int fanout = 10;
  // Overrides every system's background thread count when > 0 (the
  // per-system defaults — 1 or 4 per Sec 6.1 — apply at 0).
  int background_threads = 0;
  // Per-block codec for every system's tables (paper baseline: kNone).
  // Logical accounting keeps tree shapes codec-invariant, so sweeping this
  // changes space_used_bytes and IO volume but not amplification structure.
  CompressionType compression = CompressionType::kNone;
  // Compressed-block cache tier capacity; 0 = tier off.
  uint64_t compressed_cache_bytes = 0;

  // "100GB data, 16GB memory" at 1/1000 scale.
  static ScaleConfig Gb100();
  // "1TB data, 64GB memory" at 1/2000 scale.
  static ScaleConfig Tb1();
  // Tiny smoke-test configuration for quick runs.
  static ScaleConfig Smoke();

  uint64_t data_bytes() const { return num_records * (value_size + 20); }
};

Options MakeOptions(SystemId id, const ScaleConfig& scale, Env* env);

// One benchmark database instance.
class BenchDb {
 public:
  BenchDb(SystemId id, const ScaleConfig& scale);
  ~BenchDb();

  DB* db() { return db_.get(); }
  SystemId id() const { return id_; }
  const ScaleConfig& scale() const { return scale_; }
  uint64_t record_count() const { return record_count_; }
  void set_record_count(uint64_t n) { record_count_ = n; }

 private:
  SystemId id_;
  ScaleConfig scale_;
  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<DB> db_;
  uint64_t record_count_ = 0;
};

// Outcome of one measured phase.
struct RunResult {
  uint64_t ops = 0;
  double wall_seconds = 0;
  double ssd_seconds = 0;  // modeled device-busy time (all I/O incl. bg)
  double hdd_seconds = 0;
  Histogram ssd_latency_us;  // per-op modeled latency
  Histogram hdd_latency_us;
  DbStats stats_after;

  double Throughput(const char* device) const {
    double denominator =
        std::string(device) == "SSD" ? ssd_seconds : hdd_seconds;
    if (denominator < wall_seconds) denominator = wall_seconds;
    return denominator > 0 ? ops / denominator : 0;
  }
};

// YCSB workload mixes (Sec 6.1/6.3-6.5); 'A'..'F' per the YCSB spec plus
// the paper's 'G' (95/5 long scans, 0-10000 records).
struct WorkloadSpec {
  double read = 0, update = 0, insert = 0, scan = 0, rmw = 0;
  enum class Dist { kZipfian, kLatest, kUniform } dist = Dist::kZipfian;
  int max_scan_len = 100;

  static WorkloadSpec Ycsb(char which);
};

// What happens to outstanding compaction debt after a write phase:
//  * kSettleInWindow  — drain compactions INSIDE the measured window (the
//    phase pays for all the I/O it caused; right for amplification tables),
//  * kSettleOutside   — drain after the window closes (throughput excludes
//    deferred debt — LevelDB's overflow "advantage", paper Sec 6.2),
//  * kNoSettle        — leave the debt pending (the paper's tuning phase:
//    the next measured phase inherits the compaction traffic).
enum class SettleMode { kSettleInWindow, kSettleOutside, kNoSettle };

// Hash load (YCSB default: unordered inserts, no collisions) or sequential
// load (db_bench fillseq) of `n` fresh records.
//
// pace_debt_bytes > 0 throttles the writer whenever outstanding compaction
// debt exceeds the bound — emulating a device-bound deployment where
// ingest and compaction share disk bandwidth, so debt cannot grow without
// limit the way it can when a CPU-fast writer outruns a background thread.
RunResult Load(BenchDb* bench, uint64_t n, bool ordered,
               SettleMode settle = SettleMode::kSettleInWindow,
               uint64_t pace_debt_bytes = 0);

// Re-insert existing keys (db_bench overwrite / fillrandom shapes).
RunResult Overwrite(BenchDb* bench, uint64_t ops, bool random_order,
                    uint64_t seed);

// Run `ops` operations of the given mix against a loaded database.
// With settle_in_window, the compaction work the mix generated is drained
// inside the measured window, so a write-bearing workload pays its full
// steady-state amplification deterministically (how much background work
// lands inside a short window is otherwise wall-clock noise).
RunResult RunWorkload(BenchDb* bench, const WorkloadSpec& spec, uint64_t ops,
                      uint64_t seed, bool settle_in_window = false);

// Full-database scan (db_bench readseq).
RunResult ReadSeq(BenchDb* bench);

// ---- reporting helpers ----

// Prints "name: value" rows normalized to the first row.
void PrintNormalized(const std::string& title,
                     const std::vector<std::pair<std::string, double>>& rows);

void PrintLevelWriteAmps(const std::string& title,
                         const std::vector<std::pair<std::string, DbStats>>& rows);

// Reads the scale factor from argv ("--scale=0.5") or IAMDB_BENCH_SCALE.
double ParseScale(int argc, char** argv, double def = 1.0);

// Reads a background-thread override from argv ("--bg_threads=4") or
// IAMDB_BENCH_BG_THREADS; 0 means "keep the per-system defaults".
int ParseBgThreads(int argc, char** argv, int def = 0);

// Reads the block codec from argv ("--compression=columnar") or
// IAMDB_BENCH_COMPRESSION; unknown names fall back to `def`.
CompressionType ParseCompression(int argc, char** argv,
                                 CompressionType def = CompressionType::kNone);

inline uint64_t Scaled(uint64_t n, double scale) {
  uint64_t v = static_cast<uint64_t>(n * scale);
  return v < 1000 ? 1000 : v;
}

}  // namespace iamdb::bench
