#include "workload/generators.h"

#include <cmath>
#include <cstdio>

namespace iamdb::bench {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rnd_(seed) {
  zeta2_ = Zeta(0, 2);
  zeta_n_ = Zeta(0, n_);
  Recompute();
}

double ZipfianGenerator::Zeta(uint64_t from, uint64_t to) {
  double sum = (from == 0) ? 0 : zeta_n_;
  for (uint64_t i = from; i < to; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
  }
  return sum;
}

void ZipfianGenerator::Recompute() {
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zeta_n_);
}

void ZipfianGenerator::SetN(uint64_t n) {
  if (n <= n_) return;
  zeta_n_ = Zeta(n_, n);
  n_ = n;
  Recompute();
}

uint64_t ZipfianGenerator::Next() {
  double u = rnd_.NextDouble();
  double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

namespace {
inline uint64_t FnvHash64(uint64_t v) {
  uint64_t hash = 0xCBF29CE484222325ull;
  for (int i = 0; i < 8; i++) {
    uint64_t octet = v & 0xff;
    v >>= 8;
    hash ^= octet;
    hash *= 0x100000001B3ull;
  }
  return hash;
}
}  // namespace

uint64_t ScrambledZipfianGenerator::Next() {
  return FnvHash64(zipf_.Next()) % n_;
}

uint64_t LatestGenerator::Next() {
  uint64_t n = zipf_.n();
  uint64_t off = zipf_.Next();
  return n - 1 - (off % n);
}

std::string HashedKey(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%016llu",
                static_cast<unsigned long long>(FnvHash64(index)));
  return buf;
}

std::string OrderedKey(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%016llu",
                static_cast<unsigned long long>(index));
  return buf;
}

std::string MakeValue(uint64_t index, size_t size) {
  std::string value;
  value.reserve(size);
  uint64_t state = FnvHash64(index + 0x5bd1e995);
  while (value.size() < size) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    char c = 'a' + (state % 26);
    value.append(8, c);
  }
  value.resize(size);
  return value;
}

}  // namespace iamdb::bench
