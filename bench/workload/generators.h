// Key/value and request-distribution generators replicating the YCSB core
// distributions (uniform, zipfian with scrambling, latest) and the db_bench
// generators (fillseq, fillrandom, overwrite) used in the paper's
// evaluation.
#pragma once

#include <cstdint>
#include <string>

#include "util/random.h"

namespace iamdb::bench {

// Zipfian over [0, n), theta = 0.99 (the YCSB constant).  Uses the
// Gray et al. computation with an incremental zeta so n can grow (for the
// "latest" distribution).
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(uint64_t n, double theta = 0.99,
                            uint64_t seed = 12345);

  uint64_t Next();
  // Grow the domain (records inserted since construction).
  void SetN(uint64_t n);
  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t from, uint64_t to);
  void Recompute();

  uint64_t n_;
  double theta_;
  double zeta_n_;
  double alpha_, eta_, zeta2_;
  Random64 rnd_;
};

// Scrambled zipfian: zipfian popularity ranks spread uniformly over the key
// space via hashing (YCSB's default for workloads A/B/C/F).
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t n, uint64_t seed = 12345)
      : n_(n), zipf_(n, 0.99, seed) {}

  uint64_t Next();

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

// Latest: most-recently-inserted records are hottest (workload D).
class LatestGenerator {
 public:
  explicit LatestGenerator(uint64_t n, uint64_t seed = 12345)
      : zipf_(n, 0.99, seed) {}

  void SetN(uint64_t n) { zipf_.SetN(n); }
  // Returns an index in [0, n), biased toward n-1.
  uint64_t Next();

 private:
  ZipfianGenerator zipf_;
};

// YCSB-style key: "user" + zero-padded FNV hash of the index, so inserts
// arrive in hash order ("hash load", paper Sec 6.2).
std::string HashedKey(uint64_t index);

// Ordered key for sequential loads / db_bench fillseq.
std::string OrderedKey(uint64_t index);

// Deterministic pseudo-random value of `size` bytes seeded by the index.
// Built from 8-byte letter runs, so it is RLE/LZ-compressible — the paper's
// baseline (Sec 6.1) runs with compression off, but ScaleConfig::compression
// sweeps (bench_fig10_space --compression) rely on the runs to show the
// columnar codec's fixed-record win.
std::string MakeValue(uint64_t index, size_t size);

}  // namespace iamdb::bench
