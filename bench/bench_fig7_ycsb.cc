// Figure 7: normalized throughput for YCSB workloads A-G on (a) SSD-100G,
// (b) HDD-100G, (c) HDD-1T.  One run per (system, dataset) is priced under
// both device profiles, so (a) and (b) share runs.  The paper's shapes to
// reproduce: LSA/IAM win the write-heavy mixes (A, F); read-heavy mixes
// (B, C, D) are close, with IamDB ahead while the LSMs pay their tuning
// phase; LSA collapses on scans (E, G) while IAM stays at LSM level.
#include <cstdio>
#include <map>
#include <vector>

#include "workload/harness.h"

using namespace iamdb;
using namespace iamdb::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv, 0.35);
  const std::string workloads = "ABCDEFG";

  struct Dataset {
    const char* name;
    ScaleConfig config;
    std::vector<SystemId> systems;
  };
  ScaleConfig gb100 = ScaleConfig::Gb100();
  gb100.num_records = Scaled(gb100.num_records, scale);
  ScaleConfig tb1 = ScaleConfig::Tb1();
  tb1.num_records = Scaled(tb1.num_records, scale);

  std::vector<Dataset> datasets = {
      {"100G", gb100,
       {SystemId::kL, SystemId::kR1, SystemId::kA1, SystemId::kI1}},
      {"1T", tb1,
       {SystemId::kL, SystemId::kR1, SystemId::kA1, SystemId::kI1}},
  };

  std::printf("=== Figure 7: YCSB A-G normalized throughput (scale %.2f) ===\n",
              scale);

  for (const Dataset& dataset : datasets) {
    // results[workload][system] = (ssd ops/s, hdd ops/s)
    std::map<char, std::vector<std::pair<std::string, std::pair<double, double>>>>
        results;
    for (SystemId id : dataset.systems) {
      // One paced load per system; each workload window starts settled so
      // it measures that workload's steady-state I/O.  (The paper's extra
      // tuning-phase penalty on the LSMs' read workloads is a wall-clock
      // transient our substrate cannot carry — see EXPERIMENTS.md; the
      // write-mix, scan and load shapes are all measured here.)
      BenchDb bench(id, dataset.config);
      Load(&bench, dataset.config.num_records, /*ordered=*/false,
           SettleMode::kSettleOutside, /*pace_debt_bytes=*/3 << 20);
      const uint64_t ops =
          std::max<uint64_t>(2000, dataset.config.num_records / 16);
      for (char w : workloads) {
        bench.db()->WaitForQuiescence();
        uint64_t run_ops = ops;
        // Write-heavy mixes need enough volume that deferred-compaction
        // batching (e.g. the L0 trigger) amortizes inside the window.
        if (w == 'A' || w == 'F') run_ops = ops * 6;
        if (w == 'E') run_ops = std::max<uint64_t>(400, ops / 10);
        if (w == 'G') run_ops = std::max<uint64_t>(60, ops / 64);
        RunResult r = RunWorkload(&bench, WorkloadSpec::Ycsb(w), run_ops, 1000 + w,
                                  /*settle_in_window=*/true);
        results[w].emplace_back(
            SystemName(id),
            std::make_pair(r.Throughput("SSD"), r.Throughput("HDD")));
      }
      std::printf("  [%s/%s done]\n", dataset.name, SystemName(id));
    }

    auto print_device = [&](const char* device, bool ssd) {
      std::printf("\nFig7 %s-%s (normalized to L):\n", device, dataset.name);
      std::printf("  %-4s", "WL");
      for (SystemId id : dataset.systems) {
        std::printf(" %8s", SystemName(id));
      }
      std::printf("\n");
      for (char w : workloads) {
        std::printf("  %-4c", w);
        double base = ssd ? results[w][0].second.first
                          : results[w][0].second.second;
        for (const auto& [_, tp] : results[w]) {
          double v = ssd ? tp.first : tp.second;
          std::printf(" %8.2f", base > 0 ? v / base : 0);
        }
        std::printf("\n");
      }
    };
    if (std::string(dataset.name) == "100G") {
      print_device("SSD", true);
      print_device("HDD", false);
    } else {
      print_device("HDD", false);
    }
    std::printf("\n");
  }
  return 0;
}
