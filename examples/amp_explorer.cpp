// Amplification explorer: load the same workload under any engine/policy
// configuration and print the full amplification breakdown — the tool to
// play with the paper's design space from the command line.
//
//   ./amp_explorer [engine] [records] [value_size] [fanout] [k]
//     engine: leveled | lsa | iam | iam-fixed-m<N>   (default iam)
//
// Examples:
//   ./amp_explorer lsa 200000
//   ./amp_explorer iam-fixed-m2 100000 1024 10 3
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/db.h"
#include "env/env.h"
#include "util/random.h"

int main(int argc, char** argv) {
  std::string engine = argc > 1 ? argv[1] : "iam";
  uint64_t records = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;
  size_t value_size = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 512;
  int fanout = argc > 4 ? std::atoi(argv[4]) : 10;
  int k = argc > 5 ? std::atoi(argv[5]) : 3;

  iamdb::Options options;
  options.env = iamdb::Env::Default();
  options.node_capacity = 2 << 20;
  options.amt.fanout = fanout;
  options.amt.k = k;
  if (engine == "leveled") {
    options.engine = iamdb::EngineType::kLeveled;
  } else if (engine == "lsa") {
    options.engine = iamdb::EngineType::kAmt;
    options.amt.policy = iamdb::AmtPolicy::kLsa;
  } else if (engine.rfind("iam-fixed-m", 0) == 0) {
    options.engine = iamdb::EngineType::kAmt;
    options.amt.policy = iamdb::AmtPolicy::kIam;
    options.amt.auto_tune_mk = false;
    options.amt.fixed_mixed_level = std::atoi(engine.c_str() + 11);
  } else if (engine == "iam") {
    options.engine = iamdb::EngineType::kAmt;
    options.amt.policy = iamdb::AmtPolicy::kIam;
  } else {
    std::fprintf(stderr,
                 "usage: %s [leveled|lsa|iam|iam-fixed-m<N>] [records] "
                 "[value_size] [fanout] [k]\n",
                 argv[0]);
    return 2;
  }

  const std::string path = "/tmp/iamdb_amp_explorer";
  iamdb::DestroyDB(path, options);
  std::unique_ptr<iamdb::DB> db;
  iamdb::Status s = iamdb::DB::Open(options, path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("hash-loading %llu x %zuB records into '%s' (t=%d, k=%d)...\n",
              static_cast<unsigned long long>(records), value_size,
              engine.c_str(), fanout, k);
  iamdb::Random64 rnd(1);
  std::string value(value_size, 'v');
  char key[32];
  for (uint64_t i = 0; i < records; i++) {
    std::snprintf(key, sizeof(key), "user%016llx",
                  static_cast<unsigned long long>(rnd.Next()));
    db->Put({}, iamdb::Slice(key, 20), value);
  }
  db->WaitForQuiescence();

  iamdb::DbStats stats = db->GetStats();
  std::printf("\n%s\n", db->amp_stats().ToString().c_str());
  std::printf("tree shape");
  if (stats.mixed_level > 0) {
    std::printf(" (mixed level m=%d, k=%d)", stats.mixed_level,
                stats.mixed_level_k);
  }
  std::printf(":\n");
  for (size_t i = 0; i < stats.level_node_counts.size(); i++) {
    std::printf("  level %zu: %5d nodes %8.1f MB\n", i + 1,
                stats.level_node_counts[i],
                stats.level_bytes[i] / 1048576.0);
  }
  std::printf("space on disk: %.1f MB for %.1f MB of user data (amp %.2f)\n",
              stats.space_used_bytes / 1048576.0,
              stats.user_bytes / 1048576.0,
              static_cast<double>(stats.space_used_bytes) /
                  std::max<uint64_t>(1, stats.user_bytes));
  return 0;
}
