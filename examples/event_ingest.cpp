// Event-stream ingestion: the write-intensive scenario the paper's intro
// motivates (sensing devices / e-commerce telemetry producing data at high
// rates).  Events arrive keyed by (source, timestamp) — per-source
// sequential but globally interleaved — with periodic dashboard scans of
// one source's recent window.
//
// Runs the same stream against the leveled-LSM baseline and the IAM-tree
// and prints the write-amplification and disk-traffic difference — the
// reason to pick IAM for ingest-heavy deployments.
//
//   ./event_ingest [num_events]    (default 200000)
#include <cstdio>
#include <memory>
#include <string>

#include "core/db.h"
#include "env/env.h"
#include "util/random.h"

namespace {

std::string EventKey(int source, uint64_t timestamp) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "src%04d/ts%012llu", source,
                static_cast<unsigned long long>(timestamp));
  return buf;
}

std::string EventPayload(iamdb::Random64* rnd) {
  // A plausible telemetry record: a few numeric fields, ~200 bytes.
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"temp\":%.2f,\"load\":%.3f,\"rss\":%llu,\"pad\":\"",
                20.0 + (rnd->Next() % 1500) / 100.0,
                (rnd->Next() % 1000) / 1000.0,
                static_cast<unsigned long long>(rnd->Next() % (1ull << 30)));
  std::string payload(buf);
  payload.append(200 - payload.size() - 2, 'p');
  payload += "\"}";
  return payload;
}

struct IngestReport {
  double write_amp;
  uint64_t bytes_written;
  uint64_t events;
};

IngestReport RunIngest(iamdb::EngineType engine, const std::string& path,
                       uint64_t num_events) {
  iamdb::Options options;
  options.env = iamdb::Env::Default();
  options.engine = engine;
  options.node_capacity = 2 << 20;
  options.block_cache_capacity = 32 << 20;
  iamdb::DestroyDB(path, options);

  std::unique_ptr<iamdb::DB> db;
  iamdb::Status s = iamdb::DB::Open(options, path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    std::abort();
  }

  iamdb::Random64 rnd(2024);
  const int kSources = 64;
  uint64_t clock = 0;
  for (uint64_t i = 0; i < num_events; i++) {
    int source = static_cast<int>(rnd.Next() % kSources);
    clock += 1 + rnd.Next() % 50;  // interleaved, per-source monotonic
    db->Put({}, EventKey(source, clock), EventPayload(&rnd));

    if (i > 0 && i % 50000 == 0) {
      // Dashboard query: last ~100 events of one source.
      std::unique_ptr<iamdb::Iterator> iter(db->NewIterator({}));
      int shown = 0;
      iter->Seek(EventKey(source, clock > 5000 ? clock - 5000 : 0));
      while (iter->Valid() && shown < 100 &&
             iter->key().starts_with(
                 EventKey(source, 0).substr(0, 8))) {
        shown++;
        iter->Next();
      }
    }
  }
  db->WaitForQuiescence();

  iamdb::DbStats stats = db->GetStats();
  IngestReport report;
  report.write_amp = stats.total_write_amp;
  report.bytes_written = stats.io.bytes_written;
  report.events = num_events;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_events = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 200000;
  std::printf("ingesting %llu telemetry events into both engines...\n",
              static_cast<unsigned long long>(num_events));

  IngestReport lsm = RunIngest(iamdb::EngineType::kLeveled,
                               "/tmp/iamdb_ingest_lsm", num_events);
  IngestReport iam = RunIngest(iamdb::EngineType::kAmt,
                               "/tmp/iamdb_ingest_iam", num_events);

  std::printf("\n  %-14s %12s %14s\n", "engine", "write-amp", "disk-written");
  std::printf("  %-14s %12.2f %11.1f MB\n", "leveled LSM", lsm.write_amp,
              lsm.bytes_written / 1048576.0);
  std::printf("  %-14s %12.2f %11.1f MB\n", "IAM-tree", iam.write_amp,
              iam.bytes_written / 1048576.0);
  if (iam.bytes_written < lsm.bytes_written) {
    std::printf(
        "\nIAM wrote %.1fx less to disk for the same stream — less wear on "
        "SSDs and more bandwidth left for queries.\n",
        static_cast<double>(lsm.bytes_written) / iam.bytes_written);
  }
  return 0;
}
