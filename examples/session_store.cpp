// Session store: a web-backend session cache with read-modify-write
// updates (YCSB workload F's shape), TTL-style deletions, and admin scans
// over a user's sessions.  Exercises MVCC snapshots for consistent
// analytics while the store keeps mutating.
//
//   ./session_store [num_users]      (default 20000)
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>

#include "core/db.h"
#include "env/env.h"
#include "util/random.h"

namespace {

std::string SessionKey(uint64_t user, int session) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "sess/%010llu/%02d",
                static_cast<unsigned long long>(user), session);
  return buf;
}

std::string SessionBlob(uint64_t user, int clicks) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"user\":%llu,\"clicks\":%d,\"cart\":[%llu,%llu],"
                "\"theme\":\"dark\"}",
                static_cast<unsigned long long>(user), clicks,
                static_cast<unsigned long long>(user % 977),
                static_cast<unsigned long long>(user % 131));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_users =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  iamdb::Options options;
  options.env = iamdb::Env::Default();
  options.engine = iamdb::EngineType::kAmt;
  options.amt.policy = iamdb::AmtPolicy::kIam;
  options.node_capacity = 2 << 20;

  const std::string path = "/tmp/iamdb_sessions";
  iamdb::DestroyDB(path, options);
  std::unique_ptr<iamdb::DB> db;
  if (!iamdb::DB::Open(options, path, &db).ok()) return 1;

  iamdb::Random64 rnd(7);

  // Seed: every user gets 1-3 sessions.
  uint64_t total_sessions = 0;
  for (uint64_t u = 0; u < num_users; u++) {
    int sessions = 1 + rnd.Next() % 3;
    for (int s = 0; s < sessions; s++) {
      db->Put({}, SessionKey(u, s), SessionBlob(u, 0));
      total_sessions++;
    }
  }
  std::printf("seeded %" PRIu64 " sessions for %" PRIu64 " users\n",
              total_sessions, num_users);

  // Steady state: read-modify-write clicks, expire a few, occasionally run
  // a consistent count over a snapshot while updates continue.
  uint64_t rmw = 0, expired = 0;
  for (int i = 0; i < 100000; i++) {
    uint64_t u = rnd.Next() % num_users;
    std::string key = SessionKey(u, static_cast<int>(rnd.Next() % 3));
    std::string blob;
    if (db->Get({}, key, &blob).ok()) {
      // Parse-free "modify": bump a click counter by rewriting the blob.
      db->Put({}, key, SessionBlob(u, i % 1000));
      rmw++;
      if (rnd.Next() % 50 == 0) {
        db->Delete({}, key);  // session expired
        expired++;
      }
    } else {
      db->Put({}, key, SessionBlob(u, 0));  // new session
    }

    if (i == 60000) {
      // Consistent analytics: count one user's sessions at a frozen point
      // while the workload keeps writing.
      const iamdb::Snapshot* snap = db->GetSnapshot();
      iamdb::ReadOptions frozen;
      frozen.snapshot = snap;
      std::unique_ptr<iamdb::Iterator> iter(db->NewIterator(frozen));
      int count = 0;
      std::string prefix = SessionKey(12345 % num_users, 0).substr(0, 16);
      for (iter->Seek(prefix); iter->Valid(); iter->Next()) {
        if (!iter->key().starts_with(prefix)) break;
        count++;
      }
      std::printf("snapshot scan: user %llu has %d sessions at the frozen "
                  "point\n",
                  static_cast<unsigned long long>(12345 % num_users), count);
      db->ReleaseSnapshot(snap);
    }
  }
  db->WaitForQuiescence();

  iamdb::DbStats stats = db->GetStats();
  std::printf("did %" PRIu64 " read-modify-writes, expired %" PRIu64
              " sessions\n", rmw, expired);
  std::printf("write amp %.2f, cache hit rate %.1f%%, disk %0.1f MB\n",
              stats.total_write_amp,
              100.0 * stats.cache_hits /
                  std::max<uint64_t>(1, stats.cache_hits + stats.cache_misses),
              stats.space_used_bytes / 1048576.0);
  return 0;
}
