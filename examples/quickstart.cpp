// Quickstart: open an IAM-tree database on the real filesystem, write,
// read, scan, snapshot, and inspect amplification statistics.
//
//   ./quickstart [db_path]     (default /tmp/iamdb_quickstart)
#include <cstdio>
#include <memory>

#include "core/db.h"
#include "env/env.h"

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/iamdb_quickstart";

  iamdb::Options options;
  options.env = iamdb::Env::Default();
  options.engine = iamdb::EngineType::kAmt;      // the IAM-tree
  options.amt.policy = iamdb::AmtPolicy::kIam;   // appends above the cache
                                                 // boundary, merges below
  options.node_capacity = 4 << 20;               // Ct = 4MB nodes

  iamdb::DestroyDB(path, options);  // fresh start for the demo
  std::unique_ptr<iamdb::DB> db;
  iamdb::Status s = iamdb::DB::Open(options, path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- basic writes and reads ---
  db->Put({}, "language", "C++20");
  db->Put({}, "tree", "IAM");
  db->Put({}, "paper", "ICPP 2019");

  std::string value;
  s = db->Get({}, "tree", &value);
  std::printf("tree = %s\n", value.c_str());

  // --- atomic batch ---
  iamdb::WriteBatch batch;
  batch.Put("batch/a", "1");
  batch.Put("batch/b", "2");
  batch.Delete("paper");
  db->Write({}, &batch);

  // --- snapshot isolation ---
  const iamdb::Snapshot* snap = db->GetSnapshot();
  db->Put({}, "tree", "IAM v2");
  iamdb::ReadOptions at_snap;
  at_snap.snapshot = snap;
  std::string old_value, new_value;
  db->Get(at_snap, "tree", &old_value);
  db->Get({}, "tree", &new_value);
  std::printf("tree @snapshot = %s, latest = %s\n", old_value.c_str(),
              new_value.c_str());
  db->ReleaseSnapshot(snap);

  // --- range scan ---
  std::printf("scan:\n");
  std::unique_ptr<iamdb::Iterator> iter(db->NewIterator({}));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::printf("  %s = %s\n", iter->key().ToString().c_str(),
                iter->value().ToString().c_str());
  }

  // --- bulk write + amplification stats ---
  char key[32];
  std::string payload(512, 'x');
  for (int i = 0; i < 50000; i++) {
    std::snprintf(key, sizeof(key), "bulk%08d", i * 7919 % 50000);
    db->Put({}, key, payload);
  }
  db->WaitForQuiescence();

  iamdb::DbStats stats = db->GetStats();
  std::printf("\nafter bulk load:\n");
  std::printf("  write amplification (log excluded): %.2f\n",
              stats.total_write_amp);
  std::printf("  mixed level m=%d, k=%d\n", stats.mixed_level,
              stats.mixed_level_k);
  for (size_t i = 0; i < stats.level_node_counts.size(); i++) {
    std::printf("  L%zu: %d nodes, %.1f MB\n", i + 1,
                stats.level_node_counts[i], stats.level_bytes[i] / 1048576.0);
  }
  return 0;
}
