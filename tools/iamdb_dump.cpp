// iamdb_dump: offline inspection and verification of an IamDB directory —
// the release-tooling equivalent of leveldbutil.
//
//   iamdb_dump manifest <dbdir>          recovered tree structure
//   iamdb_dump tree <dbdir>              per-level node/byte/sequence map
//   iamdb_dump verify <dbdir>            checksum-verify every live block
//   iamdb_dump table <file.mst> <end>    dump one MSTable's sequences
//   iamdb_dump scan <dbdir> [limit]      ordered key dump via a real open
//
// Offline modes (manifest/tree/verify/table) never write to the directory.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/db.h"
#include "core/dbformat.h"
#include "core/filename.h"
#include "core/manifest.h"
#include "env/env.h"
#include "table/mstable.h"

namespace {

using namespace iamdb;

int CmdManifest(const std::string& dbdir) {
  RecoveredState state;
  Status s = RecoverManifest(Env::Default(), dbdir, &state);
  if (!s.ok()) {
    std::fprintf(stderr, "manifest recovery failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("log_number:       %" PRIu64 "\n", state.log_number);
  std::printf("next_file_number: %" PRIu64 "\n", state.next_file_number);
  std::printf("next_node_id:     %" PRIu64 "\n", state.next_node_id);
  std::printf("last_sequence:    %" PRIu64 "\n", state.last_sequence);
  std::printf("num_levels:       %d\n", state.num_levels);
  for (size_t level = 0; level < state.nodes.size(); level++) {
    std::printf("level %zu: %zu nodes\n", level, state.nodes[level].size());
    for (const NodeEdit& node : state.nodes[level]) {
      std::printf(
          "  node %" PRIu64 "  file %06" PRIu64 ".mst  meta_end %" PRIu64
          "  %" PRIu64 "B  %u seq  [%s .. %s]%s\n",
          node.node_id, node.file_number, node.meta_end, node.data_bytes,
          node.seq_count, node.range_lo.c_str(), node.range_hi.c_str(),
          node.file_number == 0 ? "  (empty placeholder)" : "");
    }
  }
  return 0;
}

int CmdTree(const std::string& dbdir) {
  RecoveredState state;
  Status s = RecoverManifest(Env::Default(), dbdir, &state);
  if (!s.ok()) {
    std::fprintf(stderr, "manifest recovery failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("%-6s %8s %12s %12s %10s %8s\n", "level", "nodes", "live-bytes",
              "file-bytes", "sequences", "empty");
  for (size_t level = 0; level < state.nodes.size(); level++) {
    uint64_t live = 0, physical = 0, seqs = 0, empties = 0;
    for (const NodeEdit& node : state.nodes[level]) {
      live += node.data_bytes;
      physical += node.meta_end;
      seqs += node.seq_count;
      if (node.file_number == 0) empties++;
    }
    std::printf("%-6zu %8zu %12" PRIu64 " %12" PRIu64 " %10" PRIu64
                " %8" PRIu64 "\n",
                level + 1, state.nodes[level].size(), live, physical, seqs,
                empties);
  }
  return 0;
}

int DumpTable(const std::string& fname, uint64_t meta_end, bool verify_only,
              uint64_t* entries_out) {
  InternalKeyComparator cmp;
  TableOptions options;
  options.verify_checksums = true;
  std::shared_ptr<MSTableReader> reader;
  Status s = MSTableReader::Open(Env::Default(), options, &cmp, fname, 1,
                                 meta_end, &reader);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: open failed: %s\n", fname.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  if (!verify_only) {
    std::printf("%s: %d sequences, %" PRIu64 " entries, %" PRIu64
                " live bytes\n",
                fname.c_str(), reader->seq_count(), reader->total_entries(),
                reader->total_data_bytes());
    for (int i = 0; i < reader->seq_count(); i++) {
      const SequenceMeta& meta = reader->sequence(i).meta();
      std::printf("  seq %d: %" PRIu64 " entries, %" PRIu64 "B, [%s .. %s]\n",
                  i, meta.num_entries, meta.data_bytes,
                  ExtractUserKey(meta.smallest).ToString().c_str(),
                  ExtractUserKey(meta.largest).ToString().c_str());
    }
  }
  // Touch every block of every sequence with checksums on.
  ReadOptions read_options;
  read_options.verify_checksums = true;
  read_options.fill_cache = false;
  uint64_t entries = 0;
  std::unique_ptr<Iterator> iter(reader->NewIterator(read_options));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) entries++;
  if (!iter->status().ok()) {
    std::fprintf(stderr, "%s: corruption: %s\n", fname.c_str(),
                 iter->status().ToString().c_str());
    return 1;
  }
  if (entries_out != nullptr) *entries_out = entries;
  return 0;
}

int CmdVerify(const std::string& dbdir) {
  RecoveredState state;
  Status s = RecoverManifest(Env::Default(), dbdir, &state);
  if (!s.ok()) {
    std::fprintf(stderr, "manifest recovery failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  int failures = 0;
  uint64_t total_entries = 0, nodes = 0;
  for (size_t level = 0; level < state.nodes.size(); level++) {
    for (const NodeEdit& node : state.nodes[level]) {
      if (node.file_number == 0) continue;
      uint64_t entries = 0;
      if (DumpTable(TableFileName(dbdir, node.file_number), node.meta_end,
                    /*verify_only=*/true, &entries) != 0) {
        failures++;
        continue;
      }
      total_entries += entries;
      nodes++;
    }
  }
  std::printf("verified %" PRIu64 " nodes, %" PRIu64
              " entries (incl. shadowed), %d failures\n",
              nodes, total_entries, failures);
  return failures == 0 ? 0 : 1;
}

int CmdScan(const std::string& dbdir, uint64_t limit) {
  Options options;
  options.env = Env::Default();
  options.create_if_missing = false;
  // The engine type only affects compaction; either engine can read a
  // recovered tree, but use AMT (superset reader: multi-sequence nodes).
  options.engine = EngineType::kAmt;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, dbdir, &db);
  if (!s.ok()) {
    // Retry as leveled (an L0-bearing directory needs overlap-aware reads).
    options.engine = EngineType::kLeveled;
    s = DB::Open(options, dbdir, &db);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  uint64_t n = 0;
  for (iter->SeekToFirst(); iter->Valid() && n < limit; iter->Next(), n++) {
    std::printf("%s => %zuB\n", iter->key().ToString().c_str(),
                iter->value().size());
  }
  if (!iter->status().ok()) {
    std::fprintf(stderr, "scan error: %s\n", iter->status().ToString().c_str());
    return 1;
  }
  std::printf("(%" PRIu64 " keys%s)\n", n, iter->Valid() ? ", truncated" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s manifest|tree|verify|scan <dbdir> | table "
                 "<file.mst> <meta_end>\n",
                 argv[0]);
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "manifest") return CmdManifest(argv[2]);
  if (cmd == "tree") return CmdTree(argv[2]);
  if (cmd == "verify") return CmdVerify(argv[2]);
  if (cmd == "scan") {
    uint64_t limit = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100;
    return CmdScan(argv[2], limit);
  }
  if (cmd == "table" && argc >= 4) {
    return DumpTable(argv[2], std::strtoull(argv[3], nullptr, 10), false,
                     nullptr);
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
