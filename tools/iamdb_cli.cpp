// iamdb_cli: command-line client for iamdb_server.
//
// One-shot:
//   iamdb_cli [--host=H] [--port=N] ping
//   iamdb_cli put <key> <value>
//   iamdb_cli get <key>
//   iamdb_cli mget <key> [key...]      (shard-routed batched reads)
//   iamdb_cli del <key>
//   iamdb_cli scan [start [end [limit]]]   (shard fan-out, merged locally)
//   iamdb_cli info [property]          (e.g. iamdb.stats, server.stats)
//   iamdb_cli stats                    (decoded DbStats snapshot)
//   iamdb_cli shardmap                 (server's shard layout)
//   iamdb_cli shard-stats              (per-shard stats breakdown)
//
// mget and scan are cluster-aware: against a sharded server they route
// per shard client-side (MultiGetSharded / ScanSharded); against a plain
// server they degrade to the single-request forms.
//
// With no command, drops into a REPL speaking the same verbs plus
// `batch` (lines of put/del until `commit`, applied atomically) and
// `quit`.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "memtable/write_batch.h"
#include "server/client.h"

namespace {

using namespace iamdb;

void PrintStats(const DbStats& stats) {
  std::printf("user_bytes:        %" PRIu64 "\n", stats.user_bytes);
  std::printf("space_used_bytes:  %" PRIu64 "\n", stats.space_used_bytes);
  std::printf("total_write_amp:   %.3f\n", stats.total_write_amp);
  std::printf("cache:             %" PRIu64 "B used, %" PRIu64 " hits, %" PRIu64
              " misses\n",
              stats.cache_usage, stats.cache_hits, stats.cache_misses);
  std::printf("stall_micros:      %" PRIu64 "\n", stats.stall_micros);
  std::printf("pending_debt:      %" PRIu64 "B\n", stats.pending_debt_bytes);
  std::printf("bg queues:         %" PRIu64 " flush / %" PRIu64
              " compaction\n",
              stats.flush_queue_depth, stats.compact_queue_depth);
  std::printf("subcompactions:    %" PRIu64 "\n", stats.subcompactions_run);
  std::printf("rate_limit_wait:   %" PRIu64 "us threads / %" PRIu64
              "us wall\n",
              stats.rate_limiter_wait_micros,
              stats.rate_limiter_paced_wall_micros);
  if (stats.pacer_rate_bytes_per_sec > 0) {
    std::printf("pacer:             %" PRIu64 "B/s budget, %" PRIu64
                "B/s ingest, %" PRIu64 " retunes\n",
                stats.pacer_rate_bytes_per_sec,
                stats.pacer_ingest_bytes_per_sec, stats.pacer_retunes);
  }
  if (stats.compress_input_bytes > 0) {
    double ratio = stats.compress_stored_bytes > 0
                       ? static_cast<double>(stats.compress_input_bytes) /
                             static_cast<double>(stats.compress_stored_bytes)
                       : 0.0;
    std::printf("compression:       %" PRIu64 "B -> %" PRIu64
                "B (%.2fx), blocks: %" PRIu64 " columnar / %" PRIu64
                " lz / %" PRIu64 " raw\n",
                stats.compress_input_bytes, stats.compress_stored_bytes, ratio,
                stats.compress_columnar_blocks, stats.compress_lz_blocks,
                stats.compress_raw_fallback_blocks);
  }
  if (stats.decompressed_blocks > 0) {
    std::printf("decompress:        %" PRIu64 " blocks, %" PRIu64 "us\n",
                stats.decompressed_blocks, stats.decompress_micros);
  }
  if (stats.compressed_cache_usage > 0 || stats.compressed_cache_hits > 0 ||
      stats.compressed_cache_misses > 0) {
    std::printf("compressed cache:  %" PRIu64 "B used, %" PRIu64
                " hits, %" PRIu64 " misses\n",
                stats.compressed_cache_usage, stats.compressed_cache_hits,
                stats.compressed_cache_misses);
  }
  if (stats.arbiter_budget_bytes > 0) {
    std::printf("memory arbiter:    %" PRIu64 "B budget = %" PRIu64
                "B write + %" PRIu64 "B read, %" PRIu64 " retunes, %" PRIu64
                " shifts\n",
                stats.arbiter_budget_bytes, stats.arbiter_write_bytes,
                stats.arbiter_read_bytes, stats.arbiter_retunes,
                stats.arbiter_shifts);
  }
  if (stats.mixed_level > 0) {
    std::printf("mixed level:       m=%d k=%d", stats.mixed_level,
                stats.mixed_level_k);
    if (stats.mixed_level_retunes > 0) {
      std::printf(" (%" PRIu64 " retunes)", stats.mixed_level_retunes);
    }
    std::printf("\n");
  }
  for (size_t i = 0; i < stats.level_bytes.size(); i++) {
    std::printf("level %zu:           %" PRIu64 "B in %d nodes", i + 1,
                stats.level_bytes[i],
                i < stats.level_node_counts.size()
                    ? stats.level_node_counts[i]
                    : 0);
    if (i < stats.level_write_amp.size()) {
      std::printf(", write_amp %.3f", stats.level_write_amp[i]);
    }
    std::printf("\n");
  }
  std::printf("io:                %" PRIu64 "B written / %" PRIu64
              "B read / %" PRIu64 " fsyncs\n",
              stats.io.bytes_written, stats.io.bytes_read, stats.io.fsyncs);
  // Batched-read gauges; all-zero (omitted on the wire) means no MGET /
  // MultiGet traffic yet.
  if (stats.multiget_batches > 0) {
    const double per_batch =
        static_cast<double>(stats.multiget_keys) /
        static_cast<double>(stats.multiget_batches);
    std::printf("multiget:          %" PRIu64 " batches, %" PRIu64
                " keys (%.1f/batch)\n",
                stats.multiget_batches, stats.multiget_keys, per_batch);
    std::printf("multiget:          %" PRIu64 " coalesced reads covering %"
                PRIu64 " blocks\n",
                stats.multiget_coalesced_reads,
                stats.multiget_coalesced_blocks);
  }
  // Serving-layer reactor counters; only the server's INFO path fills
  // these, and all-zero means an old server (or nothing observed yet).
  if (stats.server_loop_iterations > 0 || stats.server_writev_calls > 0 ||
      stats.server_backpressure_stalls > 0 || stats.server_accept_errors > 0) {
    const double per_writev =
        stats.server_writev_calls > 0
            ? static_cast<double>(stats.server_responses_written) /
                  static_cast<double>(stats.server_writev_calls)
            : 0.0;
    std::printf("reactor:           %" PRIu64 " loops, %" PRIu64
                " writev (%.2f resp/writev)\n",
                stats.server_loop_iterations, stats.server_writev_calls,
                per_writev);
    std::printf("reactor:           out_hwm %" PRIu64 "B, %" PRIu64
                " stalls, %" PRIu64 " accept_errors\n",
                stats.server_output_buffer_hwm,
                stats.server_backpressure_stalls, stats.server_accept_errors);
  }
}

// Returns the process exit code for one command; `argv`-style tokens.
int RunCommand(Client* client, const std::vector<std::string>& args) {
  const std::string& cmd = args[0];
  Status s;
  if (cmd == "ping") {
    s = client->Ping();
    if (s.ok()) std::printf("pong\n");
  } else if (cmd == "put" && args.size() == 3) {
    s = client->Put(args[1], args[2]);
    if (s.ok()) std::printf("OK\n");
  } else if (cmd == "get" && args.size() == 2) {
    std::string value;
    s = client->Get(args[1], &value);
    if (s.ok()) std::printf("%s\n", value.c_str());
  } else if (cmd == "mget" && args.size() >= 2) {
    std::vector<std::string> keys(args.begin() + 1, args.end());
    std::vector<std::string> values;
    std::vector<Status> statuses;
    s = client->MultiGetSharded(keys, &values, &statuses);
    if (s.ok()) {
      int found = 0;
      for (size_t i = 0; i < keys.size(); i++) {
        if (statuses[i].ok()) {
          std::printf("%s => %s\n", keys[i].c_str(), values[i].c_str());
          found++;
        } else {
          std::printf("%s => (not found)\n", keys[i].c_str());
        }
      }
      std::printf("(%d/%zu found)\n", found, keys.size());
    }
  } else if (cmd == "del" && args.size() == 2) {
    s = client->Delete(args[1]);
    if (s.ok()) std::printf("OK\n");
  } else if (cmd == "scan" && args.size() <= 4) {
    std::string start = args.size() > 1 ? args[1] : "";
    std::string end = args.size() > 2 ? args[2] : "";
    uint32_t limit = args.size() > 3
                         ? static_cast<uint32_t>(std::atoi(args[3].c_str()))
                         : 0;
    std::vector<wire::KeyValue> entries;
    bool truncated = false;
    s = client->ScanSharded(start, end, limit, &entries, &truncated);
    if (s.ok()) {
      for (const auto& [key, value] : entries) {
        std::printf("%s => %s\n", key.c_str(), value.c_str());
      }
      std::printf("(%zu entries%s)\n", entries.size(),
                  truncated ? ", truncated" : "");
    }
  } else if (cmd == "info" && args.size() <= 2) {
    if (args.size() == 1) {
      DbStats stats;
      s = client->GetStats(&stats);
      if (s.ok()) PrintStats(stats);
    } else {
      std::string value;
      s = client->GetProperty(args[1], &value);
      if (s.ok()) std::printf("%s", value.c_str());
    }
  } else if (cmd == "stats") {
    DbStats stats;
    s = client->GetStats(&stats);
    if (s.ok()) PrintStats(stats);
  } else if (cmd == "shardmap") {
    int num_shards = 1;
    s = client->GetShardMap(&num_shards);
    if (s.ok()) {
      std::string text;
      if (client->GetProperty("iamdb.shardmap", &text).ok()) {
        std::printf("%s\n", text.c_str());
      } else {
        std::printf("unsharded (1 shard)\n");
      }
    }
  } else if (cmd == "shard-stats") {
    std::string text;
    s = client->GetProperty("iamdb.shard-stats", &text);
    if (s.IsNotFound()) {
      std::printf("unsharded server: no per-shard breakdown\n");
      s = Status::OK();
    } else if (s.ok()) {
      std::printf("%s", text.c_str());
    }
  } else {
    std::fprintf(stderr, "unknown or malformed command '%s'\n", cmd.c_str());
    return 2;
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

int Repl(Client* client) {
  std::string line;
  std::printf("iamdb> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (in >> tok) tokens.push_back(tok);
    if (!tokens.empty()) {
      if (tokens[0] == "quit" || tokens[0] == "exit") break;
      if (tokens[0] == "help") {
        std::printf(
            "commands: ping | put k v | get k | mget k [k...] | del k | "
            "scan [start [end [limit]]] | info [prop] | stats | shardmap | "
            "shard-stats | batch | quit\n");
      } else if (tokens[0] == "batch") {
        // Collect put/del lines until `commit` (or `abort`), apply as one
        // atomic WriteBatch.
        WriteBatch batch;
        int n = 0;
        bool commit = false;
        std::printf("batch> ");
        std::fflush(stdout);
        while (std::getline(std::cin, line)) {
          std::istringstream bin(line);
          std::vector<std::string> btok;
          while (bin >> tok) btok.push_back(tok);
          if (!btok.empty()) {
            if (btok[0] == "commit") {
              commit = true;
              break;
            } else if (btok[0] == "abort") {
              break;
            } else if (btok[0] == "put" && btok.size() == 3) {
              batch.Put(btok[1], btok[2]);
              n++;
            } else if (btok[0] == "del" && btok.size() == 2) {
              batch.Delete(btok[1]);
              n++;
            } else {
              std::printf("batch expects: put k v | del k | commit | abort\n");
            }
          }
          std::printf("batch> ");
          std::fflush(stdout);
        }
        if (commit) {
          Status s = client->Write(batch);
          if (s.ok()) {
            std::printf("OK (%d ops)\n", n);
          } else {
            std::fprintf(stderr, "%s\n", s.ToString().c_str());
          }
        } else {
          std::printf("aborted\n");
        }
      } else {
        RunCommand(client, tokens);
      }
    }
    std::printf("iamdb> ");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  int argi = 1;
  for (; argi < argc; argi++) {
    if (std::strncmp(argv[argi], "--host=", 7) == 0) {
      options.host = argv[argi] + 7;
    } else if (std::strncmp(argv[argi], "--port=", 7) == 0) {
      options.port = std::atoi(argv[argi] + 7);
    } else {
      break;
    }
  }

  Client client(options);
  Status s = client.Connect();
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  if (argi >= argc) return Repl(&client);
  std::vector<std::string> args(argv + argi, argv + argc);
  return RunCommand(&client, args);
}
