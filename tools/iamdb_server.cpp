// iamdb_server: serves one IamDB directory over the wire protocol
// (docs/PROTOCOL.md).
//
//   iamdb_server --db=/path/to/db [--port=4490] [--host=127.0.0.1]
//                [--engine=iam|lsa|leveled] [--threads=4] [--shards=N]
//                [--db_shards=N] [--bg_threads=N] [--subcompactions=N]
//                [--rate_limit_mb=N] [--adaptive_pacing] [--cache_mb=64]
//                [--compression=none|columnar|lz] [--compressed_cache_mb=N]
//                [--memory_budget_mb=N] [--sync_wal]
//
// --compression selects the per-block codec newly written tables use
// (existing tables keep their recorded codec); --compressed_cache_mb
// enables the compressed-block cache tier (0 = off).
//
// --memory_budget_mb pools the memtable quota and the cache tiers into one
// budget re-divided online by the memory arbiter (core/memory_arbiter.h);
// --cache_mb / --compressed_cache_mb then only set the tier ratio.  With
// --db_shards the budget divides evenly across the shards.
//
// --adaptive_pacing replaces the fixed --rate_limit_mb budget with the
// debt/ingest feedback controller (core/compaction_pacer.h); when both are
// given, --rate_limit_mb caps the adaptive budget.
//
// --shards controls the network reactor; --db_shards partitions the
// database itself into N independent instances (ShardedDB).  A db dir
// that already carries a SHARDMAP manifest reopens sharded automatically.
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, drain
// in-flight requests, flush the memtable, then exit.
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <semaphore.h>
#include <string>

#include "core/db.h"
#include "env/env.h"
#include "server/server.h"
#include "shard/sharded_db.h"
#include "table/compressor.h"

namespace {

using namespace iamdb;

sem_t g_shutdown_sem;

void HandleSignal(int) { sem_post(&g_shutdown_sem); }

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --db=<dir> [--port=N] [--host=ADDR] "
               "[--engine=iam|lsa|leveled] [--threads=N] [--shards=N] "
               "[--db_shards=N] [--bg_threads=N] [--subcompactions=N] "
               "[--rate_limit_mb=N] [--adaptive_pacing] [--cache_mb=N] "
               "[--compression=none|columnar|lz] [--compressed_cache_mb=N] "
               "[--memory_budget_mb=N] [--sync_wal]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dbdir;
  ServerOptions server_options;
  server_options.port = 4490;
  Options db_options;
  db_options.env = Env::Default();
  int bg_threads = 0;   // 0 = derive from the machine / worker count
  int db_shards = 0;    // 0 = single instance unless a SHARDMAP exists

  for (int i = 1; i < argc; i++) {
    std::string v;
    if (ParseFlag(argv[i], "db", &v)) {
      dbdir = v;
    } else if (ParseFlag(argv[i], "port", &v)) {
      server_options.port = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "host", &v)) {
      server_options.host = v;
    } else if (ParseFlag(argv[i], "threads", &v)) {
      server_options.num_workers = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "shards", &v)) {
      server_options.num_shards = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "db_shards", &v)) {
      db_shards = std::atoi(v.c_str());
      if (db_shards <= 0) {
        std::fprintf(stderr, "--db_shards must be positive\n");
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "bg_threads", &v)) {
      bg_threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "subcompactions", &v)) {
      db_options.max_subcompactions = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "rate_limit_mb", &v)) {
      db_options.compaction_rate_limit =
          static_cast<uint64_t>(std::atoll(v.c_str())) << 20;
    } else if (ParseFlag(argv[i], "cache_mb", &v)) {
      db_options.block_cache_capacity =
          static_cast<uint64_t>(std::atoll(v.c_str())) << 20;
    } else if (ParseFlag(argv[i], "compressed_cache_mb", &v)) {
      db_options.compressed_cache_capacity =
          static_cast<uint64_t>(std::atoll(v.c_str())) << 20;
    } else if (ParseFlag(argv[i], "memory_budget_mb", &v)) {
      db_options.memory_budget_bytes =
          static_cast<uint64_t>(std::atoll(v.c_str())) << 20;
    } else if (ParseFlag(argv[i], "compression", &v)) {
      if (!ParseCompressionType(v, &db_options.table.compression)) {
        std::fprintf(stderr, "unknown compression '%s'\n", v.c_str());
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "engine", &v)) {
      if (v == "iam") {
        db_options.engine = EngineType::kAmt;
        db_options.amt.policy = AmtPolicy::kIam;
      } else if (v == "lsa") {
        db_options.engine = EngineType::kAmt;
        db_options.amt.policy = AmtPolicy::kLsa;
      } else if (v == "leveled") {
        db_options.engine = EngineType::kLeveled;
      } else {
        std::fprintf(stderr, "unknown engine '%s'\n", v.c_str());
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--adaptive_pacing") == 0) {
      db_options.pacing.adaptive = true;
    } else if (std::strcmp(argv[i], "--sync_wal") == 0) {
      db_options.sync_wal = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (dbdir.empty()) return Usage(argv[0]);
  if (db_options.pacing.adaptive && db_options.compaction_rate_limit > 0) {
    // Both flags: the fixed limit becomes the adaptive ceiling.
    db_options.pacing.max_bytes_per_sec = std::min(
        db_options.pacing.max_bytes_per_sec, db_options.compaction_rate_limit);
    db_options.pacing.min_bytes_per_sec = std::min(
        db_options.pacing.min_bytes_per_sec, db_options.pacing.max_bytes_per_sec);
  }
  // --bg_threads wins; otherwise take the larger of the hardware-derived
  // default and half the request workers.
  db_options.background_threads =
      bg_threads > 0 ? bg_threads
                     : std::max(db_options.background_threads,
                                std::max(1, server_options.num_workers / 2));

  std::unique_ptr<DB> db;
  Status s;
  if (db_shards > 0) {
    s = ShardedDB::Open(db_options, dbdir, db_shards, &db);
  } else if (db_options.env->FileExists(ShardMapFileName(dbdir))) {
    // Reopen an existing sharded database with its persisted shard count.
    s = ShardedDB::Open(db_options, dbdir, 0, &db);
  } else {
    s = DB::Open(db_options, dbdir, &db);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", dbdir.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  if (db->NumShards() > 1) {
    std::printf("database partitioned into %d shards\n", db->NumShards());
  }

  Server server(db.get(), server_options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("iamdb_server serving %s on %s:%d (%d shards, %d workers)\n",
              dbdir.c_str(), server_options.host.c_str(), server.port(),
              server.num_shards(), server_options.num_workers);
  std::fflush(stdout);

  sem_init(&g_shutdown_sem, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (sem_wait(&g_shutdown_sem) != 0 && errno == EINTR) {
  }

  std::printf("shutting down: draining connections...\n");
  server.Stop();
  std::printf("%s", server.StatsString().c_str());
  db->FlushAll();
  db.reset();
  std::printf("bye\n");
  return 0;
}
