// Per-block codec tests (table/compressor.h): roundtrip byte-identity for
// both codecs, decline behaviour, and corruption hardening — truncated,
// bit-flipped, and over-declared compressed payloads must come back as
// Status::Corruption (never a crash or an over-read), at both the codec
// layer and the v2 block framing layer (format.h).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "env/mem_env.h"
#include "table/block_builder.h"
#include "table/compressor.h"
#include "table/format.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace iamdb {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq = 1,
                 ValueType t = kTypeValue) {
  std::string r;
  AppendInternalKey(&r, ParsedInternalKey(user_key, seq, t));
  return r;
}

// A prefix-compressed data block of YCSB-shaped records: fixed-size values
// made of 8-byte letter runs, exactly what the columnar codec targets.
std::string BuildFixedRecordBlock(int num_records, int restart_interval = 16) {
  BlockBuilder builder(restart_interval);
  for (int i = 0; i < num_records; i++) {
    char key[16];
    snprintf(key, sizeof(key), "user%06d", i);
    std::string value;
    for (int f = 0; f < 10; f++) {
      value.append(8, static_cast<char>('a' + (i + f) % 26));
    }
    builder.Add(IKey(key, 100 + i), value);
  }
  return builder.Finish().ToString();
}

std::string BuildVariedBlock(int num_records) {
  BlockBuilder builder(8);
  Random rnd(42);
  for (int i = 0; i < num_records; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%05d", i);
    std::string value;
    const int len = static_cast<int>(rnd.Uniform(40));
    for (int j = 0; j < len; j++) {
      value.push_back(static_cast<char>('A' + rnd.Uniform(26)));
    }
    builder.Add(IKey(key), value);
  }
  return builder.Finish().ToString();
}

void ExpectRoundtrip(const Compressor* codec, const std::string& input) {
  std::string compressed;
  ASSERT_TRUE(codec->Compress(input, &compressed));
  std::string restored;
  ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);  // byte-for-byte
}

// ---------------------------------------------------------------------------
// LZ codec.

TEST(LzCompressorTest, RoundtripCompressibleShrinks) {
  const Compressor* lz = GetCompressor(CompressionType::kLz);
  ASSERT_NE(lz, nullptr);
  std::string input;
  for (int i = 0; i < 200; i++) input += "the quick brown fox ";
  std::string compressed;
  ASSERT_TRUE(lz->Compress(input, &compressed));
  EXPECT_LT(compressed.size(), input.size() / 4);
  std::string restored;
  ASSERT_TRUE(lz->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
}

TEST(LzCompressorTest, RoundtripIncompressibleStaysIntact) {
  const Compressor* lz = GetCompressor(CompressionType::kLz);
  Random rnd(7);
  std::string input;
  for (int i = 0; i < 4096; i++) {
    input.push_back(static_cast<char>(rnd.Uniform(256)));
  }
  ExpectRoundtrip(lz, input);
}

TEST(LzCompressorTest, RoundtripEdgeSizes) {
  const Compressor* lz = GetCompressor(CompressionType::kLz);
  ExpectRoundtrip(lz, "");
  ExpectRoundtrip(lz, "x");
  ExpectRoundtrip(lz, "abc");                    // below min match
  ExpectRoundtrip(lz, std::string(1000, 'z'));   // one overlapping match
  ExpectRoundtrip(lz, std::string(300, 'q') + "tail");  // long length ext
}

TEST(LzCompressorTest, RoundtripRealBlock) {
  ExpectRoundtrip(GetCompressor(CompressionType::kLz),
                  BuildFixedRecordBlock(100));
}

TEST(LzCompressorTest, TruncationIsCorruption) {
  const Compressor* lz = GetCompressor(CompressionType::kLz);
  std::string input;
  for (int i = 0; i < 50; i++) input += "repeat repeat repeat ";
  std::string compressed;
  ASSERT_TRUE(lz->Compress(input, &compressed));
  // Every proper prefix must fail cleanly: either a Corruption status, never
  // a crash or a silently-wrong success.
  for (size_t keep = 0; keep < compressed.size(); keep++) {
    std::string truncated = compressed.substr(0, keep);
    std::string out;
    Status s = lz->Decompress(truncated, &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << keep << " bytes decoded";
  }
}

TEST(LzCompressorTest, OverDeclaredSizeIsCorruption) {
  const Compressor* lz = GetCompressor(CompressionType::kLz);
  // A size prefix beyond the builder's hard cap is corruption by definition.
  std::string bogus;
  PutVarint64(&bogus, kMaxUncompressedBlockBytes + 1);
  std::string out;
  Status s = lz->Decompress(bogus, &out);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Declared size larger than what the stream produces: size mismatch.
  std::string input = "hello world";
  std::string compressed;
  ASSERT_TRUE(lz->Compress(input, &compressed));
  std::string inflated;
  PutVarint64(&inflated, input.size() + 100);
  // Skip the original varint size prefix, keep the sequences.
  uint64_t declared = 0;
  const char* p = GetVarint64Ptr(compressed.data(),
                                 compressed.data() + compressed.size(),
                                 &declared);
  ASSERT_NE(p, nullptr);
  inflated.append(p, compressed.data() + compressed.size() - p);
  EXPECT_TRUE(lz->Decompress(inflated, &out).IsCorruption());
}

TEST(LzCompressorTest, BitFlipsNeverCrashOrOverread) {
  const Compressor* lz = GetCompressor(CompressionType::kLz);
  std::string input;
  for (int i = 0; i < 64; i++) {
    input += "block " + std::to_string(i) + " payload payload ";
  }
  std::string compressed;
  ASSERT_TRUE(lz->Compress(input, &compressed));
  // Flip every bit position once.  The framing CRC normally rejects these
  // before the codec runs; here we require the codec itself to stay memory
  // safe: each decode either errors or produces *some* bounded output.
  for (size_t byte = 0; byte < compressed.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      std::string mutated = compressed;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::string out;
      Status s = lz->Decompress(mutated, &out);
      if (s.ok()) {
        EXPECT_LE(out.size(), kMaxUncompressedBlockBytes);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Columnar codec.

TEST(ColumnarCompressorTest, RoundtripFixedRecordsShrinks) {
  const Compressor* col = GetCompressor(CompressionType::kColumnar);
  ASSERT_NE(col, nullptr);
  std::string input = BuildFixedRecordBlock(200);
  std::string compressed;
  ASSERT_TRUE(col->Compress(input, &compressed));
  // Values are 8-byte runs: RLE plus the uniform-value-length flag should
  // beat raw comfortably.
  EXPECT_LT(compressed.size(), input.size() / 2);
  std::string restored;
  ASSERT_TRUE(col->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
}

TEST(ColumnarCompressorTest, RoundtripVariedValues) {
  ExpectRoundtrip(GetCompressor(CompressionType::kColumnar),
                  BuildVariedBlock(150));
}

TEST(ColumnarCompressorTest, RoundtripRestartVariants) {
  const Compressor* col = GetCompressor(CompressionType::kColumnar);
  for (int restart : {1, 2, 7, 16, 1000}) {
    SCOPED_TRACE("restart_interval " + std::to_string(restart));
    ExpectRoundtrip(col, BuildFixedRecordBlock(37, restart));
  }
  // Single entry, empty value.
  BlockBuilder one(16);
  one.Add(IKey("solo"), "");
  ExpectRoundtrip(col, one.Finish().ToString());
}

TEST(ColumnarCompressorTest, DeclinesNonBlockInput) {
  const Compressor* col = GetCompressor(CompressionType::kColumnar);
  std::string out;
  EXPECT_FALSE(col->Compress("", &out));
  EXPECT_FALSE(col->Compress("short", &out));
  Random rnd(99);
  std::string garbage;
  for (int i = 0; i < 512; i++) {
    garbage.push_back(static_cast<char>(rnd.Uniform(256)));
  }
  // Random bytes almost surely fail the entry-stream/restart validation;
  // the codec must decline rather than emit something undecodable.
  if (col->Compress(garbage, &out)) {
    std::string restored;
    ASSERT_TRUE(col->Decompress(out, &restored).ok());
    EXPECT_EQ(restored, garbage);
  }
}

TEST(ColumnarCompressorTest, TruncationIsCorruption) {
  const Compressor* col = GetCompressor(CompressionType::kColumnar);
  std::string compressed;
  ASSERT_TRUE(col->Compress(BuildFixedRecordBlock(60), &compressed));
  for (size_t keep = 0; keep < compressed.size(); keep++) {
    std::string out;
    Status s = col->Decompress(compressed.substr(0, keep), &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << keep << " bytes decoded";
  }
}

TEST(ColumnarCompressorTest, BitFlipsNeverCrashOrOverread) {
  const Compressor* col = GetCompressor(CompressionType::kColumnar);
  std::string compressed;
  ASSERT_TRUE(col->Compress(BuildFixedRecordBlock(40), &compressed));
  for (size_t byte = 0; byte < compressed.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      std::string mutated = compressed;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::string out;
      Status s = col->Decompress(mutated, &out);
      if (s.ok()) {
        EXPECT_LE(out.size(), kMaxUncompressedBlockBytes);
      }
    }
  }
}

TEST(ColumnarCompressorTest, OverDeclaredSizeIsCorruption) {
  const Compressor* col = GetCompressor(CompressionType::kColumnar);
  std::string bogus;
  PutVarint64(&bogus, kMaxUncompressedBlockBytes + 1);
  PutVarint32(&bogus, 1);
  PutVarint32(&bogus, 1);
  std::string out;
  EXPECT_TRUE(col->Decompress(bogus, &out).IsCorruption());
}

// ---------------------------------------------------------------------------
// Dispatch + naming.

TEST(CompressorTest, DispatchAndNames) {
  EXPECT_EQ(GetCompressor(CompressionType::kNone), nullptr);
  EXPECT_STREQ(GetCompressor(CompressionType::kLz)->name(), "lz");
  EXPECT_STREQ(GetCompressor(CompressionType::kColumnar)->name(), "columnar");

  std::string out;
  ASSERT_TRUE(DecompressBlock(CompressionType::kNone, "raw bytes", &out).ok());
  EXPECT_EQ(out, "raw bytes");

  CompressionType t;
  EXPECT_TRUE(ParseCompressionType("none", &t));
  EXPECT_EQ(t, CompressionType::kNone);
  EXPECT_TRUE(ParseCompressionType("raw", &t));
  EXPECT_EQ(t, CompressionType::kNone);
  EXPECT_TRUE(ParseCompressionType("columnar", &t));
  EXPECT_EQ(t, CompressionType::kColumnar);
  EXPECT_TRUE(ParseCompressionType("lz", &t));
  EXPECT_EQ(t, CompressionType::kLz);
  EXPECT_FALSE(ParseCompressionType("zstd", &t));
  EXPECT_STREQ(CompressionTypeName(CompressionType::kColumnar), "columnar");
}

// ---------------------------------------------------------------------------
// v2 block framing (format.h): the type tag rides inside the CRC, so every
// torn or flipped stored block is rejected before the codec ever runs.

class BlockFramingTest : public testing::Test {
 protected:
  // Writes one v2 block and returns its handle; the raw file bytes stay
  // accessible through env_ for mutation.
  BlockHandle WriteOne(const std::string& contents, CompressionType type,
                       const std::string& fname = "blk") {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile(fname, &file).ok());
    BlockHandle handle;
    EXPECT_TRUE(
        WriteBlock(file.get(), 0, contents, kFormatVersion2, type, &handle)
            .ok());
    EXPECT_TRUE(file->Close().ok());
    return handle;
  }

  Status ReadOne(const BlockHandle& handle, std::string* contents,
                 CompressionType* type, const std::string& fname = "blk") {
    std::unique_ptr<RandomAccessFile> file;
    Status s = env_.NewRandomAccessFile(fname, &file);
    if (!s.ok()) return s;
    return ReadBlockContents(file.get(), handle, /*verify_checksums=*/true,
                             kFormatVersion2, contents, type);
  }

  // Rewrites the file with one byte XORed.
  void FlipByte(size_t pos, const std::string& fname = "blk") {
    std::unique_ptr<RandomAccessFile> in;
    ASSERT_TRUE(env_.NewRandomAccessFile(fname, &in).ok());
    uint64_t size = 0;
    ASSERT_TRUE(env_.GetFileSize(fname, &size).ok());
    std::vector<char> scratch(size);
    Slice result;
    ASSERT_TRUE(in->Read(0, size, &result, scratch.data()).ok());
    std::string bytes(result.data(), result.size());
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
    std::unique_ptr<WritableFile> out;
    ASSERT_TRUE(env_.NewWritableFile(fname, &out).ok());
    ASSERT_TRUE(out->Append(bytes).ok());
    ASSERT_TRUE(out->Close().ok());
  }

  MemEnv env_;
};

TEST_F(BlockFramingTest, CompressedBlockRoundtrip) {
  const Compressor* lz = GetCompressor(CompressionType::kLz);
  std::string block = BuildFixedRecordBlock(80);
  std::string stored;
  ASSERT_TRUE(lz->Compress(block, &stored));
  BlockHandle handle = WriteOne(stored, CompressionType::kLz);
  EXPECT_EQ(handle.size(), stored.size());  // handle sizes the stored payload

  std::string payload;
  CompressionType type = CompressionType::kNone;
  ASSERT_TRUE(ReadOne(handle, &payload, &type).ok());
  EXPECT_EQ(type, CompressionType::kLz);
  std::string restored;
  ASSERT_TRUE(DecompressBlock(type, payload, &restored).ok());
  EXPECT_EQ(restored, block);
}

TEST_F(BlockFramingTest, TruncatedFileIsCorruption) {
  std::string stored;
  ASSERT_TRUE(GetCompressor(CompressionType::kLz)
                  ->Compress(BuildFixedRecordBlock(30), &stored));
  BlockHandle handle = WriteOne(stored, CompressionType::kLz);
  // Chop the CRC (and more) off the end.
  for (uint64_t keep : {handle.size() + 4, handle.size(), handle.size() / 2,
                        uint64_t{0}}) {
    ASSERT_TRUE(env_.Truncate("blk", keep).ok());
    std::string payload;
    CompressionType type;
    Status s = ReadOne(handle, &payload, &type);
    EXPECT_FALSE(s.ok()) << "readable at " << keep << " bytes";
  }
}

TEST_F(BlockFramingTest, BitFlipAnywhereIsCaughtByCrc) {
  std::string stored;
  ASSERT_TRUE(GetCompressor(CompressionType::kColumnar)
                  ->Compress(BuildFixedRecordBlock(30), &stored));
  BlockHandle handle = WriteOne(stored, CompressionType::kColumnar);
  const uint64_t file_size =
      handle.size() + BlockTrailerSize(kFormatVersion2);
  // Payload bytes, the type tag, and the CRC itself: a flip in any of them
  // must surface as Corruption.
  for (uint64_t pos = 0; pos < file_size; pos++) {
    WriteOne(stored, CompressionType::kColumnar);  // fresh copy
    FlipByte(pos);
    std::string payload;
    CompressionType type;
    Status s = ReadOne(handle, &payload, &type);
    EXPECT_TRUE(s.IsCorruption()) << "flip at " << pos << ": " << s.ToString();
  }
}

TEST_F(BlockFramingTest, OverDeclaredHandleNeverOverreads) {
  std::string stored;
  ASSERT_TRUE(GetCompressor(CompressionType::kLz)
                  ->Compress(BuildFixedRecordBlock(30), &stored));
  BlockHandle handle = WriteOne(stored, CompressionType::kLz);
  // A handle claiming more bytes than the file holds must error out.
  BlockHandle inflated(handle.offset(), handle.size() + 1000);
  std::string payload;
  CompressionType type;
  EXPECT_FALSE(ReadOne(inflated, &payload, &type).ok());
}

TEST_F(BlockFramingTest, UnknownTypeTagIsCorruption) {
  // Hand-build a frame with tag 7 and a *valid* CRC: the tag range check
  // itself must reject it.
  std::string contents = "hello block";
  std::string frame = contents;
  const char bad_tag = 7;
  frame.push_back(bad_tag);
  uint32_t crc = crc32c::Value(contents.data(), contents.size());
  crc = crc32c::Extend(crc, &bad_tag, 1);
  PutFixed32(&frame, crc32c::Mask(crc));
  std::unique_ptr<WritableFile> out;
  ASSERT_TRUE(env_.NewWritableFile("blk", &out).ok());
  ASSERT_TRUE(out->Append(frame).ok());
  ASSERT_TRUE(out->Close().ok());

  std::string payload;
  CompressionType type;
  Status s = ReadOne(BlockHandle(0, contents.size()), &payload, &type);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(BlockFramingTest, V1RejectsCompressedBlocks) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("v1blk", &file).ok());
  BlockHandle handle;
  Status s = WriteBlock(file.get(), 0, "payload", kFormatVersion1,
                        CompressionType::kLz, &handle);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace iamdb
