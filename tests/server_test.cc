// End-to-end tests for the network serving layer: loopback round-trips for
// every opcode, pipelined multi-client stress, malformed/truncated frame
// handling, and graceful shutdown with in-flight requests.
#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/db.h"
#include "env/fault_injection_env.h"
#include "env/mem_env.h"
#include "memtable/write_batch.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire_protocol.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace iamdb {
namespace {

// Polls `cond` every 10ms for up to `timeout_ms`.
bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

// Number of live threads in this process (/proc/self/task entries).
int CountProcessThreads() {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return -1;
  int n = 0;
  while (dirent* e = ::readdir(dir)) {
    if (e->d_name[0] != '.') n++;
  }
  ::closedir(dir);
  return n;
}

// Blocking loopback connect to a local port; optional SO_RCVBUF shrink so a
// deliberately slow reader backs the server's sends up quickly.
int RawConnectTo(int port, int rcvbuf_bytes = 0) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(0,
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  return fd;
}

// A DB + server pair with caller-chosen ServerOptions, for tests that need
// non-default reactor tuning (tiny buffers, fixed shard counts, ...).
struct OwnedServer {
  std::unique_ptr<MemEnv> env;
  std::unique_ptr<DB> db;
  std::unique_ptr<Server> server;

  OwnedServer() = default;
  OwnedServer(OwnedServer&&) = default;
  OwnedServer& operator=(OwnedServer&&) = default;

  ~OwnedServer() {
    if (server != nullptr) server->Stop();
  }
};

OwnedServer StartOwnedServer(ServerOptions server_options) {
  OwnedServer owned;
  owned.env = std::make_unique<MemEnv>();
  Options options;
  options.env = owned.env.get();
  options.node_capacity = 64 << 10;
  options.table.block_size = 1024;
  options.amt.fanout = 4;
  EXPECT_TRUE(DB::Open(options, "/srv", &owned.db).ok());
  server_options.port = 0;
  owned.server = std::make_unique<Server>(owned.db.get(), server_options);
  EXPECT_TRUE(owned.server->Start().ok());
  EXPECT_GT(owned.server->port(), 0);
  return owned;
}

class ServerTest : public testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    Options options;
    options.env = env_.get();
    options.node_capacity = 64 << 10;
    options.table.block_size = 1024;
    options.amt.fanout = 4;
    ASSERT_TRUE(DB::Open(options, "/srv", &db_).ok());

    ServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.num_workers = 4;
    server_ = std::make_unique<Server>(db_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    db_.reset();
  }

  ClientOptions MakeClientOptions() {
    ClientOptions options;
    options.port = server_->port();
    options.connect_retries = 1;
    return options;
  }

  // Raw loopback socket for protocol-level (mis)behaviour tests.
  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(0,
              ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
    return fd;
  }

  static bool RawSend(int fd, const std::string& bytes) {
    return ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  // Reads frames until `n` bodies have been collected or the peer closes.
  static std::vector<std::string> RawReadBodies(int fd, size_t n) {
    std::vector<std::string> bodies;
    std::string buffer;
    char chunk[16 << 10];
    while (bodies.size() < n) {
      Slice body;
      size_t consumed;
      wire::FrameResult r =
          wire::DecodeFrame(buffer.data(), buffer.size(), &body, &consumed);
      if (r == wire::FrameResult::kOk) {
        bodies.emplace_back(body.data(), body.size());
        buffer.erase(0, consumed);
        continue;
      }
      EXPECT_EQ(wire::FrameResult::kNeedMore, r);
      ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
      if (got <= 0) break;
      buffer.append(chunk, static_cast<size_t>(got));
    }
    return bodies;
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingRoundTrip) {
  Client client(MakeClientOptions());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, PutGetDeleteRoundTrip) {
  Client client(MakeClientOptions());
  EXPECT_TRUE(client.Put("alpha", "1").ok());
  EXPECT_TRUE(client.Put("beta", "2").ok());

  std::string value;
  EXPECT_TRUE(client.Get("alpha", &value).ok());
  EXPECT_EQ("1", value);
  EXPECT_TRUE(client.Get("beta", &value).ok());
  EXPECT_EQ("2", value);
  EXPECT_TRUE(client.Get("gamma", &value).IsNotFound());

  EXPECT_TRUE(client.Delete("alpha").ok());
  EXPECT_TRUE(client.Get("alpha", &value).IsNotFound());

  // The write really reached the DB instance behind the server.
  EXPECT_TRUE(db_->Get(ReadOptions(), "beta", &value).ok());
  EXPECT_EQ("2", value);
}

TEST_F(ServerTest, EmptyAndBinaryValues) {
  Client client(MakeClientOptions());
  EXPECT_TRUE(client.Put("empty", "").ok());
  std::string binary("\x00\x01\xff\xfe\n\r", 6);
  EXPECT_TRUE(client.Put(Slice("bin\x00key", 7), binary).ok());

  std::string value;
  EXPECT_TRUE(client.Get("empty", &value).ok());
  EXPECT_EQ("", value);
  EXPECT_TRUE(client.Get(Slice("bin\x00key", 7), &value).ok());
  EXPECT_EQ(binary, value);
}

TEST_F(ServerTest, WriteBatchRoundTrip) {
  Client client(MakeClientOptions());
  EXPECT_TRUE(client.Put("kill-me", "x").ok());

  WriteBatch batch;
  batch.Put("batch-a", "A");
  batch.Put("batch-b", "B");
  batch.Delete("kill-me");
  EXPECT_TRUE(client.Write(batch).ok());

  std::string value;
  EXPECT_TRUE(client.Get("batch-a", &value).ok());
  EXPECT_EQ("A", value);
  EXPECT_TRUE(client.Get("batch-b", &value).ok());
  EXPECT_EQ("B", value);
  EXPECT_TRUE(client.Get("kill-me", &value).IsNotFound());
}

TEST_F(ServerTest, MalformedWriteBatchRejected) {
  Client client(MakeClientOptions());
  WriteBatch batch;
  batch.Put("a", "1");
  std::string rep = WriteBatchInternal::Contents(&batch).ToString();
  // Lie about the record count; the server must reject before applying.
  EncodeFixed32(&rep[8], 7);
  WriteBatch tampered;
  WriteBatchInternal::SetContents(&tampered, rep);
  Status s = client.Write(tampered);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  std::string value;
  EXPECT_TRUE(client.Get("a", &value).IsNotFound());
}

TEST_F(ServerTest, ScanBoundedRange) {
  Client client(MakeClientOptions());
  for (int i = 0; i < 50; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%03d", i);
    ASSERT_TRUE(client.Put(key, std::string("v") + key).ok());
  }

  std::vector<wire::KeyValue> entries;
  bool truncated = true;
  // Bounded [key010, key020): half-open, 10 entries.
  ASSERT_TRUE(
      client.Scan("key010", "key020", 0, &entries, &truncated).ok());
  ASSERT_EQ(10u, entries.size());
  EXPECT_FALSE(truncated);
  EXPECT_EQ("key010", entries.front().first);
  EXPECT_EQ("vkey010", entries.front().second);
  EXPECT_EQ("key019", entries.back().first);

  // Unbounded with a limit: truncated.
  ASSERT_TRUE(client.Scan("", "", 7, &entries, &truncated).ok());
  EXPECT_EQ(7u, entries.size());
  EXPECT_TRUE(truncated);
  EXPECT_EQ("key000", entries.front().first);

  // Start beyond the last key: empty.
  ASSERT_TRUE(client.Scan("zzz", "", 0, &entries, &truncated).ok());
  EXPECT_TRUE(entries.empty());
  EXPECT_FALSE(truncated);
}

TEST_F(ServerTest, InfoStatsAndProperties) {
  Client client(MakeClientOptions());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(client.Put("info" + std::to_string(i),
                           std::string(100, 'x')).ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());

  DbStats stats;
  ASSERT_TRUE(client.GetStats(&stats).ok());
  EXPECT_GT(stats.user_bytes, 0u);
  EXPECT_GT(stats.space_used_bytes, 0u);
  EXPECT_FALSE(stats.level_bytes.empty());

  // The remote snapshot matches a local one on the stable counters.
  DbStats local = db_->GetStats();
  EXPECT_EQ(local.user_bytes, stats.user_bytes);
  EXPECT_EQ(local.space_used_bytes, stats.space_used_bytes);
  EXPECT_EQ(local.stall_micros, stats.stall_micros);

  // GetProperty passthrough.
  std::string value;
  ASSERT_TRUE(client.GetProperty("iamdb.stats", &value).ok());
  EXPECT_NE(std::string::npos, value.find("space="));

  // Server-side counters property.
  ASSERT_TRUE(client.GetProperty("server.stats", &value).ok());
  EXPECT_NE(std::string::npos, value.find("requests="));
  EXPECT_NE(std::string::npos, value.find("connections:"));

  EXPECT_TRUE(client.GetProperty("no.such.property", &value).IsNotFound());
}

TEST_F(ServerTest, ManyClientsPipelinedStress) {
  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 200;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; c++) {
    threads.emplace_back([this, c, &failures] {
      Client client(MakeClientOptions());
      for (int i = 0; i < kOpsPerClient; i++) {
        std::string key =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        if (!client.Put(key, "v" + key).ok()) failures++;
      }
      for (int i = 0; i < kOpsPerClient; i++) {
        std::string key =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        std::string value;
        if (!client.Get(key, &value).ok() || value != "v" + key) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(0, failures.load());

  ServerStats stats = server_->stats();
  EXPECT_GE(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_GE(stats.requests,
            static_cast<uint64_t>(2 * kClients * kOpsPerClient));
}

// True wire-level pipelining: many requests written before any response is
// read; responses may arrive out of order and are correlated by id.
TEST_F(ServerTest, RawPipelinedRequests) {
  int fd = RawConnect();
  constexpr uint64_t kRequests = 64;
  std::string wire_out;
  for (uint64_t id = 1; id <= kRequests; id++) {
    std::string payload;
    wire::EncodePut("pipe" + std::to_string(id), "v" + std::to_string(id),
                    &payload);
    wire::BuildFrame(id, wire::Opcode::kPut, payload, &wire_out);
  }
  ASSERT_TRUE(RawSend(fd, wire_out));

  std::vector<std::string> bodies = RawReadBodies(fd, kRequests);
  ASSERT_EQ(kRequests, bodies.size());
  std::map<uint64_t, Status> responses;
  for (const std::string& body : bodies) {
    uint64_t id;
    wire::Opcode op;
    Slice payload;
    ASSERT_TRUE(wire::ParseBody(body, &id, &op, &payload));
    EXPECT_EQ(wire::Opcode::kPut, op);
    Status s;
    ASSERT_TRUE(wire::DecodeStatus(&payload, &s));
    EXPECT_TRUE(s.ok()) << s.ToString();
    responses[id] = s;
  }
  EXPECT_EQ(kRequests, responses.size());  // every id answered exactly once
  ::close(fd);

  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "pipe1", &value).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "pipe64", &value).ok());
}

TEST_F(ServerTest, BadCrcFrameRejected) {
  int fd = RawConnect();
  std::string payload;
  wire::EncodePut("key", "value", &payload);
  std::string frame;
  wire::BuildFrame(1, wire::Opcode::kPut, payload, &frame);
  frame.back() ^= 0x5a;  // corrupt the last payload byte
  ASSERT_TRUE(RawSend(fd, frame));

  // The server answers with a kError frame (id 0) and closes.
  std::vector<std::string> bodies = RawReadBodies(fd, 1);
  ASSERT_EQ(1u, bodies.size());
  uint64_t id;
  wire::Opcode op;
  Slice p;
  ASSERT_TRUE(wire::ParseBody(bodies[0], &id, &op, &p));
  EXPECT_EQ(0u, id);
  EXPECT_EQ(wire::Opcode::kError, op);
  Status s;
  ASSERT_TRUE(wire::DecodeStatus(&p, &s));
  EXPECT_TRUE(s.IsCorruption());

  char byte;
  EXPECT_EQ(0, ::recv(fd, &byte, 1, 0));  // EOF: connection dropped
  ::close(fd);
  EXPECT_GE(server_->stats().malformed_frames, 1u);
}

TEST_F(ServerTest, OversizedFrameRejected) {
  int fd = RawConnect();
  std::string frame;
  PutFixed32(&frame, wire::kMaxFrameSize + 1);
  frame.append("garbage that will never be read");
  ASSERT_TRUE(RawSend(fd, frame));

  std::vector<std::string> bodies = RawReadBodies(fd, 1);
  ASSERT_EQ(1u, bodies.size());
  uint64_t id;
  wire::Opcode op;
  Slice p;
  ASSERT_TRUE(wire::ParseBody(bodies[0], &id, &op, &p));
  EXPECT_EQ(wire::Opcode::kError, op);
  char byte;
  EXPECT_EQ(0, ::recv(fd, &byte, 1, 0));
  ::close(fd);
}

TEST_F(ServerTest, UnknownOpcodeAnsweredWithoutDroppingConnection) {
  int fd = RawConnect();
  // A frame whose checksum is fine but whose opcode byte (42) is unknown.
  std::string body;
  PutFixed64(&body, 77);
  body.push_back(static_cast<char>(42));
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(4 + body.size()));
  PutFixed32(&frame, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  frame.append(body);
  // Follow with a valid PING to prove the stream survives.
  std::string payload;
  wire::BuildFrame(78, wire::Opcode::kPing, Slice(), &frame);
  ASSERT_TRUE(RawSend(fd, frame));

  std::vector<std::string> bodies = RawReadBodies(fd, 2);
  ASSERT_EQ(2u, bodies.size());
  std::map<uint64_t, wire::Opcode> by_id;
  for (const std::string& b : bodies) {
    uint64_t id;
    wire::Opcode op;
    Slice p;
    ASSERT_TRUE(wire::ParseBody(b, &id, &op, &p));
    by_id[id] = op;
  }
  EXPECT_EQ(wire::Opcode::kError, by_id[77]);
  EXPECT_EQ(wire::Opcode::kPing, by_id[78]);
  ::close(fd);
}

TEST_F(ServerTest, TruncatedFrameThenCloseIsHarmless) {
  int fd = RawConnect();
  std::string payload;
  wire::EncodePut("dangling", "value", &payload);
  std::string frame;
  wire::BuildFrame(9, wire::Opcode::kPut, payload, &frame);
  // Send only half the frame, then disconnect.
  ASSERT_TRUE(RawSend(fd, frame.substr(0, frame.size() / 2)));
  ::close(fd);

  // The server must survive and keep serving others.
  Client client(MakeClientOptions());
  EXPECT_TRUE(client.Ping().ok());
  std::string value;
  EXPECT_TRUE(client.Get("dangling", &value).IsNotFound());
}

TEST_F(ServerTest, GracefulShutdownDrainsInFlightRequests) {
  int fd = RawConnect();
  // Pipeline a burst of PUTs, then immediately Stop() the server: every
  // accepted request must still be executed and answered before the
  // connection closes.
  constexpr uint64_t kRequests = 100;
  std::string wire_out;
  for (uint64_t id = 1; id <= kRequests; id++) {
    std::string payload;
    wire::EncodePut("drain" + std::to_string(id), std::string(256, 'd'),
                    &payload);
    wire::BuildFrame(id, wire::Opcode::kPut, payload, &wire_out);
  }
  ASSERT_TRUE(RawSend(fd, wire_out));

  std::thread stopper([this] { server_->Stop(); });

  std::vector<std::string> bodies = RawReadBodies(fd, kRequests);
  stopper.join();
  ::close(fd);

  // Every request the server read before the drain point got a response;
  // the tail may have been cut by the half-close.  All answered requests
  // must have succeeded, and every response is well-formed.
  std::map<uint64_t, bool> answered;
  for (const std::string& body : bodies) {
    uint64_t id;
    wire::Opcode op;
    Slice p;
    ASSERT_TRUE(wire::ParseBody(body, &id, &op, &p));
    EXPECT_EQ(wire::Opcode::kPut, op);
    Status s;
    ASSERT_TRUE(wire::DecodeStatus(&p, &s));
    EXPECT_TRUE(s.ok()) << s.ToString();
    answered[id] = true;
  }
  EXPECT_EQ(bodies.size(), answered.size());
  EXPECT_FALSE(server_->running());

  // Every answered PUT is durably in the DB.
  for (const auto& [id, ok] : answered) {
    std::string value;
    EXPECT_TRUE(
        db_->Get(ReadOptions(), "drain" + std::to_string(id), &value).ok())
        << "answered request " << id << " missing from DB";
  }
}

TEST_F(ServerTest, StopIsIdempotentAndClientSeesClosure) {
  Client client(MakeClientOptions());
  ASSERT_TRUE(client.Ping().ok());
  server_->Stop();
  server_->Stop();  // second call: no-op
  EXPECT_FALSE(server_->running());
  // The established connection was closed; a fresh call fails cleanly.
  Status s = client.Ping();
  EXPECT_FALSE(s.ok());
}

TEST_F(ServerTest, ServerStatsCountOpcodes) {
  Client client(MakeClientOptions());
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Put("s", "1").ok());
  std::string value;
  ASSERT_TRUE(client.Get("s", &value).ok());
  ASSERT_TRUE(client.Delete("s").ok());

  ServerStats stats = server_->stats();
  EXPECT_GE(stats.pings, 1u);
  EXPECT_GE(stats.puts, 1u);
  EXPECT_GE(stats.gets, 1u);
  EXPECT_GE(stats.deletes, 1u);
  EXPECT_GE(stats.requests, 4u);
  EXPECT_GT(stats.bytes_received, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST_F(ServerTest, MultiGetRoundTrip) {
  Client client(MakeClientOptions());
  ASSERT_TRUE(client.Put("mg-a", "A").ok());
  ASSERT_TRUE(client.Put("mg-b", "B").ok());
  ASSERT_TRUE(client.Put("mg-empty", "").ok());

  std::vector<std::string> values;
  std::vector<Status> statuses;
  Status s = client.MultiGet({"mg-a", "missing", "mg-b", "mg-empty"},
                             &values, &statuses);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(4u, values.size());
  ASSERT_EQ(4u, statuses.size());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ("A", values[0]);
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ("B", values[2]);
  EXPECT_TRUE(statuses[3].ok());
  EXPECT_EQ("", values[3]);

  // Degenerate empty batch round-trips.
  ASSERT_TRUE(client.MultiGet({}, &values, &statuses).ok());
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());

  // A batch past the per-request key cap is rejected, not served.
  std::vector<std::string> too_many(5000, "k");
  s = client.MultiGet(too_many, &values, &statuses);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  EXPECT_GE(server_->stats().mgets, 2u);
  EXPECT_GE(server_->stats().mget_keys, 4u);
}

TEST_F(ServerTest, MalformedMultiGetAnsweredWithoutDroppingConnection) {
  int fd = RawConnect();
  // Claims three keys, carries none: DecodeMultiGet must fail and the
  // server must answer InvalidArgument on this request only.
  std::string frame;
  wire::BuildFrame(91, wire::Opcode::kMultiGet, Slice("\x03", 1), &frame);
  wire::BuildFrame(92, wire::Opcode::kPing, Slice(), &frame);
  ASSERT_TRUE(RawSend(fd, frame));

  std::vector<std::string> bodies = RawReadBodies(fd, 2);
  ASSERT_EQ(2u, bodies.size());
  std::map<uint64_t, Status> by_id;
  for (const std::string& b : bodies) {
    uint64_t id;
    wire::Opcode op;
    Slice p;
    ASSERT_TRUE(wire::ParseBody(b, &id, &op, &p));
    Status s;
    ASSERT_TRUE(wire::DecodeStatus(&p, &s));
    by_id[id] = s;
  }
  EXPECT_TRUE(by_id[91].IsInvalidArgument()) << by_id[91].ToString();
  EXPECT_TRUE(by_id[92].ok());
  ::close(fd);
}

TEST_F(ServerTest, PipelinedClientWaitsOutOfOrder) {
  Client client(MakeClientOptions());
  constexpr int kN = 16;
  for (int i = 0; i < kN; i++) {
    ASSERT_TRUE(
        client.Put("pl" + std::to_string(i), "v" + std::to_string(i)).ok());
  }

  std::vector<uint64_t> ids;
  for (int i = 0; i < kN; i++) {
    uint64_t id = client.SubmitGet("pl" + std::to_string(i));
    ASSERT_NE(0u, id);
    ids.push_back(id);
  }
  uint64_t miss_id = client.SubmitGet("pl-missing");
  ASSERT_NE(0u, miss_id);
  uint64_t mget_id = client.SubmitMultiGet({"pl0", "pl-missing", "pl5"});
  ASSERT_NE(0u, mget_id);

  // Claim responses in reverse submission order; early arrivals buffer.
  for (int i = kN - 1; i >= 0; i--) {
    std::string value;
    Status s = client.WaitGet(ids[i], &value);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ("v" + std::to_string(i), value);
  }
  std::string value;
  EXPECT_TRUE(client.WaitGet(miss_id, &value).IsNotFound());

  std::vector<wire::MultiGetEntry> entries;
  ASSERT_TRUE(client.WaitMultiGet(mget_id, &entries).ok());
  ASSERT_EQ(3u, entries.size());
  EXPECT_EQ(wire::StatusCode::kOk, entries[0].code);
  EXPECT_EQ("v0", entries[0].value);
  EXPECT_EQ(wire::StatusCode::kNotFound, entries[1].code);
  EXPECT_EQ(wire::StatusCode::kOk, entries[2].code);
  EXPECT_EQ("v5", entries[2].value);

  // Each id is claimable exactly once.
  EXPECT_TRUE(client.Wait(ids[0]).IsIOError());
  // The connection still serves blocking calls afterwards.
  EXPECT_TRUE(client.Ping().ok());
}

// The reactor thread model is O(shards + workers): parking 64 idle
// connections on the server must not create a single extra thread.
TEST_F(ServerTest, ThreadCountIndependentOfConnectionCount) {
  Client client(MakeClientOptions());
  ASSERT_TRUE(client.Ping().ok());  // serving path fully warmed up

  const int before = CountProcessThreads();
  ASSERT_GT(before, 0);

  std::vector<int> fds;
  for (int i = 0; i < 64; i++) fds.push_back(RawConnect());
  ASSERT_TRUE(WaitFor([this] {
    return server_->stats().connections_active >= 65;  // 64 + the client
  })) << "server never registered all 64 connections";

  EXPECT_EQ(before, CountProcessThreads())
      << "thread count must not scale with connections";

  for (int fd : fds) ::close(fd);
}

TEST_F(ServerTest, ShutdownWithInFlightDbWork) {
  constexpr int kClients = 4;
  constexpr int kOps = 50;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::vector<std::pair<uint64_t, std::string>>> submitted(
      kClients);
  const std::string value(1024, 's');
  for (int c = 0; c < kClients; c++) {
    clients.push_back(std::make_unique<Client>(MakeClientOptions()));
    ASSERT_TRUE(clients[c]->Connect().ok());
    for (int i = 0; i < kOps; i++) {
      std::string key = "sd" + std::to_string(c) + "-" + std::to_string(i);
      uint64_t id = clients[c]->SubmitPut(key, value);
      if (id != 0) submitted[c].emplace_back(id, key);
    }
  }

  // Stop() races the in-flight pipelines: every request the server
  // accepted must either be answered (and durably applied) or cleanly cut
  // by the half-close — never crash, hang, or corrupt.
  std::thread stopper([this] { server_->Stop(); });
  std::vector<std::string> acked;
  for (int c = 0; c < kClients; c++) {
    for (const auto& [id, key] : submitted[c]) {
      if (clients[c]->Wait(id).ok()) acked.push_back(key);
    }
  }
  stopper.join();
  EXPECT_FALSE(server_->running());

  for (const std::string& key : acked) {
    std::string got;
    EXPECT_TRUE(db_->Get(ReadOptions(), key, &got).ok())
        << "acknowledged put " << key << " missing from DB";
  }
}

TEST_F(ServerTest, StopBlocksConcurrentSecondCaller) {
  // Enough pipelined work that teardown is not instantaneous.
  int fd = RawConnect();
  std::string wire_out, payload;
  wire::EncodePut("cc", std::string(4096, 'c'), &payload);
  for (uint64_t id = 1; id <= 50; id++) {
    wire::BuildFrame(id, wire::Opcode::kPut, payload, &wire_out);
  }
  ASSERT_TRUE(RawSend(fd, wire_out));

  // Both concurrent callers must observe a fully-stopped server the
  // moment their Stop() returns.
  std::atomic<int> observed_stopped{0};
  auto stop_and_check = [&] {
    server_->Stop();
    if (!server_->running()) observed_stopped++;
  };
  std::thread t1(stop_and_check);
  std::thread t2(stop_and_check);
  RawReadBodies(fd, 50);  // drain so the flush-then-close can complete
  t1.join();
  t2.join();
  ::close(fd);
  EXPECT_EQ(2, observed_stopped.load());
}

TEST(ServerLifecycleTest, StopBeforeStartDoesNotBreakLifecycle) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.node_capacity = 64 << 10;
  options.table.block_size = 1024;
  options.amt.fanout = 4;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/srv", &db).ok());

  ServerOptions server_options;
  server_options.port = 0;
  Server server(db.get(), server_options);
  server.Stop();  // Stop before Start: must not latch the stopping state
  server.Stop();
  ASSERT_TRUE(server.Start().ok()) << "Stop() before Start() broke Start()";

  ClientOptions client_options;
  client_options.port = server.port();
  client_options.connect_retries = 1;
  Client client(client_options);
  EXPECT_TRUE(client.Ping().ok());

  server.Stop();
  EXPECT_FALSE(server.running());
  // One lifecycle per instance: a second Start() is refused, not UB.
  EXPECT_FALSE(server.Start().ok());
}

// A peer that stops reading while pipelining requests must pause the
// server's reads at the soft output limit (counted as a stall) — and the
// stream must fully recover once the peer drains.
TEST(ServerBackpressureTest, SlowReaderPausesReadsAndRecovers) {
  ServerOptions server_options;
  server_options.num_workers = 2;
  server_options.num_shards = 1;
  server_options.output_buffer_soft_limit = 32 << 10;
  server_options.sndbuf_bytes = 8 << 10;
  OwnedServer owned = StartOwnedServer(server_options);
  const std::string big(8192, 'b');
  ASSERT_TRUE(owned.db->Put(WriteOptions(), "big", big).ok());

  int fd = RawConnectTo(owned.server->port(), /*rcvbuf_bytes=*/4096);
  std::string get_payload;
  wire::EncodeKey("big", &get_payload);

  // Wave 1: pipeline 32 GETs and read nothing.  ~256KB of responses queue
  // against an ~12KB transport pipe, so the buffer blows past the soft
  // limit and sticks there.
  std::string wave;
  for (uint64_t id = 1; id <= 32; id++) {
    wire::BuildFrame(id, wire::Opcode::kGet, get_payload, &wave);
  }
  ASSERT_TRUE(::send(fd, wave.data(), wave.size(), MSG_NOSIGNAL) ==
              static_cast<ssize_t>(wave.size()));
  ASSERT_TRUE(WaitFor([&] {
    return owned.server->stats().output_buffer_hwm >
           server_options.output_buffer_soft_limit;
  })) << "responses never backed up past the soft limit";

  // Wave 2: more requests while the buffer is over the limit — decoding
  // them must stall instead of ballooning the buffer further.
  wave.clear();
  for (uint64_t id = 33; id <= 64; id++) {
    wire::BuildFrame(id, wire::Opcode::kGet, get_payload, &wave);
  }
  ASSERT_TRUE(::send(fd, wave.data(), wave.size(), MSG_NOSIGNAL) ==
              static_cast<ssize_t>(wave.size()));
  ASSERT_TRUE(WaitFor([&] {
    return owned.server->stats().backpressure_stalls >= 1;
  })) << "paused read was never counted as a backpressure stall";

  // Drain: every one of the 64 responses arrives intact and in full.
  std::string buffer;
  char chunk[16 << 10];
  std::map<uint64_t, size_t> value_sizes;
  while (value_sizes.size() < 64) {
    Slice body;
    size_t consumed;
    wire::FrameResult r =
        wire::DecodeFrame(buffer.data(), buffer.size(), &body, &consumed);
    if (r == wire::FrameResult::kOk) {
      uint64_t id;
      wire::Opcode op;
      Slice p;
      ASSERT_TRUE(wire::ParseBody(body, &id, &op, &p));
      ASSERT_EQ(wire::Opcode::kGet, op);
      Status s;
      ASSERT_TRUE(wire::DecodeStatus(&p, &s));
      ASSERT_TRUE(s.ok()) << s.ToString();
      Slice value;
      ASSERT_TRUE(GetLengthPrefixedSlice(&p, &value));
      value_sizes[id] = value.size();
      buffer.erase(0, consumed);
      continue;
    }
    ASSERT_EQ(wire::FrameResult::kNeedMore, r);
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(got, 0) << "connection died before all responses arrived";
    buffer.append(chunk, static_cast<size_t>(got));
  }
  for (const auto& [id, size] : value_sizes) {
    EXPECT_EQ(big.size(), size) << "response " << id;
  }
  ::close(fd);
}

// A peer that never drains past the hard output cap is disconnected
// instead of buffering the server into the ground.
TEST(ServerBackpressureTest, OverflowPastHardLimitDisconnects) {
  ServerOptions server_options;
  server_options.num_workers = 2;
  server_options.num_shards = 1;
  server_options.output_buffer_soft_limit = 4 << 10;
  server_options.output_buffer_hard_limit = 64 << 10;
  server_options.sndbuf_bytes = 8 << 10;
  OwnedServer owned = StartOwnedServer(server_options);
  ASSERT_TRUE(
      owned.db->Put(WriteOptions(), "big", std::string(16 << 10, 'B')).ok());

  int fd = RawConnectTo(owned.server->port(), /*rcvbuf_bytes=*/4096);
  std::string get_payload, wave;
  wire::EncodeKey("big", &get_payload);
  for (uint64_t id = 1; id <= 64; id++) {
    wire::BuildFrame(id, wire::Opcode::kGet, get_payload, &wave);
  }
  ASSERT_TRUE(::send(fd, wave.data(), wave.size(), MSG_NOSIGNAL) ==
              static_cast<ssize_t>(wave.size()));

  ASSERT_TRUE(WaitFor([&] {
    return owned.server->stats().overflow_disconnects >= 1;
  })) << "hard-limit overflow never disconnected the slow reader";

  // The socket ends in EOF or reset — never a hang.
  char chunk[16 << 10];
  while (true) {
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;
  }
  ::close(fd);
  EXPECT_EQ(0u, owned.server->stats().connections_active);
}

// Wire-protocol unit coverage that needs no socket.
TEST(WireProtocolTest, DbStatsRoundTrip) {
  DbStats stats;
  stats.total_write_amp = 3.25;
  stats.level_write_amp = {1.0, 2.5};
  stats.level_bytes = {100, 2000, 30000};
  stats.level_node_counts = {1, 2, 3};
  stats.user_bytes = 123456;
  stats.space_used_bytes = 234567;
  stats.cache_usage = 42;
  stats.cache_hits = 7;
  stats.cache_misses = 9;
  stats.mixed_level = 2;
  stats.mixed_level_k = 3;
  stats.pending_debt_bytes = 555;
  stats.stall_micros = 777;
  stats.io.bytes_written = 1111;
  stats.io.bytes_read = 2222;
  stats.io.write_ops = 33;
  stats.io.read_ops = 44;
  stats.io.fsyncs = 5;
  stats.server_loop_iterations = 1001;
  stats.server_writev_calls = 1002;
  stats.server_responses_written = 1003;
  stats.server_output_buffer_hwm = 1004;
  stats.server_backpressure_stalls = 1005;
  stats.server_accept_errors = 1006;

  std::string encoded;
  wire::EncodeDbStats(stats, &encoded);
  DbStats decoded;
  ASSERT_TRUE(wire::DecodeDbStats(encoded, &decoded));

  EXPECT_EQ(stats.total_write_amp, decoded.total_write_amp);
  EXPECT_EQ(stats.level_write_amp, decoded.level_write_amp);
  EXPECT_EQ(stats.level_bytes, decoded.level_bytes);
  EXPECT_EQ(stats.level_node_counts, decoded.level_node_counts);
  EXPECT_EQ(stats.user_bytes, decoded.user_bytes);
  EXPECT_EQ(stats.space_used_bytes, decoded.space_used_bytes);
  EXPECT_EQ(stats.cache_usage, decoded.cache_usage);
  EXPECT_EQ(stats.cache_hits, decoded.cache_hits);
  EXPECT_EQ(stats.cache_misses, decoded.cache_misses);
  EXPECT_EQ(stats.mixed_level, decoded.mixed_level);
  EXPECT_EQ(stats.mixed_level_k, decoded.mixed_level_k);
  EXPECT_EQ(stats.pending_debt_bytes, decoded.pending_debt_bytes);
  EXPECT_EQ(stats.stall_micros, decoded.stall_micros);
  EXPECT_EQ(stats.io.bytes_written, decoded.io.bytes_written);
  EXPECT_EQ(stats.io.bytes_read, decoded.io.bytes_read);
  EXPECT_EQ(stats.io.write_ops, decoded.io.write_ops);
  EXPECT_EQ(stats.io.read_ops, decoded.io.read_ops);
  EXPECT_EQ(stats.io.fsyncs, decoded.io.fsyncs);
  EXPECT_EQ(stats.server_loop_iterations, decoded.server_loop_iterations);
  EXPECT_EQ(stats.server_writev_calls, decoded.server_writev_calls);
  EXPECT_EQ(stats.server_responses_written, decoded.server_responses_written);
  EXPECT_EQ(stats.server_output_buffer_hwm, decoded.server_output_buffer_hwm);
  EXPECT_EQ(stats.server_backpressure_stalls,
            decoded.server_backpressure_stalls);
  EXPECT_EQ(stats.server_accept_errors, decoded.server_accept_errors);
}

TEST(WireProtocolTest, MultiGetPayloadRoundTripAndRejects) {
  std::vector<std::string> keys = {"a", "", std::string("b\0c", 3)};
  std::string payload;
  wire::EncodeMultiGet(keys, &payload);
  std::vector<Slice> decoded_keys;
  ASSERT_TRUE(wire::DecodeMultiGet(payload, &decoded_keys));
  ASSERT_EQ(keys.size(), decoded_keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    EXPECT_EQ(keys[i], decoded_keys[i].ToString());
  }

  // Count that exceeds the remaining bytes / truncated keys / trailing
  // garbage are all rejected.
  EXPECT_FALSE(wire::DecodeMultiGet(Slice("\x03", 1), &decoded_keys));
  EXPECT_FALSE(wire::DecodeMultiGet(Slice("\x01\x05xy", 4), &decoded_keys));
  std::string trailing = payload + "junk";
  EXPECT_FALSE(wire::DecodeMultiGet(trailing, &decoded_keys));

  std::vector<wire::MultiGetEntry> entries(3);
  entries[0].code = wire::StatusCode::kOk;
  entries[0].value = "value-a";
  entries[1].code = wire::StatusCode::kNotFound;
  entries[2].code = wire::StatusCode::kOk;
  entries[2].value = "";
  std::string resp;
  wire::EncodeMultiGetResponse(entries, &resp);
  std::vector<wire::MultiGetEntry> decoded;
  ASSERT_TRUE(wire::DecodeMultiGetResponse(resp, &decoded));
  ASSERT_EQ(3u, decoded.size());
  EXPECT_EQ(wire::StatusCode::kOk, decoded[0].code);
  EXPECT_EQ("value-a", decoded[0].value);
  EXPECT_EQ(wire::StatusCode::kNotFound, decoded[1].code);
  EXPECT_TRUE(decoded[1].value.empty());
  EXPECT_EQ(wire::StatusCode::kOk, decoded[2].code);
  EXPECT_TRUE(decoded[2].value.empty());
}

TEST(WireProtocolTest, DecodeFrameEdgeCases) {
  std::string frame;
  wire::BuildFrame(5, wire::Opcode::kPing, Slice(), &frame);

  // Every strict prefix is kNeedMore.
  for (size_t n = 0; n < frame.size(); n++) {
    Slice body;
    size_t consumed;
    EXPECT_EQ(wire::FrameResult::kNeedMore,
              wire::DecodeFrame(frame.data(), n, &body, &consumed))
        << "prefix " << n;
  }

  Slice body;
  size_t consumed;
  ASSERT_EQ(wire::FrameResult::kOk,
            wire::DecodeFrame(frame.data(), frame.size(), &body, &consumed));
  EXPECT_EQ(frame.size(), consumed);

  // Flipping any body byte breaks the checksum.
  std::string bad = frame;
  bad[wire::kFrameHeaderSize] ^= 0x01;
  EXPECT_EQ(wire::FrameResult::kBadCrc,
            wire::DecodeFrame(bad.data(), bad.size(), &body, &consumed));

  // A too-small length prefix is rejected outright.
  std::string tiny;
  PutFixed32(&tiny, 3);
  tiny.append(16, '\0');
  EXPECT_EQ(wire::FrameResult::kTooLarge,
            wire::DecodeFrame(tiny.data(), tiny.size(), &body, &consumed));
}

// ---------------------------------------------------------------------------
// Server over FaultInjectionEnv: a WAL sync failure must surface to the
// client as a decoded ERROR status on that request — not a dropped
// connection — and the session must keep working once the fault clears.

TEST(ServerFaultTest, WalSyncFailureSurfacesAsErrorFrame) {
  MemEnv mem;
  FaultInjectionEnv fault(&mem);
  Options options;
  options.env = &fault;
  options.node_capacity = 64 << 10;
  options.table.block_size = 1024;
  options.amt.fanout = 4;
  options.sync_wal = true;  // every Put syncs, so a sync fault hits it
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/srv", &db).ok());

  ServerOptions server_options;
  server_options.port = 0;
  server_options.num_workers = 2;
  Server server(db.get(), server_options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions client_options;
  client_options.port = server.port();
  client_options.connect_retries = 1;
  Client client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Put("before", "ok").ok());

  // Exactly one injected sync failure: the in-flight Put must come back
  // as a non-OK decoded status carrying the injection message.
  fault.SetErrorSchedule(kFaultSync, /*seed=*/7, /*one_in=*/1,
                         /*max_failures=*/1);
  Status s = client.Put("during", "fails");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("injected"), std::string::npos) << s.ToString();
  fault.ClearErrorSchedule();

  // Same connection, not a reconnect: the session stayed up.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Put("after", "ok").ok());
  std::string got;
  EXPECT_TRUE(client.Get("after", &got).ok());
  EXPECT_EQ("ok", got);
  EXPECT_TRUE(client.Get("during", &got).IsNotFound());

  server.Stop();
}

// A connection that dies with requests pipelined must fail every pending
// Wait* promptly and distinctly — not hang on a dead socket, and not claim
// the ids were never submitted.  The "server" here is a raw socket the
// test controls exactly: it answers the first request, then resets.
TEST(ClientPipelineFailureTest, BrokenConnectionFailsOutstandingWaits) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);

  // A PING frame is header (8) + id (8) + opcode (1) = 17 bytes; the fake
  // server waits for all three submits before acting so the test is not
  // racing the client's sends.
  constexpr size_t kThreePings = 3 * 17;
  std::thread fake_server([listen_fd] {
    int conn = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    size_t got = 0;
    char buf[256];
    while (got < kThreePings) {
      ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) break;
      got += static_cast<size_t>(n);
    }
    // Answer the first request (id 1) only, then drop the connection.
    std::string status_payload, frame;
    wire::EncodeStatus(Status::OK(), &status_payload);
    wire::BuildFrame(1, wire::Opcode::kPing, status_payload, &frame);
    ::send(conn, frame.data(), frame.size(), MSG_NOSIGNAL);
    ::close(conn);
  });

  ClientOptions options;
  options.port = ntohs(addr.sin_port);
  options.connect_retries = 0;
  options.op_timeout_ms = 5000;  // a hang fails the test via this timeout
  Client client(options);
  ASSERT_TRUE(client.Connect().ok());

  const uint64_t id1 = client.SubmitPing();
  const uint64_t id2 = client.SubmitPing();
  const uint64_t id3 = client.SubmitPing();
  ASSERT_EQ(id1, 1u);
  ASSERT_NE(id2, 0u);
  ASSERT_NE(id3, 0u);

  // Waiting on id2 first: the client buffers id1's response, then hits the
  // peer close and reports the transport error against id2 itself.
  Status s2 = client.Wait(id2);
  EXPECT_TRUE(s2.IsIOError()) << s2.ToString();
  EXPECT_FALSE(client.connected());

  // id1's response arrived before the reset and stays claimable.
  EXPECT_TRUE(client.Wait(id1).ok());

  // id3 was in flight when the connection died: the distinct
  // connection-lost error, exactly once.
  Status s3 = client.Wait(id3);
  EXPECT_TRUE(s3.IsIOError()) << s3.ToString();
  EXPECT_NE(s3.ToString().find("connection lost with request in flight"),
            std::string::npos)
      << s3.ToString();
  Status again = client.Wait(id3);
  EXPECT_NE(again.ToString().find("not in flight"), std::string::npos)
      << again.ToString();

  fake_server.join();
  ::close(listen_fd);
}

// Same failure, driven through a real server killed mid-pipeline: pending
// waits must all resolve with IOErrors, and a fresh connect afterwards
// must find the durable data intact.
TEST(ClientPipelineFailureTest, ServerStopMidPipeline) {
  auto owned = StartOwnedServer(ServerOptions());
  ClientOptions options;
  options.port = owned.server->port();
  options.connect_retries = 0;
  options.op_timeout_ms = 5000;
  Client client(options);
  ASSERT_TRUE(client.Put("durable", "yes").ok());

  std::vector<uint64_t> ids;
  for (int i = 0; i < 16; i++) {
    uint64_t id = client.SubmitGet("durable");
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  owned.server->Stop();

  // Every wait resolves (OK for responses that raced out before the stop,
  // IOError otherwise) — none may hang past the op timeout or crash.
  int io_errors = 0;
  for (uint64_t id : ids) {
    std::string value;
    Status s = client.WaitGet(id, &value);
    if (!s.ok()) {
      EXPECT_TRUE(s.IsIOError()) << s.ToString();
      io_errors++;
    } else {
      EXPECT_EQ(value, "yes");
    }
  }
  // The server drains gracefully, so responses may all have made it out;
  // what matters is that nothing hung and errors (if any) were IOErrors.
  SUCCEED() << io_errors << " of " << ids.size() << " waits failed";
}

}  // namespace
}  // namespace iamdb
