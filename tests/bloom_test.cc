// Bloom filter tests: no false negatives ever, false-positive rate at the
// paper's operating point (14 bits/key -> ~0.2%).
#include <gtest/gtest.h>

#include "table/bloom.h"
#include "util/coding.h"

namespace iamdb {
namespace {

std::string Key(int i) {
  std::string s;
  PutFixed32(&s, static_cast<uint32_t>(i));
  return s;
}

class BloomTest : public testing::Test {
 protected:
  void Build(int n, int bits_per_key = 14) {
    policy_ = std::make_unique<BloomFilterPolicy>(bits_per_key);
    std::vector<std::string> key_storage;
    std::vector<Slice> keys;
    for (int i = 0; i < n; i++) key_storage.push_back(Key(i));
    for (const auto& k : key_storage) keys.emplace_back(k);
    filter_.clear();
    policy_->CreateFilter(keys, &filter_);
  }

  bool Matches(int i) {
    std::string k = Key(i);
    return policy_->KeyMayMatch(k, filter_);
  }

  double FalsePositiveRate(int n) {
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; i++) {
      if (Matches(i + 1000000000)) hits++;
    }
    (void)n;
    return hits / static_cast<double>(trials);
  }

  std::unique_ptr<BloomFilterPolicy> policy_;
  std::string filter_;
};

TEST_F(BloomTest, EmptyFilterMatchesNothing) {
  Build(0);
  EXPECT_FALSE(Matches(0));
  EXPECT_FALSE(Matches(123456));
}

TEST_F(BloomTest, NoFalseNegativesSmall) {
  Build(100);
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(Matches(i)) << "false negative for key " << i;
  }
}

TEST_F(BloomTest, NoFalseNegativesAcrossSizes) {
  for (int n : {1, 10, 100, 1000, 10000, 50000}) {
    Build(n);
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(Matches(i)) << "n=" << n << " key=" << i;
    }
  }
}

TEST_F(BloomTest, FalsePositiveRateAt14Bits) {
  Build(10000, 14);
  double fp = FalsePositiveRate(10000);
  // Paper: 14 bits/key -> ~0.2%.  Allow generous slack for hash variance.
  EXPECT_LT(fp, 0.01) << "fp rate " << fp;
}

TEST_F(BloomTest, FewerBitsMeansMoreFalsePositives) {
  Build(10000, 4);
  double fp4 = FalsePositiveRate(10000);
  Build(10000, 14);
  double fp14 = FalsePositiveRate(10000);
  EXPECT_GT(fp4, fp14);
  EXPECT_LT(fp14, 0.01);
  EXPECT_GT(fp4, 0.05);  // 4 bits/key is ~15-20%
}

TEST_F(BloomTest, EmptySliceFilterRejects) {
  BloomFilterPolicy policy(14);
  EXPECT_FALSE(policy.KeyMayMatch("anything", Slice()));
}

TEST_F(BloomTest, VaryingLengthKeys) {
  BloomFilterPolicy policy(14);
  std::vector<std::string> storage;
  for (int len = 0; len < 64; len++) {
    storage.push_back(std::string(len, 'a' + (len % 26)));
  }
  std::vector<Slice> keys(storage.begin(), storage.end());
  std::string filter;
  policy.CreateFilter(keys, &filter);
  for (const auto& k : storage) {
    EXPECT_TRUE(policy.KeyMayMatch(k, filter));
  }
}

}  // namespace
}  // namespace iamdb
