// Tests for the benchmark substrate: YCSB distribution generators, key
// formatting, and the harness's workload mixes.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/generators.h"
#include "workload/harness.h"

namespace iamdb::bench {
namespace {

TEST(ZipfianTest, RespectsDomain) {
  ZipfianGenerator gen(1000);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfianTest, IsActuallySkewed) {
  ZipfianGenerator gen(10000);
  std::map<uint64_t, int> counts;
  const int N = 100000;
  for (int i = 0; i < N; i++) counts[gen.Next()]++;
  // Rank 0 should take a large share (theta=0.99 -> ~10%), and the top 10
  // ranks should dominate.
  EXPECT_GT(counts[0], N / 20);
  int top10 = 0;
  for (uint64_t r = 0; r < 10; r++) top10 += counts[r];
  EXPECT_GT(top10, N / 4);
}

TEST(ZipfianTest, GrowingDomainStillValid) {
  ZipfianGenerator gen(100);
  gen.SetN(1000);
  gen.SetN(5000);
  bool saw_beyond_initial = false;
  for (int i = 0; i < 50000; i++) {
    uint64_t v = gen.Next();
    ASSERT_LT(v, 5000u);
    if (v >= 100) saw_beyond_initial = true;
  }
  EXPECT_TRUE(saw_beyond_initial);
}

TEST(ScrambledZipfianTest, SpreadsHotKeysAcrossSpace) {
  ScrambledZipfianGenerator gen(100000);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) counts[gen.Next()]++;
  // Find the hottest items; they must NOT be clustered at the low end.
  uint64_t hottest = 0;
  int hottest_count = 0;
  for (const auto& [k, c] : counts) {
    if (c > hottest_count) {
      hottest = k;
      hottest_count = c;
    }
  }
  EXPECT_GT(hottest_count, 1000);  // skew preserved
  EXPECT_GT(hottest, 100u);        // but location scrambled (probabilistic)
}

TEST(LatestTest, FavorsRecentInsertions) {
  LatestGenerator gen(10000);
  int recent = 0;
  const int N = 20000;
  for (int i = 0; i < N; i++) {
    if (gen.Next() >= 9000) recent++;  // top 10% of the key space
  }
  // "Latest" concentrates mass near n-1.
  EXPECT_GT(recent, N / 2);
}

TEST(LatestTest, TracksGrowth) {
  LatestGenerator gen(100);
  gen.SetN(10000);
  bool saw_new = false;
  for (int i = 0; i < 10000; i++) {
    uint64_t v = gen.Next();
    ASSERT_LT(v, 10000u);
    if (v > 5000) saw_new = true;
  }
  EXPECT_TRUE(saw_new);
}

TEST(KeyFormatTest, HashedKeysAreUnordered) {
  // Consecutive indices must map to non-consecutive keys (hash load).
  int ordered_pairs = 0;
  for (uint64_t i = 0; i + 1 < 1000; i++) {
    if (HashedKey(i) < HashedKey(i + 1)) ordered_pairs++;
  }
  EXPECT_GT(ordered_pairs, 300);
  EXPECT_LT(ordered_pairs, 700);  // ~50/50 if well scrambled
}

TEST(KeyFormatTest, OrderedKeysAreOrdered) {
  for (uint64_t i = 0; i + 1 < 1000; i++) {
    ASSERT_LT(OrderedKey(i), OrderedKey(i + 1));
  }
}

TEST(KeyFormatTest, KeysAreUniqueAndStable) {
  std::set<std::string> seen;
  for (uint64_t i = 0; i < 10000; i++) {
    ASSERT_TRUE(seen.insert(HashedKey(i)).second) << i;
  }
  EXPECT_EQ(HashedKey(42), HashedKey(42));
}

TEST(MakeValueTest, SizedAndDeterministic) {
  EXPECT_EQ(1024u, MakeValue(7, 1024).size());
  EXPECT_EQ(MakeValue(7, 100), MakeValue(7, 100));
  EXPECT_NE(MakeValue(7, 100), MakeValue(8, 100));
  EXPECT_EQ(0u, MakeValue(1, 0).size());
}

TEST(WorkloadSpecTest, MixesSumToOne) {
  for (char w : std::string("ABCDEFG")) {
    WorkloadSpec spec = WorkloadSpec::Ycsb(w);
    double total =
        spec.read + spec.update + spec.insert + spec.scan + spec.rmw;
    EXPECT_NEAR(1.0, total, 1e-9) << w;
  }
}

TEST(WorkloadSpecTest, PaperShapes) {
  EXPECT_DOUBLE_EQ(0.5, WorkloadSpec::Ycsb('A').update);
  EXPECT_DOUBLE_EQ(1.0, WorkloadSpec::Ycsb('C').read);
  EXPECT_EQ(WorkloadSpec::Dist::kLatest, WorkloadSpec::Ycsb('D').dist);
  EXPECT_EQ(100, WorkloadSpec::Ycsb('E').max_scan_len);
  EXPECT_EQ(10000, WorkloadSpec::Ycsb('G').max_scan_len);
  EXPECT_DOUBLE_EQ(0.5, WorkloadSpec::Ycsb('F').rmw);
}

TEST(HarnessTest, SmokeLoadAndWorkload) {
  ScaleConfig config = ScaleConfig::Smoke();
  BenchDb bench(SystemId::kI1, config);
  RunResult load = Load(&bench, config.num_records, /*ordered=*/false);
  EXPECT_EQ(config.num_records, load.ops);
  EXPECT_GT(load.ssd_seconds, 0);
  EXPECT_GT(load.hdd_seconds, load.ssd_seconds);  // HDD always slower

  RunResult run = RunWorkload(&bench, WorkloadSpec::Ycsb('A'), 500, 1);
  EXPECT_EQ(500u, run.ops);
  EXPECT_GT(run.Throughput("SSD"), run.Throughput("HDD"));
  EXPECT_GT(run.ssd_latency_us.Count(), 0u);
}

TEST(HarnessTest, AllSystemsOpenAndLoad) {
  for (SystemId id : {SystemId::kL, SystemId::kR1, SystemId::kR4,
                      SystemId::kA1, SystemId::kA4, SystemId::kI1,
                      SystemId::kI4}) {
    ScaleConfig config = ScaleConfig::Smoke();
    BenchDb bench(id, config);
    RunResult r = Load(&bench, 2000, /*ordered=*/false);
    EXPECT_EQ(2000u, r.ops) << SystemName(id);
    EXPECT_GE(r.stats_after.total_write_amp, 0.9) << SystemName(id);
  }
}

TEST(HarnessTest, PacedLoadBoundsDebt) {
  ScaleConfig config = ScaleConfig::Smoke();
  BenchDb bench(SystemId::kL, config);
  Load(&bench, config.num_records, /*ordered=*/false,
       SettleMode::kNoSettle, /*pace_debt_bytes=*/256 << 10);
  // The bound is approximate (checked every 32 ops), allow 4x slack.
  EXPECT_LT(bench.db()->GetStats().pending_debt_bytes, 1u << 20);
}

}  // namespace
}  // namespace iamdb::bench
