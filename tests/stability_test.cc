// Deterministic pacing suites (docs/TESTING.md):
//
//  * RateLimiterDeterministicTest — the token bucket driven by a simulated
//    RateClock, so refill, chunking, zero-byte requests, dynamic retune and
//    the kHigh/kLow priority bypass are all asserted on exact simulated
//    timestamps with no wall-clock sleeps.
//  * CompactionPacerTest — the control law (TargetRate) and the retune
//    cadence/EWMA on a manual clock, with exact expected rates.
//  * StabilityTest — seeded (IAMDB_TEST_SEED-replayable) end-to-end runs on
//    all three engines with adaptive pacing: compaction debt stays bounded,
//    no single write stalls pathologically, and the pacer actually engages.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/compaction_pacer.h"
#include "core/db.h"
#include "env/mem_env.h"
#include "test_seed.h"
#include "util/random.h"
#include "util/rate_limiter.h"

namespace iamdb {
namespace {

// Simulated RateClock.  Two modes:
//  * auto-advance (default): WaitFor moves simulated time forward by the
//    requested amount and returns — single-threaded tests never block.
//  * stepped: WaitFor parks the caller (spin + yield, no sleeps) until the
//    test calls Step(); used to hold several threads waiting at once for
//    the priority-bypass and overlapping-wait assertions.
class ManualRateClock : public RateClock {
 public:
  explicit ManualRateClock(bool auto_advance = true)
      : auto_advance_(auto_advance) {}

  uint64_t NowMicros() override {
    return now_.load(std::memory_order_acquire);
  }

  void WaitFor(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
               uint64_t micros) override {
    (void)cv;
    if (auto_advance_) {
      waits_.fetch_add(1, std::memory_order_release);
      now_.fetch_add(micros, std::memory_order_release);
      return;
    }
    // Capture the generation BEFORE announcing the wait: once a test
    // observes waits() advance, this thread's Step target is already
    // pinned, so a concurrent Step cannot be missed.
    const uint64_t entry = generation_.load(std::memory_order_acquire);
    waits_.fetch_add(1, std::memory_order_release);
    lock.unlock();
    while (generation_.load(std::memory_order_acquire) == entry) {
      std::this_thread::yield();
    }
    lock.lock();
  }

  // Stepped mode: advance simulated time and release every parked waiter
  // for one predicate re-check.
  void Step(uint64_t micros) {
    now_.fetch_add(micros, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
  }

  // Number of WaitFor entries so far (counts re-waits).
  uint64_t waits() const { return waits_.load(std::memory_order_acquire); }

  // Spin (yield, no sleep) until `n` WaitFor entries happened.
  void AwaitWaiters(uint64_t n) {
    while (waits() < n) std::this_thread::yield();
  }

 private:
  const bool auto_advance_;
  std::atomic<uint64_t> now_{1000000};
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> waits_{0};
};

// ---- RateLimiter on a simulated clock ----

TEST(RateLimiterDeterministicTest, RefillAccruesAtConfiguredRate) {
  ManualRateClock clock;
  RateLimiter limiter(1000000, &clock);  // 1 byte per simulated micro
  const uint64_t start = clock.NowMicros();
  limiter.Request(50000);
  // Empty bucket: the full deficit must be waited out, no more.
  EXPECT_EQ(clock.NowMicros() - start, 50000u);
  EXPECT_EQ(limiter.total_bytes(), 50000u);
  EXPECT_EQ(limiter.total_wait_micros(), 50000u);
  // A second request pays exactly its own deficit too (bucket drained).
  limiter.Request(10000);
  EXPECT_EQ(clock.NowMicros() - start, 60000u);
}

TEST(RateLimiterDeterministicTest, ZeroByteRequestIsFree) {
  ManualRateClock clock;
  RateLimiter limiter(1000, &clock);
  const uint64_t start = clock.NowMicros();
  limiter.Request(0);
  EXPECT_EQ(clock.NowMicros(), start);
  EXPECT_EQ(limiter.total_bytes(), 0u);
  EXPECT_EQ(limiter.total_wait_micros(), 0u);
}

TEST(RateLimiterDeterministicTest, BurstLargerThanBucketChunksAndCompletes) {
  ManualRateClock clock;
  RateLimiter limiter(1000000, &clock);  // burst = 100000
  const uint64_t start = clock.NowMicros();
  // 10x the bucket: must be charged in bucket-sized chunks (10 waits, one
  // per chunk) instead of deadlocking on a budget that can never accrue.
  limiter.Request(1000000);
  EXPECT_EQ(clock.NowMicros() - start, 1000000u);
  EXPECT_EQ(clock.waits(), 10u);
  EXPECT_EQ(limiter.total_bytes(), 1000000u);
}

TEST(RateLimiterDeterministicTest, SetBytesPerSecondRetunes) {
  ManualRateClock clock;
  RateLimiter limiter(1000000, &clock);
  EXPECT_EQ(limiter.bytes_per_second(), 1000000u);
  limiter.Request(100000);  // drain, costs 100ms

  limiter.SetBytesPerSecond(10000000);  // 10x the rate, burst now 1MB
  EXPECT_EQ(limiter.bytes_per_second(), 10000000u);
  uint64_t start = clock.NowMicros();
  limiter.Request(1000000);
  // Same bytes, a tenth of the simulated time.
  EXPECT_EQ(clock.NowMicros() - start, 100000u);

  limiter.SetBytesPerSecond(0);  // unpaced: requests are free now
  start = clock.NowMicros();
  limiter.Request(1ull << 30);
  EXPECT_EQ(clock.NowMicros(), start);
}

TEST(RateLimiterDeterministicTest, RetuneToUnpacedDrainsWaiters) {
  ManualRateClock clock(/*auto_advance=*/false);
  RateLimiter limiter(1000, &clock);  // 1KB/s: a 64KB chunk waits ~64s
  std::atomic<bool> done{false};
  std::thread t([&] {
    limiter.Request(64 << 10);
    done.store(true, std::memory_order_release);
  });
  clock.AwaitWaiters(1);
  EXPECT_FALSE(done.load(std::memory_order_acquire));
  // Disabling pacing must release the parked waiter for free.
  limiter.SetBytesPerSecond(0);
  clock.Step(0);
  t.join();
  EXPECT_TRUE(done.load());
}

TEST(RateLimiterDeterministicTest, HighPriorityBypassesLowAndWallGauge) {
  ManualRateClock clock(/*auto_advance=*/false);
  RateLimiter limiter(1000000, &clock);  // burst 100000, bucket empty
  std::atomic<int> finish_counter{0};
  int low_finished_at = 0, high_finished_at = 0;

  std::thread low([&] {
    RateLimiter::ScopedPriority prio(RateLimiter::IoPriority::kLow);
    limiter.Request(60000);
    low_finished_at = finish_counter.fetch_add(1) + 1;
  });
  clock.AwaitWaiters(1);
  std::thread high([&] {
    RateLimiter::ScopedPriority prio(RateLimiter::IoPriority::kHigh);
    limiter.Request(60000);
    high_finished_at = finish_counter.fetch_add(1) + 1;
  });
  clock.AwaitWaiters(2);

  // 70000 bytes accrue: enough for one request.  The high-priority one
  // must get it — the low waiter yields while a high waiter exists, even
  // if budget would cover it.
  clock.Step(70000);
  high.join();
  EXPECT_EQ(high_finished_at, 1);
  EXPECT_FALSE(low_finished_at > 0);

  // The leftover 10000 plus 50000 more releases the low request.
  clock.AwaitWaiters(3);  // low re-parked after losing the race
  clock.Step(50000);
  low.join();
  EXPECT_EQ(low_finished_at, 2);

  // Per-thread waits sum (70000 + 120000); the wall gauge counts the
  // overlapping interval once.
  EXPECT_EQ(limiter.total_wait_micros(), 190000u);
  EXPECT_EQ(limiter.total_paced_wall_micros(), 120000u);
}

// ---- CompactionPacer control law + cadence ----

PacingOptions TestPacing() {
  PacingOptions p;
  p.adaptive = true;
  p.min_bytes_per_sec = 4 << 20;
  p.max_bytes_per_sec = 100 << 20;
  p.debt_low_bytes = 10 << 20;
  p.debt_high_bytes = 50 << 20;
  p.retune_interval_micros = 100000;
  p.headroom = 1.25;
  return p;
}

TEST(CompactionPacerTest, TargetRateLaw) {
  ManualRateClock clock;
  PacingOptions p = TestPacing();
  RateLimiter limiter(p.min_bytes_per_sec, &clock);
  CompactionPacer pacer(p, &limiter, &clock);

  // Idle: the floor.
  EXPECT_EQ(pacer.TargetRate(0, 0), p.min_bytes_per_sec);
  // Low debt: ingest * headroom, clamped to [min, max].
  EXPECT_EQ(pacer.TargetRate(16 << 20, 0), 20u << 20);
  EXPECT_EQ(pacer.TargetRate(1 << 20, 0), p.min_bytes_per_sec);
  EXPECT_EQ(pacer.TargetRate(1ull << 40, 0), p.max_bytes_per_sec);
  // High debt: fully open regardless of ingest.
  EXPECT_EQ(pacer.TargetRate(0, p.debt_high_bytes), p.max_bytes_per_sec);
  EXPECT_EQ(pacer.TargetRate(0, 1ull << 40), p.max_bytes_per_sec);
  // Between the watermarks: monotone in debt, strictly between the
  // endpoints.
  uint64_t prev = pacer.TargetRate(16 << 20, p.debt_low_bytes);
  EXPECT_EQ(prev, 20u << 20);
  for (uint64_t debt = p.debt_low_bytes + (1 << 20);
       debt < p.debt_high_bytes; debt += 8 << 20) {
    uint64_t rate = pacer.TargetRate(16 << 20, debt);
    EXPECT_GT(rate, prev);
    EXPECT_LT(rate, p.max_bytes_per_sec);
    prev = rate;
  }
}

TEST(CompactionPacerTest, RetuneCadenceAndEwma) {
  ManualRateClock clock;
  PacingOptions p = TestPacing();
  RateLimiter limiter(p.min_bytes_per_sec, &clock);
  CompactionPacer pacer(p, &limiter, &clock);

  // Within the interval: no retune, whatever the inputs.
  pacer.RecordIngest(1 << 20);
  EXPECT_FALSE(pacer.RetuneDue());
  pacer.MaybeRetune(1ull << 40);
  EXPECT_EQ(pacer.retunes(), 0u);
  EXPECT_EQ(limiter.bytes_per_second(), p.min_bytes_per_sec);

  // One interval later: 1MB over 100ms = 10MB/s window rate, EWMA from 0
  // gives 5MB/s, and with low debt the budget is 5MB/s * 1.25 = 6.25MB/s.
  clock.Step(p.retune_interval_micros);
  EXPECT_TRUE(pacer.RetuneDue());
  pacer.MaybeRetune(0);
  EXPECT_EQ(pacer.retunes(), 1u);
  EXPECT_EQ(pacer.ingest_rate(), (10u << 20) / 2);
  EXPECT_EQ(limiter.bytes_per_second(),
            static_cast<uint64_t>((10ull << 20) / 2 * 1.25));

  // Debt at the high watermark opens the budget fully.
  clock.Step(p.retune_interval_micros);
  pacer.MaybeRetune(p.debt_high_bytes);
  EXPECT_EQ(pacer.retunes(), 2u);
  EXPECT_EQ(limiter.bytes_per_second(), p.max_bytes_per_sec);
  EXPECT_EQ(pacer.current_rate(), p.max_bytes_per_sec);

  // Unchanged target: no spurious retune is counted.
  clock.Step(p.retune_interval_micros);
  pacer.MaybeRetune(p.debt_high_bytes);
  EXPECT_EQ(pacer.retunes(), 2u);
}

// Regression for the pacing death spiral: compaction needs ingest times
// write-amplification of bandwidth, so budgeting from measured ingest
// alone starves merges, which stalls writes, which lowers measured
// ingest, which spirals the budget to the floor.  Once debt passes the
// low watermark, a saturated limiter (paced-wall time covering most of a
// retune window) must escalate the budget multiplicatively until
// compaction is no longer limiter-bound, then settle back to the law.
TEST(CompactionPacerTest, SaturatedDemandEscalatesBudget) {
  ManualRateClock clock;  // auto-advance: waits move simulated time
  PacingOptions p = TestPacing();
  RateLimiter limiter(p.min_bytes_per_sec, &clock);
  CompactionPacer pacer(p, &limiter, &clock);

  // Offer one interval's worth of budget at the floor rate with an empty
  // bucket: the limiter blocks for the whole interval (simulated).  With
  // debt above the low watermark, the budget must escalate (x1.5) despite
  // zero ingest.
  limiter.Request(p.min_bytes_per_sec / 10);
  EXPECT_TRUE(pacer.RetuneDue());
  pacer.MaybeRetune(p.debt_low_bytes + 1);
  EXPECT_EQ(limiter.bytes_per_second(), p.min_bytes_per_sec * 3 / 2);
  EXPECT_EQ(pacer.retunes(), 1u);

  // Still saturated at the escalated rate: escalates again.
  limiter.Request(limiter.bytes_per_second() / 10);
  pacer.MaybeRetune(p.debt_low_bytes + 1);
  const uint64_t escalated = p.min_bytes_per_sec * 9 / 4;
  EXPECT_EQ(limiter.bytes_per_second(), escalated);
  EXPECT_EQ(pacer.retunes(), 2u);

  // Idle window (no ingest, no demand, low debt): no signal, so the
  // learned budget is kept rather than decayed back toward the floor.
  clock.Step(p.retune_interval_micros);
  pacer.MaybeRetune(0);
  EXPECT_EQ(limiter.bytes_per_second(), escalated);
  EXPECT_EQ(pacer.retunes(), 2u);

  // Light load with no saturation: the law pulls the budget back down
  // toward the decayed demand EWMA.
  pacer.RecordIngest(1 << 20);
  clock.Step(p.retune_interval_micros);
  pacer.MaybeRetune(0);
  EXPECT_LT(limiter.bytes_per_second(), escalated);
  EXPECT_GE(limiter.bytes_per_second(), p.min_bytes_per_sec);
  EXPECT_EQ(pacer.retunes(), 3u);
}

// ---- Seeded multi-engine stability ----

struct EngineSpec {
  const char* name;
  EngineType engine;
  AmtPolicy policy;
};

class StabilityTest : public ::testing::TestWithParam<EngineSpec> {};

TEST_P(StabilityTest, AdaptivePacingBoundsDebtAndStalls) {
  const uint64_t seed = test::TestSeed(20260807);
  SCOPED_TRACE(test::SeedTrace(seed));
  const EngineSpec& spec = GetParam();

  MemEnv env;
  Options options;
  options.env = &env;
  options.engine = spec.engine;
  options.amt.policy = spec.policy;
  options.node_capacity = 64 << 10;
  options.table.block_size = 1024;
  options.amt.fanout = 4;
  options.leveled.target_file_size = 32 << 10;
  options.leveled.max_bytes_level1 = 5 * (64 << 10);
  options.background_threads = 2;
  options.max_subcompactions = 2;
  options.block_cache_capacity = 8 << 20;
  options.pacing.adaptive = true;
  options.pacing.min_bytes_per_sec = 2 << 20;
  options.pacing.max_bytes_per_sec = 1 << 30;
  options.pacing.debt_low_bytes = 256 << 10;
  options.pacing.debt_high_bytes = 1 << 20;
  options.pacing.retune_interval_micros = 10000;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/stability", &db).ok());

  const uint64_t kOps = 6000;
  const uint64_t kKeySpace = kOps / 2;
  // Debt may overshoot debt_high while the opened budget catches up; what
  // adaptive pacing must prevent is unbounded growth.  One extra
  // high-watermark of slack plus a handful of in-flight nodes is a bound
  // that holds with wide margin when the controller works and fails
  // quickly if it never opens the budget.
  const uint64_t kDebtBound =
      2 * options.pacing.debt_high_bytes + 8 * options.node_capacity;
  const uint64_t kMaxPutMicros = 2 * 1000 * 1000;

  Random64 rnd(seed);
  const std::string value(512, 'v');
  char key[32];
  uint64_t max_put_micros = 0;
  for (uint64_t i = 0; i < kOps; i++) {
    std::snprintf(key, sizeof(key), "user%012llu",
                  static_cast<unsigned long long>(rnd.Uniform(kKeySpace)));
    const auto put_start = std::chrono::steady_clock::now();
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    const uint64_t put_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - put_start)
            .count();
    max_put_micros = std::max(max_put_micros, put_micros);
    if (i % 128 == 0) {
      DbStats stats = db->GetStats();
      EXPECT_LT(stats.pending_debt_bytes, kDebtBound)
          << "debt unbounded at op " << i;
      EXPECT_GE(stats.pacer_rate_bytes_per_sec,
                options.pacing.min_bytes_per_sec);
      EXPECT_LE(stats.pacer_rate_bytes_per_sec,
                options.pacing.max_bytes_per_sec);
    }
  }
  EXPECT_LT(max_put_micros, kMaxPutMicros)
      << "a single write stalled " << max_put_micros << "us";

  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  EXPECT_TRUE(db->CheckInvariants(/*quiescent=*/true).ok());

  DbStats stats = db->GetStats();
  // ~3MB of ingest across many retune intervals: the controller must have
  // engaged, and quiescence means the debt signal drained.
  EXPECT_GT(stats.pacer_retunes, 0u);
  EXPECT_EQ(stats.pending_debt_bytes, 0u);
  // Reads still see every key written (spot check via the newest key).
  std::string got;
  EXPECT_TRUE(db->Get(ReadOptions(), key, &got).ok());
  EXPECT_EQ(got, value);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, StabilityTest,
    ::testing::Values(
        EngineSpec{"leveled", EngineType::kLeveled, AmtPolicy::kIam},
        EngineSpec{"lsa", EngineType::kAmt, AmtPolicy::kLsa},
        EngineSpec{"iam", EngineType::kAmt, AmtPolicy::kIam}),
    [](const ::testing::TestParamInfo<EngineSpec>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace iamdb
