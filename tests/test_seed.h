// Seed plumbing for randomized tests.  Suites derive their random streams
// from TestSeed(default) and wrap bodies in SCOPED_TRACE(SeedTrace(seed)),
// so any failure prints the seed it ran with, and setting
//   IAMDB_TEST_SEED=<n>
// replays the exact same history (docs/TESTING.md, "Reproducing a seeded
// failure").
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "table/compressor.h"

namespace iamdb {
namespace test {

// True (and *seed overwritten) when IAMDB_TEST_SEED is set.
inline bool SeedOverridden(uint64_t* seed) {
  const char* value = std::getenv("IAMDB_TEST_SEED");
  if (value == nullptr || *value == '\0') return false;
  *seed = std::strtoull(value, nullptr, 10);
  return true;
}

inline uint64_t TestSeed(uint64_t default_seed) {
  uint64_t seed = default_seed;
  SeedOverridden(&seed);
  return seed;
}

// Attach via SCOPED_TRACE so failures print the replay recipe.
inline std::string SeedTrace(uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         " (replay with IAMDB_TEST_SEED=" + std::to_string(seed) + ")";
}

// Block codec for the seeded fault/crash/equivalence matrices: setting
//   IAMDB_TEST_COMPRESSION=columnar|lz
// reruns the same histories with per-block compression enabled (CI's
// sanitizer jobs add a compression cell this way).  Unset or unparseable
// means raw blocks, the historical default.
inline CompressionType TestCompression() {
  CompressionType type = CompressionType::kNone;
  const char* value = std::getenv("IAMDB_TEST_COMPRESSION");
  if (value != nullptr && *value != '\0') {
    ParseCompressionType(value, &type);
  }
  return type;
}

}  // namespace test
}  // namespace iamdb
