// Partitioned-subcompaction tests: seeded equivalence (a sharded merge
// must produce the same logical tree as the single-threaded one, for all
// three engines), a TSAN-targeted stress test exercising parallel shards
// plus the two-lane scheduler under concurrent readers, and unit tests for
// the fan-out primitives (TaskGroup, RateLimiter).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "test_seed.h"
#include "util/random.h"
#include "util/rate_limiter.h"
#include "util/task_group.h"
#include "util/thread_pool.h"

namespace iamdb {
namespace {

// ---- fan-out primitive units ----

TEST(TaskGroupTest, CallerRunsEverythingOnTinyPool) {
  // With one pool thread and the "caller" itself being that thread's task,
  // no helper can ever assist — the group must still complete because the
  // caller claims every shard.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::atomic<bool> done{false};
  ASSERT_TRUE(pool.Schedule([&] {
    std::vector<std::function<Status()>> tasks;
    for (int i = 0; i < 16; i++) {
      tasks.emplace_back([&ran] {
        ran.fetch_add(1);
        return Status::OK();
      });
    }
    EXPECT_TRUE(TaskGroup::RunAll(&pool, ThreadPool::Lane::kLow,
                                  std::move(tasks))
                    .ok());
    done = true;
  }));
  pool.WaitIdle();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(16, ran.load());
}

TEST(TaskGroupTest, FirstFailureInTaskOrderAfterAllTasksRan) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 8; i++) {
    tasks.emplace_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 2) return Status::IOError("shard-2");
      if (i == 5) return Status::Corruption("shard-5");
      return Status::OK();
    });
  }
  Status s = TaskGroup::RunAll(&pool, ThreadPool::Lane::kLow,
                               std::move(tasks));
  // Every task finished (cleanup of partial outputs needs this), and the
  // reported status is the first failure in task order, not claim order.
  EXPECT_EQ(8, ran.load());
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("shard-2"), std::string::npos);
}

TEST(RateLimiterTest, DisabledLimiterNeverBlocks) {
  RateLimiter limiter(0);
  auto start = std::chrono::steady_clock::now();
  limiter.Request(1ull << 30);
  auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  EXPECT_LT(micros, 1000000);
  EXPECT_EQ(0u, limiter.total_wait_micros());
}

TEST(RateLimiterTest, PacesAndAccountsWaits) {
  // 8MB/s budget, 2MB of requests: must take >= ~0.2s of accounted wait
  // (first burst is free) but nowhere near unbounded.
  RateLimiter limiter(8 << 20);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 8; i++) limiter.Request(256 << 10);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_EQ(2u << 20, limiter.total_bytes());
  EXPECT_GT(limiter.total_wait_micros(), 0u);
  EXPECT_LT(elapsed, 5000);
}

TEST(RateLimiterTest, ScopedPriorityNestsAndRestores) {
  EXPECT_EQ(RateLimiter::IoPriority::kLow, RateLimiter::ThreadPriority());
  {
    RateLimiter::ScopedPriority high(RateLimiter::IoPriority::kHigh);
    EXPECT_EQ(RateLimiter::IoPriority::kHigh, RateLimiter::ThreadPriority());
    {
      RateLimiter::ScopedPriority low(RateLimiter::IoPriority::kLow);
      EXPECT_EQ(RateLimiter::IoPriority::kLow,
                RateLimiter::ThreadPriority());
    }
    EXPECT_EQ(RateLimiter::IoPriority::kHigh, RateLimiter::ThreadPriority());
  }
  EXPECT_EQ(RateLimiter::IoPriority::kLow, RateLimiter::ThreadPriority());
}

// ---- engine-level tests ----

struct EngineConfig {
  EngineType engine;
  AmtPolicy policy;
  const char* name;
};

Options SmallTreeOptions(const EngineConfig& config, Env* env) {
  Options options;
  options.env = env;
  options.engine = config.engine;
  options.amt.policy = config.policy;
  options.node_capacity = 24 << 10;
  options.table.block_size = 1024;
  options.amt.fanout = 4;
  options.leveled.max_bytes_level1 = 96 << 10;
  options.leveled.target_file_size = 12 << 10;
  // The digest-equivalence tests below double as the codec check: with
  // IAMDB_TEST_COMPRESSION set, sharded and single-threaded merges must
  // still install identical trees over compressed tables.
  options.table.compression = test::TestCompression();
  return options;
}

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

// Seeded write history: overwrites and deletes over a keyspace small
// enough to force repeated merges through every level.  Writes land in
// rounds small enough to fit one memtable, each followed by a full drain,
// so flush boundaries — and therefore the job sequence a single background
// thread picks — are deterministic and only the intra-job fan-out differs
// between runs.
void ApplySeededWorkload(DB* db, uint64_t seed, int rounds, int keyspace) {
  Random64 rnd(seed);
  for (int r = 0; r < rounds; r++) {
    for (int i = 0; i < 80; i++) {
      int k = static_cast<int>(rnd.Next() % keyspace);
      if (rnd.Next() % 8 == 0) {
        ASSERT_TRUE(db->Delete(WriteOptions(), Key(k)).ok());
      } else {
        std::string value = "v" + std::to_string(rnd.Next() % 1000) + "-" +
                            std::string(1 + rnd.Next() % 100, 'x');
        ASSERT_TRUE(db->Put(WriteOptions(), Key(k), value).ok());
      }
    }
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForQuiescence().ok());
  }
}

// Only the per-level "stream" digest lines: content in key order,
// independent of where the engine cut files/nodes.
std::string StreamLines(const std::string& digest) {
  std::istringstream in(digest);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find(" stream ") != std::string::npos) out += line + "\n";
  }
  return out;
}

class SubcompactionTest : public testing::TestWithParam<EngineConfig> {};

// A merge split into key-range shards must install the same tree as the
// same merge run single-threaded.  Runs the identical seeded history with
// max_subcompactions = 1 and 4 (one background thread in both, so job
// *selection* order is deterministic and only the intra-job fan-out
// differs), then compares content digests.
TEST_P(SubcompactionTest, ShardedMergeMatchesSingleThreaded) {
  const uint64_t seed = test::TestSeed(20260806);
  SCOPED_TRACE(test::SeedTrace(seed));

  std::string digests[2];
  std::string scans[2];
  const int subcompactions[2] = {1, 4};
  for (int run = 0; run < 2; run++) {
    MemEnv env;
    Options options = SmallTreeOptions(GetParam(), &env);
    options.background_threads = 1;
    options.max_subcompactions = subcompactions[run];
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
    ApplySeededWorkload(db.get(), seed, 60, 900);
    ASSERT_TRUE(db->CheckInvariants(true).ok());
    ASSERT_TRUE(db->GetProperty("iamdb.tree-digest", &digests[run]));
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      scans[run] += it->key().ToString() + "=" + it->value().ToString() +
                    ";";
    }
    ASSERT_TRUE(it->status().ok());
  }

  // Same visible contents, always.
  EXPECT_EQ(scans[0], scans[1]);
  ASSERT_FALSE(digests[0].empty());
  if (GetParam().engine == EngineType::kAmt) {
    // AMT shards are existing partition targets, so even the per-node
    // record streams must match.
    EXPECT_EQ(digests[0], digests[1]);
  } else {
    // Leveled shards move the output file cuts; the per-level record
    // stream is still required to be byte-identical.
    EXPECT_EQ(StreamLines(digests[0]), StreamLines(digests[1]));
  }
}

// TSAN target: parallel shards + two-lane scheduler + rate limiter under
// concurrent reads, verified against an in-memory model at the end.
TEST_P(SubcompactionTest, ConcurrentShardedCompactionStress) {
  const uint64_t seed = test::TestSeed(20260807);
  SCOPED_TRACE(test::SeedTrace(seed));

  MemEnv env;
  Options options = SmallTreeOptions(GetParam(), &env);
  options.background_threads = 4;
  options.max_subcompactions = 4;
  options.compaction_rate_limit = 256 << 20;  // paced, but not slow
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  const int kKeyspace = 700;
  std::atomic<bool> done{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; t++) {
    readers.emplace_back([&, t] {
      Random64 rnd(seed + 100 + t);
      while (!done.load(std::memory_order_acquire)) {
        std::string value;
        Status s = db->Get(ReadOptions(),
                           Key(static_cast<int>(rnd.Next() % kKeyspace)),
                           &value);
        if (!s.ok() && !s.IsNotFound()) read_errors.fetch_add(1);
      }
    });
  }

  // Single writer keeps a model; readers only check status sanity (values
  // move under them by design).
  std::map<std::string, std::string> model;
  Random64 rnd(seed);
  for (int i = 0; i < 8000; i++) {
    std::string key = Key(static_cast<int>(rnd.Next() % kKeyspace));
    if (rnd.Next() % 8 == 0) {
      ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
      model.erase(key);
    } else {
      std::string value =
          "s" + std::to_string(i) + std::string(rnd.Next() % 150, 'y');
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    }
  }
  done = true;
  for (auto& r : readers) r.join();
  EXPECT_EQ(0, read_errors.load());

  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  ASSERT_TRUE(db->CheckInvariants(true).ok());

  DbStats stats = db->GetStats();
  if (options.max_subcompactions > 1) {
    // Not a hard guarantee (small trees may never shard), but this
    // workload reliably produces multi-target merges.
    EXPECT_GT(stats.subcompactions_run, 0u) << GetParam().name;
  }

  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  auto expect = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, model.end());
    EXPECT_EQ(expect->first, it->key().ToString());
    EXPECT_EQ(expect->second, it->value().ToString());
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(expect, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    Engines, SubcompactionTest,
    testing::Values(EngineConfig{EngineType::kLeveled, AmtPolicy::kLsa,
                                 "leveled"},
                    EngineConfig{EngineType::kAmt, AmtPolicy::kLsa, "lsa"},
                    EngineConfig{EngineType::kAmt, AmtPolicy::kIam, "iam"}),
    [](const testing::TestParamInfo<EngineConfig>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace iamdb
