// Unit tests for the util substrate: slices, status, coding, crc32c, hash,
// random, arena, histogram, thread pool.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace iamdb {
namespace {

TEST(SliceTest, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_EQ("hello", s.ToString());
  EXPECT_TRUE(s.starts_with("he"));
  EXPECT_FALSE(s.starts_with("hx"));

  s.remove_prefix(2);
  EXPECT_EQ("llo", s.ToString());
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("ab").compare(Slice("ab")), 0);
  EXPECT_LT(Slice("a").compare(Slice("ab")), 0);   // prefix sorts first
  EXPECT_GT(Slice("ab").compare(Slice("a")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
  EXPECT_TRUE(Slice("a") < Slice("b"));
}

TEST(SliceTest, EmbeddedNul) {
  std::string with_nul("a\0b", 3);
  Slice s(with_nul);
  EXPECT_EQ(3u, s.size());
  EXPECT_EQ(with_nul, s.ToString());
}

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("OK", s.ToString());
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status nf = Status::NotFound("key", "missing");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ("NotFound: key: missing", nf.ToString());

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::Corruption("bad block");
  Status b = a;
  EXPECT_TRUE(b.IsCorruption());
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v += 7777) {
    PutFixed32(&s, v);
  }
  Slice input(s);
  for (uint32_t v = 0; v < 100000; v += 7777) {
    uint32_t actual;
    ASSERT_TRUE(GetFixed32(&input, &actual));
    EXPECT_EQ(v, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  std::vector<uint64_t> values;
  for (int power = 0; power <= 63; power++) {
    uint64_t v = 1ull << power;
    values.insert(values.end(), {v - 1, v, v + 1});
  }
  for (uint64_t v : values) PutFixed64(&s, v);
  Slice input(s);
  for (uint64_t v : values) {
    uint64_t actual;
    ASSERT_TRUE(GetFixed64(&input, &actual));
    EXPECT_EQ(v, actual);
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t v = (i / 32) << (i % 32);
    PutVarint32(&s, v);
  }
  Slice input(s);
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t expected = (i / 32) << (i % 32);
    uint32_t actual;
    ASSERT_TRUE(GetVarint32(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  std::vector<uint64_t> values = {0, 100, ~0ull, ~0ull - 1};
  for (uint32_t k = 0; k < 64; k++) {
    const uint64_t power = 1ull << k;
    values.insert(values.end(), {power, power - 1, power + 1});
  }
  std::string s;
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice input(s);
  for (uint64_t v : values) {
    uint64_t actual;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(v, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint32Truncation) {
  uint32_t large_value = (1u << 31) + 100;
  std::string s;
  PutVarint32(&s, large_value);
  uint32_t result;
  for (size_t len = 0; len < s.size() - 1; len++) {
    Slice input(s.data(), len);
    EXPECT_FALSE(GetVarint32(&input, &result));
  }
  Slice input(s);
  EXPECT_TRUE(GetVarint32(&input, &result));
  EXPECT_EQ(large_value, result);
}

TEST(CodingTest, Varint32Overflow) {
  uint32_t result;
  std::string input("\x81\x82\x83\x84\x85\x11");
  Slice s(input);
  EXPECT_FALSE(GetVarint32(&s, &result));
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("foo"));
  PutLengthPrefixedSlice(&s, Slice(std::string(10000, 'x')));
  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("foo", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(std::string(10000, 'x'), v.ToString());
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(CodingTest, VarintLength) {
  EXPECT_EQ(1, VarintLength(0));
  EXPECT_EQ(1, VarintLength(127));
  EXPECT_EQ(2, VarintLength(128));
  EXPECT_EQ(5, VarintLength(0xffffffffull));
  EXPECT_EQ(10, VarintLength(~0ull));
}

TEST(Crc32cTest, StandardVectors) {
  // From the CRC32C spec (RFC 3720 appendix / SCTP test vectors).
  char buf[32];

  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aau, crc32c::Value(buf, sizeof(buf)));

  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43u, crc32c::Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(i);
  EXPECT_EQ(0x46dd794eu, crc32c::Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(0x113fdb5cu, crc32c::Value(buf, sizeof(buf)));
}

TEST(Crc32cTest, Values) {
  EXPECT_NE(crc32c::Value("a", 1), crc32c::Value("foo", 3));
}

TEST(Crc32cTest, Extend) {
  EXPECT_EQ(crc32c::Value("hello world", 11),
            crc32c::Extend(crc32c::Value("hello ", 6), "world", 5));
}

TEST(Crc32cTest, MaskUnmask) {
  uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_NE(crc, crc32c::Mask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Unmask(crc32c::Mask(crc32c::Mask(crc)))));
}

TEST(HashTest, SignedUnsignedIssue) {
  const uint8_t data1[1] = {0x62};
  const uint8_t data2[2] = {0xc3, 0x97};
  const uint8_t data3[3] = {0xe2, 0x99, 0xa5};
  const uint8_t data4[4] = {0xe1, 0x80, 0xb9, 0x32};
  // Hash must treat bytes as unsigned: distinct results, stable across runs.
  uint32_t h1 = Hash(reinterpret_cast<const char*>(data1), 1, 0xbc9f1d34);
  uint32_t h2 = Hash(reinterpret_cast<const char*>(data2), 2, 0xbc9f1d34);
  uint32_t h3 = Hash(reinterpret_cast<const char*>(data3), 3, 0xbc9f1d34);
  uint32_t h4 = Hash(reinterpret_cast<const char*>(data4), 4, 0xbc9f1d34);
  std::set<uint32_t> distinct = {h1, h2, h3, h4};
  EXPECT_EQ(4u, distinct.size());
  EXPECT_EQ(h1, Hash(reinterpret_cast<const char*>(data1), 1, 0xbc9f1d34));
}

TEST(RandomTest, Deterministic) {
  Random a(301), b(301);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(42);
  for (int i = 0; i < 1000; i++) {
    uint32_t v = r.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(Random64Test, DeterministicAndSpread) {
  Random64 a(7), b(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; i++) {
    uint64_t v = a.Next();
    EXPECT_EQ(v, b.Next());
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 990u);  // essentially no collisions
}

TEST(Random64Test, NextDoubleRange) {
  Random64 r(99);
  for (int i = 0; i < 1000; i++) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ArenaTest, Empty) { Arena arena; }

TEST(ArenaTest, ManyAllocationsStayReadable) {
  std::vector<std::pair<size_t, char*>> allocated;
  Arena arena;
  const int N = 10000;
  size_t bytes = 0;
  Random rnd(301);
  for (int i = 0; i < N; i++) {
    size_t s;
    if (i % (N / 10) == 0) {
      s = i;
    } else {
      s = rnd.OneIn(4000) ? rnd.Uniform(6000)
                          : (rnd.OneIn(10) ? rnd.Uniform(100) : rnd.Uniform(20));
    }
    if (s == 0) s = 1;
    char* r = (rnd.OneIn(10) ? arena.AllocateAligned(s) : arena.Allocate(s));
    for (size_t b = 0; b < s; b++) {
      r[b] = static_cast<char>(i % 256);
    }
    bytes += s;
    allocated.push_back(std::make_pair(s, r));
    ASSERT_GE(arena.MemoryUsage(), bytes);
  }
  for (size_t i = 0; i < allocated.size(); i++) {
    size_t num_bytes = allocated[i].first;
    const char* p = allocated[i].second;
    for (size_t b = 0; b < num_bytes; b++) {
      EXPECT_EQ(static_cast<int>(p[b]) & 0xff, static_cast<int>(i % 256));
    }
  }
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena;
  for (int i = 1; i < 100; i++) {
    char* p = arena.AllocateAligned(i);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % 8);
  }
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0.0, h.Average());
  EXPECT_EQ(0.0, h.Percentile(99));
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(1u, h.Count());
  EXPECT_DOUBLE_EQ(42.0, h.Average());
  EXPECT_NEAR(42.0, h.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(42.0, h.Max());
  EXPECT_DOUBLE_EQ(42.0, h.Min());
}

TEST(HistogramTest, PercentilesOfUniformStream) {
  Histogram h;
  for (int i = 1; i <= 10000; i++) h.Add(i);
  // Bucketing is ~4.5% wide; percentiles must land within that tolerance.
  EXPECT_NEAR(5000, h.Percentile(50), 5000 * 0.06);
  EXPECT_NEAR(9900, h.Percentile(99), 9900 * 0.06);
  EXPECT_DOUBLE_EQ(10000, h.Max());
  EXPECT_NEAR(5000.5, h.Average(), 0.01);
}

TEST(HistogramTest, MergeCombinesStreams) {
  Histogram a, b;
  for (int i = 1; i <= 1000; i++) a.Add(i);
  for (int i = 1001; i <= 2000; i++) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(2000u, a.Count());
  EXPECT_NEAR(1000, a.Percentile(50), 1000 * 0.06);
  EXPECT_DOUBLE_EQ(2000, a.Max());
  EXPECT_DOUBLE_EQ(1, a.Min());
}

TEST(HistogramTest, StandardDeviation) {
  Histogram h;
  for (int i = 0; i < 100; i++) h.Add(10.0);
  EXPECT_NEAR(0.0, h.StandardDeviation(), 1e-9);
  h.Add(1000.0);
  EXPECT_GT(h.StandardDeviation(), 0.0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; i++) {
    EXPECT_TRUE(pool.Schedule([&count] { count.fetch_add(1); }));
  }
  pool.WaitIdle();
  EXPECT_EQ(1000, count.load());
}

TEST(ThreadPoolTest, TasksCanScheduleMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.Schedule([&pool, &count] {
    count.fetch_add(1);
    for (int i = 0; i < 10; i++) {
      EXPECT_TRUE(pool.Schedule([&count] { count.fetch_add(1); }));
    }
  }));
  pool.WaitIdle();
  EXPECT_EQ(11, count.load());
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.WaitIdle();  // must not hang
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; i++) {
      EXPECT_TRUE(pool.Schedule([&count] { count.fetch_add(1); }));
    }
  }
  EXPECT_EQ(100, count.load());
}

// Schedule during shutdown is a defined no-op: it returns false and drops
// the work instead of racing pool destruction (the server drain path
// relies on this being well-defined in release builds).
TEST(ThreadPoolTest, ScheduleDuringShutdownIsRejected) {
  std::atomic<bool> rejected_seen{false};
  std::atomic<int> noops_accepted{0};
  {
    ThreadPool pool(1);
    // The task occupies the single worker and keeps scheduling until the
    // destructor (running concurrently on the main thread) flips the pool
    // into shutdown and Schedule starts returning false.
    EXPECT_TRUE(pool.Schedule([&] {
      while (pool.Schedule([&noops_accepted] { noops_accepted++; })) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      rejected_seen.store(true);
    }));
  }  // ~ThreadPool: sets shutting_down_, then drains the queue and joins
  EXPECT_TRUE(rejected_seen.load());
}

}  // namespace
}  // namespace iamdb
