// ChooseMixedLevel edge cases (core/amt/amt_tuner.h): the paper's Eq. 1-2
// selection of the mixed level (m) and its sequence bound (k) from the
// cache budget.  Largest m wins, then largest k.
#include "core/amt/amt_tuner.h"

#include "gtest/gtest.h"

namespace iamdb {
namespace {

TEST(AmtTunerTest, EmptyTreeIsAllAppend) {
  // No levels yet: everything fits, m = 1 (= n + 1) with the max k.
  MixedLevelChoice c = ChooseMixedLevel({}, 10, 3, 0);
  EXPECT_EQ(c.m, 1);
  EXPECT_EQ(c.k, 3);
  c = ChooseMixedLevel({}, 10, 7, 64 << 20);
  EXPECT_EQ(c.m, 1);
  EXPECT_EQ(c.k, 7);
}

TEST(AmtTunerTest, ZeroBudgetDegeneratesToMergeEverywhere) {
  // Nothing can be cached: m = 1, k = 1 (the classic LSM shape).  k = 1 at
  // m = 1 always satisfies Eq. 2 — S(1,1) = 0 and there are no levels
  // above the mixed level — so no budget is ever "too small to answer".
  MixedLevelChoice c = ChooseMixedLevel({1000, 10000}, 10, 3, 0);
  EXPECT_EQ(c.m, 1);
  EXPECT_EQ(c.k, 1);
}

TEST(AmtTunerTest, BudgetBelowL1StillPicksL1) {
  // Budget smaller than D_1: m = 2 is unaffordable (its upper set is D_1),
  // and at m = 1 the budget only limits k via S(1,k) = D_1 * (k-1) / t.
  // budget 500 < D_1 = 1000; S(1,2) = 100 < 500 so k = 3 fits (S = 200).
  MixedLevelChoice c = ChooseMixedLevel({1000, 10000}, 10, 3, 500);
  EXPECT_EQ(c.m, 1);
  EXPECT_EQ(c.k, 3);
  // Tighter: budget 150 only affords k = 2 (S = 100 <= 150 < 200).
  c = ChooseMixedLevel({1000, 10000}, 10, 3, 150);
  EXPECT_EQ(c.m, 1);
  EXPECT_EQ(c.k, 2);
}

TEST(AmtTunerTest, WholeTreeInBudgetIsLsaShape) {
  // Budget covers every level: m = n + 1 (all levels append; LSA limit).
  MixedLevelChoice c = ChooseMixedLevel({1000, 10000}, 10, 3, 11000);
  EXPECT_EQ(c.m, 3);
  EXPECT_EQ(c.k, 3);
}

TEST(AmtTunerTest, MaxKClamp) {
  // A huge budget never exceeds max_k, even when far larger k would fit.
  MixedLevelChoice c = ChooseMixedLevel({1000}, 10, 4, 1ull << 40);
  EXPECT_EQ(c.m, 2);  // n + 1: all-append
  EXPECT_EQ(c.k, 4);
  c = ChooseMixedLevel({1000}, 10, 1, 1ull << 40);
  EXPECT_EQ(c.k, 1);
}

TEST(AmtTunerTest, LargestMPreferredOverLargerK) {
  // D = {100, 1000}, t = 10, budget 150.  m = 3 needs 1100 (no); m = 2
  // needs D_1 = 100 plus S(2,k) = 1000(k-1)/10: k = 1 fits exactly
  // (100 <= 150).  The tuner must not fall back to m = 1 with k = 3 even
  // though that also fits — larger m wins first.
  MixedLevelChoice c = ChooseMixedLevel({100, 1000}, 10, 3, 150);
  EXPECT_EQ(c.m, 2);
  EXPECT_EQ(c.k, 1);
}

TEST(AmtTunerTest, BudgetGrowthDeepensTheMixedLevel) {
  // The arbiter's lever: growing the cache budget monotonically deepens
  // (m, k).  Walk the same tree through increasing budgets.
  const std::vector<uint64_t> tree = {1000, 10000, 100000};
  int last_m = 0, last_k = 0;
  for (uint64_t budget : {0ull, 200ull, 1200ull, 13000ull, 111000ull}) {
    MixedLevelChoice c = ChooseMixedLevel(tree, 10, 3, budget);
    EXPECT_GE(c.m * 100 + c.k, last_m * 100 + last_k)
        << "budget " << budget << " shrank (m,k)";
    last_m = c.m;
    last_k = c.k;
  }
  EXPECT_EQ(last_m, 4);  // final budget covers the whole tree
  EXPECT_EQ(last_k, 3);
}

}  // namespace
}  // namespace iamdb
