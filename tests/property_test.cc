// Parameterized property sweeps across the configuration space:
//  * table layer round-trips across block sizes x restart intervals,
//  * bloom filters across bits-per-key,
//  * whole-DB model checks across engine x value-size x insert-pattern.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "core/db.h"
#include "core/dbformat.h"
#include "env/mem_env.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/bloom.h"
#include "table/mstable.h"
#include "test_seed.h"
#include "util/random.h"

namespace iamdb {
namespace {

std::string IKey(const std::string& k, SequenceNumber s) {
  std::string r;
  AppendInternalKey(&r, ParsedInternalKey(k, s, kTypeValue));
  return r;
}

// ---------------------------------------------------------------------------
// Block round-trips across (block entries, restart interval).

class BlockSweepTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockSweepTest, RoundTripAndSeek) {
  const auto [num_entries, restart_interval] = GetParam();
  const uint64_t seed = test::TestSeed(num_entries * 31 + restart_interval);
  SCOPED_TRACE(test::SeedTrace(seed));
  Random rnd(static_cast<uint32_t>(seed));
  std::map<std::string, std::string> model;
  for (int i = 0; i < num_entries; i++) {
    model[IKey("key" + std::to_string(rnd.Uniform(100000) + 100000), 5)] =
        std::string(rnd.Uniform(64), 'v');
  }
  BlockBuilder builder(restart_interval);
  for (const auto& [k, v] : model) builder.Add(k, v);
  Block block(builder.Finish().ToString());
  InternalKeyComparator cmp;

  // Full forward scan equals the model.
  std::unique_ptr<Iterator> iter(block.NewIterator(&cmp));
  auto it = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++it) {
    ASSERT_NE(model.end(), it);
    EXPECT_EQ(it->first, iter->key().ToString());
    EXPECT_EQ(it->second, iter->value().ToString());
  }
  EXPECT_EQ(model.end(), it);

  // Random seeks land on lower_bound.
  for (int probe = 0; probe < 50; probe++) {
    std::string target =
        IKey("key" + std::to_string(rnd.Uniform(100000) + 100000), 5);
    iter->Seek(target);
    auto lb = model.lower_bound(target);
    if (lb == model.end()) {
      EXPECT_FALSE(iter->Valid());
    } else {
      ASSERT_TRUE(iter->Valid());
      EXPECT_EQ(lb->first, iter->key().ToString());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockSweepTest,
    testing::Combine(testing::Values(0, 1, 7, 64, 500),
                     testing::Values(1, 2, 16, 128)),
    [](const testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_ri" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Bloom filters across bits-per-key.

class BloomSweepTest : public testing::TestWithParam<int> {};

TEST_P(BloomSweepTest, NoFalseNegativesAndBoundedFalsePositives) {
  const int bits = GetParam();
  BloomFilterPolicy policy(bits);
  std::vector<std::string> storage;
  for (int i = 0; i < 2000; i++) {
    storage.push_back("key" + std::to_string(i * 37));
  }
  std::vector<Slice> keys(storage.begin(), storage.end());
  std::string filter;
  policy.CreateFilter(keys, &filter);

  for (const auto& k : storage) {
    ASSERT_TRUE(policy.KeyMayMatch(k, filter)) << bits << " bits: " << k;
  }
  int fp = 0;
  for (int i = 0; i < 5000; i++) {
    if (policy.KeyMayMatch("absent" + std::to_string(i), filter)) fp++;
  }
  // Loose theoretical bound: (0.6185)^bits, with generous slack.
  double expected = std::pow(0.6185, bits);
  EXPECT_LT(fp / 5000.0, std::max(0.02, expected * 3)) << bits << " bits";
}

INSTANTIATE_TEST_SUITE_P(Sweep, BloomSweepTest,
                         testing::Values(4, 8, 10, 14, 20),
                         [](const testing::TestParamInfo<int>& info) {
                           return "bits" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// MSTable round-trips across (block size, appends).

class MSTableSweepTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MSTableSweepTest, MultiAppendModelCheck) {
  const auto [block_size, num_appends] = GetParam();
  MemEnv env;
  InternalKeyComparator cmp;
  TableOptions options;
  options.block_size = block_size;

  std::map<std::string, std::string> model;
  uint64_t meta_end = 0;
  SequenceNumber seq = 1;
  const uint64_t seed = test::TestSeed(block_size + num_appends);
  SCOPED_TRACE(test::SeedTrace(seed));
  Random rnd(static_cast<uint32_t>(seed));

  for (int append = 0; append <= num_appends; append++) {
    std::map<std::string, std::string> batch;
    for (int i = 0; i < 120; i++) {
      char buf[16];
      snprintf(buf, sizeof(buf), "k%05d", rnd.Uniform(600));
      batch[buf] = "a" + std::to_string(append) + "v" + std::to_string(i);
    }
    MSTableBuildResult result;
    if (append == 0) {
      MSTableWriter writer(&env, options, "/t");
      ASSERT_TRUE(writer.Open().ok());
      for (const auto& [k, v] : batch) {
        ASSERT_TRUE(writer.Add(IKey(k, seq), v).ok());
        model[k] = v;
      }
      ASSERT_TRUE(writer.Finish(false, &result).ok());
    } else {
      std::shared_ptr<MSTableReader> reader;
      ASSERT_TRUE(MSTableReader::Open(&env, options, &cmp, "/t", append,
                                      meta_end, &reader)
                      .ok());
      MSTableAppender appender(&env, options, "/t", *reader);
      ASSERT_TRUE(appender.Open().ok());
      for (const auto& [k, v] : batch) {
        ASSERT_TRUE(appender.Add(IKey(k, seq), v).ok());
        model[k] = v;
      }
      ASSERT_TRUE(appender.Finish(false, &result).ok());
    }
    meta_end = result.meta_end;
    seq++;
  }

  std::shared_ptr<MSTableReader> reader;
  ASSERT_TRUE(MSTableReader::Open(&env, options, &cmp, "/t", 99, meta_end,
                                  &reader)
                  .ok());
  EXPECT_EQ(num_appends + 1, reader->seq_count());
  for (int i = 0; i < 600; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%05d", i);
    std::string value;
    MSTableReader::GetState state;
    std::string ikey = IKey(buf, 1000);
    ASSERT_TRUE(reader->Get(ReadOptions(), ikey, &value, &state).ok());
    auto it = model.find(buf);
    if (it == model.end()) {
      EXPECT_EQ(MSTableReader::GetState::kNotFound, state) << buf;
    } else {
      ASSERT_EQ(MSTableReader::GetState::kFound, state) << buf;
      EXPECT_EQ(it->second, value) << buf;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MSTableSweepTest,
    testing::Combine(testing::Values(256, 1024, 8192),
                     testing::Values(0, 1, 4, 9)),
    [](const testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "bs" + std::to_string(std::get<0>(info.param)) + "_app" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Whole-DB model check across engine x value size x insert pattern.

struct DbSweepParam {
  EngineType engine;
  AmtPolicy policy;
  int value_size;
  int pattern;  // 0 = sequential, 1 = uniform random, 2 = skewed hot keys
  std::string Name() const {
    std::string n = engine == EngineType::kLeveled
                        ? "Leveled"
                        : (policy == AmtPolicy::kLsa ? "Lsa" : "Iam");
    n += "_v" + std::to_string(value_size);
    n += pattern == 0 ? "_seq" : (pattern == 1 ? "_rand" : "_skew");
    return n;
  }
};

class DbSweepTest : public testing::TestWithParam<DbSweepParam> {};

TEST_P(DbSweepTest, ModelCheckWithReopen) {
  const DbSweepParam& param = GetParam();
  MemEnv env;
  Options options;
  options.env = &env;
  options.engine = param.engine;
  options.amt.policy = param.policy;
  options.node_capacity = 24 << 10;
  options.table.block_size = 1024;
  options.amt.fanout = 4;
  options.leveled.max_bytes_level1 = 96 << 10;
  options.leveled.target_file_size = 12 << 10;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  const uint64_t seed = test::TestSeed(param.value_size * 131 + param.pattern);
  SCOPED_TRACE(test::SeedTrace(seed));
  Random64 rnd(seed);
  std::map<std::string, std::string> model;
  const int ops = 12000;
  for (int i = 0; i < ops; i++) {
    uint64_t index;
    switch (param.pattern) {
      case 0: index = i; break;
      case 1: index = rnd.Next() % 5000; break;
      default: index = (rnd.Next() % 10 < 8) ? rnd.Next() % 50
                                             : rnd.Next() % 5000;
    }
    char key[32];
    snprintf(key, sizeof(key), "key%08llu",
             static_cast<unsigned long long>(index));
    if (param.pattern != 0 && rnd.Next() % 5 == 0) {
      ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
      model.erase(key);
    } else {
      std::string value(param.value_size, static_cast<char>('a' + i % 26));
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    }
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  ASSERT_TRUE(db->CheckInvariants(true).ok());

  // Reopen and verify the full model by scan.
  db.reset();
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  std::map<std::string, std::string> dump;
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    dump[iter->key().ToString()] = iter->value().ToString();
  }
  ASSERT_TRUE(iter->status().ok());
  EXPECT_EQ(model.size(), dump.size());
  EXPECT_EQ(model, dump);
}

// ---------------------------------------------------------------------------
// AMT fan-out sweep: invariants and reads must hold for any t.

class FanoutSweepTest : public testing::TestWithParam<int> {};

TEST_P(FanoutSweepTest, InvariantsAndReadsAcrossFanouts) {
  const int fanout = GetParam();
  MemEnv env;
  Options options;
  options.env = &env;
  options.engine = EngineType::kAmt;
  options.amt.policy = AmtPolicy::kIam;
  options.amt.fanout = fanout;
  options.node_capacity = 16 << 10;
  options.table.block_size = 512;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  const uint64_t seed = test::TestSeed(fanout);
  SCOPED_TRACE(test::SeedTrace(seed));
  Random64 rnd(seed);
  std::string value(64, 'v');
  for (int i = 0; i < 15000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%08llu",
             static_cast<unsigned long long>(rnd.Next() % 100000));
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  Status s = db->CheckInvariants(true);
  ASSERT_TRUE(s.ok()) << "t=" << fanout << ": " << s.ToString();

  // Split bound: with fan-out t, no node may have more than 2t overlapping
  // children (the worst-write-case avoidance, Sec 4.2.2).  Verified
  // indirectly by the invariant checker plus a read sample.
  Random64 probe(fanout + 1);
  int found = 0;
  for (int i = 0; i < 300; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%08llu",
             static_cast<unsigned long long>(probe.Next() % 100000));
    std::string v;
    if (db->Get(ReadOptions(), key, &v).ok()) found++;
  }
  EXPECT_GT(found, 10) << "t=" << fanout;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FanoutSweepTest, testing::Values(2, 3, 5, 10),
                         [](const testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbSweepTest,
    testing::Values(
        DbSweepParam{EngineType::kLeveled, AmtPolicy::kLsa, 16, 1},
        DbSweepParam{EngineType::kLeveled, AmtPolicy::kLsa, 256, 0},
        DbSweepParam{EngineType::kLeveled, AmtPolicy::kLsa, 1024, 2},
        DbSweepParam{EngineType::kAmt, AmtPolicy::kLsa, 16, 2},
        DbSweepParam{EngineType::kAmt, AmtPolicy::kLsa, 256, 1},
        DbSweepParam{EngineType::kAmt, AmtPolicy::kLsa, 1024, 0},
        DbSweepParam{EngineType::kAmt, AmtPolicy::kIam, 16, 0},
        DbSweepParam{EngineType::kAmt, AmtPolicy::kIam, 256, 2},
        DbSweepParam{EngineType::kAmt, AmtPolicy::kIam, 1024, 1}),
    [](const testing::TestParamInfo<DbSweepParam>& info) {
      return info.param.Name();
    });

}  // namespace
}  // namespace iamdb
